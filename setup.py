"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on offline machines where the ``wheel``
package (required by PEP 660 editable builds) is unavailable — pip can
fall back to the legacy ``setup.py develop`` path via
``--no-use-pep517``.
"""

from setuptools import setup

setup()
