"""E09 — NACK fluctuations vs block size under adaptive rho (Fig. 15).

Paper shape: very small blocks (k = 1, 5) make the NACK count swing
wildly (up to ~2x the target) because rho can only be adjusted in
whole-packets-per-block increments; k >= 10 is stable.
"""

import numpy as np

from _common import (
    NUM_NACK_DEFAULT,
    SKIP,
    paper_workload,
    record,
    steady_sequence,
)

KS = (1, 5, 10, 30, 50)


def test_e09_blocksize_nack_fluctuation(benchmark):
    lines = [
        "first-round NACKs per message (alpha=20%%, numNACK=%d):"
        % NUM_NACK_DEFAULT,
        "",
    ]
    peak = {}
    spread = {}
    for k in KS:
        workload = paper_workload(k=k, seed=5)
        sequence = steady_sequence(
            workload,
            alpha=0.2,
            rho=1.0,
            num_nack=NUM_NACK_DEFAULT,
            seed=200 + k,
        )
        nacks = sequence.first_round_nacks()
        peak[k] = max(nacks[SKIP:])
        spread[k] = float(np.std(nacks[SKIP:]))
        lines.append(
            "k=%2d : " % k + " ".join("%4d" % n for n in nacks)
        )

    lines += ["", "post-warm-up peak and std dev:"]
    for k in KS:
        lines.append(
            "  k=%2d : peak %4d, std %.1f" % (k, peak[k], spread[k])
        )

    # k = 1's granularity problem: the coarse rho steps overshoot, so
    # its swing dominates the well-behaved k = 10 case.
    assert spread[1] >= spread[10] * 0.8
    assert peak[1] >= peak[10]

    lines += [
        "",
        "paper (Fig 15): k in {1, 5} can spike to ~2x the target; "
        "k >= 10 stays near it.",
    ]
    record("e09", "NACK fluctuation vs block size (adaptive rho)", lines)

    workload = paper_workload(k=10, seed=5)
    benchmark.pedantic(
        lambda: steady_sequence(
            workload, alpha=0.2, n_messages=3, seed=6
        ),
        rounds=1,
        iterations=1,
    )
