"""E03 — block size vs bandwidth overhead and FEC encoding time (Fig. 8).

Paper shape (rho = 1): the server's bandwidth overhead is flat for
k >= 5 (higher at k = 1 and bumped at k = 50 by last-block duplicates),
while the overall FEC encoding time grows ~linearly with k — so a small
k gives fast encoding for free.
"""

import numpy as np

from repro.fec import encoding_cost_units

from _common import (
    ALPHAS,
    K_SWEEP,
    N_TRIALS,
    mean_over_messages,
    paper_workload,
    record,
)


def run_sweep():
    overheads = {}
    encode_units = {}
    for alpha in ALPHAS:
        for k in K_SWEEP:
            workload = paper_workload(k=k, seed=5)
            metrics = mean_over_messages(
                workload, alpha=alpha, rho=1.0, seed=17 + k
            )
            overheads[(alpha, k)] = metrics["overhead"]
            # Total parity multicast = overhead*h - ENC slots.
            total_packets = metrics["overhead"] * workload.n_enc_packets
            parity = max(
                0.0, total_packets - workload.n_blocks * workload.k
            )
            encode_units[(alpha, k)] = encoding_cost_units(k, int(parity))
    return overheads, encode_units


def test_e03_block_size(benchmark):
    overheads, encode_units = run_sweep()

    lines = ["average server bandwidth overhead (rho=1):", ""]
    header = "alpha \\ k " + "".join("%9d" % k for k in K_SWEEP)
    lines.append(header)
    for alpha in ALPHAS:
        lines.append(
            "%9.2f " % alpha
            + "".join("%9.2f" % overheads[(alpha, k)] for k in K_SWEEP)
        )
    lines += ["", "relative overall FEC encoding time (k units/parity):", ""]
    lines.append(header)
    for alpha in ALPHAS:
        lines.append(
            "%9.2f " % alpha
            + "".join("%9d" % encode_units[(alpha, k)] for k in K_SWEEP)
        )

    # Shape assertions at the paper's alpha = 20 %.
    mids = [overheads[(0.2, k)] for k in K_SWEEP if 5 <= k <= 30]
    assert max(mids) - min(mids) < 0.8  # flat plateau for k in [5, 30]
    # Encoding time ~linear in k on the plateau.
    units_10 = encode_units[(0.2, 10)]
    units_30 = encode_units[(0.2, 30)]
    assert units_30 > units_10 * 1.5

    lines += [
        "",
        "paper (Fig 8): overhead flat for k >= 5; encoding time ~linear "
        "in k; pick a small k.",
    ]
    record("e03", "block size: bandwidth overhead & FEC encoding time", lines)

    workload = paper_workload(k=10, seed=5)
    benchmark.pedantic(
        lambda: mean_over_messages(
            workload, alpha=0.2, rho=1.0, n_messages=1, seed=3
        ),
        rounds=1,
        iterations=1,
    )
