"""E04 — impact of the proactivity factor (Fig. 9).

Paper shape: the average number of first-round NACKs decays roughly
exponentially in rho; the average number of rounds for all users to
recover decreases ~linearly then levels off.  The analytic
independent-loss model tracks the simulated NACK curve.
"""

import numpy as np

from repro.analysis.fec_model import expected_first_round_nacks

from _common import (
    ALPHAS,
    K_DEFAULT,
    mean_over_messages,
    paper_workload,
    record,
)

RHOS = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.5, 3.0)


def test_e04_rho_impact(benchmark):
    workload = paper_workload(k=K_DEFAULT, seed=5)
    nacks = {}
    rounds = {}
    for alpha in ALPHAS:
        for rho in RHOS:
            metrics = mean_over_messages(
                workload, alpha=alpha, rho=rho, seed=int(rho * 100)
            )
            nacks[(alpha, rho)] = metrics["nacks"]
            rounds[(alpha, rho)] = metrics["rounds_all"]

    lines = ["average # first-round NACKs vs rho:", ""]
    header = "alpha \\ rho " + "".join("%8.2f" % r for r in RHOS)
    lines.append(header)
    for alpha in ALPHAS:
        lines.append(
            "%11.2f " % alpha
            + "".join("%8.1f" % nacks[(alpha, rho)] for rho in RHOS)
        )
    lines += ["", "average # rounds for all users vs rho:", ""]
    lines.append(header)
    for alpha in ALPHAS:
        lines.append(
            "%11.2f " % alpha
            + "".join("%8.2f" % rounds[(alpha, rho)] for rho in RHOS)
        )

    model = [
        expected_first_round_nacks(
            workload.n_users, 0.2, 0.2, 0.02, 0.01, K_DEFAULT, rho
        )
        for rho in RHOS
    ]
    lines += ["", "analytic model (alpha=0.2, independent loss):", ""]
    lines.append(
        "            " + "".join("%8.1f" % v for v in model)
    )

    # Shape assertions (alpha = 20 %).
    series = [nacks[(0.2, rho)] for rho in RHOS]
    assert series[0] > 50  # implosion-scale at rho=1
    assert series[3] < series[0] / 10  # collapsed by rho=1.6
    assert series[-1] <= 2  # essentially zero at rho=3
    # Rounds decrease then level off near 1-2.
    r_series = [rounds[(0.2, rho)] for rho in RHOS]
    assert r_series[0] > r_series[-1]
    assert r_series[-1] <= 2.5

    lines += [
        "",
        "paper (Fig 9): NACKs decay ~exponentially in rho (log-scale "
        "straight line); rounds decay ~linearly then flatten.",
    ]
    record("e04", "proactivity factor: NACKs and delivery rounds", lines)

    benchmark.pedantic(
        lambda: mean_over_messages(
            workload, alpha=0.2, rho=1.6, n_messages=1, seed=1
        ),
        rounds=1,
        iterations=1,
    )
