"""E18 — rekey-transport workload sparsity.

[SIGCOMM] The property that makes rekey transport different from bulk
reliable multicast: the message grows ~linearly with N, but each user
needs only a tiny, single-packet slice of it — at most h = log_d N
encryptions, always inside one ENC packet (UKA), i.e. ~1/h' of the
message for h' packets.
"""

import math

import numpy as np

from repro.keytree import KeyTree, MarkingAlgorithm
from repro.rekey.assignment import UserOrientedKeyAssignment
from repro.util import spawn_rng

from _common import DEGREE, N_SWEEP, record


def measure(n_users, rng):
    users = ["u%d" % i for i in range(n_users)]
    tree = KeyTree.full_balanced(users, DEGREE)
    leave_idx = rng.choice(n_users, size=n_users // 4, replace=False)
    batch = MarkingAlgorithm(renew_keys=False).apply(
        tree, leaves=[users[i] for i in leave_idx]
    )
    needs = batch.needs_by_user()
    assignment = UserOrientedKeyAssignment().assign(needs)
    need_sizes = np.array([len(v) for v in needs.values()])
    return {
        "height": tree.height,
        "n_packets": assignment.n_packets,
        "total_encryptions": assignment.n_unique_encryptions,
        "mean_need": float(need_sizes.mean()),
        "max_need": int(need_sizes.max()),
        "packets_per_user": 1,  # UKA guarantee, asserted elsewhere
    }


def test_e18_workload_sparsity(benchmark):
    rng = spawn_rng(18)
    lines = [
        "J=0, L=N/4 workload:",
        "",
        "     N   h  packets  encryptions  mean/user  max/user",
    ]
    rows = {}
    for n in N_SWEEP:
        row = measure(n, rng)
        rows[n] = row
        lines.append(
            "%6d %3d %8d %12d %10.2f %9d"
            % (
                n,
                row["height"],
                row["n_packets"],
                row["total_encryptions"],
                row["mean_need"],
                row["max_need"],
            )
        )
        # Sparsity bound: nobody needs more than h encryptions.
        assert row["max_need"] <= row["height"]
        # A user's slice is tiny relative to the message.
        assert row["mean_need"] < 0.02 * row["total_encryptions"]

    # Message size ~linear in N; per-user need ~log N.
    ns = sorted(rows)
    size_ratio = rows[ns[-1]]["total_encryptions"] / rows[ns[0]][
        "total_encryptions"
    ]
    n_ratio = ns[-1] / ns[0]
    assert 0.6 * n_ratio < size_ratio < 1.4 * n_ratio
    assert rows[ns[-1]]["mean_need"] <= rows[ns[0]]["mean_need"] + math.log(
        n_ratio, DEGREE
    ) + 0.25

    lines += [
        "",
        "every user's encryptions fit one ENC packet (UKA guarantee);",
        "message grows ~linearly in N while per-user needs grow ~log N —",
        "the sparsity that motivates FEC-by-block + single-packet "
        "assignment over generic reliable multicast.",
    ]
    record("e18", "rekey-transport workload sparsity", lines)

    benchmark.pedantic(
        lambda: measure(1024, spawn_rng(19)), rounds=1, iterations=1
    )
