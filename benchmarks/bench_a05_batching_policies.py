"""A05 (extension) — batching policies: cost vs vulnerability window.

Periodic batch rekeying (the paper) against immediate rekeying (the
baseline it replaces), threshold batching, and a hybrid — replayed over
a Poisson churn trace with the 2001 signature cost charged per rekey.

Expected: immediate rekeying pays one RSA signing per request with a
zero vulnerability window; periodic batching collapses signatures by
~rate x interval while bounding the window at the interval; thresholds
bound the batch size but not the window; the hybrid bounds both.
"""

import numpy as np

from repro.core.policy import (
    HybridBatching,
    ImmediateRekeying,
    PeriodicBatching,
    ThresholdBatching,
    poisson_trace,
    simulate_policy,
)
from repro.crypto.cost import CostModel
from repro.util import spawn_rng

from _common import FULL, record

RATE = 2.0  # requests / second
DURATION = 600.0 if FULL else 240.0
INTERVAL = 30.0


def test_a05_batching_policies(benchmark):
    rng = spawn_rng(50)
    trace = poisson_trace(RATE, DURATION, rng=rng)
    model = CostModel()
    policies = [
        ("immediate", ImmediateRekeying()),
        ("periodic-30s", PeriodicBatching(INTERVAL)),
        ("threshold-60", ThresholdBatching(60)),
        ("hybrid-30s/60", HybridBatching(INTERVAL, 60)),
    ]

    lines = [
        "Poisson churn %.1f req/s for %.0f s (%d requests):"
        % (RATE, DURATION, len(trace)),
        "",
        "policy          rekeys  mean-batch  sign-seconds  "
        "window mean/max (s)",
    ]
    outcomes = {}
    for name, policy in policies:
        outcome = simulate_policy(policy, trace)
        outcomes[name] = outcome
        lines.append(
            "%-15s %6d %11.1f %13.2f %9.1f / %.1f"
            % (
                name,
                outcome.n_rekeys,
                outcome.mean_batch,
                outcome.signatures() * model.sign_seconds,
                outcome.mean_vulnerability_window,
                outcome.worst_vulnerability_window,
            )
        )

    immediate = outcomes["immediate"]
    periodic = outcomes["periodic-30s"]
    hybrid = outcomes["hybrid-30s/60"]
    assert immediate.mean_vulnerability_window == 0.0
    assert periodic.signatures() < immediate.signatures() / 10
    assert periodic.worst_vulnerability_window <= INTERVAL + 1.5
    assert hybrid.worst_vulnerability_window <= INTERVAL + 1.5
    assert max(hybrid.batch_sizes) <= 60

    lines += [
        "",
        "periodic batching saves %.0fx the signing time for a bounded "
        "%.0f-second exposure — the trade the paper's periodic scheme "
        "makes explicitly."
        % (
            immediate.signatures() / max(periodic.signatures(), 1),
            INTERVAL,
        ),
    ]
    record("a05", "batching policies: cost vs vulnerability window", lines)

    benchmark.pedantic(
        lambda: simulate_policy(PeriodicBatching(INTERVAL), trace),
        rounds=1,
        iterations=1,
    )
