"""E02 — UKA duplication overhead (Fig. 7).

Paper shape: overhead ~0.05-0.16; for fixed L it falls as J grows; it
rises ~linearly with log N and stays below (log_d(N) - 1)/46.
"""

import math

import numpy as np

from repro.keytree import KeyTree, MarkingAlgorithm
from repro.rekey.assignment import UserOrientedKeyAssignment
from repro.util import spawn_rng

from _common import DEGREE, N_SWEEP, N_TRIALS, N_USERS, record


def mean_overhead(n_users, n_joins, n_leaves, rng, trials=N_TRIALS):
    assigner = UserOrientedKeyAssignment()
    algorithm = MarkingAlgorithm(renew_keys=False)
    users = ["u%d" % i for i in range(n_users)]
    values = []
    for _ in range(trials):
        tree = KeyTree.full_balanced(users, DEGREE)
        leave_idx = rng.choice(n_users, size=n_leaves, replace=False)
        batch = algorithm.apply(
            tree,
            joins=["j%d" % i for i in range(n_joins)],
            leaves=[users[i] for i in leave_idx],
        )
        needs = batch.needs_by_user()
        if not needs:
            values.append(0.0)
            continue
        values.append(assigner.assign(needs).duplication_overhead)
    return float(np.mean(values))


def test_e02_duplication_overhead(benchmark):
    rng = spawn_rng(3)
    quarter = N_USERS // 4

    jl_points = {
        (0, quarter): mean_overhead(N_USERS, 0, quarter, rng),
        (quarter, quarter): mean_overhead(N_USERS, quarter, quarter, rng),
        (N_USERS, quarter): mean_overhead(N_USERS, N_USERS, quarter, rng),
        (quarter, 0): mean_overhead(N_USERS, quarter, 0, rng),
    }
    lines = ["duplication overhead at N=%d:" % N_USERS, ""]
    for (j, l), value in jl_points.items():
        lines.append("  J=%5d L=%5d : %.4f" % (j, l, value))

    lines += ["", "duplication overhead vs N (J=0, L=N/4):", ""]
    from repro.analysis.duplication import expected_duplication_overhead

    n_series = {}
    for n in N_SWEEP:
        value = mean_overhead(n, 0, n // 4, rng)
        bound = (math.log(n, DEGREE) - 1) / 46
        model = expected_duplication_overhead(n, DEGREE, n // 4)
        n_series[n] = (value, bound)
        lines.append(
            "  N=%6d : %.4f   (boundary model %.4f; paper bound "
            "(log_d N - 1)/46 = %.4f)" % (n, value, model, bound)
        )

    # Shape assertions.
    assert 0.01 < jl_points[(0, quarter)] < 0.20
    # Larger J dilutes the duplication ratio (denominator grows faster).
    assert jl_points[(N_USERS, quarter)] < jl_points[(0, quarter)]
    # Bound from the paper holds (with slack for trial noise).
    for n, (value, bound) in n_series.items():
        assert value <= bound * 1.3 + 0.01
    # Grows with log N.
    if len(n_series) >= 2:
        ns = sorted(n_series)
        assert n_series[ns[-1]][0] >= n_series[ns[0]][0] * 0.9

    lines += [
        "",
        "paper (Fig 7): overhead 0.05-0.16, decreasing in J, ~linear in "
        "log N, below (log_d N - 1)/46.",
    ]
    record("e02", "UKA duplication overhead", lines)

    benchmark.pedantic(
        lambda: mean_overhead(N_USERS, 0, quarter, spawn_rng(4), trials=1),
        rounds=1,
        iterations=1,
    )
