"""E13 — what proactive parity costs over pure-reactive (Figs. 19-20).

Paper shape: adaptive rho vs a fixed rho = 1 (all parity reactive)
costs almost nothing extra at alpha = 0, < 0.25 extra overhead at
alpha = 20 % (k >= 5), and can even *save* bandwidth at alpha = 1
(reactive needs many rounds, each re-sending the per-round maximum);
the extra grows with N but stays < 0.4 even at N = 16384.
"""

from _common import (
    ALPHAS,
    K_SWEEP,
    N_SWEEP,
    SKIP,
    paper_workload,
    record,
    steady_sequence,
)


def overhead_pair(workload, alpha, seed):
    adaptive = steady_sequence(
        workload, alpha=alpha, rho=1.0, adapt_rho=True, seed=seed
    ).mean_bandwidth_overhead(skip=SKIP)
    reactive = steady_sequence(
        workload, alpha=alpha, rho=1.0, adapt_rho=False, seed=seed + 1
    ).mean_bandwidth_overhead(skip=SKIP)
    return adaptive, reactive


def test_e13_proactive_extra_bandwidth(benchmark):
    lines = ["adaptive rho vs fixed rho=1, by alpha (k=10):", ""]
    extra_by_alpha = {}
    for alpha in ALPHAS:
        workload = paper_workload(seed=5)
        adaptive, reactive = overhead_pair(workload, alpha, 700 + int(alpha * 10))
        extra_by_alpha[alpha] = adaptive - reactive
        lines.append(
            "  alpha=%.1f : adaptive %.2f vs reactive %.2f (extra %+.2f)"
            % (alpha, adaptive, reactive, adaptive - reactive)
        )

    lines += ["", "by group size (alpha=20%, k=10):", ""]
    extra_by_n = {}
    for n in N_SWEEP:
        workload = paper_workload(n_users=n, seed=6)
        adaptive, reactive = overhead_pair(workload, 0.2, 800 + n % 89)
        extra_by_n[n] = adaptive - reactive
        lines.append(
            "  N=%5d : adaptive %.2f vs reactive %.2f (extra %+.2f)"
            % (n, adaptive, reactive, adaptive - reactive)
        )

    # The paper's bounds, with simulation-noise slack.
    assert extra_by_alpha[0.0] < 0.35
    assert extra_by_alpha[0.2] < 0.45
    assert all(extra < 0.6 for extra in extra_by_n.values())

    lines += [
        "",
        "paper (Figs 19-20): extra ~0 at alpha=0; < 0.25 at alpha=20% "
        "(k >= 5); can be negative at alpha=1; < 0.4 up to N=16384.",
    ]
    record("e13", "extra bandwidth of adaptive proactive FEC", lines)

    workload = paper_workload(seed=5)
    benchmark.pedantic(
        lambda: steady_sequence(
            workload, alpha=0.2, n_messages=3, adapt_rho=False, seed=14
        ),
        rounds=1,
        iterations=1,
    )
