"""E21 — user-side decoding is rare (§5.2's processing claim).

Paper: *"although block size k also has direct impact on the users' FEC
decoding time, the impact is small because in our protocol a vast
majority of users can receive their specific ENC packets, and thus do
not have any decoding overhead."*

This bench measures, per loss class and per rho, the fraction of users
that actually run the RSE decoder — everyone else extracts its
encryptions straight from its own packet.
"""

import numpy as np

from _common import ALPHAS, N_TRIALS, paper_workload, record, simulator_for
from repro.transport import FleetConfig

RHOS = (1.0, 1.6, 2.0)


def decode_fraction(workload, alpha, rho, seed):
    config = FleetConfig(rho=rho, adapt_rho=False, multicast_only=True)
    simulator = simulator_for(workload, alpha=alpha, config=config, seed=seed)
    fractions = []
    for index in range(max(N_TRIALS, 4)):
        stats, _ = simulator.run_message(
            workload, rho=rho, message_index=index
        )
        fractions.append(stats.decode_fraction)
    return float(np.mean(fractions))


def test_e21_decode_avoidance(benchmark):
    workload = paper_workload(seed=5)
    lines = [
        "fraction of users that must FEC-decode (vs extracting from "
        "their own packet):",
        "",
        "alpha \\ rho " + "".join("%8.1f" % r for r in RHOS),
    ]
    results = {}
    for alpha in ALPHAS:
        row = []
        for rho in RHOS:
            value = decode_fraction(workload, alpha, rho, 2100 + int(rho * 10))
            results[(alpha, rho)] = value
            row.append(value)
        lines.append(
            "%11.2f " % alpha + "".join("%8.4f" % v for v in row)
        )

    # The paper's claim at its operating point: the vast majority avoid
    # decoding entirely.
    assert results[(0.2, 1.0)] < 0.10
    assert results[(0.0, 1.0)] < 0.05
    # More proactive parity gives loss-hit users codewords to decode
    # with, so the decode fraction *rises* slightly with rho while
    # total latency falls — the decode work moves, it doesn't explode.
    assert results[(0.2, 2.0)] < 0.25

    lines += [
        "",
        "paper (§5.2): a vast majority receive their specific ENC packet "
        "and never touch the decoder; k's effect on user processing is "
        "therefore small.",
    ]
    record("e21", "user-side FEC decoding is the exception", lines)

    benchmark.pedantic(
        lambda: decode_fraction(workload, 0.2, 1.0, 77),
        rounds=1,
        iterations=1,
    )
