"""E19 — the unicast switch-over (§7).

Two claims: (1) USR packets are tiny — at most ~(4 + 22 h) bytes vs
1027-byte multicast packets — so serving the post-round-2 stragglers by
unicast is cheap; (2) capping multicast at two rounds and unicasting the
tail cuts worst-case delivery latency vs multicast-until-done while the
extra unicast bytes stay a trivial fraction of the message.
"""

import numpy as np

from repro.sim import LossParameters, MulticastTopology
from repro.transport import FleetConfig, FleetSimulator
from repro.util import RandomSource

from _common import N_TRIALS, paper_workload, record


def run(workload, multicast_only, seed):
    topology = MulticastTopology(
        workload.n_users,
        params=LossParameters(),
        random_source=RandomSource(seed),
    )
    config = FleetConfig(
        rho=1.0,
        adapt_rho=False,
        multicast_only=multicast_only,
        max_multicast_rounds=2,
    )
    simulator = FleetSimulator(topology, config, seed=seed + 1)
    results = []
    for index in range(max(N_TRIALS, 4)):
        stats, _ = simulator.run_message(workload, message_index=index)
        results.append(stats)
    return results


def test_e19_unicast_switchover(benchmark):
    workload = paper_workload(seed=5)
    multicast_runs = run(workload, multicast_only=True, seed=1900)
    hybrid_runs = run(workload, multicast_only=False, seed=1900)

    mc_rounds = np.mean([s.rounds_for_all_users for s in multicast_runs])
    hy_rounds = np.mean([s.rounds_for_all_users for s in hybrid_runs])
    usr_users = np.mean([s.unicast.users_served for s in hybrid_runs])
    usr_packets = np.mean([s.unicast.usr_packets_sent for s in hybrid_runs])
    usr_bytes = np.mean([s.unicast.usr_bytes_sent for s in hybrid_runs])
    multicast_bytes = np.mean(
        [s.total_multicast_packets for s in hybrid_runs]
    ) * 1027

    lines = [
        "multicast-until-done: rounds for all users = %.2f" % mc_rounds,
        "unicast after 2 rounds: multicast rounds = %.2f, "
        "stragglers unicast = %.1f users" % (hy_rounds, usr_users),
        "",
        "unicast cost: %.1f USR packets, %.0f bytes "
        "(%.3f%% of the %.0f multicast bytes)"
        % (
            usr_packets,
            usr_bytes,
            100 * usr_bytes / multicast_bytes,
            multicast_bytes,
        ),
        "max USR packet size: %d bytes vs %d-byte multicast packets"
        % (int(workload.usr_packet_bytes.max()), 1027),
    ]

    # Claims.  (Unicast-recovered stragglers are accounted as "one round
    # past the last multicast round", so the hybrid's rounds_for_all is
    # at most 3 while its *multicast* phase is capped at 2.)
    assert all(s.n_multicast_rounds <= 2 for s in hybrid_runs)
    assert hy_rounds <= 3.0 + 1e-9
    assert mc_rounds > hy_rounds  # pure multicast drags on longer
    assert usr_bytes < 0.05 * multicast_bytes  # unicast is cheap
    assert workload.usr_packet_bytes.max() < 1027 / 4
    # Only a handful of users need it (paper: ~5 or less at numNACK=20
    # after two rounds; allow headroom at rho = 1 fixed).
    assert usr_users < 0.02 * workload.n_users

    lines += [
        "",
        "paper (§7): switch after <= 2 multicast rounds; USR packets are "
        "<= (3 + 20h) bytes; only a few users remain, so unicast trims "
        "worst-case latency at negligible bandwidth cost.",
    ]
    record("e19", "unicast switch-over: latency vs bandwidth", lines)

    benchmark.pedantic(
        lambda: run(workload, multicast_only=False, seed=77),
        rounds=1,
        iterations=1,
    )
