"""A02 (ablation) — UKA vs sequential packing (§4.3-4.4).

UKA duplicates shared encryptions across packet boundaries (~5-10 %
bandwidth) to guarantee each user one specific packet.  The baseline
packs every encryption exactly once (zero duplication) but leaves a
fraction of users needing 2+ specific packets.

This bench plays one round of the paper's default multicast (rho = 1,
no parity) against both packings and measures direct round-one recovery
(receiving *all* of one's specific packets, before any FEC), the
quantity the packing choice controls.

Expected: sequential saves the duplication bytes but multiplies the
round-one failure rate of boundary users; UKA's failure rate equals the
single-packet loss rate for everyone.
"""

import numpy as np

from repro.keytree import KeyTree, MarkingAlgorithm
from repro.rekey.assignment import (
    SequentialKeyAssignment,
    UserOrientedKeyAssignment,
)
from repro.util import spawn_rng

from _common import DEGREE, N_TRIALS, N_USERS, record, topology_for


class _Shim:
    """Just enough of a workload for topology_for()."""

    def __init__(self, n_users):
        self.n_users = n_users


def build_needs(seed):
    rng = spawn_rng(seed)
    users = ["u%d" % i for i in range(N_USERS)]
    tree = KeyTree.full_balanced(users, DEGREE)
    leave_idx = rng.choice(N_USERS, size=N_USERS // 4, replace=False)
    batch = MarkingAlgorithm(renew_keys=False).apply(
        tree, leaves=[users[i] for i in leave_idx]
    )
    return batch


def direct_recovery(needed_packets, n_packets, topology, seed, trials):
    """Fraction of users receiving every one of their specific packets."""
    rng = spawn_rng(seed)
    fractions = []
    interval = 0.1
    for _ in range(trials):
        times = np.arange(n_packets) * interval
        received = topology.multicast_reception(times, rng=rng)
        rows = rng.permutation(len(needed_packets))
        got_all = np.fromiter(
            (
                received[rows[i], packets].all()
                for i, packets in enumerate(needed_packets)
            ),
            dtype=bool,
        )
        fractions.append(got_all.mean())
    return float(np.mean(fractions))


def test_a02_uka_vs_sequential(benchmark):
    batch = build_needs(5)
    needs = batch.needs_by_user()
    user_ids = sorted(needs)

    uka = UserOrientedKeyAssignment().assign(needs)
    uka_packets = {
        uid: [plan.index]
        for plan in uka.plans
        for uid in plan.user_ids
    }
    ordered_ids = [e.child_id for e in batch.subtree.edges]
    sequential = SequentialKeyAssignment().assign(ordered_ids)
    seq_packets = {
        uid: sequential.packets_for_user(needs[uid]) for uid in user_ids
    }

    multi = sum(1 for p in seq_packets.values() if len(p) > 1)
    lines = [
        "packing comparison (N=%d, J=0, L=N/4):" % N_USERS,
        "",
        "                      UKA     sequential",
        "packets           %7d %12d" % (uka.n_packets, sequential.n_packets),
        "stored encryptions%7d %12d"
        % (uka.n_stored_encryptions, sequential.n_stored_encryptions),
        "duplication       %6.1f%% %11.1f%%"
        % (100 * uka.duplication_overhead, 0.0),
        "users needing 2+ packets:  0 vs %d (%.1f%%)"
        % (multi, 100 * multi / len(user_ids)),
    ]

    topology = topology_for(_Shim(len(user_ids)), alpha=0.2, seed=11)
    trials = max(N_TRIALS, 4)
    uka_frac = direct_recovery(
        [uka_packets[uid] for uid in user_ids],
        uka.n_packets,
        topology,
        seed=21,
        trials=trials,
    )
    seq_frac = direct_recovery(
        [seq_packets[uid] for uid in user_ids],
        sequential.n_packets,
        topology,
        seed=21,
        trials=trials,
    )
    lines += [
        "",
        "direct round-1 recovery (rho=1, no FEC):",
        "  UKA        : %.4f" % uka_frac,
        "  sequential : %.4f" % seq_frac,
    ]

    # UKA buys strictly better direct recovery for a small duplication
    # cost; sequential stores fewer encryptions.
    assert sequential.n_stored_encryptions < uka.n_stored_encryptions
    assert multi > 0
    assert uka_frac > seq_frac

    lines += [
        "",
        "paper (§4.4): UKA 'significantly increases the probability for "
        "a user to receive its encryptions in a single round ... at an "
        "expense of sending duplicate encryptions'.",
    ]
    record("a02", "ablation: UKA vs sequential key assignment", lines)

    benchmark.pedantic(
        lambda: UserOrientedKeyAssignment().assign(needs),
        rounds=1,
        iterations=1,
    )
