"""A03 (extension) — group/key/user-oriented rekeying strategies.

The paper builds on Wong-Gouda-Lam key trees and adopts group-oriented
rekeying (one shared message) with UKA repairing its per-user cost.
This bench quantifies the choice on the paper's own workload: server
encryption work, messages (= signatures), and the worst user's receive
profile under each strategy.
"""

import numpy as np

from repro.keytree import KeyTree, MarkingAlgorithm
from repro.keytree.strategies import compare_strategies
from repro.util import spawn_rng

from _common import DEGREE, N_USERS, record


def test_a03_rekeying_strategies(benchmark):
    rng = spawn_rng(30)
    users = ["u%d" % i for i in range(N_USERS)]
    tree = KeyTree.full_balanced(users, DEGREE)
    leave_idx = rng.choice(N_USERS, size=N_USERS // 4, replace=False)
    batch = MarkingAlgorithm(renew_keys=False).apply(
        tree, leaves=[users[i] for i in leave_idx]
    )

    costs = compare_strategies(batch)
    by_name = {c.name: c for c in costs}

    lines = [
        "N=%d, d=%d, J=0, L=N/4:" % (N_USERS, DEGREE),
        "",
        "strategy        server-enc  messages(=signs)  "
        "user-enc(max)  user-msgs(max)",
    ]
    for cost in costs:
        lines.append(
            "%-15s %10d %17d %14d %15d"
            % (
                cost.name,
                cost.server_encryptions,
                cost.server_messages,
                cost.max_user_encryptions,
                cost.max_user_messages,
            )
        )

    group = by_name["group-oriented"]
    key = by_name["key-oriented"]
    user = by_name["user-oriented"]
    # The WGL trade-off, on a batch workload:
    assert group.server_encryptions == key.server_encryptions
    assert user.server_encryptions > group.server_encryptions
    assert group.server_messages == 1
    assert key.server_messages == batch.subtree.n_updated_keys
    assert user.max_user_messages == 1
    assert key.max_user_messages > 1

    lines += [
        "",
        "user-oriented pays %.1fx the encryption work; key-oriented "
        "pays %d signatures and makes users gather %d messages."
        % (
            user.server_encryptions / group.server_encryptions,
            key.server_messages,
            key.max_user_messages,
        ),
        "group-oriented + UKA keeps server work minimal, one signature, "
        "and one packet per user — the paper's choice.",
    ]
    record("a03", "rekeying strategies: group vs key vs user oriented", lines)

    benchmark.pedantic(
        lambda: compare_strategies(batch), rounds=1, iterations=1
    )
