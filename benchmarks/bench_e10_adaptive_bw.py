"""E10 — bandwidth overhead vs block size under adaptive rho (Fig. 16).

Paper shape: very high overhead at k = 1 (rho can only rise in whole
packets per block, which at k = 1 doubles round-one traffic at the first
step); flat from k >= 5; a bump at k = 50 from last-block duplicates.
Across group sizes the trend repeats, noisier for small N where the
message has few packets.
"""

from _common import (
    ALPHAS,
    K_SWEEP,
    N_SWEEP,
    SKIP,
    paper_workload,
    record,
    steady_sequence,
)


def test_e10_adaptive_bandwidth(benchmark):
    overheads = {}
    lines = ["mean server bandwidth overhead, adaptive rho (numNACK=20):", ""]
    header = "alpha \\ k " + "".join("%8d" % k for k in K_SWEEP)
    lines.append(header)
    for alpha in ALPHAS:
        row = []
        for k in K_SWEEP:
            workload = paper_workload(k=k, seed=5)
            sequence = steady_sequence(
                workload, alpha=alpha, rho=1.0, seed=300 + k
            )
            overheads[(alpha, k)] = sequence.mean_bandwidth_overhead(
                skip=SKIP
            )
            row.append(overheads[(alpha, k)])
        lines.append(
            "%9.2f " % alpha + "".join("%8.2f" % v for v in row)
        )

    lines += ["", "by group size (alpha=20%):", ""]
    lines.append("    N \\ k " + "".join("%8d" % k for k in K_SWEEP))
    n_over = {}
    for n in N_SWEEP:
        row = []
        for k in K_SWEEP:
            workload = paper_workload(n_users=n, k=k, seed=6)
            sequence = steady_sequence(
                workload, alpha=0.2, rho=1.0, seed=400 + k + n % 97
            )
            n_over[(n, k)] = sequence.mean_bandwidth_overhead(skip=SKIP)
            row.append(n_over[(n, k)])
        lines.append("%9d " % n + "".join("%8.2f" % v for v in row))

    # Shape: k = 1 much worse than the plateau at alpha = 20 %.
    assert overheads[(0.2, 1)] > overheads[(0.2, 10)] * 1.3
    plateau = [overheads[(0.2, k)] for k in K_SWEEP if 5 <= k <= 30]
    assert max(plateau) - min(plateau) < 0.8

    lines += [
        "",
        "paper (Fig 16): k=1 pays the coarse-granularity penalty; "
        "k >= 5 flat; k=50 bumped by duplicates; N=1024 noisier.",
    ]
    record("e10", "adaptive-rho bandwidth overhead vs block size", lines)

    workload = paper_workload(k=10, seed=5)
    benchmark.pedantic(
        lambda: steady_sequence(workload, alpha=0.2, n_messages=3, seed=8),
        rounds=1,
        iterations=1,
    )
