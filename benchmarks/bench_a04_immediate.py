"""A04 (extension) — immediate feedback vs round-based delivery.

Appendix A of the companion text sketches the asynchronous variant
(NACK on loss detection, repair on NACK receipt, duplicate suppression
by max-received sequence).  This bench plays both against the same
workload and loss environment and compares wall-clock delivery latency
and packets sent.

Expected: similar packet budgets, but the immediate variant serves
stragglers in ~an RTT instead of a full round, collapsing worst-case
latency — the same motivation as the protocol's early unicast, achieved
without leaving multicast.
"""

import numpy as np

from repro.sim import LossParameters, MulticastTopology
from repro.transport import FleetConfig, FleetSimulator
from repro.transport.fleet import make_paper_workload
from repro.transport.immediate import (
    ImmediateConfig,
    ImmediateFeedbackSession,
)
from repro.util import RandomSource

from _common import FULL, record

N_USERS = 1024 if FULL else 512
TRIALS = 5 if FULL else 3
ROUND_GAP_MS = 500.0


def run_round_based(workload, seed):
    topology = MulticastTopology(
        workload.n_users,
        params=LossParameters(),
        random_source=RandomSource(seed),
    )
    simulator = FleetSimulator(
        topology,
        FleetConfig(
            rho=1.0,
            adapt_rho=False,
            multicast_only=True,
            round_gap_ms=ROUND_GAP_MS,
        ),
        seed=seed + 1,
    )
    worst, packets = [], []
    round_seconds = workload.n_blocks * workload.k * 0.1 + ROUND_GAP_MS * 1e-3
    for index in range(TRIALS):
        stats, _ = simulator.run_message(workload, message_index=index)
        # Wall-clock proxy: a user finishing in round r waited ~r rounds.
        worst.append(stats.rounds_for_all_users * round_seconds)
        packets.append(stats.total_multicast_packets)
    return float(np.mean(worst)), float(np.mean(packets))


def run_immediate(workload, seed):
    worst, mean, packets = [], [], []
    for index in range(TRIALS):
        topology = MulticastTopology(
            workload.n_users,
            params=LossParameters(),
            random_source=RandomSource(seed + index),
        )
        session = ImmediateFeedbackSession(
            workload,
            topology,
            ImmediateConfig(rho=1.0),
            rng=np.random.default_rng(seed + index),
        )
        stats = session.run()
        worst.append(stats.worst_completion)
        mean.append(stats.mean_completion)
        packets.append(stats.packets_sent)
    return float(np.mean(worst)), float(np.mean(mean)), float(np.mean(packets))


def test_a04_immediate_vs_round_based(benchmark):
    workload = make_paper_workload(n_users=N_USERS, k=10, seed=1)
    rb_worst, rb_packets = run_round_based(workload, 4000)
    im_worst, im_mean, im_packets = run_immediate(workload, 4100)

    lines = [
        "N=%d active users, rho=1, alpha=20%%, 100 ms sending interval:"
        % workload.n_users,
        "",
        "                      worst-case latency   packets multicast",
        "round-based           %12.2f s %17.0f" % (rb_worst, rb_packets),
        "immediate feedback    %12.2f s %17.0f" % (im_worst, im_packets),
        "",
        "immediate mean completion: %.2f s" % im_mean,
        "latency reduction: %.1fx" % (rb_worst / max(im_worst, 1e-9)),
    ]

    # Immediate feedback collapses the straggler tail...
    assert im_worst < rb_worst
    # ...at a bounded repair-traffic premium: reacting per-NACK loses
    # the round boundary's max-aggregation, so some repairs duplicate.
    assert im_packets < rb_packets * 3.0
    lines.append(
        "repair-traffic premium: %.2fx packets (aggregation lost)"
        % (im_packets / rb_packets)
    )

    lines += [
        "",
        "paper (Appendix A): NACK-on-detection + repair-on-NACK with "
        "max-seq duplicate suppression is a feasible alternative to "
        "round-based operation.",
    ]
    record("a04", "immediate feedback vs round-based delivery", lines)

    benchmark.pedantic(
        lambda: run_immediate(workload, 99), rounds=1, iterations=1
    )
