"""E08 — NACK control across target values (Fig. 14).

Paper shape: the first-round NACK count tracks the target for
numNACK in {0, 5, 10, 40, 100}, with fluctuations growing as the
target grows.
"""

import numpy as np

from _common import SKIP, paper_workload, record, steady_sequence

TARGETS = (0, 5, 10, 40, 100)


def test_e08_numnack_sweep(benchmark):
    workload = paper_workload(seed=5)
    lines = ["first-round NACKs per message (alpha=20%, rho0=1):", ""]
    steady = {}
    spread = {}
    for target in TARGETS:
        sequence = steady_sequence(
            workload,
            alpha=0.2,
            rho=1.0,
            num_nack=target,
            seed=100 + target,
        )
        nacks = sequence.first_round_nacks()
        steady[target] = float(np.mean(nacks[SKIP:]))
        spread[target] = float(np.std(nacks[SKIP:]))
        lines.append(
            "numNACK=%3d : " % target
            + " ".join("%4d" % n for n in nacks)
        )

    lines += ["", "steady state:"]
    for target in TARGETS:
        lines.append(
            "  numNACK=%3d -> %.1f +- %.1f" % (target, steady[target], spread[target])
        )

    # Tracks the target: steady mean ordered with the target and within
    # a sensible band around it.
    assert steady[0] <= steady[40] <= steady[100] * 3
    assert steady[100] > steady[5]
    assert steady[5] < 30
    assert 10 <= steady[100] <= 220
    # Fluctuations grow with the target.
    assert spread[100] > spread[5]

    lines += [
        "",
        "paper (Fig 14): NACKs fluctuate around each target; larger "
        "targets fluctuate more.",
    ]
    record("e08", "NACK control across numNACK targets", lines)

    benchmark.pedantic(
        lambda: steady_sequence(
            workload, alpha=0.2, num_nack=20, n_messages=3, seed=4
        ),
        rounds=1,
        iterations=1,
    )
