"""E15 — expected encryption count: closed form vs marking algorithm.

[SIGCOMM] The target paper's batch-rekeying analysis: the expected
number of encryptions in a rekey message as a function of the number of
departures L, with the hypergeometric closed form validated against the
real marking algorithm.  Shape: rises with L, peaks near L = N/d, falls
to zero at L = N (everything pruned); scales ~linearly with N.
"""

import numpy as np

from repro.analysis import (
    expected_encryptions_joins_equal_leaves,
    expected_encryptions_leaves_only,
    expected_updated_knodes_leaves_only,
    simulate_batch,
)
from repro.util import spawn_rng

from _common import DEGREE, FULL, N_TRIALS, record

N_MAIN = 4096
L_GRID = (
    (64, 256, 1024, 2048, 3072, 4000)
    if FULL
    else (64, 1024, 2048, 4000)
)


def test_e15_encryption_count(benchmark):
    rng = spawn_rng(15)
    lines = [
        "N = %d, d = %d, J = 0 (leaves only):" % (N_MAIN, DEGREE),
        "",
        "     L    analytic   simulated    updated-keys (analytic/sim)",
    ]
    errors = []
    for n_leaves in L_GRID:
        analytic = expected_encryptions_leaves_only(N_MAIN, DEGREE, n_leaves)
        sim = simulate_batch(
            N_MAIN, DEGREE, 0, n_leaves, n_trials=N_TRIALS, rng=rng
        )
        simulated = sim["encryptions"].mean()
        upd_analytic = expected_updated_knodes_leaves_only(
            N_MAIN, DEGREE, n_leaves
        )
        upd_sim = sim["updated_knodes"].mean()
        errors.append(abs(analytic - simulated) / max(simulated, 1))
        lines.append(
            "%6d %11.1f %11.1f      %9.1f / %9.1f"
            % (n_leaves, analytic, simulated, upd_analytic, upd_sim)
        )

    # J = L batches for the replacement case.
    lines += ["", "J = L batches:", "", "     B    analytic   simulated"]
    for batch_size in (256, 1024):
        analytic = expected_encryptions_joins_equal_leaves(
            N_MAIN, DEGREE, batch_size
        )
        simulated = simulate_batch(
            N_MAIN, DEGREE, batch_size, batch_size, n_trials=N_TRIALS, rng=rng
        )["encryptions"].mean()
        errors.append(abs(analytic - simulated) / max(simulated, 1))
        lines.append("%6d %11.1f %11.1f" % (batch_size, analytic, simulated))

    # Closed form within a few percent of the real algorithm everywhere.
    assert max(errors) < 0.05

    # Peak near L = N/d.
    peak_zone = expected_encryptions_leaves_only(N_MAIN, DEGREE, N_MAIN // 4)
    assert peak_zone > expected_encryptions_leaves_only(N_MAIN, DEGREE, 64)
    assert peak_zone > expected_encryptions_leaves_only(N_MAIN, DEGREE, 4000)

    lines += [
        "",
        "max |analytic - simulated| / simulated = %.3f" % max(errors),
        "shape: rises with L, peaks near N/d = %d, collapses as pruning "
        "takes over." % (N_MAIN // DEGREE),
    ]
    record("e15", "rekey-subtree size: closed form vs simulation", lines)

    benchmark.pedantic(
        lambda: expected_encryptions_leaves_only(N_MAIN, DEGREE, 1024),
        rounds=3,
        iterations=10,
    )
