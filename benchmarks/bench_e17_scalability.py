"""E17 — key-server processing time and maximum group size.

[SIGCOMM] The scalability analysis: per-interval processing time as a
function of group size (25 % churn, replaced), and the largest group a
single server sustains for a range of rekey intervals.  Shape: time is
~linear in N (the subtree size is); capacity therefore grows ~linearly
with the interval, comfortably exceeding 10^5 users at minute-scale
intervals with 2001 constants.
"""

from repro.analysis import (
    max_supported_group_size,
    processing_seconds_per_interval,
)

from _common import DEGREE, record

HEIGHTS = range(4, 11)
INTERVALS = (1, 10, 30, 60, 300, 600)


def test_e17_scalability(benchmark):
    lines = [
        "processing seconds per interval (d=%d, 25%% churn, J=L):" % DEGREE,
        "",
        "        N    seconds",
    ]
    seconds_by_n = {}
    for height in HEIGHTS:
        n_users = DEGREE**height
        seconds = processing_seconds_per_interval(n_users, DEGREE, 0.25)
        seconds_by_n[n_users] = seconds
        lines.append("%9d %10.3f" % (n_users, seconds))

    lines += ["", "max supportable group size vs rekey interval:", ""]
    lines.append("interval    max N")
    capacity = {}
    for interval in INTERVALS:
        capacity[interval] = max_supported_group_size(
            interval, degree=DEGREE, leave_fraction=0.25
        )
        lines.append("%7ds %10d" % (interval, capacity[interval]))

    # ~Linear in N: quadrupling N about quadruples the time (well past
    # the signature floor).
    ratio = seconds_by_n[DEGREE**10] / seconds_by_n[DEGREE**8]
    assert 8 < ratio < 32
    # Capacity is monotone in the interval and large at minute scale.
    assert capacity[600] >= capacity[60] >= capacity[1]
    assert capacity[60] >= 10**5

    lines += [
        "",
        "paper: processing ~linear in N; a single server sustains groups "
        "well beyond 10^5 users at minute-scale rekey intervals.",
    ]
    record("e17", "server processing time & group-size capacity", lines)

    benchmark.pedantic(
        lambda: max_supported_group_size(60.0, degree=DEGREE),
        rounds=3,
        iterations=5,
    )
