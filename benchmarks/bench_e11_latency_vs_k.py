"""E11 — delivery latency vs block size (Fig. 17).

Paper shape: neither the rounds-for-all-users metric nor the average
rounds per user moves much with k; the per-user average sits close to 1
(the single-packet-per-user guarantee doing its work).
"""

import numpy as np

from _common import (
    ALPHAS,
    K_SWEEP,
    SKIP,
    paper_workload,
    record,
    steady_sequence,
)


def test_e11_latency_vs_block_size(benchmark):
    rounds_all = {}
    rounds_user = {}
    for alpha in ALPHAS:
        for k in K_SWEEP:
            workload = paper_workload(k=k, seed=5)
            sequence = steady_sequence(
                workload, alpha=alpha, rho=1.0, seed=500 + k
            )
            rounds_all[(alpha, k)] = sequence.mean_rounds_for_all(skip=SKIP)
            rounds_user[(alpha, k)] = sequence.mean_rounds_per_user(
                skip=SKIP
            )

    header = "alpha \\ k " + "".join("%8d" % k for k in K_SWEEP)
    lines = ["average # rounds for all users (adaptive rho):", "", header]
    for alpha in ALPHAS:
        lines.append(
            "%9.2f " % alpha
            + "".join("%8.2f" % rounds_all[(alpha, k)] for k in K_SWEEP)
        )
    lines += ["", "average # rounds needed by a user:", "", header]
    for alpha in ALPHAS:
        lines.append(
            "%9.2f " % alpha
            + "".join("%8.3f" % rounds_user[(alpha, k)] for k in K_SWEEP)
        )

    # Per-user latency ~1 and flat in k at the paper's alpha.
    user_series = [rounds_user[(0.2, k)] for k in K_SWEEP]
    assert all(value < 1.2 for value in user_series)
    assert max(user_series) - min(user_series) < 0.15

    lines += [
        "",
        "paper (Fig 17): block size has no noticeable effect on delivery "
        "latency; per-user average is close to 1 round.",
    ]
    record("e11", "delivery latency vs block size", lines)

    workload = paper_workload(k=10, seed=5)
    benchmark.pedantic(
        lambda: steady_sequence(workload, alpha=0.2, n_messages=3, seed=10),
        rounds=1,
        iterations=1,
    )
