"""E05 — distribution of recovery rounds and overhead vs rho (Fig. 10).

Paper numbers (alpha = 20 %, k = 10): at rho = 1, >= 94.4 % of users
recover within one round; 99.89 % at rho = 1.6; 99.99 % at rho = 2.
Server bandwidth overhead is ~flat in rho until the proactive parity
dominates, then grows ~linearly.
"""

import numpy as np

from _common import (
    K_DEFAULT,
    N_TRIALS,
    mean_over_messages,
    paper_workload,
    record,
)

RHOS_DIST = (1.0, 1.6, 2.0)
RHOS_BW = (1.0, 1.5, 2.0, 2.5, 3.0)
PAPER_FRACTIONS = {1.0: 0.944, 1.6: 0.9989, 2.0: 0.9999}


def test_e05_round_distribution(benchmark):
    workload = paper_workload(k=K_DEFAULT, seed=5)
    lines = [
        "fraction of users recovering in round r (alpha=20%):",
        "",
        "rho    round1     round2     round3+   | paper round1",
    ]
    measured = {}
    for rho in RHOS_DIST:
        metrics = mean_over_messages(
            workload, alpha=0.2, rho=rho, n_messages=max(N_TRIALS, 4),
            seed=int(rho * 10),
        )
        histogram = metrics["round_histogram"].astype(float)
        total = histogram.sum()
        r1 = histogram[1] / total
        r2 = histogram[2] / total if histogram.size > 2 else 0.0
        rest = 1.0 - r1 - r2
        measured[rho] = r1
        lines.append(
            "%.1f   %8.5f  %9.6f  %9.6f  | %.4f"
            % (rho, r1, r2, max(rest, 0.0), PAPER_FRACTIONS[rho])
        )

    lines += ["", "server bandwidth overhead vs rho:", ""]
    overheads = {}
    for rho in RHOS_BW:
        overheads[rho] = mean_over_messages(
            workload, alpha=0.2, rho=rho, seed=int(rho * 100)
        )["overhead"]
        lines.append("rho=%.1f : %.2f" % (rho, overheads[rho]))

    # Paper-number assertions.
    assert measured[1.0] > 0.93
    assert measured[1.6] > 0.995
    assert measured[2.0] > 0.999
    # Overhead eventually grows ~linearly with rho.
    assert overheads[3.0] > overheads[1.5]
    growth = overheads[3.0] - overheads[2.0]
    assert 0.3 < growth < 1.8  # ~k parity packets per block per +1 rho

    lines += [
        "",
        "paper (Fig 10): 94.4%% / 99.89%% / 99.99%% recover in round one "
        "at rho = 1 / 1.6 / 2; overhead flat then linear in rho.",
    ]
    record("e05", "recovery-round distribution & overhead vs rho", lines)

    benchmark.pedantic(
        lambda: mean_over_messages(
            workload, alpha=0.2, rho=1.0, n_messages=1, seed=2
        ),
        rounds=1,
        iterations=1,
    )
