"""E12 — the cost of the NACK target (Fig. 18).

Paper shape: average rounds per user grows with numNACK but very slowly
(most users finish in round one regardless); bandwidth overhead is
highest at numNACK = 0 (can reach ~2.3 for alpha > 0) and flattens for
numNACK >= 5 — so maxNACK should be at least 5.
"""

from _common import (
    ALPHAS,
    SKIP,
    paper_workload,
    record,
    steady_sequence,
)

TARGETS = (0, 5, 10, 20, 40, 100)


def test_e12_numnack_cost(benchmark):
    workload = paper_workload(seed=5)
    rounds_user = {}
    overhead = {}
    for alpha in ALPHAS:
        for target in TARGETS:
            sequence = steady_sequence(
                workload,
                alpha=alpha,
                rho=1.0,
                num_nack=target,
                seed=600 + target + int(alpha * 10),
            )
            rounds_user[(alpha, target)] = sequence.mean_rounds_per_user(
                skip=SKIP
            )
            overhead[(alpha, target)] = sequence.mean_bandwidth_overhead(
                skip=SKIP
            )

    header = "alpha \\ nN " + "".join("%8d" % t for t in TARGETS)
    lines = ["average # rounds needed by a user vs numNACK:", "", header]
    for alpha in ALPHAS:
        lines.append(
            "%10.2f " % alpha
            + "".join("%8.3f" % rounds_user[(alpha, t)] for t in TARGETS)
        )
    lines += ["", "average server bandwidth overhead vs numNACK:", "", header]
    for alpha in ALPHAS:
        lines.append(
            "%10.2f " % alpha
            + "".join("%8.2f" % overhead[(alpha, t)] for t in TARGETS)
        )

    # Latency creeps up slowly with the target.
    assert rounds_user[(0.2, 100)] >= rounds_user[(0.2, 0)] - 0.01
    assert rounds_user[(0.2, 100)] < 1.15
    # Overhead: numNACK = 0 is the expensive corner; >= 5 flat-ish.
    assert overhead[(0.2, 0)] >= overhead[(0.2, 20)] - 0.05
    flat = [overhead[(0.2, t)] for t in TARGETS if t >= 5]
    assert max(flat) - min(flat) < 0.6

    lines += [
        "",
        "paper (Fig 18): per-user rounds grow ~linearly but very slowly "
        "in numNACK; overhead can hit ~2.3 at numNACK=0, flat for >= 5.",
    ]
    record("e12", "latency / overhead vs the NACK target", lines)

    benchmark.pedantic(
        lambda: steady_sequence(
            workload, alpha=0.2, num_nack=20, n_messages=3, seed=12
        ),
        rounds=1,
        iterations=1,
    )
