"""Shared infrastructure for the figure/table benchmarks.

Every bench module regenerates one experiment from DESIGN.md's index,
prints the series it produces next to the paper's reported
numbers/shape, and writes the same table to ``benchmarks/results/``.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:

- ``quick`` (default): paper-sized groups but fewer repetitions/sweep
  points — the whole suite finishes in a few minutes;
- ``full``: the paper's full sweeps (N up to 16384, 26-message
  sequences, denser grids).

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to watch
the tables stream by, or read them from ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.sim import LossParameters, MulticastTopology
from repro.transport import FleetConfig, FleetSimulator
from repro.transport.fleet import make_paper_workload
from repro.util import RandomSource

RESULTS_DIR = Path(__file__).parent / "results"

FULL = os.environ.get("REPRO_BENCH_SCALE", "quick").lower() == "full"

#: Paper-default group for the transport experiments.
N_USERS = 4096
DEGREE = 4
K_DEFAULT = 10
NUM_NACK_DEFAULT = 20

#: Sequence lengths / trial counts by scale.
N_MESSAGES = 26 if FULL else 12
N_TRIALS = 10 if FULL else 3
SKIP = 5 if FULL else 3  # warm-up messages excluded from steady-state means

ALPHAS = (0.0, 0.2, 0.4, 1.0) if FULL else (0.0, 0.2, 1.0)
N_SWEEP = (1024, 4096, 8192, 16384) if FULL else (1024, 4096)
K_SWEEP = (1, 5, 10, 20, 30, 50) if FULL else (1, 5, 10, 30, 50)


def record(experiment_id, title, lines):
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    header = "%s — %s" % (experiment_id.upper(), title)
    body = [header, "=" * len(header)] + list(lines)
    text = "\n".join(body) + "\n"
    print("\n" + text)
    path = RESULTS_DIR / ("%s.txt" % experiment_id.lower())
    path.write_text(text)
    return path


def paper_workload(n_users=N_USERS, k=K_DEFAULT, n_joins=0, n_leaves=None, seed=0):
    """The paper's default workload (J = 0, L = N/d unless overridden)."""
    return make_paper_workload(
        n_users=n_users,
        degree=DEGREE,
        n_joins=n_joins,
        n_leaves=n_leaves,
        k=k,
        seed=seed,
    )


def topology_for(workload, alpha=0.20, seed=0, bursty=True, p_source=0.01):
    params = LossParameters(alpha=alpha, bursty=bursty, p_source=p_source)
    return MulticastTopology(
        workload.n_users, params=params, random_source=RandomSource(seed)
    )


def simulator_for(workload, alpha=0.20, config=None, seed=0, **topo_kwargs):
    topology = topology_for(workload, alpha=alpha, seed=seed, **topo_kwargs)
    return FleetSimulator(topology, config or FleetConfig(), seed=seed + 1)


def steady_sequence(
    workload,
    alpha=0.20,
    rho=1.0,
    num_nack=NUM_NACK_DEFAULT,
    adapt_rho=True,
    multicast_only=True,
    n_messages=None,
    seed=0,
    **config_kwargs,
):
    """Run an adaptive sequence and return its SequenceStats."""
    config = FleetConfig(
        rho=rho,
        num_nack=num_nack,
        adapt_rho=adapt_rho,
        multicast_only=multicast_only,
        **config_kwargs,
    )
    simulator = simulator_for(workload, alpha=alpha, config=config, seed=seed)
    return simulator.run_sequence(
        lambda i: workload, n_messages or N_MESSAGES
    )


def mean_over_messages(workload, alpha, rho, n_messages=None, seed=0,
                       multicast_only=True, **config_kwargs):
    """Fixed-rho mean metrics over a few independent messages.

    Returns dict with mean first-round NACKs, rounds-for-all, per-user
    rounds, and bandwidth overhead.
    """
    config = FleetConfig(
        rho=rho,
        adapt_rho=False,
        multicast_only=multicast_only,
        **config_kwargs,
    )
    simulator = simulator_for(workload, alpha=alpha, config=config, seed=seed)
    nacks, rounds_all, rounds_user, overhead = [], [], [], []
    fractions = []
    for index in range(n_messages or N_TRIALS):
        stats, _ = simulator.run_message(
            workload, rho=rho, message_index=index
        )
        nacks.append(stats.first_round_nacks)
        rounds_all.append(stats.rounds_for_all_users)
        rounds_user.append(stats.mean_rounds_per_user)
        overhead.append(stats.bandwidth_overhead)
        fractions.append(np.bincount(stats.user_rounds, minlength=10))
    return {
        "nacks": float(np.mean(nacks)),
        "rounds_all": float(np.mean(rounds_all)),
        "rounds_user": float(np.mean(rounds_user)),
        "overhead": float(np.mean(overhead)),
        "round_histogram": np.sum(fractions, axis=0),
    }
