"""E01 — rekey message size: average # ENC packets (Fig. 6).

Paper shape: for fixed L the packet count grows ~linearly with J; for
fixed J it rises with L, peaks near L = N/d, then falls (pruning);
for the three canonical (J, L) mixes it grows ~linearly with N.
"""

import numpy as np

from repro.keytree import KeyTree, MarkingAlgorithm
from repro.rekey.assignment import UserOrientedKeyAssignment
from repro.util import spawn_rng

from _common import DEGREE, FULL, N_SWEEP, N_TRIALS, N_USERS, record


def mean_packets(n_users, n_joins, n_leaves, rng, trials=N_TRIALS):
    assigner = UserOrientedKeyAssignment()
    algorithm = MarkingAlgorithm(renew_keys=False)
    users = ["u%d" % i for i in range(n_users)]
    counts = []
    for _ in range(trials):
        tree = KeyTree.full_balanced(users, DEGREE)
        leave_idx = rng.choice(n_users, size=n_leaves, replace=False)
        batch = algorithm.apply(
            tree,
            joins=["j%d" % i for i in range(n_joins)],
            leaves=[users[i] for i in leave_idx],
        )
        needs = batch.needs_by_user()
        counts.append(assigner.assign(needs).n_packets if needs else 0)
    return float(np.mean(counts))


def sweep_jl(rng):
    quarters = (0, N_USERS // 8, N_USERS // 4, N_USERS // 2)
    # The full grid extends the quick one (assertions index into it).
    grid = quarters if not FULL else quarters + (
        3 * N_USERS // 4,
        N_USERS,
    )
    lines = ["J \\ L " + "".join("%8d" % l for l in grid)]
    surface = {}
    for n_joins in grid:
        row = []
        for n_leaves in grid:
            value = mean_packets(N_USERS, n_joins, n_leaves, rng)
            surface[(n_joins, n_leaves)] = value
            row.append(value)
        lines.append("%6d" % n_joins + "".join("%8.1f" % v for v in row))
    return lines, surface, grid


def sweep_n(rng):
    lines = ["     N   J=0,L=N/4   J=N/4,L=N/4   J=N/4,L=0"]
    series = {}
    for n in N_SWEEP:
        a = mean_packets(n, 0, n // 4, rng)
        b = mean_packets(n, n // 4, n // 4, rng)
        c = mean_packets(n, n // 4, 0, rng)
        series[n] = (a, b, c)
        lines.append("%6d %11.1f %13.1f %11.1f" % (n, a, b, c))
    return lines, series


def test_e01_enc_packets(benchmark):
    rng = spawn_rng(1)
    jl_lines, surface, grid = sweep_jl(rng)
    n_lines, series = sweep_n(rng)

    # Paper-shape assertions.
    quarter = N_USERS // 4
    half = N_USERS // 2
    # Rises to L = N/4 then falls toward L = N/2 (J = 0 column).
    assert surface[(0, quarter)] > surface[(0, N_USERS // 8)]
    assert surface[(0, quarter)] >= surface[(0, half)] * 0.9
    # Grows with J at fixed L.
    assert surface[(half, quarter)] > surface[(N_USERS // 8, quarter)]
    # ~Linear in N for J=0, L=N/4: quadrupling N ~quadruples packets.
    ratio = series[4096][0] / series[1024][0]
    assert 3.0 < ratio < 5.0

    lines = (
        ["average # ENC packets vs (J, L), N=%d:" % N_USERS, ""]
        + jl_lines
        + ["", "average # ENC packets vs N:", ""]
        + n_lines
        + [
            "",
            "paper (Fig 6): grows ~linearly in J; peaks near L=N/d; "
            "~linear in N.",
            "measured: N-ratio (4096/1024, J=0 L=N/4) = %.2f "
            "(paper shape: ~4)" % ratio,
        ]
    )
    record("e01", "average # ENC packets per rekey message", lines)

    benchmark.pedantic(
        lambda: mean_packets(N_USERS, 0, N_USERS // 4, spawn_rng(2), trials=1),
        rounds=1,
        iterations=1,
    )
