"""E16 — batch vs individual rekeying (the SIGCOMM headline saving).

Replays identical request streams (J = L = B on N = 4096) through the
marking algorithm one request at a time vs one batch, charging 2001-era
crypto costs.  Shape: the processing-time ratio grows with the batch
size and is dominated by the signature count (J + L signings become 1);
encryption work also shrinks because shared path keys change once.
"""

from repro.analysis import batch_cost, individual_cost, signature_savings
from repro.crypto.cost import CostModel
from repro.util import spawn_rng

from _common import DEGREE, FULL, record

N_MAIN = 4096
BATCHES = (4, 16, 64, 256) if not FULL else (4, 16, 64, 256, 1024)


def test_e16_batch_vs_individual(benchmark):
    model = CostModel()
    lines = [
        "N = %d, d = %d, J = L = B, 2001 cost constants "
        "(sign 30 ms, encrypt 7 us, keygen 4 us):" % (N_MAIN, DEGREE),
        "",
        "    B | batch enc / keygen / sec | indiv enc / keygen / sec | ratio",
    ]
    ratios = {}
    for batch_size in BATCHES:
        rng = spawn_rng(160 + batch_size)
        batch = batch_cost(N_MAIN, DEGREE, batch_size, batch_size, rng=rng)
        rng = spawn_rng(160 + batch_size)
        individual = individual_cost(
            N_MAIN, DEGREE, batch_size, batch_size, rng=rng
        )
        ratio = individual.seconds(model) / batch.seconds(model)
        ratios[batch_size] = ratio
        lines.append(
            "%5d | %7d / %6d / %6.3f | %7d / %6d / %7.3f | %5.0fx"
            % (
                batch_size,
                batch.encryptions,
                batch.key_generations,
                batch.seconds(model),
                individual.encryptions,
                individual.key_generations,
                individual.seconds(model),
                ratio,
            )
        )
        assert individual.signatures == 2 * batch_size
        assert batch.signatures == 1
        assert batch.encryptions < individual.encryptions

    # The saving grows with batch size and is large.
    sizes = sorted(ratios)
    assert ratios[sizes[-1]] > ratios[sizes[0]]
    assert ratios[sizes[-1]] > 20

    lines += [
        "",
        "signatures saved at B=%d: %d"
        % (sizes[-1], signature_savings(sizes[-1], sizes[-1])),
        "paper: batching turns J+L signings into one and removes "
        "redundant key changes; the gain grows with the batch.",
    ]
    record("e16", "batch vs individual rekeying cost", lines)

    benchmark.pedantic(
        lambda: batch_cost(N_MAIN, DEGREE, 64, 64, rng=spawn_rng(7)),
        rounds=1,
        iterations=1,
    )
