"""E14 — deadline misses and numNACK self-adaptation (Fig. 21).

Paper setup: deadline = 2 rounds, initial rho = 1, initial
numNACK = 200 (deliberately too high).  Shape: the number of users
missing the deadline collapses over the first few rekey messages as
numNACK is dragged down by the misses; once numNACK stabilises a few
stragglers remain — which is why the protocol switches to unicast.
"""

import numpy as np

from _common import FULL, paper_workload, record, steady_sequence


def test_e14_deadline_adaptation(benchmark):
    workload = paper_workload(seed=5)
    n_messages = 60 if FULL else 30
    sequence = steady_sequence(
        workload,
        alpha=0.2,
        rho=1.0,
        num_nack=200,
        max_nack=200,
        adapt_num_nack=True,
        deadline_rounds=2,
        n_messages=n_messages,
        seed=900,
    )
    misses = sequence.deadline_misses
    targets = sequence.num_nack_trajectory

    lines = ["msg | numNACK | users missing 2-round deadline"]
    for index in range(sequence.n_messages):
        lines.append(
            "%3d | %7d | %4d %s"
            % (index, targets[index], misses[index], "#" * min(40, misses[index]))
        )

    early = float(np.mean(misses[:5]))
    late = float(np.mean(misses[-10:]))
    lines += [
        "",
        "early misses (first 5 msgs): %.1f ; late misses (last 10): %.1f"
        % (early, late),
        "numNACK: 200 -> %d" % targets[-1],
    ]

    # Shape: misses collapse, numNACK self-reduces, tail is nonzero-ish
    # but small (the unicast phase's job).
    assert late <= early
    assert targets[-1] < 200
    assert late < 15

    lines += [
        "",
        "paper (Fig 21): misses drop dramatically during the first few "
        "messages as numNACK decays from 200; a small tail persists.",
    ]
    record("e14", "deadline misses under numNACK adaptation", lines)

    benchmark.pedantic(
        lambda: steady_sequence(
            workload,
            alpha=0.2,
            num_nack=200,
            max_nack=200,
            adapt_num_nack=True,
            n_messages=3,
            seed=16,
        ),
        rounds=1,
        iterations=1,
    )
