"""E07 — NACK-implosion control (Fig. 13).

Paper shape: with numNACK = 20 the first-round NACK count stabilises
quickly; for alpha > 0 the stable values sit generally below ~1.5x the
target; for alpha = 0 (all users at 2 % loss) the count fluctuates over
a wide range because recovery is hypersensitive to rho at low loss.
The rho0 = 1 and rho0 = 2 runs stabilise to matching levels.
"""

import numpy as np

from _common import (
    ALPHAS,
    NUM_NACK_DEFAULT,
    SKIP,
    paper_workload,
    record,
    steady_sequence,
)


def test_e07_nack_control(benchmark):
    workload = paper_workload(seed=5)
    lines = []
    steady = {}
    spread = {}
    for initial_rho in (1.0, 2.0):
        lines.append("initial rho = %.0f:" % initial_rho)
        for alpha in ALPHAS:
            sequence = steady_sequence(
                workload,
                alpha=alpha,
                rho=initial_rho,
                num_nack=NUM_NACK_DEFAULT,
                seed=7 + int(alpha * 10) + int(initial_rho),
            )
            nacks = sequence.first_round_nacks()
            steady[(initial_rho, alpha)] = float(np.mean(nacks[SKIP:]))
            spread[(initial_rho, alpha)] = float(np.std(nacks[SKIP:]))
            lines.append(
                "  alpha=%.1f : " % alpha
                + " ".join("%4d" % n for n in nacks)
            )
        lines.append("")

    lines.append(
        "steady-state NACKs (target %d):" % NUM_NACK_DEFAULT
    )
    for alpha in ALPHAS:
        lines.append(
            "  alpha=%.1f : rho0=1 -> %.1f +- %.1f ; rho0=2 -> %.1f +- %.1f"
            % (
                alpha,
                steady[(1.0, alpha)],
                spread[(1.0, alpha)],
                steady[(2.0, alpha)],
                spread[(2.0, alpha)],
            )
        )

    # Controlled around target for heterogeneous alphas.
    for alpha in (a for a in ALPHAS if a > 0):
        assert steady[(1.0, alpha)] < 2.5 * NUM_NACK_DEFAULT
    # The two starting points agree.
    for alpha in ALPHAS:
        assert (
            abs(steady[(1.0, alpha)] - steady[(2.0, alpha)])
            < NUM_NACK_DEFAULT * 1.5 + 5
        )

    lines += [
        "",
        "paper (Fig 13): stabilises within a few messages; stable values "
        "< 1.5x target for alpha > 0; alpha = 0 fluctuates widely.",
    ]
    record("e07", "controlling NACK implosion", lines)

    benchmark.pedantic(
        lambda: steady_sequence(
            workload, alpha=0.2, rho=1.0, n_messages=3, seed=11
        ),
        rounds=1,
        iterations=1,
    )
