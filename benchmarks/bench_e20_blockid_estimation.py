"""E20 — block-ID estimation accuracy (Appendix D).

Paper claim: a user that lost its specific ENC packet pins the exact
block unless all packets in one of its two witness sets are also lost;
under independent loss at rate p the failure probability is
``p^(j+2) + p^(k-j+1) - p^(k+2)`` (~p^2 in the worst case j = 0 or
k - 1), and even then the estimated *range* always contains the true
block, so the NACK just covers a few blocks.
"""

import numpy as np

from repro.rekey.estimate import (
    BlockIdEstimator,
    estimation_failure_probability,
)
from repro.util import spawn_rng

from _common import FULL, record


class _Packet:
    __slots__ = (
        "frm_id", "to_id", "block_id", "seq_in_block", "max_kid",
        "is_duplicate",
    )

    def __init__(self, frm_id, to_id, block_id, seq_in_block):
        self.frm_id = frm_id
        self.to_id = to_id
        self.block_id = block_id
        self.seq_in_block = seq_in_block
        self.max_kid = 40_000
        self.is_duplicate = False


def build_packets(n_packets, k, users_per_packet=40):
    packets = []
    user = 1000
    for index in range(n_packets):
        packets.append(
            _Packet(user, user + users_per_packet - 1, index // k, index % k)
        )
        user += users_per_packet + 1
    return packets


def trial_failure_rate(p, k, j, n_trials, rng):
    """Empirical probability of not pinning the exact block."""
    n_packets = 10 * k
    packets = build_packets(n_packets, k)
    target_block = 5
    lost_index = target_block * k + j
    failures = 0
    widths = []
    for _ in range(n_trials):
        estimator = BlockIdEstimator(
            packets[lost_index].frm_id, k=k, degree=4
        )
        for index, packet in enumerate(packets):
            if index == lost_index:
                continue
            if rng.random() < p:
                continue
            estimator.observe(packet)
        blocks = estimator.blocks_to_request(n_packets // k)
        assert target_block in blocks  # the range never loses the truth
        if len(blocks) > 1:
            failures += 1
            widths.append(len(blocks))
    return failures / n_trials, (np.mean(widths) if widths else 1.0)


def test_e20_blockid_estimation(benchmark):
    rng = spawn_rng(20)
    n_trials = 40_000 if FULL else 8_000
    k = 10
    lines = [
        "k = %d, independent loss, %d trials per point." % (k, n_trials),
        "",
        "The paper's formula is unconditional (it includes the factor p",
        "for losing one's own packet); the trials condition on that loss,",
        "so the comparison point is analytic / p.",
        "",
        "   p     j   analytic/p    empirical   mean-range-when-failed",
    ]
    for p in (0.2, 0.4):
        for j in (0, 3, k - 1):
            conditional = estimation_failure_probability(p, k, j) / p
            empirical, width = trial_failure_rate(p, k, j, n_trials, rng)
            lines.append(
                "%5.2f %4d %12.5f %12.5f %10.2f"
                % (p, j, conditional, empirical, width)
            )
            # Within sampling noise of the closed form.
            tolerance = 4 * np.sqrt(conditional / n_trials) + 0.003
            assert abs(empirical - conditional) < tolerance

    # Worst case ~ p^2.
    worst = estimation_failure_probability(0.2, k, 0)
    assert abs(worst - 0.2**2) / 0.2**2 < 0.05

    lines += [
        "",
        "paper (Appendix D): failure probability p^(j+2) + p^(k-j+1) - "
        "p^(k+2), ~p^2 worst case; on failure the user NACKs the "
        "(correct, small) block range.",
    ]
    record("e20", "block-ID estimation failure probability", lines)

    benchmark.pedantic(
        lambda: trial_failure_rate(0.2, 10, 0, 500, spawn_rng(21)),
        rounds=1,
        iterations=1,
    )
