"""E06 — convergence of the adaptive proactivity factor (Fig. 12).

Paper shape: starting from rho = 1 the controller climbs and settles
within a couple of rekey messages; starting from rho = 2 it decays to
the *same* stable band — the stable values of the two runs match.
"""

import numpy as np

from _common import (
    ALPHAS,
    N_MESSAGES,
    SKIP,
    paper_workload,
    record,
    steady_sequence,
)


def test_e06_rho_convergence(benchmark):
    workload = paper_workload(seed=5)
    lines = []
    stable = {}
    for initial_rho in (1.0, 2.0):
        lines.append("initial rho = %.0f:" % initial_rho)
        lines.append(
            "  msg " + "".join("%6d" % i for i in range(N_MESSAGES))
        )
        for alpha in ALPHAS:
            sequence = steady_sequence(
                workload,
                alpha=alpha,
                rho=initial_rho,
                seed=int(alpha * 100) + int(initial_rho),
            )
            trajectory = sequence.rho_trajectory
            stable[(initial_rho, alpha)] = float(
                np.mean(trajectory[SKIP:])
            )
            lines.append(
                "  a=%.1f" % alpha
                + "".join("%6.2f" % r for r in trajectory)
            )
        lines.append("")

    lines.append("stable rho (mean after warm-up):")
    for alpha in ALPHAS:
        low = stable[(1.0, alpha)]
        high = stable[(2.0, alpha)]
        lines.append(
            "  alpha=%.1f : from rho0=1 -> %.2f, from rho0=2 -> %.2f"
            % (alpha, low, high)
        )
        # Paper: "the stable values of those two figures match".
        assert abs(low - high) < 0.35

    # Settles quickly from below: big first step, then small ones.
    sequence = steady_sequence(workload, alpha=0.2, rho=1.0, seed=21)
    steps = np.abs(np.diff(sequence.rho_trajectory))
    assert steps[0] >= max(steps[3:]) - 1e-9

    lines += [
        "",
        "paper (Fig 12): a couple of messages to settle from rho=1; "
        "monotone decay from rho=2; matching stable values.",
    ]
    record("e06", "adaptive rho convergence", lines)

    benchmark.pedantic(
        lambda: steady_sequence(
            workload, alpha=0.2, rho=1.0, n_messages=3, seed=9
        ),
        rounds=1,
        iterations=1,
    )
