"""E22 — why key-tree degree 4 (the papers' parameter choice).

The per-leave rekey cost on a full tree is ``d·log_d(N) − 1``
encryptions, minimised near ``d = e`` — in whole numbers, ``d = 3`` or
``4`` — which is why the key-tree literature (and both papers) run with
``d = 4``.  This bench sweeps the degree at fixed N = 4096 (a power of
2, 4, 8 and 16) for both a single departure (closed form) and the
paper's L = N/4 batch (closed form + marking simulation).
"""

import numpy as np

from repro.analysis import (
    expected_encryptions_leaves_only,
    individual_leave_encryptions,
    simulate_batch,
)
from repro.util import spawn_rng

from _common import N_TRIALS, record

N_MAIN = 4096
DEGREES = {2: 12, 4: 6, 8: 4, 16: 3}  # degree -> height for N = 4096


def test_e22_tree_degree(benchmark):
    rng = spawn_rng(22)
    lines = [
        "N = %d; cost vs tree degree:" % N_MAIN,
        "",
        "  d   h   single-leave enc   batch L=N/4 enc "
        "(analytic / simulated)   user keys held",
    ]
    single = {}
    batch = {}
    for degree, height in DEGREES.items():
        single[degree] = individual_leave_encryptions(degree, height)
        analytic = expected_encryptions_leaves_only(
            N_MAIN, degree, N_MAIN // 4
        )
        simulated = simulate_batch(
            N_MAIN, degree, 0, N_MAIN // 4, n_trials=N_TRIALS, rng=rng
        )["encryptions"].mean()
        batch[degree] = analytic
        lines.append(
            "%3d %3d %18d %18.0f / %9.0f %17d"
            % (degree, height, single[degree], analytic, simulated, height + 1)
        )
        assert abs(analytic - simulated) / simulated < 0.05

    # The classic knee: d·h − 1 is minimised near d = e; at N = 4096
    # the integer optima d = 2 and d = 4 tie exactly (23), and both
    # beat flat trees.
    assert single[4] == single[2]
    assert single[4] < single[8] < single[16]
    # The batch workload breaks the tie in favour of d = 4 (shared
    # ancestors aggregate better in the shallower tree), and the user
    # also holds h + 1 = 7 keys instead of 13.
    assert batch[4] < batch[2]
    assert batch[4] < batch[16]

    lines += [
        "",
        "single-leave cost d·log_d N − 1 ties at 23 for d = 2 and 4 "
        "(the integer optima around e) and grows for flatter trees; "
        "the L = N/4 batch and the per-user key count both break the "
        "tie toward d = 4 — the papers' choice.",
    ]
    record("e22", "key-tree degree: why d = 4", lines)

    benchmark.pedantic(
        lambda: expected_encryptions_leaves_only(N_MAIN, 4, N_MAIN // 4),
        rounds=3,
        iterations=10,
    )
