"""A01 (ablation) — block-interleaved vs sequential send order (§5.1).

The protocol interleaves packets from different blocks so two packets
of the same block are separated by ``n_blocks`` sending intervals and
rarely fall into one burst-loss period.  At the paper's 100 ms sending
interval, bursts (mean 20 ms at p=0.2) barely span two packets, so the
ablation is run at a 10 ms interval — a server draining its send queue
at line rate — where a burst can erase several consecutive packets and
the send order matters.

Expected: sequential order loses whole chunks of a block at once, so
more users fall below the k-of-n threshold -> more NACKs and a higher
server bandwidth overhead; interleaving spreads each burst across many
blocks, each of which can absorb one or two losses.
"""

import numpy as np

from repro.transport import FleetConfig

from _common import N_TRIALS, paper_workload, record, simulator_for

FAST_INTERVAL_MS = 10.0


def run(workload, interleave, seed):
    config = FleetConfig(
        rho=1.3,
        adapt_rho=False,
        multicast_only=True,
        sending_interval_ms=FAST_INTERVAL_MS,
        interleave=interleave,
    )
    simulator = simulator_for(workload, alpha=0.2, config=config, seed=seed)
    nacks, overhead, rounds = [], [], []
    for index in range(max(N_TRIALS, 4)):
        stats, _ = simulator.run_message(
            workload, rho=1.3, message_index=index
        )
        nacks.append(stats.first_round_nacks)
        overhead.append(stats.bandwidth_overhead)
        rounds.append(stats.rounds_for_all_users)
    return float(np.mean(nacks)), float(np.mean(overhead)), float(np.mean(rounds))


def test_a01_interleaving_ablation(benchmark):
    workload = paper_workload(seed=5)
    inter_nacks, inter_over, inter_rounds = run(workload, True, 2100)
    seq_nacks, seq_over, seq_rounds = run(workload, False, 2100)

    lines = [
        "sending interval %.0f ms, rho=1.3, alpha=20%%, bursty loss:"
        % FAST_INTERVAL_MS,
        "",
        "                 first-round NACKs   bw overhead   rounds(all)",
        "interleaved      %17.1f %13.2f %13.2f"
        % (inter_nacks, inter_over, inter_rounds),
        "sequential       %17.1f %13.2f %13.2f"
        % (seq_nacks, seq_over, seq_rounds),
        "",
        "NACK ratio sequential/interleaved: %.2fx"
        % (seq_nacks / max(inter_nacks, 1e-9)),
    ]

    # Interleaving wins under burst loss at line-rate sending.
    assert seq_nacks > inter_nacks
    assert seq_over >= inter_over - 0.05

    lines += [
        "",
        "paper (§5.1): 'by interleaving ... two packets from the same "
        "block are less likely to experience the same burst loss "
        "period ... the bandwidth overhead at the key server can be "
        "reduced.'",
    ]
    record("a01", "ablation: interleaved vs sequential send order", lines)

    benchmark.pedantic(
        lambda: run(workload, True, 77), rounds=1, iterations=1
    )
