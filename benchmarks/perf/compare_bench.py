"""Perf-regression gate: compare a ``BENCH_perf.json`` to a baseline.

Usage::

    python benchmarks/perf/compare_bench.py CURRENT.json BASELINE.json
        [--tolerance 0.20] [--absolute]

Stdlib-only (no repro import) so CI can run it in any job.

The default gate compares **speedup ratios** (fast vs reference
implementation of the same stage), because a ratio measured on one
machine transfers to another while absolute wall times do not.  A
benchmark regresses when its speedup falls more than ``--tolerance``
(default 20%) below the baseline's.

``--absolute`` additionally gates the fast path's median wall time
against the baseline's with the same tolerance — only meaningful when
current and baseline come from the same machine (e.g. a local
before/after check).

``--overhead NAME`` (repeatable) marks a benchmark as an *overhead
pair*: its "fast" side runs with a feature off and its "reference" side
with the feature on, so the ratio is a cost multiplier that must stay
*below* ``1 + tolerance`` — a ceiling, not a floor.  Overhead gates
need no baseline entry (the ceiling is absolute), so the gate holds
from the commit that introduces the benchmark.

Exit status: 0 when no benchmark regresses, 1 otherwise.  Benchmarks
present in only one document are reported but never fail the gate (so
adding a benchmark does not require regenerating baselines in the same
commit).
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path):
    with open(path) as handle:
        document = json.load(handle)
    if document.get("schema") != 1:
        raise SystemExit("%s: unsupported schema %r" % (path, document.get("schema")))
    return document


def compare(current, baseline, tolerance, absolute, overhead=()):
    """Yields (benchmark, ok, message) triples."""
    current_benchmarks = current["benchmarks"]
    baseline_benchmarks = baseline["benchmarks"]
    overhead = set(overhead)
    for name in sorted(set(current_benchmarks) | set(baseline_benchmarks)):
        if name not in current_benchmarks:
            yield name, True, "only in baseline (skipped)"
            continue
        if name in overhead:
            speedup = current_benchmarks[name].get("speedup")
            if speedup is None:
                yield name, False, "overhead gate needs a paired benchmark"
                continue
            ceiling = 1.0 + tolerance
            yield name, speedup <= ceiling, (
                "overhead %.2fx (ceiling %.2fx)" % (speedup, ceiling)
            )
            continue
        if name not in baseline_benchmarks:
            yield name, True, "new benchmark (no baseline, skipped)"
            continue
        entry = current_benchmarks[name]
        base = baseline_benchmarks[name]

        speedup = entry.get("speedup")
        base_speedup = base.get("speedup")
        if speedup is not None and base_speedup is not None:
            floor = base_speedup * (1.0 - tolerance)
            ok = speedup >= floor
            yield name, ok, (
                "speedup %.2fx vs baseline %.2fx (floor %.2fx)"
                % (speedup, base_speedup, floor)
            )
        elif not absolute:
            yield name, True, "no speedup ratio (ungated; use --absolute)"

        if absolute:
            median = entry["fast"]["median_s"]
            base_median = base["fast"]["median_s"]
            ceiling = base_median * (1.0 + tolerance)
            ok = median <= ceiling
            yield name, ok, (
                "median %.3fms vs baseline %.3fms (ceiling %.3fms)"
                % (median * 1e3, base_median * 1e3, ceiling * 1e3)
            )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly measured BENCH_perf.json")
    parser.add_argument("baseline", help="committed baseline document")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional regression (default 0.20)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="also gate absolute wall times (same-machine comparisons only)",
    )
    parser.add_argument(
        "--overhead",
        action="append",
        default=[],
        metavar="NAME",
        help="gate NAME as an overhead pair: its fast/reference ratio "
        "must stay below 1 + tolerance (repeatable)",
    )
    args = parser.parse_args(argv)

    current = load(args.current)
    baseline = load(args.baseline)
    if current["meta"].get("scale") != baseline["meta"].get("scale"):
        print(
            "warning: comparing scale=%r against baseline scale=%r"
            % (current["meta"].get("scale"), baseline["meta"].get("scale")),
            file=sys.stderr,
        )

    failures = 0
    for name, ok, message in compare(
        current, baseline, args.tolerance, args.absolute,
        overhead=args.overhead,
    ):
        status = "ok  " if ok else "FAIL"
        print("%s %-16s %s" % (status, name, message))
        if not ok:
            failures += 1
    if failures:
        print("\n%d benchmark(s) regressed beyond tolerance" % failures)
        return 1
    print("\nno perf regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
