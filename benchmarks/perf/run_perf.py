"""Run the hot-path perf suite and write ``BENCH_perf.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py [--scale quick|full]
        [--output PATH]

The committed ``BENCH_perf.json`` and ``baseline.json`` are refreshed at
``--scale full`` (the paper's N=4096 defaults); CI runs ``--scale
quick`` and gates against ``baseline_quick.json`` via
``compare_bench.py``.  See ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct invocation convenience
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..", "src"),
    )

HERE = os.path.dirname(os.path.abspath(__file__))


def main(argv=None):
    from repro.perf import format_table, run_suite

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=("quick", "full"),
        default=os.environ.get("REPRO_BENCH_SCALE", "quick"),
        help="quick: CI-sized (N=512); full: paper defaults (N=4096)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(HERE, "BENCH_perf.json"),
        help="where to write the results document",
    )
    args = parser.parse_args(argv)

    document = run_suite(
        args.scale,
        progress=lambda name: print("running %s ..." % name, flush=True),
    )
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    for line in format_table(document):
        print(line)
    print("\nwrote %s (scale=%s)" % (args.output, args.scale))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
