"""Tests for repro.obs.prometheus — render → parse round-trips."""

import math

import pytest

from repro.obs import MetricsRegistry
from repro.obs.prometheus import CONTENT_TYPE, parse, render
from repro.service.health import ServiceMetrics


def make_registry():
    registry = MetricsRegistry()
    registry.counter(
        "fec_encodes", help="Parity generation calls.", coder="matrix"
    ).inc(5)
    registry.gauge("members", help="Current group size.").set(48)
    histogram = registry.histogram(
        "span_ms", buckets=(1.0, 10.0, 100.0), span="daemon.rekey"
    )
    for value in (0.5, 3.0, 30.0, 300.0):
        histogram.observe(value)
    return registry


class TestRender:
    def test_content_type_is_prometheus_text(self):
        assert CONTENT_TYPE.startswith("text/plain; version=0.0.4")

    def test_every_family_has_help_and_type(self):
        text = render(
            ledger=ServiceMetrics(), registry=make_registry(),
            health={"status": "ok"},
        )
        families = parse(text)
        assert families
        for name, family in families.items():
            assert family["type"] != "untyped", name
            assert family["help"], name

    def test_all_names_prefixed(self):
        families = parse(render(ledger=ServiceMetrics()))
        assert all(name.startswith("repro_") for name in families)

    def test_ledger_counters_get_total_suffix(self):
        ledger = ServiceMetrics()
        ledger.bump("recoveries", 2)
        families = parse(render(ledger=ledger))
        family = families["repro_recoveries_total"]
        assert family["type"] == "counter"
        assert family["samples"] == [("repro_recoveries_total", {}, 2.0)]

    def test_up_gauge_tracks_health(self):
        up = lambda status: parse(render(health={"status": status}))[
            "repro_up"
        ]["samples"][0][2]
        assert up("ok") == 1.0
        assert up("degraded") == 0.0

    def test_registry_labels_round_trip(self):
        families = parse(render(registry=make_registry()))
        name, labels, value = families["repro_fec_encodes"]["samples"][0]
        assert labels == {"coder": "matrix"}
        assert value == 5.0

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("odd", help="h", label='quo"te').inc()
        samples = parse(render(registry=registry))["repro_odd"]["samples"]
        assert samples[0][1] == {"label": 'quo"te'}


class TestHistogramExposition:
    def families(self):
        return parse(render(registry=make_registry()))

    def buckets(self):
        family = self.families()["repro_span_ms"]
        return [
            (labels["le"], value)
            for name, labels, value in family["samples"]
            if name.endswith("_bucket")
        ]

    def test_bucket_counts_are_cumulative(self):
        values = [count for _, count in self.buckets()]
        assert values == sorted(values)
        assert values == [1.0, 2.0, 3.0, 4.0]

    def test_inf_bucket_matches_count(self):
        family = self.families()["repro_span_ms"]
        inf = [
            value
            for name, labels, value in family["samples"]
            if labels.get("le") == "+Inf"
        ]
        count = [
            value
            for name, labels, value in family["samples"]
            if name.endswith("_count")
        ]
        assert inf == count == [4.0]

    def test_sum_round_trips(self):
        family = self.families()["repro_span_ms"]
        total = [
            value
            for name, labels, value in family["samples"]
            if name.endswith("_sum")
        ]
        assert total[0] == pytest.approx(333.5)

    def test_bucket_samples_keep_instrument_labels(self):
        family = self.families()["repro_span_ms"]
        bucket_labels = [
            labels
            for name, labels, value in family["samples"]
            if name.endswith("_bucket")
        ]
        assert all(
            labels["span"] == "daemon.rekey" for labels in bucket_labels
        )


class TestParse:
    def test_inf_and_nan_values(self):
        text = 'x_bucket{le="+Inf"} 3\ny NaN\n'
        families = parse(text)
        assert families["x_bucket"]["samples"][0][2] == 3.0
        assert math.isnan(families["y"]["samples"][0][2])

    def test_unparseable_sample_raises(self):
        with pytest.raises(ValueError, match="line 1"):
            parse("!!! not a sample\n")

    def test_empty_render_arguments(self):
        assert parse(render()) == {}
