"""Tests for repro.obs.recorder — spans, the NULL recorder, instruments."""

import threading

import pytest

from repro.obs import NULL, EventBus, Recorder
from repro.obs.recorder import NullRecorder, _NULL_SPAN


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestNullRecorder:
    def test_disabled(self):
        assert NULL.enabled is False
        assert NULL.bus is None
        assert NULL.metrics is None

    def test_span_is_shared_noop(self):
        span = NULL.span("anything", field=1)
        assert span is _NULL_SPAN
        with span as entered:
            entered.note(extra=2)  # must not raise or allocate state
        assert NULL.span("other") is span

    def test_all_methods_are_noops(self):
        NULL.count("c")
        NULL.gauge("g", 3.0)
        NULL.observe("h", 1.5)
        NULL.emit("span", name="x")

    def test_fresh_instance_matches_singleton(self):
        assert NullRecorder().enabled is False


class TestSpans:
    def test_span_times_with_injected_clock(self):
        clock = FakeClock()
        recorder = Recorder(clock=clock)
        with recorder.span("work"):
            clock.advance(0.25)
        histogram = recorder.metrics.histogram("span_ms", span="work")
        assert histogram.count == 1
        assert histogram.sum == pytest.approx(250.0)

    def test_nested_spans_each_record(self):
        clock = FakeClock()
        recorder = Recorder(clock=clock)
        with recorder.span("outer"):
            clock.advance(0.1)
            with recorder.span("inner"):
                clock.advance(0.02)
        outer = recorder.metrics.histogram("span_ms", span="outer")
        inner = recorder.metrics.histogram("span_ms", span="inner")
        assert outer.sum == pytest.approx(120.0)
        assert inner.sum == pytest.approx(20.0)

    def test_child_inherits_parent_fields(self):
        bus = EventBus()
        recorder = Recorder(bus=bus)
        with recorder.span("daemon.interval", interval=7):
            with recorder.span("marking.apply", joins=3):
                pass
        child, parent = bus.of_kind("span")
        assert child["detail"]["name"] == "marking.apply"
        assert child["detail"]["interval"] == 7  # inherited
        assert child["detail"]["joins"] == 3
        assert parent["detail"]["name"] == "daemon.interval"
        assert "joins" not in parent["detail"]

    def test_child_fields_override_parent(self):
        bus = EventBus()
        recorder = Recorder(bus=bus)
        with recorder.span("outer", depth=1):
            with recorder.span("inner", depth=2):
                pass
        inner = bus.of_kind("span")[0]
        assert inner["detail"]["depth"] == 2

    def test_note_reaches_span_event(self):
        bus = EventBus()
        recorder = Recorder(bus=bus)
        with recorder.span("session.round") as span:
            span.note(round=3, packets=17)
        event = bus.of_kind("span")[0]
        assert event["detail"]["round"] == 3
        assert event["detail"]["packets"] == 17

    def test_current_span(self):
        recorder = Recorder()
        assert recorder.current_span() is None
        with recorder.span("a") as span:
            assert recorder.current_span() is span
        assert recorder.current_span() is None

    def test_span_stack_is_thread_local(self):
        recorder = Recorder()
        seen = {}

        def worker():
            seen["other"] = recorder.current_span()

        with recorder.span("main-only"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["other"] is None

    def test_span_pops_on_exception(self):
        recorder = Recorder()
        with pytest.raises(RuntimeError):
            with recorder.span("failing"):
                raise RuntimeError("boom")
        assert recorder.current_span() is None
        # the failed span still recorded its duration
        assert recorder.metrics.histogram("span_ms", span="failing").count == 1

    def test_span_without_bus_only_records_metrics(self):
        recorder = Recorder()
        with recorder.span("quiet"):
            pass
        assert recorder.bus is None
        assert recorder.metrics.histogram("span_ms", span="quiet").count == 1


class TestInstruments:
    def test_count(self):
        recorder = Recorder()
        recorder.count("ticks")
        recorder.count("ticks", by=4)
        assert recorder.metrics.counter("ticks").value == 5

    def test_gauge_last_write_wins(self):
        recorder = Recorder()
        recorder.gauge("members", 10)
        recorder.gauge("members", 7)
        assert recorder.metrics.gauge("members").value == 7.0

    def test_observe_with_custom_buckets(self):
        recorder = Recorder()
        recorder.observe("rounds", 2, buckets=(1.0, 2.0, 4.0))
        histogram = recorder.metrics.histogram("rounds")
        assert histogram.buckets == (1.0, 2.0, 4.0)
        assert histogram.count == 1

    def test_emit_without_bus_is_noop(self):
        Recorder().emit("span", name="x")

    def test_emit_forwards_to_bus(self):
        bus = EventBus()
        Recorder(bus=bus).emit("degradation", decision="carry-over")
        assert bus.of_kind("degradation")[0]["detail"] == {
            "decision": "carry-over"
        }
