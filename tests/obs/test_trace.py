"""Tests for repro.obs.trace — ids, ambient context, phase profiling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ObsError
from repro.obs import EventBus, Recorder
from repro.obs.trace import (
    PHASE_OF_SPAN,
    PHASES,
    TRACE_NONE,
    PhaseProfiler,
    current,
    current_trace,
    current_trace_id,
    format_trace,
    mint_trace_id,
    parse_trace,
    tracing,
)


class TestMint:
    def test_deterministic(self):
        assert mint_trace_id(7, 1) == mint_trace_id(7, 1)

    def test_distinct_across_intervals_and_seeds(self):
        ids = {
            mint_trace_id(seed, interval)
            for seed in range(5)
            for interval in range(1, 6)
        }
        assert len(ids) == 25

    def test_never_the_none_sentinel(self):
        for interval in range(1, 200):
            assert mint_trace_id(7, interval) != TRACE_NONE

    @given(
        seed=st.integers(0, 2**31 - 1),
        interval=st.integers(1, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_fits_in_u64(self, seed, interval):
        assert 0 < mint_trace_id(seed, interval) < 2**64


class TestFormatParse:
    @given(trace_id=st.integers(0, 2**64 - 1))
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, trace_id):
        text = format_trace(trace_id)
        assert len(text) == 16
        assert parse_trace(text) == trace_id

    @pytest.mark.parametrize(
        "bad", [None, 7, "", "abc", "g" * 16, "0" * 15, "0" * 17]
    )
    def test_bad_input_refused(self, bad):
        with pytest.raises(ObsError):
            parse_trace(bad)


class TestAmbientContext:
    def test_nothing_active_outside(self):
        assert current() is None
        assert current_trace_id() == TRACE_NONE
        assert current_trace() is None

    def test_tracing_activates_and_restores(self):
        with tracing(0xDEAD, 3) as context:
            assert current() is context
            assert current_trace_id() == 0xDEAD
            assert current_trace() == format_trace(0xDEAD)
            assert context.interval == 3
        assert current() is None

    def test_nesting_restores_outer(self):
        with tracing(1, 1):
            with tracing(2, 2):
                assert current_trace_id() == 2
            assert current_trace_id() == 1
        assert current_trace_id() == TRACE_NONE

    def test_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with tracing(5, 1):
                raise RuntimeError("boom")
        assert current() is None


class TestPhaseProfiler:
    def test_folds_known_spans_onto_phases(self):
        profiler = PhaseProfiler("python")
        profiler.on_span("marking.apply", 2.0)
        profiler.on_span("message.encrypt", 1.0)
        profiler.on_span("message.sign", 0.5)
        profiler.on_span("fec.encode", 3.0)
        profiler.on_span("fec.decode", 1.0)
        profiler.on_span("no.such.span", 99.0)  # ignored
        assert profiler.totals == {
            "marking": 2.0,
            "keygen": 1.5,
            "fec": 4.0,
        }
        assert profiler.counts == {"marking": 1, "keygen": 2, "fec": 2}

    def test_finish_emits_event_and_histograms(self):
        bus = EventBus()
        obs = Recorder(bus=bus)
        profiler = PhaseProfiler("numpy")
        profiler.on_span("marking.apply", 2.5)
        profiler.on_span("daemon.deliver", 10.0)
        phases = profiler.finish(obs, interval=4)
        assert phases == {"delivery": 10.0, "marking": 2.5}
        (event,) = bus.of_kind("phase_profile")
        assert event["detail"]["interval"] == 4
        assert event["detail"]["engine"] == "numpy"
        assert event["detail"]["phases"] == phases
        assert event["detail"]["spans"] == {"delivery": 1, "marking": 1}
        histogram = obs.metrics.histogram(
            "phase_ms", phase="marking", engine="numpy"
        )
        assert histogram.count == 1
        assert histogram.sum == pytest.approx(2.5)

    def test_empty_profiler_emits_nothing(self):
        bus = EventBus()
        profiler = PhaseProfiler("python")
        assert profiler.finish(Recorder(bus=bus), interval=1) == {}
        assert bus.of_kind("phase_profile") == []

    def test_recorder_taps_closing_spans(self):
        """Installing a profiler on a Recorder prices real spans."""
        obs = Recorder(bus=EventBus())
        profiler = PhaseProfiler("python")
        obs.profiler = profiler
        with obs.span("marking.apply"):
            pass
        with obs.span("span.not.a.phase"):
            pass
        obs.profiler = None
        with obs.span("fec.encode"):  # after removal: not tapped
            pass
        assert set(profiler.counts) == {"marking"}

    def test_every_mapped_phase_is_declared(self):
        assert set(PHASE_OF_SPAN.values()) <= set(PHASES)
