"""Tests for repro.obs.events — registry, bus, JSONL round-trip."""

import json

import pytest

from repro.errors import ObsError
from repro.obs import (
    EventBus,
    SCHEMA_VERSION,
    is_registered,
    read_events,
    register_event_kind,
    registered_kinds,
    validate_jsonl,
    validate_record,
)
from repro.obs.events import SERVICE_EVENT_KINDS, SESSION_EVENT_KINDS


class TestRegistry:
    def test_session_kinds_registered(self):
        for kind in SESSION_EVENT_KINDS:
            assert is_registered(kind)

    def test_service_kinds_registered(self):
        for kind in SERVICE_EVENT_KINDS:
            assert is_registered(kind)

    def test_register_new_kind(self):
        assert not is_registered("custom_probe")
        assert register_event_kind("custom_probe") == "custom_probe"
        assert is_registered("custom_probe")
        assert "custom_probe" in registered_kinds()

    def test_register_is_idempotent(self):
        register_event_kind("idempotent_kind")
        register_event_kind("idempotent_kind")
        assert registered_kinds().count("idempotent_kind") == 1

    def test_register_rejects_non_string(self):
        with pytest.raises(ObsError):
            register_event_kind("")
        with pytest.raises(ObsError):
            register_event_kind(42)


class TestEventBus:
    def test_emit_returns_envelope(self):
        bus = EventBus(clock=lambda: 123.5)
        record = bus.emit("snapshot", path="x.json")
        assert record == {
            "v": SCHEMA_VERSION,
            "t": 123.5,
            "kind": "snapshot",
            "detail": {"path": "x.json"},
        }
        assert len(bus) == 1

    def test_unregistered_kind_raises(self):
        with pytest.raises(ObsError, match="unregistered"):
            EventBus().emit("definitely_not_a_kind")

    def test_context_merges_into_detail(self):
        bus = EventBus()
        bus.set_context(interval=3)
        record = bus.emit("wal_append", op="join")
        assert record["detail"] == {"interval": 3, "op": "join"}

    def test_explicit_detail_overrides_context(self):
        bus = EventBus()
        bus.set_context(interval=3)
        record = bus.emit("wal_append", interval=9)
        assert record["detail"]["interval"] == 9

    def test_context_none_deletes(self):
        bus = EventBus()
        bus.set_context(interval=3)
        bus.set_context(interval=None)
        assert bus.emit("snapshot")["detail"] == {}

    def test_of_kind(self):
        bus = EventBus()
        bus.emit("snapshot")
        bus.emit("wal_compact", through_interval=4)
        assert len(bus.of_kind("snapshot")) == 1
        assert len(bus.of_kind("wal_compact")) == 1
        assert bus.of_kind("crash") == []

    def test_memory_bound(self):
        bus = EventBus(keep=5)
        for index in range(12):
            bus.emit("snapshot", index=index)
        assert len(bus) == 5
        assert bus.events[-1]["detail"]["index"] == 11

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventBus(path=str(path)) as bus:
            bus.emit("interval_start", members=16)
            bus.emit("interval_complete", interval=0, rho=1.0)
        records = read_events(str(path))
        assert [r["kind"] for r in records] == [
            "interval_start",
            "interval_complete",
        ]
        assert records[1]["detail"]["rho"] == 1.0

    def test_validate_jsonl_counts(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventBus(path=str(path)) as bus:
            for _ in range(3):
                bus.emit("snapshot")
        assert validate_jsonl(str(path)) == 3


class TestValidation:
    def good(self, **overrides):
        record = {
            "v": SCHEMA_VERSION,
            "t": 1.0,
            "kind": "snapshot",
            "detail": {},
        }
        record.update(overrides)
        return record

    def test_good_record_passes(self):
        assert validate_record(self.good()) is not None

    def test_wrong_version_rejected(self):
        with pytest.raises(ObsError, match="version"):
            validate_record(self.good(v=99))

    def test_missing_kind_rejected(self):
        with pytest.raises(ObsError, match="kind"):
            validate_record(self.good(kind=""))

    def test_bad_time_rejected(self):
        with pytest.raises(ObsError, match="time"):
            validate_record(self.good(t="yesterday"))

    def test_bad_detail_rejected(self):
        with pytest.raises(ObsError, match="detail"):
            validate_record(self.good(detail=[1, 2]))

    def test_unknown_kind_tolerated_by_default(self):
        # Readers must accept kinds newer than themselves.
        validate_record(self.good(kind="from_the_future"))

    def test_unknown_kind_rejected_when_strict(self):
        with pytest.raises(ObsError, match="unregistered"):
            validate_record(
                self.good(kind="from_the_future"), strict_kinds=True
            )

    def test_validate_jsonl_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(ObsError, match="bad.jsonl:1"):
            validate_jsonl(str(path))

    def test_validate_jsonl_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(self.good()) + "\n" + json.dumps({"v": 99}) + "\n"
        )
        with pytest.raises(ObsError, match="bad.jsonl:2"):
            validate_jsonl(str(path))
