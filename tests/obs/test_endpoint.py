"""Tests for repro.obs.httpd — the /healthz + /metrics scrape surface."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core import GroupConfig
from repro.obs import EventBus, Recorder
from repro.obs.httpd import MetricsServer
from repro.obs.prometheus import parse
from repro.service import PoissonChurn, RekeyDaemon, SessionDelivery


def make_daemon(n=16, obs=None, **config_overrides):
    defaults = dict(block_size=5, crypto_seed=11, seed=42)
    defaults.update(config_overrides)
    config = GroupConfig(**defaults)
    return RekeyDaemon.start_new(
        ["m%02d" % i for i in range(n)],
        config=config,
        backend=SessionDelivery(config),
        churn=PoissonChurn(alpha=0.3),
        obs=obs,
    )


def get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read().decode("utf-8")


class TestMetricsServer:
    def test_ephemeral_port_assigned(self):
        with MetricsServer(lambda: "x 1\n", lambda: {"status": "ok"}) as s:
            assert s.port > 0
            assert s.url == "http://127.0.0.1:%d" % s.port

    def test_metrics_and_healthz(self):
        health = {"status": "ok", "members": 3}
        with MetricsServer(lambda: "x 1\n", lambda: health) as s:
            status, body = get(s.url + "/metrics")
            assert status == 200
            assert body == "x 1\n"
            status, body = get(s.url + "/healthz")
            assert status == 200
            assert json.loads(body) == health

    def test_degraded_health_is_503(self):
        with MetricsServer(
            lambda: "", lambda: {"status": "degraded"}
        ) as s:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(s.url + "/healthz")
            assert excinfo.value.code == 503
            assert json.loads(excinfo.value.read())["status"] == "degraded"

    def test_unknown_path_is_404(self):
        with MetricsServer(lambda: "", lambda: {"status": "ok"}) as s:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(s.url + "/nope")
            assert excinfo.value.code == 404

    def test_handler_exception_is_500(self):
        def boom():
            raise RuntimeError("render failed")

        with MetricsServer(boom, lambda: {"status": "ok"}) as s:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(s.url + "/metrics")
            assert excinfo.value.code == 500


class TestForDaemon:
    def test_scrape_after_intervals(self):
        obs = Recorder(bus=EventBus())
        daemon = make_daemon(obs=obs)
        daemon.run(3)
        with MetricsServer.for_daemon(daemon) as server:
            _, text = get(server.url + "/metrics")
        families = parse(text)
        assert (
            families["repro_intervals_processed_total"]["samples"][0][2]
            == 3.0
        )
        assert families["repro_up"]["samples"][0][2] == 1.0
        # the recorder's span histograms ride along
        spans = {
            labels.get("span")
            for _, labels, _ in families["repro_span_ms"]["samples"]
        }
        assert "daemon.interval" in spans

    def test_scrape_without_obs_still_serves_ledger(self):
        daemon = make_daemon()
        daemon.run(2)
        with MetricsServer.for_daemon(daemon) as server:
            _, text = get(server.url + "/metrics")
        families = parse(text)
        assert (
            families["repro_intervals_processed_total"]["samples"][0][2]
            == 2.0
        )
        assert "repro_span_ms" not in families

    def test_scrape_while_rekeying(self):
        # The acceptance criterion: both endpoints answer while the
        # daemon's background loop is actively processing intervals.
        obs = Recorder(bus=EventBus())
        daemon = make_daemon(obs=obs)
        with MetricsServer.for_daemon(daemon) as server:
            daemon.start(n_intervals=50)
            try:
                status, text = get(server.url + "/metrics")
                assert status == 200
                assert "repro_intervals_processed_total" in parse(text)
                status, body = get(server.url + "/healthz")
                assert status == 200
                assert json.loads(body)["status"] == "ok"
            finally:
                daemon.stop()
        assert daemon.crashed is None
