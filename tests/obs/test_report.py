"""Tests for repro.obs.report — obs-report must reproduce the ledger's
headline metrics from the JSONL event stream alone."""

import math

import pytest

from repro.core import GroupConfig
from repro.obs import EventBus, Recorder, read_events
from repro.obs.report import render_report, summarize
from repro.service import PoissonChurn, RekeyDaemon, SessionDelivery


@pytest.fixture(scope="module")
def run(tmp_path_factory):
    """One observed daemon run: (ledger, events, jsonl path)."""
    path = tmp_path_factory.mktemp("obs") / "events.jsonl"
    config = GroupConfig(block_size=5, crypto_seed=11, seed=42)
    bus = EventBus(path=str(path))
    daemon = RekeyDaemon.start_new(
        ["m%02d" % i for i in range(24)],
        config=config,
        backend=SessionDelivery(config),
        churn=PoissonChurn(alpha=0.3),
        obs=Recorder(bus=bus),
    )
    daemon.run(6)
    bus.close()
    return daemon.metrics, read_events(str(path)), str(path)


class TestHeadlineReproduction:
    def test_rho_trajectory_matches_ledger(self, run):
        ledger, events, _ = run
        summary = summarize(events)
        assert summary["rho_trajectory"] == ledger.rho_trajectory()

    def test_interval_count_and_members(self, run):
        ledger, events, _ = run
        summary = summarize(events)
        assert summary["n_intervals"] == ledger.n_intervals
        assert summary["final_members"] == ledger.intervals[-1].n_members

    def test_first_round_nacks_total_matches(self, run):
        ledger, events, _ = run
        summary = summarize(events)
        assert summary["first_round_nacks_total"] == sum(
            m.first_round_nacks for m in ledger.intervals
        )

    def test_recovery_p99_matches(self, run):
        ledger, events, _ = run
        summary = summarize(events)
        expected = [
            m.recovery_p99
            for m in ledger.intervals
            if not math.isnan(m.recovery_p99)
        ]
        assert summary["recovery_p99_max"] == max(expected)

    def test_decisions_match(self, run):
        ledger, events, _ = run
        summary = summarize(events)
        assert sum(summary["decisions"].values()) == ledger.n_intervals
        for m in ledger.intervals:
            assert summary["decisions"][m.decision] >= 1


class TestTimeBreakdown:
    def test_every_interval_has_a_row(self, run):
        ledger, events, _ = run
        breakdown = summarize(events)["time_breakdown"]
        assert sorted(breakdown) == [m.interval for m in ledger.intervals]

    def test_stage_columns_do_not_exceed_total(self, run):
        _, events, _ = run
        for row in summarize(events)["time_breakdown"].values():
            accounted = sum(
                row.get(column, 0.0)
                for column in ("carry", "intake", "rekey",
                               "deliver", "snapshot")
            )
            assert accounted <= row["total"] * 1.05
            assert row["other"] >= 0.0

    def test_span_totals_counted(self, run):
        ledger, events, _ = run
        totals = summarize(events)["span_totals"]
        assert totals["daemon.interval"]["count"] == ledger.n_intervals
        assert totals["daemon.rekey"]["count"] == ledger.n_intervals
        assert totals["marking.apply"]["total_ms"] > 0.0


class TestRenderReport:
    def test_report_lines(self, run):
        ledger, _, path = run
        lines = render_report(path)
        text = "\n".join(lines)
        assert "headline" in text
        assert "rho trajectory" in text
        assert "where the time goes" in text
        assert "daemon.interval" in text
        assert "%d interval(s)" % ledger.n_intervals in lines[0]

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        summary = summarize([])
        assert summary["n_intervals"] == 0
        assert summary["recovery_p99_max"] is None
        lines = render_report(str(path))
        assert any("0 interval(s)" in line for line in lines)
