"""Tests for repro.obs.assemble — skew correction, timelines, digest.

The synthetic-stream tests pin the assembly *mechanics* (offset math,
completeness semantics, clock-free digests); the loopback-fleet tests
at the bottom pin the end-to-end trace digest for ``(smoke, seed=7)``
exactly like the wire plane pins its protocol digest, and prove the
digest is invariant to process placement (in-process vs sharded).
"""

import pytest

from repro.errors import ObsError
from repro.obs.assemble import (
    MILESTONES,
    Timeline,
    _median,
    _percentile,
    assemble,
    load_trace_dir,
    timeline_digest,
)

TRACE = "00000000000000a1"


def event(kind, **detail):
    return {"v": 1, "kind": kind, "detail": detail}


def announce_event(interval=1, mono=100.0, members=2, served=2):
    return event(
        "wire_announce",
        interval=interval,
        mono=mono,
        trace=TRACE,
        members=members,
        served=served,
    )


def milestone(kind, member_index, mono, interval=1, served=True, **extra):
    return event(
        kind,
        interval=interval,
        member_index=member_index,
        member="member-%04d" % member_index,
        trace=TRACE,
        cohort="low" if member_index % 2 else "high",
        served=served,
        mono=mono,
        **extra,
    )


def make_streams(skew_a=50.0, skew_b=-30.0):
    """Two client streams on skewed clocks; server barrier at t=100."""
    server_mono = 100.0

    def client(member_index, skew):
        base = server_mono - skew
        return [
            milestone("trace_announce", member_index, base + 0.001),
            milestone(
                "trace_first_data", member_index, base + 0.010, slot=0
            ),
            milestone(
                "trace_decoded",
                member_index,
                base + 0.050,
                recovery_round=1,
                dropped=member_index,
                latency_ms=49.0,
            ),
            milestone("trace_key_decrypted", member_index, base + 0.060),
        ]

    return {
        "server.jsonl": [announce_event(mono=server_mono)],
        "worker-00.jsonl": client(0, skew_a),
        "worker-01.jsonl": client(1, skew_b),
    }


class TestStatistics:
    def test_median(self):
        assert _median([3.0, 1.0, 2.0]) == 2.0
        assert _median([1.0, 2.0, 3.0, 4.0]) == 2.5
        with pytest.raises(ObsError):
            _median([])

    def test_percentile_matches_linear_interpolation(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert _percentile(values, 50) == 25.0
        assert _percentile(values, 0) == 10.0
        assert _percentile(values, 100) == 40.0
        assert _percentile([7.0], 99) == 7.0
        with pytest.raises(ObsError):
            _percentile([], 50)


class TestCompleteness:
    def base(self, **overrides):
        fields = dict(
            interval=1,
            member_index=0,
            member="member-0000",
            trace=TRACE,
            cohort="high",
            served=True,
            stream="s",
        )
        fields.update(overrides)
        return Timeline(**fields)

    def test_served_member_owes_decode_and_key(self):
        timeline = self.base()
        timeline.milestones = {"announce": 1.0}
        assert not timeline.complete
        timeline.milestones["decoded"] = 2.0
        assert not timeline.complete
        timeline.milestones["key_decrypted"] = 3.0
        assert timeline.complete  # first_data not required (unicast)

    def test_unserved_member_owes_only_announce(self):
        timeline = self.base(served=False)
        assert not timeline.complete
        timeline.milestones = {"announce": 1.0}
        assert timeline.complete


class TestAssemble:
    def test_offsets_recover_the_skew(self):
        asm = assemble(make_streams(skew_a=50.0, skew_b=-30.0))
        assert asm.offsets["worker-00.jsonl"] == pytest.approx(
            49.999, abs=1e-6
        )
        assert asm.offsets["worker-01.jsonl"] == pytest.approx(
            -30.001, abs=1e-6
        )

    def test_corrected_milestones_land_on_server_timeline(self):
        asm = assemble(make_streams())
        for timeline in asm.timelines:
            # After correction both members' milestones agree despite
            # clocks 80 seconds apart: announce ≈ barrier, ordered.
            assert timeline.milestones["announce"] == pytest.approx(
                100.0, abs=1e-3
            )
            times = [timeline.milestones[m] for m in MILESTONES]
            assert times == sorted(times)

    def test_decode_facts_extracted(self):
        asm = assemble(make_streams())
        by_index = {t.member_index: t for t in asm.timelines}
        assert by_index[1].recovery_round == 1
        assert by_index[1].dropped == 1
        assert by_index[1].latency_ms == 49.0
        assert all(t.complete for t in asm.timelines)
        assert asm.incomplete() == []

    def test_completeness_counts_against_the_barrier(self):
        streams = make_streams()
        del streams["worker-01.jsonl"]  # one member's stream lost
        asm = assemble(streams)
        assert asm.completeness() == {
            1: {"expected": 2, "seen": 1, "complete": 1}
        }

    def test_recovery_cdf_groups_by_cohort(self):
        cdf = assemble(make_streams()).recovery_cdf(points=(50,))
        assert set(cdf) == {"high", "low"}
        assert cdf["high"]["count"] == 1
        assert cdf["high"]["percentiles_ms"]["p50"] == 49.0

    def test_no_barrier_refused(self):
        with pytest.raises(ObsError):
            assemble({"s.jsonl": [milestone("trace_announce", 0, 1.0)]})

    def test_pre_tracing_announce_without_mono_is_skipped(self):
        streams = make_streams()
        streams["server.jsonl"].append(
            event("wire_announce", interval=9, members=1, served=1)
        )
        assert 9 not in assemble(streams).announces

    def test_load_trace_dir_requires_streams(self, tmp_path):
        with pytest.raises(ObsError):
            load_trace_dir(tmp_path)


class TestDigest:
    def test_clocks_and_streams_do_not_matter(self):
        # Same facts observed under wildly different clock skews and a
        # renamed stream must digest identically.
        first = assemble(make_streams(skew_a=50.0, skew_b=-30.0))
        shifted = make_streams(skew_a=-7.25, skew_b=1234.5)
        shifted["worker-99.jsonl"] = shifted.pop("worker-00.jsonl")
        second = assemble(shifted)
        assert first.digest() == second.digest()

    def test_facts_do_matter(self):
        streams = make_streams()
        streams["worker-00.jsonl"][2]["detail"]["recovery_round"] = 4
        assert assemble(streams).digest() != assemble(
            make_streams()
        ).digest()

    def test_order_independent(self):
        timelines = assemble(make_streams()).timelines
        assert timeline_digest(timelines) == timeline_digest(
            list(reversed(timelines))
        )


#: sha256 of the canonical (smoke, seed=7) timelines — the tracing
#: determinism pin, sibling of the wire plane's protocol digest.
SMOKE_SEED7_TRACE_DIGEST = (
    "0441cfdb8fbfe4b1fab932a278371d526c9470cbb0f1d492093b28af7b4cf99e"
)


class TestFleetTraces:
    """End-to-end over real loopback UDP (the slowest tests here)."""

    def test_smoke_fleet_digest_pinned_and_timelines_complete(
        self, tmp_path
    ):
        from repro.wire.fleet import run_fleet

        result = run_fleet("smoke", seed=7, obs_dir=str(tmp_path))
        assert result.ok, result.to_dict()
        asm = assemble(load_trace_dir(tmp_path))
        assert asm.incomplete() == []
        assert asm.digest() == SMOKE_SEED7_TRACE_DIGEST
        # every interval's traces fully accounted for at the barrier
        for counts in asm.completeness().values():
            assert counts["seen"] == counts["expected"]
            assert counts["complete"] == counts["expected"]
        # and the paper's CDF is rebuildable per cohort from the traces
        cdf = asm.recovery_cdf()
        assert set(cdf) == {"high", "low"}
        for stats in cdf.values():
            p = stats["percentiles_ms"]
            assert p["p50"] > 0.0
            assert p["p99"] >= p["p50"]

    def test_trace_digest_invariant_to_worker_placement(self, tmp_path):
        from repro.wire.fleet import run_fleet

        digests = []
        for workers in (0, 2):
            obs_dir = tmp_path / ("w%d" % workers)
            result = run_fleet(
                "sharded",
                seed=5,
                clients=12,
                intervals=2,
                workers=workers,
                obs_dir=str(obs_dir),
            )
            assert result.ok, result.to_dict()
            asm = assemble(load_trace_dir(obs_dir))
            assert asm.incomplete() == []
            digests.append(asm.digest())
            if workers:
                assert "worker-01.jsonl" in asm.streams
        assert digests[0] == digests[1]
