"""Tests for repro.obs.slo — objectives, sliding windows, burn rates."""

import pytest

from repro.errors import ObsError
from repro.obs import DEFAULT_WINDOWS, EventBus, Recorder
from repro.obs.slo import SLO, Objective, SLOTracker


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestObjective:
    def test_error_budget(self):
        assert Objective("x", 0.99).error_budget == pytest.approx(0.01)

    @pytest.mark.parametrize("target", [0.0, 1.0, -0.5, 1.5])
    def test_target_outside_unit_interval_refused(self, target):
        with pytest.raises(ObsError):
            Objective("x", target)


class TestSLO:
    def make(self, target=0.9):
        clock = FakeClock()
        slo = SLO(
            Objective("test", target),
            windows=((10.0, "10s"), (100.0, "100s")),
            clock=clock,
        )
        return slo, clock

    def test_needs_a_window(self):
        with pytest.raises(ObsError):
            SLO(Objective("x", 0.9), windows=())

    def test_idle_burns_nothing(self):
        slo, _ = self.make()
        assert slo.burn_rates() == {"10s": 0.0, "100s": 0.0}

    def test_all_good_burns_nothing(self):
        slo, _ = self.make()
        for _ in range(5):
            slo.record(True)
        assert slo.error_rate(10.0) == 0.0
        assert slo.good_total == 5 and slo.total == 5

    def test_burn_is_error_rate_over_budget(self):
        # target 0.9 -> budget 0.1; 1 bad in 4 -> error 0.25 -> burn 2.5
        slo, _ = self.make(target=0.9)
        for good in (True, True, True, False):
            slo.record(good)
        assert slo.burn_rates() == {"10s": 2.5, "100s": 2.5}

    def test_short_window_forgets_old_errors(self):
        slo, clock = self.make(target=0.9)
        slo.record(False)
        clock.advance(50.0)  # outside 10s, inside 100s
        slo.record(True)
        assert slo.error_rate(10.0) == 0.0
        assert slo.error_rate(100.0) == pytest.approx(0.5)

    def test_samples_trimmed_past_horizon(self):
        slo, clock = self.make()
        slo.record(False)
        clock.advance(101.0)
        slo.record(True)
        assert len(slo._samples) == 1
        # lifetime counters survive the trim
        assert slo.total == 2 and slo.good_total == 1

    def test_batched_outcomes(self):
        slo, _ = self.make(target=0.9)
        slo.record(True, count=9)
        slo.record(False, count=1)
        assert slo.error_rate(10.0) == pytest.approx(0.1)
        assert slo.burn_rate(10.0) == pytest.approx(1.0)
        slo.record(True, count=0)  # no-op
        assert slo.total == 10


class TestSLOTracker:
    def test_default_objectives(self):
        tracker = SLOTracker()
        assert set(tracker.slos) == {"deadline", "recovery"}
        assert tracker.slos["deadline"].objective.target == 0.99
        assert tracker.slos["recovery"].objective.target == 0.95

    def test_publish_pushes_gauges_and_events(self):
        clock = FakeClock()
        tracker = SLOTracker(clock=clock)
        bus = EventBus()
        obs = Recorder(bus=bus)
        tracker.record_deadline(True)
        tracker.record_deadline(False)
        tracker.record_recovery(True, count=30)
        published = tracker.publish(obs, interval=2)
        assert set(published) == {"deadline", "recovery"}
        # deadline: 1 bad of 2 -> error 0.5, budget 0.01 -> burn 50
        gauge = obs.metrics.gauge(
            "slo_burn_rate", slo="deadline", window="1m"
        )
        assert gauge.value == pytest.approx(50.0)
        events = bus.of_kind("slo_burn")
        assert [e["detail"]["slo"] for e in events] == [
            "deadline",
            "recovery",
        ]
        deadline = events[0]["detail"]
        assert deadline["interval"] == 2
        assert deadline["good"] == 1 and deadline["total"] == 2
        assert set(deadline["windows"]) == {
            label for _, label in DEFAULT_WINDOWS
        }

    def test_snapshot_shape(self):
        tracker = SLOTracker(clock=FakeClock())
        tracker.record_deadline(True)
        snap = tracker.snapshot()
        assert snap["deadline"]["total"] == 1
        assert snap["deadline"]["target"] == 0.99
        assert set(snap["deadline"]["burn"]) == {
            label for _, label in DEFAULT_WINDOWS
        }
