"""obs-report's failover section: the HA event kinds must surface as a
counted, ordered timeline so an operator can reconstruct a promotion
from the JSONL stream alone."""

from repro.obs import EventBus, read_events
from repro.obs.report import render_report, summarize


def write_failover_stream(path):
    bus = EventBus(path=str(path))
    bus.emit("ha_role", node="leader", role="leader", epoch=1)
    bus.emit("ha_replication_connect", node="standby", since_seq=0)
    bus.emit("ha_catchup", node="standby", records=12, lag=0)
    bus.emit("ha_digest_check", node="standby", interval=3, match=True)
    bus.emit("ha_heartbeat_lost", node="standby", silent_for=6.0)
    bus.emit("ha_lease_acquired", node="standby", epoch=2)
    bus.emit("ha_promote", node="standby", epoch=2, interval=4)
    bus.emit("ha_fenced", node="leader", epoch=1, current_epoch=2)
    bus.close()
    return read_events(str(path))


class TestSummarize:
    def test_ha_counts_and_timeline(self, tmp_path):
        events = write_failover_stream(tmp_path / "events.jsonl")
        summary = summarize(events)
        assert summary["ha_counts"] == {
            "ha_role": 1,
            "ha_replication_connect": 1,
            "ha_catchup": 1,
            "ha_digest_check": 1,
            "ha_heartbeat_lost": 1,
            "ha_lease_acquired": 1,
            "ha_promote": 1,
            "ha_fenced": 1,
        }
        timeline = summary["failover_timeline"]
        assert [entry["kind"] for entry in timeline] == [
            "ha_role",
            "ha_replication_connect",
            "ha_catchup",
            "ha_digest_check",
            "ha_heartbeat_lost",
            "ha_lease_acquired",
            "ha_promote",
            "ha_fenced",
        ]
        promote = timeline[6]["detail"]
        assert promote["epoch"] == 2 and promote["interval"] == 4

    def test_absent_without_ha_events(self):
        summary = summarize([])
        assert summary["ha_counts"] == {}
        assert summary["failover_timeline"] == []


class TestRender:
    def test_failover_section_rendered_in_order(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_failover_stream(path)
        lines = render_report(str(path))
        text = "\n".join(lines)
        assert "failover timeline (HA events, in order):" in text
        # rindex: the first occurrences sit in the alphabetical counts
        # header; the last are the ordered timeline rows.
        assert text.rindex("ha_promote") < text.rindex("ha_fenced")
        assert "current_epoch=2" in text

    def test_no_section_without_ha_events(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert not any(
            "failover timeline" in line for line in render_report(str(path))
        )
