"""Tests for the recovery-mode (direct vs decode) accounting."""

import numpy as np
import pytest

from repro.sim import LossParameters, MulticastTopology
from repro.transport import FleetConfig, FleetSimulator
from repro.transport.fleet import make_paper_workload
from repro.transport.metrics import MessageStats
from repro.util import RandomSource


def run(alpha=0.2, rho=1.0, seed=0, n_users=512):
    workload = make_paper_workload(n_users=n_users, k=10, seed=1)
    topology = MulticastTopology(
        workload.n_users,
        params=LossParameters(alpha=alpha),
        random_source=RandomSource(seed),
    )
    simulator = FleetSimulator(
        topology,
        FleetConfig(rho=rho, adapt_rho=False, multicast_only=True),
        seed=seed + 1,
    )
    stats, _ = simulator.run_message(workload, rho=rho)
    return workload, stats


class TestDecodeAccounting:
    def test_counts_partition_recovered_users(self):
        workload, stats = run(seed=3)
        assert (
            stats.n_recovered_direct + stats.n_recovered_decode
            == workload.n_users
        )

    def test_lossless_nobody_decodes(self):
        workload = make_paper_workload(n_users=256, k=10, seed=1)
        topology = MulticastTopology(
            workload.n_users,
            params=LossParameters(
                alpha=0.0, p_high=0.0, p_low=0.0, p_source=0.0
            ),
            random_source=RandomSource(4),
        )
        simulator = FleetSimulator(
            topology, FleetConfig(multicast_only=True), seed=5
        )
        stats, _ = simulator.run_message(workload)
        assert stats.n_recovered_decode == 0
        assert stats.decode_fraction == 0.0

    def test_vast_majority_avoid_decoding(self):
        """§5.2's claim at the paper's operating point."""
        _, stats = run(alpha=0.2, rho=1.0, seed=6)
        assert stats.decode_fraction < 0.15

    def test_decode_fraction_grows_with_loss(self):
        _, low = run(alpha=0.0, seed=7)
        _, high = run(alpha=1.0, seed=7)
        assert high.decode_fraction > low.decode_fraction

    def test_empty_stats_fraction(self):
        stats = MessageStats(
            message_index=0, n_enc_packets=0, n_blocks=0, k=5, rho=1.0
        )
        assert stats.decode_fraction == 0.0
