"""Tests for repro.transport.user — the receiver state machine."""

import numpy as np
import pytest

from repro.crypto import KeyFactory
from repro.errors import TransportError
from repro.keytree import KeyTree, MarkingAlgorithm
from repro.rekey import RekeyMessageBuilder
from repro.rekey.packets import FEC_PAYLOAD_OFFSET
from repro.transport.user import UserTransport


@pytest.fixture(scope="module")
def message():
    rng = np.random.default_rng(0)
    users = ["u%d" % i for i in range(256)]
    tree = KeyTree.full_balanced(users, 4, key_factory=KeyFactory(seed=2))
    batch = MarkingAlgorithm().apply(
        tree, leaves=list(rng.choice(users, 64, replace=False))
    )
    return RekeyMessageBuilder(block_size=4).build(batch, message_id=3)


def make_user(message, user_id):
    return UserTransport(
        user_id,
        k=message.k,
        degree=4,
        n_blocks=message.n_blocks,
        message_id=message.message_id,
    )


def enc_with_payload(message, slot_index):
    packet = message.enc_packets()[slot_index]
    payload = packet.encode(message.packet_size)[FEC_PAYLOAD_OFFSET:]
    return packet, payload


def own_slot_index(message, user_id):
    for index, packet in enumerate(message.enc_packets()):
        if not packet.is_duplicate and packet.covers_user(user_id):
            return index
    raise AssertionError("no packet covers user %d" % user_id)


class TestDirectReception:
    def test_specific_packet_completes(self, message):
        user_id = next(iter(message.needs_by_user))
        user = make_user(message, user_id)
        packet, payload = enc_with_payload(
            message, own_slot_index(message, user_id)
        )
        user.on_enc(packet, payload)
        assert user.done
        assert user.recovery_round == 1
        wanted = set(message.needs_by_user[user_id])
        got = {e.encryption_id for e in user.recovered_encryptions}
        assert wanted <= got

    def test_foreign_packet_does_not_complete(self, message):
        user_id = next(iter(message.needs_by_user))
        foreign = [
            i
            for i, p in enumerate(message.enc_packets())
            if not p.covers_user(user_id)
        ][0]
        user = make_user(message, user_id)
        user.on_enc(*enc_with_payload(message, foreign))
        assert not user.done

    def test_recovery_round_tracks_rounds(self, message):
        user_id = next(iter(message.needs_by_user))
        user = make_user(message, user_id)
        assert user.end_of_round() is not None  # round 1: nothing received
        packet, payload = enc_with_payload(
            message, own_slot_index(message, user_id)
        )
        user.on_enc(packet, payload)
        assert user.recovery_round == 2

    def test_wrong_message_id_rejected(self, message):
        user_id = next(iter(message.needs_by_user))
        user = UserTransport(
            user_id, k=message.k, degree=4, n_blocks=message.n_blocks,
            message_id=0,
        )
        packet, payload = enc_with_payload(message, 0)
        with pytest.raises(TransportError):
            user.on_enc(packet, payload)


class TestFecRecovery:
    def test_decode_own_block_from_parity(self, message):
        user_id = next(iter(message.needs_by_user))
        own = own_slot_index(message, user_id)
        block_id = message.enc_packets()[own].block_id
        user = make_user(message, user_id)
        # Lose the specific packet; deliver the other k-1 ENC + 1 parity.
        for slot in range(block_id * message.k, (block_id + 1) * message.k):
            if slot == own:
                continue
            user.on_enc(*enc_with_payload(message, slot))
        for parity in message.parity_packets(block_id, 1):
            user.on_parity(parity)
        assert not user.done  # decoding happens at the round boundary
        assert user.end_of_round() is None
        assert user.done
        wanted = set(message.needs_by_user[user_id])
        got = {e.encryption_id for e in user.recovered_encryptions}
        assert wanted <= got

    def test_nack_reports_shortfall(self, message):
        user_id = next(iter(message.needs_by_user))
        own = own_slot_index(message, user_id)
        block_id = message.enc_packets()[own].block_id
        user = make_user(message, user_id)
        # Deliver k-2 packets of the block (losing 2, incl. the user's).
        delivered = 0
        for slot in range(block_id * message.k, (block_id + 1) * message.k):
            if slot == own or delivered == message.k - 2:
                continue
            user.on_enc(*enc_with_payload(message, slot))
            delivered += 1
        nack = user.end_of_round()
        assert nack is not None
        by_block = {r.block_id: r.n_parity for r in nack.requests}
        assert by_block[block_id] == 2

    def test_nack_covers_block_range_when_uncertain(self, message):
        """A user with nothing received NACKs every candidate block."""
        user_id = next(iter(message.needs_by_user))
        user = make_user(message, user_id)
        nack = user.end_of_round()
        assert {r.block_id for r in nack.requests} == set(
            range(message.n_blocks)
        )
        assert all(r.n_parity == message.k for r in nack.requests)

    def test_decoding_other_blocks_tightens_estimate(self, message):
        """Decoding a foreign block reveals its frm/to intervals and
        narrows the NACK range."""
        user_id = max(message.needs_by_user)  # last user: lives in last block
        user = make_user(message, user_id)
        # Deliver all of block 0 (foreign for the last user).
        for slot in range(0, message.k):
            user.on_enc(*enc_with_payload(message, slot))
        nack = user.end_of_round()
        assert nack is not None
        assert 0 not in {r.block_id for r in nack.requests}

    def test_parity_alone_recovers_block(self, message):
        user_id = next(iter(message.needs_by_user))
        own = own_slot_index(message, user_id)
        block_id = message.enc_packets()[own].block_id
        user = make_user(message, user_id)
        for parity in message.parity_packets(block_id, message.k):
            user.on_parity(parity)
        user.end_of_round()
        assert user.done


class TestUsrReception:
    def test_usr_completes(self, message):
        user_id = next(iter(message.needs_by_user))
        user = make_user(message, user_id)
        user.on_usr(message.usr_packet(user_id))
        assert user.done
        assert user.recovery_round == 0

    def test_usr_for_other_user_rejected(self, message):
        ids = sorted(message.needs_by_user)
        user = make_user(message, ids[0])
        with pytest.raises(TransportError):
            user.on_usr(message.usr_packet(ids[1]))

    def test_done_user_ignores_more_packets(self, message):
        user_id = next(iter(message.needs_by_user))
        user = make_user(message, user_id)
        user.on_usr(message.usr_packet(user_id))
        packet, payload = enc_with_payload(message, 0)
        user.on_enc(packet, payload)  # no effect, no error
        assert user.recovery_round == 0
