"""Adaptive control under per-interval workload variation.

The figure benches reuse one workload per sequence for speed; the real
system regenerates the rekey message every interval (different leavers,
different packet counts).  These tests confirm the controllers stay
stable when the workload genuinely varies message to message.
"""

import numpy as np
import pytest

from repro.keytree import KeyTree, MarkingAlgorithm
from repro.sim import LossParameters, MulticastTopology
from repro.transport import FleetConfig, FleetSimulator, FleetWorkload
from repro.util import RandomSource


N_USERS = 1024
K = 10


class ChurningWorkloadFactory:
    """Fresh leavers each interval; departures replaced to keep N fixed."""

    def __init__(self, seed):
        self._rng = np.random.default_rng(seed)
        self.n_active = None

    def __call__(self, index):
        users = ["u%d" % i for i in range(N_USERS)]
        tree = KeyTree.full_balanced(users, 4)
        churn = int(self._rng.integers(N_USERS // 8, 3 * N_USERS // 8))
        leavers = self._rng.choice(N_USERS, churn, replace=False)
        batch = MarkingAlgorithm(renew_keys=False).apply(
            tree,
            joins=["j%d" % i for i in range(churn)],
            leaves=[users[i] for i in leavers],
        )
        workload = FleetWorkload.from_batch(batch, k=K)
        self.n_active = workload.n_users
        return workload


class TestVaryingWorkloads:
    def test_replacement_churn_keeps_population_fixed(self):
        factory = ChurningWorkloadFactory(seed=1)
        sizes = {factory(i).n_users for i in range(3)}
        assert sizes == {N_USERS}  # J = L replacement: everyone needs keys

    def test_adaptive_rho_stable_across_varying_messages(self):
        factory = ChurningWorkloadFactory(seed=2)
        first = factory(0)
        topology = MulticastTopology(
            first.n_users,
            params=LossParameters(),
            random_source=RandomSource(3),
        )
        simulator = FleetSimulator(
            topology,
            FleetConfig(rho=1.0, num_nack=20, multicast_only=True),
            seed=4,
        )
        # Note: all messages have the same active population (J = L), so
        # one topology serves the whole sequence.
        cache = {}

        def cached_factory(index):
            if index not in cache:
                cache[index] = factory(index)
            return cache[index]

        sequence = simulator.run_sequence(cached_factory, 12)
        tail_rho = sequence.rho_trajectory[4:]
        assert max(tail_rho) - min(tail_rho) < 0.5
        tail_nacks = sequence.first_round_nacks()[4:]
        assert np.mean(tail_nacks) < 60  # controlled near the target

    def test_message_sizes_vary_but_delivery_holds(self):
        factory = ChurningWorkloadFactory(seed=5)
        sizes = [factory(i).n_enc_packets for i in range(4)]
        assert len(set(sizes)) > 1  # genuinely different messages
        for index in range(4):
            workload = factory(index)
            topology = MulticastTopology(
                workload.n_users,
                params=LossParameters(),
                random_source=RandomSource(10 + index),
            )
            simulator = FleetSimulator(
                topology,
                FleetConfig(rho=1.0, adapt_rho=False, multicast_only=True),
                seed=20 + index,
            )
            stats, _ = simulator.run_message(workload)
            assert (stats.user_rounds >= 1).all()
