"""Statistical equivalence of the fleet and object-level simulators.

The two implementations share the protocol but not a single line of
mechanics (byte packets + FEC decode vs matrix reductions), so agreement
here is strong evidence both are right.  We compare distributional
metrics over several seeds — the RNG consumption patterns differ, so
per-seed equality is not expected.
"""

import numpy as np
import pytest

from repro.crypto import KeyFactory
from repro.keytree import KeyTree, MarkingAlgorithm
from repro.rekey import RekeyMessageBuilder
from repro.sim import LossParameters, MulticastTopology
from repro.transport import (
    FleetConfig,
    FleetSimulator,
    FleetWorkload,
    RekeySession,
    SessionConfig,
)
from repro.util import RandomSource


N_USERS = 512
N_LEAVE = 128
K = 10
N_SEEDS = 10

# Source-link loss off: a source drop fails ~46 users at once (everyone
# sharing the dropped ENC packet), a heavy tail that would need hundreds
# of seeds to average out.  Receiver-link behaviour is what the two
# implementations could plausibly disagree on, and it dominates every
# paper metric.
EQUIV_LOSS = LossParameters(p_source=0.0)


def build_batch(seed):
    rng = np.random.default_rng(seed)
    users = ["u%d" % i for i in range(N_USERS)]
    tree = KeyTree.full_balanced(users, 4, key_factory=KeyFactory(seed=2))
    return MarkingAlgorithm().apply(
        tree, leaves=list(rng.choice(users, N_LEAVE, replace=False))
    )


@pytest.fixture(scope="module")
def shared():
    batch = build_batch(0)
    message = RekeyMessageBuilder(block_size=K).build(batch, message_id=1)
    workload = FleetWorkload.from_batch(batch, k=K)
    return message, workload


def session_metrics(message, seed, rho):
    topology = MulticastTopology(
        len(message.needs_by_user),
        params=EQUIV_LOSS,
        random_source=RandomSource(seed),
    )
    session = RekeySession(
        message,
        topology,
        SessionConfig(rho=rho, multicast_only=True),
        rng=np.random.default_rng(seed),
    )
    stats = session.run()
    return (
        stats.first_round_nacks,
        (stats.user_rounds == 1).mean(),
        stats.bandwidth_overhead,
    )


def fleet_metrics(workload, seed, rho):
    topology = MulticastTopology(
        workload.n_users,
        params=EQUIV_LOSS,
        random_source=RandomSource(seed),
    )
    sim = FleetSimulator(
        topology, FleetConfig(multicast_only=True), seed=seed
    )
    stats, _ = sim.run_message(workload, rho=rho)
    return (
        stats.first_round_nacks,
        (stats.user_rounds == 1).mean(),
        stats.bandwidth_overhead,
    )


class TestEquivalence:
    def test_same_workload_shape(self, shared):
        message, workload = shared
        assert message.n_enc_packets == workload.n_enc_packets
        assert message.n_blocks == workload.n_blocks
        assert len(message.needs_by_user) == workload.n_users

    @pytest.mark.parametrize("rho", [1.0, 1.6])
    def test_distributional_agreement(self, shared, rho):
        message, workload = shared
        session_runs = np.array(
            [session_metrics(message, 100 + s, rho) for s in range(N_SEEDS)]
        )
        fleet_runs = np.array(
            [fleet_metrics(workload, 200 + s, rho) for s in range(N_SEEDS)]
        )
        s_nacks, s_frac, s_bw = session_runs.mean(axis=0)
        f_nacks, f_frac, f_bw = fleet_runs.mean(axis=0)
        # Fraction recovered in round 1: within 2 percentage points.
        assert abs(s_frac - f_frac) < 0.02
        # First-round NACK counts: within 35 % of each other (both are
        # noisy small counts at rho=1.6).
        assert abs(s_nacks - f_nacks) <= max(5, 0.35 * max(s_nacks, f_nacks))
        # Bandwidth overhead: within 15 %.
        assert abs(s_bw - f_bw) < 0.15 * max(s_bw, f_bw)
