"""Statistical equivalence of the fleet and object-level simulators.

The two implementations share the protocol but not a single line of
mechanics (byte packets + FEC decode vs matrix reductions), so agreement
here is strong evidence both are right.  We compare distributional
metrics over several seeds — the RNG consumption patterns differ, so
per-seed equality is not expected.

The session side runs under **both** RSE coders (the tentpole's matrix
rewrite and the scalar reference).  The coders are byte-identical by
construction (see ``tests/fec/test_rse_golden.py``), so the same seeds
must give bit-identical session statistics — pinned by
``test_coders_give_identical_sessions`` — and each coder must
independently sit inside the fleet-agreement bands.

Tolerance bands, and why each is as wide as it is:

- **fraction of users recovered in round 1** — within 0.02 absolute.
  The tightest band because it averages over all 512 users x 10 seeds
  (~5000 Bernoulli draws): the binomial standard error of each mean is
  ~0.005, so 0.02 is ~3 combined standard errors.  This is the paper's
  headline FEC metric (Figure 9), hence the priority on keeping it
  tight.
- **first-round NACK count** — within 35% of the larger mean, with an
  absolute floor of 5.  NACKs are small counts (a handful at rho=1.6)
  with near-Poisson dispersion, so the relative error of a 10-seed mean
  is large; the floor keeps the band meaningful when means approach
  zero, where a 35% relative band would demand sub-integer agreement.
- **server bandwidth overhead h'/h** — within 15% relative.  Overhead
  is quantised by whole parity packets per round (a one-packet
  difference in a retransmission round moves the metric by 1/k), and
  the implementations legitimately differ in *which* seeds trigger an
  extra round; 10 seeds average that to well inside 15%.
"""

import numpy as np
import pytest

from repro.crypto import KeyFactory
from repro.fec.rse import ReferenceRSECoder, RSECoder
from repro.keytree import KeyTree, MarkingAlgorithm
from repro.rekey import RekeyMessageBuilder
from repro.sim import LossParameters, MulticastTopology
from repro.transport import (
    FleetConfig,
    FleetSimulator,
    FleetWorkload,
    RekeySession,
    SessionConfig,
)
from repro.util import RandomSource


N_USERS = 512
N_LEAVE = 128
K = 10
N_SEEDS = 10

# Source-link loss off: a source drop fails ~46 users at once (everyone
# sharing the dropped ENC packet), a heavy tail that would need hundreds
# of seeds to average out.  Receiver-link behaviour is what the two
# implementations could plausibly disagree on, and it dominates every
# paper metric.
EQUIV_LOSS = LossParameters(p_source=0.0)

#: Both sides of the tentpole's codec rewrite; sessions must behave
#: identically under either.
CODERS = {
    "matrix": lambda: RSECoder(K),
    "reference": lambda: ReferenceRSECoder(K),
}


def build_batch(seed):
    rng = np.random.default_rng(seed)
    users = ["u%d" % i for i in range(N_USERS)]
    tree = KeyTree.full_balanced(users, 4, key_factory=KeyFactory(seed=2))
    return MarkingAlgorithm().apply(
        tree, leaves=list(rng.choice(users, N_LEAVE, replace=False))
    )


@pytest.fixture(scope="module")
def shared():
    batch = build_batch(0)
    message = RekeyMessageBuilder(block_size=K).build(batch, message_id=1)
    workload = FleetWorkload.from_batch(batch, k=K)
    return message, workload


def session_metrics(message, seed, rho, coder):
    topology = MulticastTopology(
        len(message.needs_by_user),
        params=EQUIV_LOSS,
        random_source=RandomSource(seed),
    )
    session = RekeySession(
        message,
        topology,
        SessionConfig(rho=rho, multicast_only=True),
        rng=np.random.default_rng(seed),
        coder=coder,
    )
    stats = session.run()
    return (
        stats.first_round_nacks,
        (stats.user_rounds == 1).mean(),
        stats.bandwidth_overhead,
    )


def fleet_metrics(workload, seed, rho):
    topology = MulticastTopology(
        workload.n_users,
        params=EQUIV_LOSS,
        random_source=RandomSource(seed),
    )
    sim = FleetSimulator(
        topology, FleetConfig(multicast_only=True), seed=seed
    )
    stats, _ = sim.run_message(workload, rho=rho)
    return (
        stats.first_round_nacks,
        (stats.user_rounds == 1).mean(),
        stats.bandwidth_overhead,
    )


_fleet_cache = {}


def fleet_runs_for(workload, rho):
    """Fleet metrics don't involve an RSE coder; compute once per rho."""
    if rho not in _fleet_cache:
        _fleet_cache[rho] = np.array(
            [fleet_metrics(workload, 200 + s, rho) for s in range(N_SEEDS)]
        )
    return _fleet_cache[rho]


class TestEquivalence:
    def test_same_workload_shape(self, shared):
        message, workload = shared
        assert message.n_enc_packets == workload.n_enc_packets
        assert message.n_blocks == workload.n_blocks
        assert len(message.needs_by_user) == workload.n_users

    @pytest.mark.parametrize("coder_kind", sorted(CODERS))
    @pytest.mark.parametrize("rho", [1.0, 1.6])
    def test_distributional_agreement(self, shared, rho, coder_kind):
        message, workload = shared
        coder = CODERS[coder_kind]()
        session_runs = np.array(
            [
                session_metrics(message, 100 + s, rho, coder)
                for s in range(N_SEEDS)
            ]
        )
        fleet_runs = fleet_runs_for(workload, rho)
        s_nacks, s_frac, s_bw = session_runs.mean(axis=0)
        f_nacks, f_frac, f_bw = fleet_runs.mean(axis=0)
        # Bands documented in the module docstring.
        assert abs(s_frac - f_frac) < 0.02
        assert abs(s_nacks - f_nacks) <= max(5, 0.35 * max(s_nacks, f_nacks))
        assert abs(s_bw - f_bw) < 0.15 * max(s_bw, f_bw)

    @pytest.mark.parametrize("rho", [1.0, 1.6])
    def test_coders_give_identical_sessions(self, shared, rho):
        """Stronger than the bands: the coders decode to identical
        bytes, and the session consumes randomness independently of the
        decoder, so the same seed must yield bit-identical statistics
        under either coder — no tolerance at all."""
        message, _ = shared
        for seed in (100, 101, 102):
            matrix = session_metrics(
                message, seed, rho, CODERS["matrix"]()
            )
            reference = session_metrics(
                message, seed, rho, CODERS["reference"]()
            )
            assert matrix == reference
