"""Tests for repro.transport.trace and its session integration."""

import numpy as np
import pytest

from repro.crypto import KeyFactory
from repro.errors import ConfigurationError
from repro.keytree import KeyTree, MarkingAlgorithm
from repro.rekey import RekeyMessageBuilder
from repro.sim import LossParameters, MulticastTopology
from repro.transport import RekeySession, SessionConfig
from repro.transport.trace import SessionTrace, TraceEvent
from repro.util import RandomSource


class TestSessionTrace:
    def test_emit_and_filter(self):
        trace = SessionTrace()
        trace.emit("session_start", 0.0, users=10)
        trace.emit("round_planned", 0.0, round=1, packets=20)
        trace.emit("round_complete", 2.0, round=1, nacks=3, recovered=9)
        assert len(trace) == 3
        assert len(trace.of_kind("round_planned")) == 1
        assert trace.of_kind("round_complete")[0].detail["nacks"] == 3

    def test_unknown_kind_rejected_when_strict(self):
        with pytest.raises(ConfigurationError):
            SessionTrace().emit("made_up", 0.0)

    def test_lenient_mode(self):
        trace = SessionTrace(strict=False)
        trace.emit("custom", 1.0, foo="bar")
        assert trace.summary() == {"custom": 1}

    def test_render(self):
        trace = SessionTrace()
        trace.emit("session_start", 0.5, users=4)
        text = trace.render()
        assert "session_start" in text
        assert "users=4" in text
        assert "0.500s" in text

    def test_render_limit(self):
        trace = SessionTrace()
        for i in range(5):
            trace.emit("round_planned", float(i), round=i, packets=1)
        assert trace.render(limit=2).count("\n") == 1

    def test_event_is_frozen(self):
        event = TraceEvent(time=0.0, kind="session_start", detail={})
        with pytest.raises(AttributeError):
            event.time = 1.0


class TestObsRegistryIntegration:
    def test_strict_accepts_service_level_kinds(self):
        # Pre-shim, any kind outside the session set raised even in
        # strict mode; the obs registry is the authority now.
        trace = SessionTrace()
        trace.emit("degradation", 1.0, decision="carry-over")
        trace.emit("fec_encode", 2.0, block_id=0)
        assert len(trace) == 2

    def test_strict_accepts_registered_custom_kind(self):
        from repro.obs import register_event_kind

        register_event_kind("trace_test_custom")
        trace = SessionTrace()
        trace.emit("trace_test_custom", 0.0, payload=1)
        assert trace.summary() == {"trace_test_custom": 1}

    def test_known_kinds_alias_preserved(self):
        from repro.obs.events import SESSION_EVENT_KINDS
        from repro.transport.trace import KNOWN_KINDS

        assert KNOWN_KINDS == SESSION_EVENT_KINDS

    def test_bus_forwarding(self):
        from repro.obs import EventBus

        bus = EventBus()
        trace = SessionTrace(bus=bus)
        trace.emit("round_complete", 2.5, round=1, nacks=3)
        assert len(trace) == 1  # local log still filled
        record = bus.of_kind("round_complete")[0]
        assert record["detail"]["sim_time"] == 2.5
        assert record["detail"]["nacks"] == 3

    def test_session_with_trace_and_obs_does_not_double_emit(self):
        from repro.obs import EventBus, Recorder

        bus = EventBus()
        trace = SessionTrace(bus=bus)
        obs = Recorder(bus=bus)
        rng = np.random.default_rng(0)
        users = ["u%d" % i for i in range(64)]
        tree = KeyTree.full_balanced(users, 4, key_factory=KeyFactory(seed=1))
        batch = MarkingAlgorithm().apply(
            tree, leaves=list(rng.choice(users, 16, replace=False))
        )
        message = RekeyMessageBuilder(block_size=8).build(batch, message_id=1)
        topology = MulticastTopology(
            len(message.needs_by_user),
            params=LossParameters(),
            random_source=RandomSource(3),
        )
        RekeySession(
            message,
            topology,
            SessionConfig(rho=1.0),
            rng=np.random.default_rng(4),
            trace=trace,
            obs=obs,
        ).run()
        starts = bus.of_kind("session_start")
        assert len(starts) == 1  # trace forwards; obs must not re-emit


class TestSessionIntegration:
    def _run(self, trace):
        rng = np.random.default_rng(0)
        users = ["u%d" % i for i in range(128)]
        tree = KeyTree.full_balanced(users, 4, key_factory=KeyFactory(seed=1))
        batch = MarkingAlgorithm().apply(
            tree, leaves=list(rng.choice(users, 32, replace=False))
        )
        message = RekeyMessageBuilder(block_size=8).build(batch, message_id=1)
        topology = MulticastTopology(
            len(message.needs_by_user),
            params=LossParameters(),
            random_source=RandomSource(3),
        )
        session = RekeySession(
            message,
            topology,
            SessionConfig(rho=1.0),
            rng=np.random.default_rng(4),
            trace=trace,
        )
        return session.run()

    def test_session_emits_lifecycle(self):
        trace = SessionTrace()
        stats = self._run(trace)
        summary = trace.summary()
        assert summary["session_start"] == 1
        assert summary["session_complete"] == 1
        assert summary["round_planned"] == stats.n_multicast_rounds
        assert summary["round_complete"] == stats.n_multicast_rounds

    def test_round_events_match_stats(self):
        trace = SessionTrace()
        stats = self._run(trace)
        completes = trace.of_kind("round_complete")
        for event, round_stats in zip(completes, stats.rounds):
            assert event.detail["nacks"] == round_stats.nacks_received
            assert (
                event.detail["recovered"]
                == round_stats.users_recovered_total
            )

    def test_no_trace_is_fine(self):
        stats = self._run(None)
        assert stats.n_multicast_rounds >= 1

    def test_times_monotone(self):
        trace = SessionTrace()
        self._run(trace)
        times = [event.time for event in trace.events]
        assert times == sorted(times)
