"""Tests for repro.transport.metrics."""

import numpy as np
import pytest

from repro.transport.metrics import (
    MessageStats,
    RoundStats,
    SequenceStats,
    UnicastStats,
)


def make_stats(user_rounds, rounds=None, n_enc=10):
    user_rounds = np.asarray(user_rounds, dtype=int)
    stats = MessageStats(
        message_index=0,
        n_enc_packets=n_enc,
        n_blocks=2,
        k=5,
        rho=1.0,
        n_users=user_rounds.size,
    )
    stats.user_rounds = user_rounds
    for spec in rounds or []:
        stats.rounds.append(RoundStats(*spec))
    return stats


class TestMessageStats:
    def test_bandwidth_overhead(self):
        stats = make_stats(
            [1, 1],
            rounds=[(1, 10, 4, 3, 1), (2, 0, 2, 0, 2)],
            n_enc=8,
        )
        assert stats.total_multicast_packets == 16
        assert stats.bandwidth_overhead == pytest.approx(2.0)

    def test_first_round_nacks(self):
        stats = make_stats([1], rounds=[(1, 10, 0, 7, 0)])
        assert stats.first_round_nacks == 7

    def test_rounds_for_all_users(self):
        assert make_stats([1, 2, 3]).rounds_for_all_users == 3

    def test_rounds_for_all_with_unicast_tail(self):
        stats = make_stats([1, 0], rounds=[(1, 5, 0, 1, 1), (2, 0, 2, 1, 1)])
        # The unicast-only user waited past the last multicast round.
        assert stats.rounds_for_all_users == 3

    def test_mean_rounds_per_user(self):
        stats = make_stats([1, 1, 3], rounds=[(1, 5, 0, 1, 2), (2, 0, 1, 1, 2), (3, 0, 1, 0, 3)])
        assert stats.mean_rounds_per_user == pytest.approx((1 + 1 + 3) / 3)

    def test_users_missing_deadline(self):
        stats = make_stats([1, 2, 3, 0])
        assert stats.users_missing_deadline(2) == 2  # round-3 and unicast
        assert stats.users_missing_deadline(3) == 1  # only the unicast one

    def test_empty_message(self):
        stats = MessageStats(
            message_index=0, n_enc_packets=0, n_blocks=0, k=5, rho=1.0
        )
        assert stats.bandwidth_overhead == 0.0
        assert stats.rounds_for_all_users == 0
        assert stats.mean_rounds_per_user == 0.0
        assert stats.users_missing_deadline(2) == 0


class TestSequenceStats:
    def test_append_and_aggregates(self):
        sequence = SequenceStats()
        for i, nacks in enumerate([30, 20, 10]):
            stats = make_stats([1], rounds=[(1, 10, 0, nacks, 1)])
            sequence.append(stats, rho=1.0 + i, num_nack=20, misses=i)
        assert sequence.n_messages == 3
        assert sequence.first_round_nacks() == [30, 20, 10]
        assert sequence.mean_first_round_nacks() == pytest.approx(20)
        assert sequence.mean_first_round_nacks(skip=1) == pytest.approx(15)
        assert sequence.rho_trajectory == [1.0, 2.0, 3.0]
        assert sequence.deadline_misses == [0, 1, 2]

    def test_empty_aggregates(self):
        sequence = SequenceStats()
        assert sequence.mean_bandwidth_overhead() == 0.0
        assert sequence.mean_rounds_for_all() == 0.0


class TestUnicastStats:
    def test_defaults(self):
        unicast = UnicastStats()
        assert unicast.users_served == 0
        assert unicast.usr_packets_sent == 0
