"""Tests for repro.transport.server — scheduling and NACK aggregation."""

import numpy as np
import pytest

from repro.crypto import KeyFactory
from repro.errors import TransportError
from repro.keytree import KeyTree, MarkingAlgorithm
from repro.rekey import RekeyMessageBuilder
from repro.rekey.packets import NackPacket, NackRequest, PacketType
from repro.transport.server import ServerTransport, UnicastPolicy


@pytest.fixture(scope="module")
def message():
    rng = np.random.default_rng(1)
    users = ["u%d" % i for i in range(256)]
    tree = KeyTree.full_balanced(users, 4, key_factory=KeyFactory(seed=2))
    batch = MarkingAlgorithm().apply(
        tree, leaves=list(rng.choice(users, 64, replace=False))
    )
    return RekeyMessageBuilder(block_size=4).build(batch, message_id=5)


def nack(message, user_id, *pairs):
    return NackPacket(
        rekey_message_id=message.message_id,
        user_id=user_id,
        requests=tuple(
            NackRequest(block_id=b, n_parity=a) for b, a in pairs
        ),
    )


class TestRoundOne:
    def test_rho_one_sends_only_enc(self, message):
        server = ServerTransport(message, rho=1.0)
        planned = server.plan_round()
        kinds = {p.packet.packet_type for p in planned}
        assert kinds == {PacketType.ENC}
        assert len(planned) == message.n_blocks * message.k

    def test_proactive_parity_count(self, message):
        server = ServerTransport(message, rho=1.5)
        planned = server.plan_round()
        parity = [
            p for p in planned if p.packet.packet_type is PacketType.PARITY
        ]
        assert len(parity) == message.n_blocks * 2  # ceil(0.5 * 4)

    def test_interleaved_block_order(self, message):
        server = ServerTransport(message, rho=1.0)
        planned = server.plan_round()
        blocks = [p.packet.block_id for p in planned]
        expected = [
            b for _ in range(message.k) for b in range(message.n_blocks)
        ]
        assert blocks == expected

    def test_send_offsets_match_interval(self, message):
        server = ServerTransport(message, rho=1.0, sending_interval_ms=100)
        planned = server.plan_round()
        offsets = [p.offset for p in planned]
        assert offsets[0] == 0.0
        assert offsets[1] == pytest.approx(0.1)
        assert offsets[-1] == pytest.approx(0.1 * (len(planned) - 1))

    def test_enc_payloads_attached(self, message):
        server = ServerTransport(message, rho=1.0)
        planned = server.plan_round()
        assert all(
            p.payload is not None
            for p in planned
            if p.packet.packet_type is PacketType.ENC
        )

    def test_empty_message_rejected(self):
        tree = KeyTree.full_balanced(
            ["a", "b"], 2, key_factory=KeyFactory(seed=0)
        )
        batch = MarkingAlgorithm().apply(tree)
        empty = RekeyMessageBuilder().build(batch, message_id=0)
        with pytest.raises(TransportError):
            ServerTransport(empty)


class TestNackAggregation:
    def test_amax_is_per_block_max(self, message):
        server = ServerTransport(message, rho=1.0)
        server.plan_round()
        server.finish_round(
            [
                nack(message, 10, (0, 2), (1, 4)),
                nack(message, 11, (0, 3)),
            ]
        )
        planned = server.plan_round()
        by_block = {}
        for p in planned:
            by_block.setdefault(p.packet.block_id, 0)
            by_block[p.packet.block_id] += 1
        assert by_block == {0: 3, 1: 4}

    def test_retransmitted_parity_rows_are_fresh(self, message):
        server = ServerTransport(message, rho=1.5)
        first = server.plan_round()
        server.finish_round([nack(message, 10, (0, 1))])
        second = server.plan_round()
        seqs_first = {
            p.packet.seq_in_block
            for p in first
            if p.packet.packet_type is PacketType.PARITY
            and p.packet.block_id == 0
        }
        seqs_second = {
            p.packet.seq_in_block
            for p in second
            if p.packet.block_id == 0
        }
        assert seqs_first.isdisjoint(seqs_second)

    def test_first_round_requests_use_user_max(self, message):
        server = ServerTransport(message, rho=1.0)
        server.plan_round()
        server.finish_round(
            [nack(message, 10, (0, 2), (1, 4)), nack(message, 11, (1, 1))]
        )
        assert sorted(server.first_round_requests) == [1, 4]

    def test_first_round_requests_unavailable_before_round(self, message):
        server = ServerTransport(message, rho=1.0)
        with pytest.raises(TransportError):
            server.first_round_requests

    def test_wrong_message_nack_rejected(self, message):
        server = ServerTransport(message, rho=1.0)
        server.plan_round()
        bad = NackPacket(
            rekey_message_id=(message.message_id + 1) % 64,
            user_id=1,
            requests=(NackRequest(block_id=0, n_parity=1),),
        )
        with pytest.raises(TransportError):
            server.accept_nack(bad)

    def test_unknown_block_rejected(self, message):
        server = ServerTransport(message, rho=1.0)
        server.plan_round()
        with pytest.raises(TransportError):
            server.accept_nack(nack(message, 1, (message.n_blocks, 1)))


class TestUnicastPolicy:
    def test_switch_after_max_rounds(self):
        policy = UnicastPolicy(max_multicast_rounds=2, compare_usr_bytes=False)
        assert not policy.should_switch(1, None, 10_000)
        assert policy.should_switch(2, None, 10_000)

    def test_early_switch_on_byte_comparison(self):
        policy = UnicastPolicy(max_multicast_rounds=5, compare_usr_bytes=True)
        assert policy.should_switch(1, 500, 2054)
        assert not policy.should_switch(1, 5000, 2054)

    def test_server_usr_byte_accounting(self, message):
        server = ServerTransport(
            message,
            rho=1.0,
            unicast_policy=UnicastPolicy(
                max_multicast_rounds=5, compare_usr_bytes=True
            ),
        )
        server.plan_round()
        user_id = next(iter(message.needs_by_user))
        server.finish_round([nack(message, user_id, (0, 4))])
        pending = [user_id]
        # One USR packet (~100 B) vs 4 parity packets (~4 kB): switch.
        assert server.should_switch_to_unicast(pending)

    def test_usr_packet_for(self, message):
        server = ServerTransport(message, rho=1.0)
        user_id = next(iter(message.needs_by_user))
        usr = server.usr_packet_for(user_id)
        assert usr.user_id == user_id
