"""Tests for the fleet simulator's send-order flag (ablation A01)."""

import numpy as np
import pytest

from repro.transport import FleetConfig, FleetSimulator
from repro.transport.fleet import FleetWorkload


@pytest.fixture
def workload():
    # 6 packets, k=2 -> 3 blocks; plan per user trivial.
    return FleetWorkload(n_enc_packets=6, k=2, plan_of_user=[0, 2, 5])


class TestSendOrders:
    def test_interleaved_round_one(self, workload):
        blocks, plans, n_enc = FleetSimulator._round_one_order(
            workload, parity_per_block=1, interleave=True
        )
        # slots: seq0 of each block, seq1 of each block, parity of each.
        assert blocks.tolist() == [0, 1, 2, 0, 1, 2, 0, 1, 2]
        assert n_enc == 6
        assert (plans >= 0).sum() == 6

    def test_sequential_round_one(self, workload):
        blocks, plans, n_enc = FleetSimulator._round_one_order(
            workload, parity_per_block=1, interleave=False
        )
        assert blocks.tolist() == [0, 0, 0, 1, 1, 1, 2, 2, 2]
        assert n_enc == 6

    def test_same_multiset_either_way(self, workload):
        a = FleetSimulator._round_one_order(workload, 2, interleave=True)
        b = FleetSimulator._round_one_order(workload, 2, interleave=False)
        assert sorted(a[0].tolist()) == sorted(b[0].tolist())
        assert sorted(a[1].tolist()) == sorted(b[1].tolist())

    def test_parity_orders(self):
        amax = np.array([2, 0, 1])
        inter, _, _ = FleetSimulator._parity_order(amax, interleave=True)
        seq, _, _ = FleetSimulator._parity_order(amax, interleave=False)
        assert inter.tolist() == [0, 2, 0]
        assert seq.tolist() == [0, 0, 2]

    def test_empty_parity(self):
        blocks, plans, n_enc = FleetSimulator._parity_order(
            np.zeros(3, dtype=int)
        )
        assert blocks.size == 0
        assert n_enc == 0


class TestConfigFlag:
    def test_flag_threads_through_run(self):
        from repro.sim import LossParameters, MulticastTopology
        from repro.util import RandomSource

        workload = FleetWorkload(
            n_enc_packets=20, k=5, plan_of_user=list(range(20)) * 3
        )
        lossless = LossParameters(
            alpha=0.0, p_high=0.0, p_low=0.0, p_source=0.0
        )
        for interleave in (True, False):
            topology = MulticastTopology(
                workload.n_users,
                params=lossless,
                random_source=RandomSource(1),
            )
            sim = FleetSimulator(
                topology,
                FleetConfig(interleave=interleave, multicast_only=True),
                seed=2,
            )
            stats, _ = sim.run_message(workload, rho=1.0)
            assert stats.n_multicast_rounds == 1
            assert (stats.user_rounds == 1).all()
