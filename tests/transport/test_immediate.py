"""Tests for repro.transport.immediate — event-driven feedback."""

import numpy as np
import pytest

from repro.errors import TransportError
from repro.sim import LossParameters, MulticastTopology
from repro.transport.fleet import make_paper_workload
from repro.transport.immediate import (
    ImmediateConfig,
    ImmediateFeedbackSession,
)
from repro.util import RandomSource


def run_session(
    n_users=256, alpha=0.2, rho=1.0, seed=0, p_source=0.01, **config_kwargs
):
    workload = make_paper_workload(n_users=n_users, k=10, seed=1)
    params = LossParameters(alpha=alpha, p_source=p_source)
    topology = MulticastTopology(
        workload.n_users, params=params, random_source=RandomSource(seed)
    )
    session = ImmediateFeedbackSession(
        workload,
        topology,
        ImmediateConfig(rho=rho, **config_kwargs),
        rng=np.random.default_rng(seed + 1),
    )
    return workload, session.run()


class TestCompletion:
    def test_everyone_completes(self):
        workload, stats = run_session(seed=3)
        assert stats.completion_times.shape == (workload.n_users,)
        assert (stats.completion_times > 0).all()

    def test_lossless_needs_no_feedback(self):
        workload, stats = run_session(
            alpha=0.0, seed=4, p_source=0.0
        )
        # With alpha=0 the low-loss links still lose ~2%; make it truly
        # lossless:
        params = LossParameters(
            alpha=0.0, p_low=0.0, p_high=0.0, p_source=0.0
        )
        topology = MulticastTopology(
            workload.n_users, params=params, random_source=RandomSource(5)
        )
        session = ImmediateFeedbackSession(
            workload,
            topology,
            ImmediateConfig(rho=1.0),
            rng=np.random.default_rng(6),
        )
        stats = session.run()
        assert stats.nacks_sent == 0
        assert stats.packets_sent == workload.n_blocks * workload.k

    def test_completion_bounded_by_round_one_plus_repairs(self):
        workload, stats = run_session(seed=7)
        round_one = workload.n_blocks * workload.k * 0.1
        # Most users finish within the round-one span + delay.
        fraction_fast = (
            stats.completion_times < round_one + 0.15
        ).mean()
        assert fraction_fast > 0.85

    def test_worst_case_beats_round_based_waiting(self):
        """Stragglers are served in ~one extra RTT, far below the
        round-based protocol's full-round wait."""
        workload, stats = run_session(seed=8)
        round_one = workload.n_blocks * workload.k * 0.1
        # Round-based: a straggler waits >= round duration (round-one
        # span) + a full retransmission wave ~ 2x round_one.
        assert stats.worst_completion < 3 * round_one + 2.0

    def test_deterministic_given_seed(self):
        _, a = run_session(seed=9)
        _, b = run_session(seed=9)
        assert np.array_equal(a.completion_times, b.completion_times)
        assert a.packets_sent == b.packets_sent


class TestFeedback:
    def test_lossy_users_nack(self):
        _, stats = run_session(alpha=1.0, seed=10)
        assert stats.nacks_sent > 0
        assert stats.packets_sent > 0

    def test_suppression_counts(self):
        _, stats = run_session(alpha=1.0, seed=11)
        # With many users sharing blocks, some NACKs must be absorbed
        # by in-flight repairs.
        assert stats.duplicate_nacks_suppressed >= 0  # recorded
        assert stats.nacks_sent >= stats.duplicate_nacks_suppressed

    def test_proactive_parity_reduces_nacks(self):
        _, reactive = run_session(seed=12, rho=1.0)
        _, proactive = run_session(seed=12, rho=2.0)
        assert proactive.nacks_sent <= reactive.nacks_sent

    def test_topology_mismatch_rejected(self):
        workload = make_paper_workload(n_users=256, k=10, seed=1)
        topology = MulticastTopology(10, random_source=RandomSource(1))
        with pytest.raises(TransportError):
            ImmediateFeedbackSession(workload, topology)

    def test_deadline_enforced(self):
        workload = make_paper_workload(n_users=256, k=10, seed=1)
        params = LossParameters(alpha=1.0, p_high=0.95, p_low=0.95)
        topology = MulticastTopology(
            workload.n_users, params=params, random_source=RandomSource(2)
        )
        session = ImmediateFeedbackSession(
            workload,
            topology,
            ImmediateConfig(deadline_s=1.5, max_parity_rows=240),
            rng=np.random.default_rng(3),
        )
        with pytest.raises(TransportError):
            session.run()
