"""Regression tests for immediate-mode duplicate-repair suppression.

Two failure modes were found (and fixed) during full-scale runs:

1. counting only *transmitted* packets as in flight let a burst of
   concurrent NACKs each trigger fresh parity while earlier repairs sat
   in the send queue (runaway traffic, parity-row exhaustion);
2. Rubenstein's literal ``seq > max_seq`` rule starves users that
   received nothing and misfires for erasure codewords (any unseen row
   helps).

These tests pin the fixed behaviour: repair traffic stays within a
small multiple of the actual shortfall even with hundreds of users
sharing few blocks.
"""

import numpy as np
import pytest

from repro.sim import LossParameters, MulticastTopology
from repro.transport.fleet import make_paper_workload
from repro.transport.immediate import (
    ImmediateConfig,
    ImmediateFeedbackSession,
)
from repro.util import RandomSource


def run(n_users, alpha, seed, **config_kwargs):
    workload = make_paper_workload(n_users=n_users, k=10, seed=1)
    topology = MulticastTopology(
        workload.n_users,
        params=LossParameters(alpha=alpha),
        random_source=RandomSource(seed),
    )
    session = ImmediateFeedbackSession(
        workload,
        topology,
        ImmediateConfig(**config_kwargs),
        rng=np.random.default_rng(seed),
    )
    return workload, session.run()


class TestNoRunaway:
    def test_many_users_per_block_stay_bounded(self):
        """The full-scale failure case: ~380 users per block."""
        workload, stats = run(1024, alpha=0.2, seed=4100)
        round_one = workload.n_blocks * workload.k
        # Repair traffic stays within ~3x round one (was 20x pre-fix).
        assert stats.packets_sent < 4 * round_one

    def test_repeat_across_seeds(self):
        for seed in (11, 22, 33):
            workload, stats = run(512, alpha=0.2, seed=seed)
            assert stats.packets_sent < 4 * workload.n_blocks * workload.k

    def test_parity_budget_never_exhausted_at_paper_loss(self):
        # Would raise TransportError pre-fix.
        run(1024, alpha=1.0, seed=77, max_parity_rows=200)

    def test_most_concurrent_nacks_suppressed(self):
        workload, stats = run(1024, alpha=0.2, seed=4100)
        if stats.nacks_sent > 10:
            assert (
                stats.duplicate_nacks_suppressed > stats.nacks_sent * 0.4
            )

    def test_zero_reception_user_not_starved(self):
        """A user that heard nothing (max_seq = -1) must still be
        served — the literal max-seq rule suppressed it forever."""
        workload, stats = run(256, alpha=1.0, seed=5, deadline_s=90.0)
        assert (stats.completion_times > 0).all()
