"""Tests for repro.transport.fleet — the vectorised simulator."""

import numpy as np
import pytest

from repro.errors import TransportError
from repro.keytree import KeyTree, MarkingAlgorithm
from repro.sim import LossParameters, MulticastTopology, build_paper_topology
from repro.transport import FleetConfig, FleetSimulator, FleetWorkload
from repro.transport.fleet import make_paper_workload
from repro.util import RandomSource


@pytest.fixture(scope="module")
def workload():
    return make_paper_workload(n_users=1024, k=10, seed=1)


def make_simulator(workload, config=None, loss=None, seed=0):
    loss = loss or LossParameters()
    topology = MulticastTopology(
        workload.n_users, params=loss, random_source=RandomSource(seed)
    )
    return FleetSimulator(topology, config or FleetConfig(), seed=seed + 1)


class TestWorkload:
    def test_from_batch(self):
        rng = np.random.default_rng(0)
        users = ["u%d" % i for i in range(256)]
        tree = KeyTree.full_balanced(users, 4)
        batch = MarkingAlgorithm().apply(
            tree, leaves=list(rng.choice(users, 64, replace=False))
        )
        wl = FleetWorkload.from_batch(batch, k=10)
        assert wl.n_users == 192
        assert wl.n_blocks == -(-wl.n_enc_packets // 10)
        assert (wl.block_of_user == wl.plan_of_user // 10).all()

    def test_usr_bytes_scale_with_needs(self):
        wl = make_paper_workload(n_users=256, k=10, seed=2)
        assert (wl.usr_packet_bytes >= 4 + 22).all()
        assert (wl.usr_packet_bytes <= 4 + 22 * 10).all()

    def test_slot_arrays_cover_all_blocks(self, workload):
        assert set(workload.slot_block) == set(range(workload.n_blocks))
        assert workload.slot_block.size == workload.n_blocks * workload.k

    def test_empty_workload_rejected(self):
        with pytest.raises(TransportError):
            FleetWorkload(n_enc_packets=4, k=2, plan_of_user=[])

    def test_bad_plan_index_rejected(self):
        with pytest.raises(TransportError):
            FleetWorkload(n_enc_packets=4, k=2, plan_of_user=[5])


class TestSingleMessage:
    def test_lossless_single_round(self, workload):
        lossless = LossParameters(alpha=0.0, p_high=0.0, p_low=0.0, p_source=0.0)
        sim = make_simulator(workload, loss=lossless)
        stats, requests = sim.run_message(workload, rho=1.0)
        assert stats.n_multicast_rounds == 1
        assert stats.first_round_nacks == 0
        assert requests == []
        assert (stats.user_rounds == 1).all()

    def test_everyone_recovers(self, workload):
        sim = make_simulator(
            workload, FleetConfig(multicast_only=True), seed=3
        )
        stats, _ = sim.run_message(workload, rho=1.0)
        assert (stats.user_rounds >= 1).all()

    def test_paper_round_one_fraction(self, workload):
        """>94 % of users recover in round 1 at rho = 1, alpha = 20 %."""
        sim = make_simulator(
            workload, FleetConfig(multicast_only=True), seed=4
        )
        stats, _ = sim.run_message(workload, rho=1.0)
        assert (stats.user_rounds == 1).mean() > 0.90

    def test_rho_cuts_first_round_nacks(self, workload):
        sim = make_simulator(
            workload, FleetConfig(multicast_only=True), seed=5
        )
        low, _ = sim.run_message(workload, rho=1.0)
        high, _ = sim.run_message(workload, rho=2.0)
        assert high.first_round_nacks < low.first_round_nacks / 3

    def test_unicast_tail(self, workload):
        sim = make_simulator(
            workload,
            FleetConfig(multicast_only=False, max_multicast_rounds=1),
            loss=LossParameters(alpha=1.0, p_high=0.4, p_low=0.4),
            seed=6,
        )
        stats, _ = sim.run_message(workload, rho=1.0)
        assert stats.unicast.users_served > 0
        assert (stats.user_rounds == 0).sum() == stats.unicast.users_served

    def test_bandwidth_overhead_floor(self, workload):
        """Overhead is at least the ENC slot padding ratio."""
        sim = make_simulator(
            workload, FleetConfig(multicast_only=True), seed=7
        )
        stats, _ = sim.run_message(workload, rho=1.0)
        floor = (workload.n_blocks * workload.k) / workload.n_enc_packets
        assert stats.bandwidth_overhead >= floor

    def test_first_round_requests_bounded_by_k(self, workload):
        sim = make_simulator(
            workload, FleetConfig(multicast_only=True), seed=8
        )
        _, requests = sim.run_message(workload, rho=1.0)
        assert all(1 <= a <= workload.k for a in requests)

    def test_topology_mismatch_rejected(self, workload):
        topology = build_paper_topology(n_users=10)
        sim = FleetSimulator(topology)
        with pytest.raises(TransportError):
            sim.run_message(workload)


class TestSequences:
    def test_rho_converges_and_controls_nacks(self, workload):
        sim = make_simulator(
            workload,
            FleetConfig(rho=1.0, num_nack=20, multicast_only=True),
            seed=9,
        )
        sequence = sim.run_sequence(lambda i: workload, 20)
        tail_nacks = sequence.first_round_nacks()[5:]
        # Controlled around the target: mean within ~2x of numNACK.
        assert 2 <= np.mean(tail_nacks) <= 45
        tail_rho = sequence.rho_trajectory[5:]
        assert max(tail_rho) - min(tail_rho) < 0.5

    def test_initial_rho_two_descends_to_same_band(self, workload):
        sim_low = make_simulator(
            workload,
            FleetConfig(rho=1.0, num_nack=20, multicast_only=True),
            seed=10,
        )
        sim_high = make_simulator(
            workload,
            FleetConfig(rho=2.0, num_nack=20, multicast_only=True),
            seed=11,
        )
        seq_low = sim_low.run_sequence(lambda i: workload, 20)
        seq_high = sim_high.run_sequence(lambda i: workload, 20)
        assert abs(
            np.mean(seq_low.rho_trajectory[10:])
            - np.mean(seq_high.rho_trajectory[10:])
        ) < 0.25

    def test_num_nack_adaptation_reduces_misses(self, workload):
        config = FleetConfig(
            rho=1.0,
            num_nack=200,
            max_nack=200,
            adapt_num_nack=True,
            multicast_only=True,
            deadline_rounds=2,
        )
        sim = make_simulator(workload, config, seed=12)
        sequence = sim.run_sequence(lambda i: workload, 25)
        early = np.mean(sequence.deadline_misses[:5])
        late = np.mean(sequence.deadline_misses[-5:])
        assert late <= early
        assert sequence.num_nack_trajectory[-1] < 200

    def test_sequence_stats_shape(self, workload):
        sim = make_simulator(workload, seed=13)
        sequence = sim.run_sequence(lambda i: workload, 3)
        assert sequence.n_messages == 3
        assert len(sequence.rho_trajectory) == 3
        assert len(sequence.first_round_nacks()) == 3
