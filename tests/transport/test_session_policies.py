"""Session-level unicast-policy behaviour (early switch, §7.1)."""

import numpy as np
import pytest

from repro.crypto import KeyFactory
from repro.keytree import KeyTree, MarkingAlgorithm
from repro.rekey import RekeyMessageBuilder
from repro.sim import LossParameters, MulticastTopology
from repro.transport import RekeySession, SessionConfig, SessionTrace
from repro.util import RandomSource


def make_message(seed=0, n=256, n_leave=64, k=10):
    rng = np.random.default_rng(seed)
    users = ["u%d" % i for i in range(n)]
    tree = KeyTree.full_balanced(users, 4, key_factory=KeyFactory(seed=2))
    batch = MarkingAlgorithm().apply(
        tree, leaves=list(rng.choice(users, n_leave, replace=False))
    )
    return RekeyMessageBuilder(block_size=k).build(batch, message_id=1)


def run(message, config, seed=0, loss=None, trace=None):
    topology = MulticastTopology(
        len(message.needs_by_user),
        params=loss or LossParameters(),
        random_source=RandomSource(seed),
    )
    session = RekeySession(
        message,
        topology,
        config,
        rng=np.random.default_rng(seed + 1),
        trace=trace,
    )
    return session, session.run()


class TestEarlySwitch:
    def test_byte_comparison_switches_before_round_cap(self):
        """With few stragglers, USR bytes undercut another parity round
        and the session unicasts after round one despite a high cap."""
        message = make_message(seed=1)
        trace = SessionTrace()
        config = SessionConfig(
            rho=1.0,
            max_multicast_rounds=10,
            compare_usr_bytes=True,
        )
        _, stats = run(message, config, seed=5, trace=trace)
        if stats.unicast.users_served:
            assert stats.n_multicast_rounds < 10
            assert len(trace.of_kind("unicast_start")) == 1

    def test_round_cap_still_binds_without_comparison(self):
        message = make_message(seed=2)
        config = SessionConfig(
            rho=1.0, max_multicast_rounds=2, compare_usr_bytes=False
        )
        _, stats = run(message, config, seed=6)
        assert stats.n_multicast_rounds <= 2

    def test_one_round_cap_for_small_intervals(self):
        """The paper's small-interval mode: one multicast round only."""
        message = make_message(seed=3)
        config = SessionConfig(rho=1.0, max_multicast_rounds=1)
        session, stats = run(message, config, seed=7)
        assert stats.n_multicast_rounds == 1
        assert all(user.done for user in session.users.values())

    def test_usr_bytes_accounted(self):
        message = make_message(seed=4)
        config = SessionConfig(rho=1.0, max_multicast_rounds=1)
        _, stats = run(
            message,
            config,
            seed=8,
            loss=LossParameters(alpha=1.0, p_high=0.3, p_low=0.3),
        )
        if stats.unicast.users_served:
            assert stats.unicast.usr_bytes_sent > 0
            # USR bytes stay far below one multicast packet per user.
            assert stats.unicast.usr_bytes_sent < (
                stats.unicast.usr_packets_sent * message.packet_size / 4
            )
