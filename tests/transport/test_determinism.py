"""Simulator determinism: same seed, same numbers, bit for bit.

The perf harness and the equivalence tests both lean on the fleet
simulator being a pure function of its seeds — a change that silently
reorders RNG draws (a new random call in the hot path, a dict-iteration
dependence) would shift every published figure while leaving the
statistical tests green.  ``SequenceStats.digest()`` hashes every
recorded counter, so:

- two in-process runs with the same seed must produce identical digests;
- one known-good digest is pinned as a regression anchor.  If an
  *intentional* protocol change shifts it, regenerate with the command
  in ``test_pinned_digest``'s docstring and update the constant —
  that update appearing in a diff is the point: RNG-stream changes
  must be visible in review, never accidental.
"""

from repro.sim import build_paper_topology
from repro.transport import FleetConfig, FleetSimulator
from repro.transport.fleet import make_paper_workload

N_USERS = 256
N_MESSAGES = 6

# Regenerate with:
#   PYTHONPATH=src python -c "
#   from tests.transport.test_determinism import run_sequence;
#   print(run_sequence().digest())"
PINNED_DIGEST = (
    "0179554366de0124762289ac975c6960314139df8653a12ec62e434fec38efe4"
)


def run_sequence():
    workload = make_paper_workload(n_users=N_USERS, k=10, seed=1)
    simulator = FleetSimulator(
        build_paper_topology(n_users=workload.n_users, seed=2),
        FleetConfig(multicast_only=True),
        seed=3,
    )
    return simulator.run_sequence(lambda i: workload, N_MESSAGES)


class TestFleetDeterminism:
    def test_same_seed_same_stats(self):
        """Two in-process runs: every counter identical."""
        first = run_sequence()
        second = run_sequence()
        assert first.digest() == second.digest()
        # The digest covers these, but spell the headline statistics
        # out so a failure names what moved.
        assert first.rho_trajectory == second.rho_trajectory
        assert (
            first.first_round_nacks() == second.first_round_nacks()
        )
        assert (
            first.bandwidth_overheads() == second.bandwidth_overheads()
        )
        for m_first, m_second in zip(first.messages, second.messages):
            assert (
                m_first.user_rounds.tolist()
                == m_second.user_rounds.tolist()
            )

    def test_different_seed_different_stats(self):
        """The digest actually discriminates: a different simulator
        seed (which drives every reception draw) must not collide."""
        workload = make_paper_workload(n_users=N_USERS, k=10, seed=1)
        other = FleetSimulator(
            build_paper_topology(n_users=workload.n_users, seed=2),
            FleetConfig(multicast_only=True),
            seed=5,
        ).run_sequence(lambda i: workload, N_MESSAGES)
        assert other.digest() != run_sequence().digest()

    def test_pinned_digest(self):
        """Regression anchor for the whole RNG stream (see module
        docstring for the regeneration command)."""
        assert run_sequence().digest() == PINNED_DIGEST

    def test_digest_is_order_sensitive(self):
        """Sanity on the digest itself: mutating one recorded counter
        changes it."""
        stats = run_sequence()
        before = stats.digest()
        stats.messages[0].rounds[0].nacks_received += 1
        assert stats.digest() != before
