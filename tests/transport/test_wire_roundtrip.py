"""Integration: a delivery works through *serialised* packets.

The session moves packet objects for speed; a real deployment moves
bytes.  This test forces every packet of a delivery through
``encode()`` / ``decode_packet()`` and confirms the receiver-side state
machines behave identically on the decoded objects.
"""

import numpy as np
import pytest

from repro.crypto import KeyFactory
from repro.keytree import KeyTree, MarkingAlgorithm
from repro.rekey import RekeyMessageBuilder, decode_packet
from repro.rekey.packets import FEC_PAYLOAD_OFFSET, PacketType
from repro.transport import UserTransport


@pytest.fixture(scope="module")
def message():
    rng = np.random.default_rng(0)
    users = ["u%d" % i for i in range(256)]
    tree = KeyTree.full_balanced(users, 4, key_factory=KeyFactory(seed=1))
    batch = MarkingAlgorithm().apply(
        tree, leaves=list(rng.choice(users, 64, replace=False))
    )
    return RekeyMessageBuilder(block_size=2).build(batch, message_id=9)


def through_the_wire(packet, packet_size=None):
    wire = packet.encode(packet_size) if packet_size else packet.encode()
    decoded = decode_packet(wire)
    assert decoded == packet
    return decoded, wire


class TestWireDelivery:
    def test_full_reception_via_bytes(self, message):
        user_id = next(iter(message.needs_by_user))
        user = UserTransport(
            user_id,
            k=message.k,
            degree=4,
            n_blocks=message.n_blocks,
            message_id=message.message_id,
        )
        for packet in message.enc_packets():
            decoded, wire = through_the_wire(packet, message.packet_size)
            user.on_enc(decoded, wire[FEC_PAYLOAD_OFFSET:])
        assert user.done
        wanted = set(message.needs_by_user[user_id])
        got = {e.encryption_id for e in user.recovered_encryptions}
        assert wanted <= got

    def test_fec_recovery_via_bytes(self, message):
        user_id = next(iter(message.needs_by_user))
        block = message.block_of_user(user_id)
        user = UserTransport(
            user_id,
            k=message.k,
            degree=4,
            n_blocks=message.n_blocks,
            message_id=message.message_id,
        )
        # Lose every ENC packet; deliver k parity packets over the wire.
        for packet in message.parity_packets(block, message.k):
            decoded, _ = through_the_wire(packet)
            assert decoded.packet_type is PacketType.PARITY
            user.on_parity(decoded)
        # Tighten the estimator with one foreign ENC packet.
        foreign = next(
            p
            for p in message.enc_packets()
            if p.block_id != block and not p.is_duplicate
        )
        decoded, wire = through_the_wire(foreign, message.packet_size)
        user.on_enc(decoded, wire[FEC_PAYLOAD_OFFSET:])
        user.end_of_round()
        assert user.done

    def test_nack_and_usr_via_bytes(self, message):
        user_id = next(iter(message.needs_by_user))
        user = UserTransport(
            user_id,
            k=message.k,
            degree=4,
            n_blocks=message.n_blocks,
            message_id=message.message_id,
        )
        nack = user.end_of_round()
        decoded_nack = decode_packet(nack.encode())
        assert decoded_nack == nack
        usr = message.usr_packet(user_id)
        decoded_usr, _ = through_the_wire(usr)
        user.on_usr(decoded_usr)
        assert user.done

    def test_parity_payload_survives_wire(self, message):
        """PARITY payload bytes are exactly the FEC codeword bytes."""
        parity = message.parity_packets(0, 2)
        for packet in parity:
            decoded, _ = through_the_wire(packet)
            assert decoded.payload == packet.payload
            assert len(decoded.payload) == message.packet_size - FEC_PAYLOAD_OFFSET
