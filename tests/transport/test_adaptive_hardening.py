"""AdjustRho hardening tests: request sanitization and the rho_max cap.

The first-round NACK list comes from untrusted per-user reports, so the
controller must survive hostile values (negatives, absurd parity
counts) without letting them steer ρ unbounded — the transport-layer
half of the chaos subsystem's ``feedback-abuse`` plan.
"""

import numpy as np
import pytest

from repro.core import GroupConfig
from repro.errors import ConfigurationError
from repro.transport.adaptive import ProactivityController


def make(k=10, num_nack=2, rho=1.0, rho_max=None, seed=0):
    return ProactivityController(
        k=k, rho=rho, num_nack=num_nack,
        rng=np.random.default_rng(seed), rho_max=rho_max,
    )


class TestRequestSanitization:
    def test_negative_requests_treated_as_zero(self):
        controller = make()
        controller.update([-5, -1, 0])
        assert controller.rho >= 0.0
        assert controller.last_requests_clamped == 2

    def test_requests_above_k_clamped_to_k(self):
        controller = make(k=10)
        controller.update([255, 1000, 300])  # > num_nack entries: rho rises
        assert controller.last_requests_clamped == 3
        # the clamped value (k), not the hostile 255, drives the update:
        # rho' = (k + ceil(k * 1.0)) / k = 2.0
        assert controller.rho == pytest.approx(2.0)

    def test_in_range_requests_untouched(self):
        controller = make(k=10)
        controller.update([3, 4, 5])
        assert controller.last_requests_clamped == 0


class TestRhoMaxCap:
    def test_storm_saturates_at_rho_max(self):
        controller = make(k=10, rho_max=1.2)
        for _ in range(5):
            controller.update([255] * 30)
        assert controller.rho == pytest.approx(1.2)
        assert controller.last_rho_clamped

    def test_unclamped_update_clears_the_flag(self):
        controller = make(k=10, rho_max=8.0)
        controller.update([255] * 30)  # rises but under the ceiling
        assert not controller.last_rho_clamped

    def test_initial_rho_capped(self):
        controller = make(rho=50.0)
        assert controller.rho == ProactivityController.DEFAULT_RHO_MAX

    def test_rho_max_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            make(rho_max=0.0)

    def test_group_config_carries_rho_max(self):
        config = GroupConfig(block_size=5, rho_max=2.5)
        assert config.rho_max == 2.5
        with pytest.raises(ConfigurationError):
            GroupConfig(block_size=5, rho=3.0, rho_max=2.0)
