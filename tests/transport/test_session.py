"""Tests for repro.transport.session — end-to-end delivery."""

import numpy as np
import pytest

from repro.crypto import KeyFactory
from repro.errors import TransportError
from repro.keytree import KeyTree, MarkingAlgorithm
from repro.rekey import RekeyMessageBuilder
from repro.sim import LossParameters, MulticastTopology, build_paper_topology
from repro.transport import RekeySession, SessionConfig
from repro.util import RandomSource


def make_message(n=256, d=4, n_leave=64, k=10, seed=0, message_id=1):
    rng = np.random.default_rng(seed)
    users = ["u%d" % i for i in range(n)]
    tree = KeyTree.full_balanced(users, d, key_factory=KeyFactory(seed=2))
    batch = MarkingAlgorithm().apply(
        tree, leaves=list(rng.choice(users, n_leave, replace=False))
    )
    message = RekeyMessageBuilder(block_size=k).build(batch, message_id=message_id)
    return tree, message


def run_session(message, config, loss=None, seed=0):
    loss = loss or LossParameters()
    topology = MulticastTopology(
        len(message.needs_by_user),
        params=loss,
        random_source=RandomSource(seed),
    )
    session = RekeySession(
        message, topology, config, rng=np.random.default_rng(seed + 1)
    )
    stats = session.run()
    return session, stats


class TestLossFreeDelivery:
    def test_everyone_recovers_in_one_round(self):
        _, message = make_message()
        lossless = LossParameters(
            alpha=0.0, p_high=0.0, p_low=0.0, p_source=0.0
        )
        session, stats = run_session(
            message, SessionConfig(rho=1.0), loss=lossless
        )
        assert stats.n_multicast_rounds == 1
        assert stats.first_round_nacks == 0
        assert (stats.user_rounds == 1).all()
        assert stats.unicast.users_served == 0

    def test_bandwidth_overhead_is_slot_padding_only(self):
        _, message = make_message()
        lossless = LossParameters(
            alpha=0.0, p_high=0.0, p_low=0.0, p_source=0.0
        )
        _, stats = run_session(message, SessionConfig(rho=1.0), loss=lossless)
        expected = (message.n_blocks * message.k) / message.n_enc_packets
        assert stats.bandwidth_overhead == pytest.approx(expected)


class TestLossyDelivery:
    def test_reliability_everyone_eventually_recovers(self):
        """The reliability requirement: every user gets its keys."""
        _, message = make_message(seed=3)
        session, stats = run_session(
            message,
            SessionConfig(rho=1.0, max_multicast_rounds=2),
            seed=11,
        )
        assert all(user.done for user in session.users.values())

    def test_recovered_encryptions_are_correct(self):
        _, message = make_message(seed=4)
        session, _ = run_session(
            message, SessionConfig(rho=1.0), seed=12
        )
        for user_id, user in session.users.items():
            got = {e.encryption_id for e in user.recovered_encryptions}
            assert set(message.needs_by_user[user_id]) <= got

    def test_multicast_only_mode_converges(self):
        _, message = make_message(seed=5)
        session, stats = run_session(
            message,
            SessionConfig(rho=1.0, multicast_only=True),
            seed=13,
        )
        assert all(user.done for user in session.users.values())
        assert stats.unicast.users_served == 0
        assert (stats.user_rounds >= 1).all()

    def test_unicast_serves_the_tail(self):
        _, message = make_message(seed=6)
        high_loss = LossParameters(alpha=1.0, p_high=0.4, p_low=0.4)
        session, stats = run_session(
            message,
            SessionConfig(rho=1.0, max_multicast_rounds=1),
            loss=high_loss,
            seed=14,
        )
        assert all(user.done for user in session.users.values())
        assert stats.unicast.users_served > 0
        assert stats.unicast.usr_packets_sent >= 2 * stats.unicast.users_served

    def test_proactive_parity_cuts_nacks(self):
        _, message = make_message(seed=7)
        _, stats_reactive = run_session(
            message, SessionConfig(rho=1.0, multicast_only=True), seed=15
        )
        _, stats_proactive = run_session(
            message, SessionConfig(rho=2.0, multicast_only=True), seed=15
        )
        assert (
            stats_proactive.first_round_nacks
            < stats_reactive.first_round_nacks
        )

    def test_user_rounds_distribution_shape(self):
        """Most users finish in round one (the paper's >94 % result)."""
        _, message = make_message(n=1024, n_leave=256, seed=8)
        _, stats = run_session(
            message, SessionConfig(rho=1.0, multicast_only=True), seed=16
        )
        assert (stats.user_rounds == 1).mean() > 0.85


class TestSessionValidation:
    def test_plan_mode_message_rejected(self):
        rng = np.random.default_rng(0)
        users = ["u%d" % i for i in range(64)]
        tree = KeyTree.full_balanced(users, 4)  # keyless
        batch = MarkingAlgorithm().apply(
            tree, leaves=list(rng.choice(users, 16, replace=False))
        )
        message = RekeyMessageBuilder(block_size=10).build(batch, message_id=1)
        topology = build_paper_topology(n_users=len(message.needs_by_user))
        with pytest.raises(TransportError):
            RekeySession(message, topology)

    def test_topology_size_mismatch_rejected(self):
        _, message = make_message()
        topology = build_paper_topology(n_users=3)
        with pytest.raises(TransportError):
            RekeySession(message, topology)

    def test_deterministic_given_seed(self):
        _, message = make_message(seed=9)
        _, stats_a = run_session(message, SessionConfig(rho=1.0), seed=21)
        _, stats_b = run_session(message, SessionConfig(rho=1.0), seed=21)
        assert np.array_equal(stats_a.user_rounds, stats_b.user_rounds)
        assert stats_a.bandwidth_overhead == stats_b.bandwidth_overhead
