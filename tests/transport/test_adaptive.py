"""Tests for repro.transport.adaptive — AdjustRho and numNACK control."""

import numpy as np
import pytest

from repro.transport.adaptive import (
    NumNackController,
    ProactivityController,
    proactive_parity_count,
)


class TestProactiveParityCount:
    def test_rho_one_sends_nothing(self):
        assert proactive_parity_count(1.0, 10) == 0

    def test_paper_formula(self):
        # ceil((rho - 1) * k)
        assert proactive_parity_count(1.6, 10) == 6
        assert proactive_parity_count(1.05, 10) == 1
        assert proactive_parity_count(2.0, 10) == 10

    def test_rho_below_one_clamped(self):
        assert proactive_parity_count(0.5, 10) == 0

    def test_k_one_granularity(self):
        """k = 1: the smallest possible increase doubles round-1 traffic."""
        assert proactive_parity_count(1.0, 1) == 0
        assert proactive_parity_count(1.01, 1) == 1


class TestAdjustRho:
    def test_overshoot_raises_rho(self):
        controller = ProactivityController(k=10, rho=1.0, num_nack=2)
        # 10 NACKing users; requests sorted desc: a[2] = 4.
        requests = [9, 6, 4, 3, 3, 2, 2, 1, 1, 1]
        controller.update(requests)
        # rho <- (a_numNACK + ceil(k * rho)) / k = (4 + 10) / 10
        assert controller.rho == pytest.approx(1.4)

    def test_overshoot_example_from_paper(self):
        """The u0..u9 example of §6.2."""
        controller = ProactivityController(k=10, rho=1.0, num_nack=2)
        requests = list(range(10, 0, -1))  # a0=10 >= ... >= a9=1
        controller.update(requests)
        assert controller.rho == pytest.approx((8 + 10) / 10)

    def test_exact_target_no_change(self):
        controller = ProactivityController(k=10, rho=1.3, num_nack=3)
        controller.update([2, 2, 2])
        assert controller.rho == pytest.approx(1.3)

    def test_undershoot_decays_probabilistically(self):
        rng = np.random.default_rng(0)
        controller = ProactivityController(k=10, rho=1.5, num_nack=20, rng=rng)
        # 0 NACKs: decay probability = (20 - 0) / 20 = 1.
        controller.update([])
        assert controller.rho == pytest.approx(1.4)

    def test_undershoot_probability_zero_when_half_target(self):
        rng = np.random.default_rng(0)
        controller = ProactivityController(k=10, rho=1.5, num_nack=20, rng=rng)
        # 10 NACKs: probability = max(0, (20 - 20) / 20) = 0 -> no change.
        controller.update([1] * 10)
        assert controller.rho == pytest.approx(1.5)

    def test_decay_floor_at_zero(self):
        rng = np.random.default_rng(0)
        controller = ProactivityController(k=10, rho=0.0, num_nack=20, rng=rng)
        controller.update([])
        assert controller.rho == 0.0

    def test_raise_uses_nth_largest(self):
        controller = ProactivityController(k=5, rho=1.0, num_nack=0)
        controller.update([3])
        # a[0] = 3 -> rho = (3 + 5) / 5
        assert controller.rho == pytest.approx(8 / 5)

    def test_parity_per_block_property(self):
        controller = ProactivityController(k=10, rho=1.6, num_nack=20)
        assert controller.parity_per_block == 6

    def test_convergence_to_stable_band(self):
        """Driving the controller with a synthetic loss response settles
        rho into a narrow band (Fig. 12's behaviour)."""
        rng = np.random.default_rng(1)
        controller = ProactivityController(k=10, rho=1.0, num_nack=20, rng=rng)
        history = []
        for _ in range(40):
            parity = controller.parity_per_block
            # Synthetic plant: more proactive parity -> fewer NACKs.
            n_nacks = max(0, int(300 * np.exp(-1.2 * parity)))
            requests = sorted(
                rng.integers(1, 4, size=n_nacks).tolist(), reverse=True
            )
            controller.update(requests)
            history.append(controller.rho)
        tail = history[10:]
        assert max(tail) - min(tail) <= 0.4

    def test_repr(self):
        assert "rho=1.000" in repr(ProactivityController(k=10))


class TestNumNackController:
    def test_clean_message_increments(self):
        controller = NumNackController(num_nack=20, max_nack=100)
        assert controller.update(0) == 21

    def test_capped_at_max(self):
        controller = NumNackController(num_nack=100, max_nack=100)
        assert controller.update(0) == 100

    def test_misses_subtract(self):
        controller = NumNackController(num_nack=20)
        assert controller.update(5) == 15

    def test_floor_at_zero(self):
        controller = NumNackController(num_nack=3)
        assert controller.update(10) == 0

    def test_fig21_style_decay(self):
        """Starting very high (200), repeated misses drag the target down
        quickly, then it creeps back up on clean messages."""
        controller = NumNackController(num_nack=200, max_nack=200)
        for misses in (40, 30, 20, 10, 5):
            controller.update(misses)
        assert controller.num_nack == 95
        for _ in range(5):
            controller.update(0)
        assert controller.num_nack == 100
