"""Tests for repro.rekey.message — end-to-end rekey-message building."""

import numpy as np
import pytest

from repro.crypto import KeyFactory, SignatureScheme, XorStreamCipher
from repro.errors import ConfigurationError, TransportError
from repro.fec import RSECoder
from repro.keytree import KeyTree, MarkingAlgorithm
from repro.rekey import RekeyMessageBuilder
from repro.rekey.packets import FEC_PAYLOAD_OFFSET


def build_message(
    n=64, d=4, n_leave=16, keyed=True, block_size=4, message_id=1, seed=0
):
    rng = np.random.default_rng(seed)
    users = ["u%d" % i for i in range(n)]
    factory = KeyFactory(seed=3) if keyed else None
    tree = KeyTree.full_balanced(users, d, key_factory=factory)
    leaves = list(rng.choice(users, size=n_leave, replace=False))
    batch = MarkingAlgorithm().apply(tree, leaves=leaves)
    builder = RekeyMessageBuilder(block_size=block_size)
    return tree, batch, builder.build(batch, message_id=message_id)


class TestPlanMode:
    def test_keyless_tree_builds_plan_only(self):
        _, _, message = build_message(keyed=False)
        assert not message.materialized
        assert message.n_enc_packets > 0
        with pytest.raises(TransportError):
            message.enc_packets()

    def test_counts_consistent(self):
        _, batch, message = build_message(keyed=False)
        assert message.n_blocks == -(-message.n_enc_packets // message.k)
        assert set(message.needs_by_user) == set(batch.needs_by_user())

    def test_block_of_user(self):
        _, _, message = build_message(keyed=False)
        for user_id in message.needs_by_user:
            block = message.block_of_user(user_id)
            assert 0 <= block < message.n_blocks

    def test_block_of_unneeding_user_is_none(self):
        _, _, message = build_message(keyed=False)
        assert message.block_of_user(65_000) is None


class TestEmptyMessage:
    def test_empty_batch_builds_empty_message(self):
        tree = KeyTree.full_balanced(["a", "b", "c", "d"], 4)
        batch = MarkingAlgorithm().apply(tree)
        message = RekeyMessageBuilder().build(batch, message_id=0)
        assert message.is_empty
        assert message.n_enc_packets == 0
        assert message.n_blocks == 0
        assert message.plans == []
        assert message.plan_for_user(4) is None


class TestWireMode:
    def test_enc_packets_cover_all_slots(self):
        _, _, message = build_message()
        packets = message.enc_packets()
        assert len(packets) == message.partition.n_enc_slots
        assert sum(not p.is_duplicate for p in packets) == message.n_enc_packets

    def test_max_kid_stamped(self):
        tree, batch, message = build_message()
        assert all(
            p.max_kid == max(batch.max_knode_id, 0)
            for p in message.enc_packets()
        )

    def test_parity_round_trip(self):
        _, _, message = build_message()
        payloads = message.block_payloads(0)
        parity = message.parity_packets(0, message.k)
        coder = RSECoder(message.k)
        received = {p.seq_in_block: p.payload for p in parity}
        assert coder.decode(received) == payloads

    def test_incremental_parity_has_increasing_seq(self):
        _, _, message = build_message()
        first = message.parity_packets(0, 2)
        second = message.parity_packets(0, 2, first_parity_index=2)
        seqs = [p.seq_in_block for p in first + second]
        assert seqs == [message.k, message.k + 1, message.k + 2, message.k + 3]

    def test_rebuild_enc_packet(self):
        _, _, message = build_message()
        packets = message.enc_packets()
        wire = packets[3].encode(message.packet_size)
        rebuilt = message.rebuild_enc_packet(
            message.message_id,
            packets[3].block_id,
            packets[3].seq_in_block,
            wire[FEC_PAYLOAD_OFFSET:],
        )
        assert rebuilt == packets[3]

    def test_usr_packet_contains_exact_needs(self):
        _, batch, message = build_message()
        user_id = next(iter(message.needs_by_user))
        usr = message.usr_packet(user_id)
        assert [e.encryption_id for e in usr.encryptions] == list(
            message.needs_by_user[user_id]
        )

    def test_usr_packet_for_unneeding_user_rejected(self):
        _, _, message = build_message()
        with pytest.raises(TransportError):
            message.usr_packet(65_000)

    def test_user_can_decrypt_full_path(self):
        """End-to-end: a user recovers every renewed key on its path."""
        tree, batch, message = build_message()
        cipher = XorStreamCipher()
        updated = set(batch.subtree.updated_knode_ids)
        for user_id, wanted in message.needs_by_user.items():
            held = {user_id: tree.key_of(user_id)}
            path = [user_id]
            while path[-1] != 0:
                path.append((path[-1] - 1) // tree.degree)
            for node in path[1:]:
                if node not in updated:
                    held[node] = tree.key_of(node)
            for encryption_id in wanted:
                encrypted = message.encryption_map[encryption_id]
                parent = (encryption_id - 1) // tree.degree
                recovered = cipher.decrypt_key(
                    encrypted, held[encryption_id], node_id=parent
                )
                held[parent] = recovered
            assert held[0] == tree.group_key

    def test_signature_present_when_signer_given(self):
        rng = np.random.default_rng(0)
        users = ["u%d" % i for i in range(16)]
        tree = KeyTree.full_balanced(users, 4, key_factory=KeyFactory(seed=1))
        batch = MarkingAlgorithm().apply(tree, leaves=["u3"])
        signer = SignatureScheme(secret_seed=9)
        message = RekeyMessageBuilder(signer=signer).build(batch, message_id=2)
        assert message.signature is not None

    def test_message_id_bounds(self):
        tree = KeyTree.full_balanced(["a", "b"], 2)
        batch = MarkingAlgorithm().apply(tree, leaves=["a"])
        with pytest.raises(ConfigurationError):
            RekeyMessageBuilder().build(batch, message_id=64)

    def test_duplicate_slots_share_plan_content(self):
        _, _, message = build_message(n=16, n_leave=4, block_size=10)
        packets = message.enc_packets()
        by_plan = {}
        for slot, packet in zip(message.partition.slots, packets):
            by_plan.setdefault(slot.plan_index, []).append(packet)
        for copies in by_plan.values():
            frm = {p.frm_id for p in copies}
            assert len(frm) == 1

    def test_repr(self):
        _, _, message = build_message()
        assert "wire" in repr(message)
