"""Tests for the SequentialKeyAssignment ablation baseline."""

import pytest

from repro.errors import KeyAssignmentError
from repro.rekey.assignment import SequentialKeyAssignment


class TestSequentialPacking:
    def test_fills_packets_in_order(self):
        assignment = SequentialKeyAssignment(capacity=3).assign(
            [10, 11, 12, 13, 14]
        )
        assert assignment.n_packets == 2
        assert assignment.packets == [[10, 11, 12], [13, 14]]

    def test_zero_duplication(self):
        assignment = SequentialKeyAssignment(capacity=4).assign(range(1, 10))
        assert assignment.n_stored_encryptions == 9

    def test_packet_of_encryption(self):
        assignment = SequentialKeyAssignment(capacity=2).assign([5, 6, 7])
        assert assignment.packet_of_encryption == {5: 0, 6: 0, 7: 1}

    def test_packets_for_user(self):
        assignment = SequentialKeyAssignment(capacity=2).assign([5, 6, 7, 8])
        assert assignment.packets_for_user([5, 8]) == [0, 1]
        assert assignment.packets_for_user([5, 6]) == [0]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(KeyAssignmentError):
            SequentialKeyAssignment(capacity=4).assign([1, 2, 1])

    def test_empty_message(self):
        assignment = SequentialKeyAssignment(capacity=4).assign([])
        assert assignment.n_packets == 0

    def test_default_capacity_matches_paper(self):
        assert SequentialKeyAssignment().capacity == 46

    def test_boundary_users_span_packets(self):
        """The structural reason UKA exists: path needs straddle
        boundaries under sequential packing."""
        import numpy as np

        from repro.keytree import KeyTree, MarkingAlgorithm

        rng = np.random.default_rng(0)
        users = ["u%d" % i for i in range(256)]
        tree = KeyTree.full_balanced(users, 4)
        batch = MarkingAlgorithm(renew_keys=False).apply(
            tree, leaves=list(rng.choice(users, 64, replace=False))
        )
        needs = batch.needs_by_user()
        assignment = SequentialKeyAssignment(capacity=10).assign(
            [e.child_id for e in batch.subtree.edges]
        )
        spans = [
            len(assignment.packets_for_user(wanted))
            for wanted in needs.values()
        ]
        assert max(spans) > 1
