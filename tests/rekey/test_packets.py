"""Tests for repro.rekey.packets — wire formats of Appendix A."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.cipher import EncryptedKey
from repro.errors import PacketDecodeError, PacketError
from repro.rekey.packets import (
    DEFAULT_ENC_PACKET_SIZE,
    ENC_HEADER_SIZE,
    ENCRYPTION_ENTRY_SIZE,
    EncPacket,
    NackPacket,
    NackRequest,
    PacketType,
    ParityPacket,
    UsrPacket,
    decode_packet,
    enc_packet_capacity,
)


def enc_entry(encryption_id, fill=0xAB):
    return EncryptedKey(encryption_id, bytes([fill]) * 20)


def make_enc(n_encryptions=2, **overrides):
    fields = dict(
        rekey_message_id=5,
        block_id=2,
        seq_in_block=1,
        max_kid=340,
        frm_id=341,
        to_id=360,
        encryptions=tuple(enc_entry(i + 1) for i in range(n_encryptions)),
    )
    fields.update(overrides)
    return EncPacket(**fields)


class TestCapacity:
    def test_paper_capacity_is_46(self):
        """The paper's 1027-byte ENC packet carries 46 encryptions."""
        assert enc_packet_capacity(DEFAULT_ENC_PACKET_SIZE) == 46

    def test_capacity_formula(self):
        assert enc_packet_capacity(ENC_HEADER_SIZE + 3 * ENCRYPTION_ENTRY_SIZE) == 3

    def test_too_small_packet_rejected(self):
        with pytest.raises(PacketError):
            enc_packet_capacity(ENC_HEADER_SIZE)


class TestEncPacket:
    def test_round_trip(self):
        packet = make_enc()
        assert EncPacket.decode(packet.encode()) == packet

    def test_encoded_size_is_fixed(self):
        assert len(make_enc(1).encode()) == DEFAULT_ENC_PACKET_SIZE
        assert len(make_enc(40).encode()) == DEFAULT_ENC_PACKET_SIZE

    def test_duplicate_flag_round_trips(self):
        packet = make_enc(is_duplicate=True)
        assert EncPacket.decode(packet.encode()).is_duplicate

    def test_covers_user(self):
        packet = make_enc()
        assert packet.covers_user(341)
        assert packet.covers_user(360)
        assert not packet.covers_user(340)
        assert not packet.covers_user(361)

    def test_encryptions_for(self):
        packet = make_enc(5)
        got = packet.encryptions_for([2, 4, 99])
        assert [e.encryption_id for e in got] == [2, 4]

    def test_rejects_overfull(self):
        packet = make_enc(47)
        with pytest.raises(PacketError):
            packet.encode()

    def test_rejects_inverted_interval(self):
        with pytest.raises(PacketError):
            make_enc(frm_id=10, to_id=5)

    def test_rejects_encryption_id_zero(self):
        with pytest.raises(PacketError, match="reserved"):
            make_enc(encryptions=(enc_entry(0),))

    def test_rejects_wide_fields(self):
        with pytest.raises(PacketError):
            make_enc(max_kid=70_000)
        with pytest.raises(PacketError):
            make_enc(block_id=256)

    def test_rejects_message_id_beyond_6_bits(self):
        with pytest.raises(PacketError):
            make_enc(rekey_message_id=64).encode()

    def test_decode_rejects_truncated(self):
        with pytest.raises(PacketDecodeError):
            EncPacket.decode(make_enc(3).encode()[: ENC_HEADER_SIZE + 10])

    def test_decode_rejects_wrong_type(self):
        wire = bytearray(make_enc().encode())
        wire[0] = (int(PacketType.NACK) << 6) | 5
        with pytest.raises(PacketDecodeError):
            EncPacket.decode(bytes(wire))

    def test_rejects_short_ciphertext(self):
        with pytest.raises(PacketError):
            make_enc(encryptions=(EncryptedKey(1, b"abc"),))

    @given(
        message_id=st.integers(0, 63),
        block_id=st.integers(0, 255),
        seq=st.integers(0, 255),
        max_kid=st.integers(0, 65535),
        n=st.integers(0, 46),
    )
    def test_round_trip_property(self, message_id, block_id, seq, max_kid, n):
        packet = EncPacket(
            rekey_message_id=message_id,
            block_id=block_id,
            seq_in_block=seq,
            max_kid=max_kid,
            frm_id=100,
            to_id=200,
            encryptions=tuple(enc_entry(i + 1, fill=i % 256) for i in range(n)),
        )
        assert EncPacket.decode(packet.encode()) == packet


class TestParityPacket:
    def test_round_trip(self):
        packet = ParityPacket(
            rekey_message_id=3, block_id=1, seq_in_block=12, payload=b"xyz" * 10
        )
        assert ParityPacket.decode(packet.encode()) == packet

    def test_header_is_three_bytes(self):
        packet = ParityPacket(
            rekey_message_id=3, block_id=1, seq_in_block=12, payload=b"abc"
        )
        assert len(packet.encode()) == 3 + 3

    def test_decode_rejects_short(self):
        with pytest.raises(PacketDecodeError):
            ParityPacket.decode(b"\x40")

    def test_type(self):
        packet = ParityPacket(
            rekey_message_id=0, block_id=0, seq_in_block=0, payload=b""
        )
        assert packet.packet_type is PacketType.PARITY


class TestUsrPacket:
    def test_round_trip(self):
        packet = UsrPacket(
            rekey_message_id=9,
            user_id=341,
            encryptions=(enc_entry(3), enc_entry(1)),
        )
        assert UsrPacket.decode(packet.encode()) == packet

    def test_size_bound(self):
        """USR packets stay small: 4 + 22h bytes for h encryptions."""
        height = 7
        packet = UsrPacket(
            rekey_message_id=0,
            user_id=1,
            encryptions=tuple(enc_entry(i + 1) for i in range(height)),
        )
        assert len(packet.encode()) == 4 + 22 * height
        assert len(packet.encode()) < DEFAULT_ENC_PACKET_SIZE / 6

    def test_truncated_rejected(self):
        wire = UsrPacket(
            rekey_message_id=9, user_id=1, encryptions=(enc_entry(3),)
        ).encode()
        with pytest.raises(PacketDecodeError):
            UsrPacket.decode(wire[:-1])

    def test_empty_encryptions_allowed(self):
        packet = UsrPacket(rekey_message_id=0, user_id=0, encryptions=())
        assert UsrPacket.decode(packet.encode()) == packet


class TestNackPacket:
    def test_round_trip(self):
        packet = NackPacket(
            rekey_message_id=1,
            user_id=77,
            requests=(
                NackRequest(block_id=0, n_parity=2),
                NackRequest(block_id=3, n_parity=4),
            ),
        )
        assert NackPacket.decode(packet.encode()) == packet

    def test_max_requested(self):
        packet = NackPacket(
            rekey_message_id=1,
            user_id=77,
            requests=(
                NackRequest(block_id=0, n_parity=2),
                NackRequest(block_id=3, n_parity=4),
            ),
        )
        assert packet.max_requested == 4

    def test_empty_requests_rejected(self):
        with pytest.raises(PacketError):
            NackPacket(rekey_message_id=1, user_id=7, requests=())

    def test_zero_parity_request_rejected(self):
        with pytest.raises(PacketError):
            NackRequest(block_id=0, n_parity=0)

    def test_wire_is_compact(self):
        packet = NackPacket(
            rekey_message_id=1,
            user_id=7,
            requests=(NackRequest(block_id=0, n_parity=1),),
        )
        assert len(packet.encode()) == 4 + 2


class TestDecodeDispatch:
    def test_dispatches_each_type(self):
        packets = [
            make_enc(),
            ParityPacket(
                rekey_message_id=1, block_id=0, seq_in_block=5, payload=b"p"
            ),
            UsrPacket(rekey_message_id=1, user_id=3, encryptions=(enc_entry(2),)),
            NackPacket(
                rekey_message_id=1,
                user_id=3,
                requests=(NackRequest(block_id=0, n_parity=1),),
            ),
        ]
        for packet in packets:
            assert decode_packet(packet.encode()) == packet

    def test_empty_rejected(self):
        with pytest.raises(PacketDecodeError):
            decode_packet(b"")
