"""Tests for repro.rekey.estimate — block-ID estimation (Appendix D)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.rekey.estimate import (
    BlockIdEstimator,
    estimation_failure_probability,
)


class FakeEnc:
    """Plan-level stand-in carrying just the fields the estimator reads."""

    def __init__(self, frm_id, to_id, block_id, seq, max_kid=500, dup=False):
        self.frm_id = frm_id
        self.to_id = to_id
        self.block_id = block_id
        self.seq_in_block = seq
        self.max_kid = max_kid
        self.is_duplicate = dup


def make_message(n_packets, k, users_per_packet=3, first_user=100):
    """Simulate UKA output: packet p covers users [frm_p, to_p]."""
    packets = []
    user = first_user
    for index in range(n_packets):
        frm = user
        to = user + users_per_packet - 1
        user = to + 2  # leave gaps: intervals are disjoint and increasing
        packets.append(
            FakeEnc(
                frm_id=frm,
                to_id=to,
                block_id=index // k,
                seq=index % k,
            )
        )
    return packets


class TestExactMatch:
    def test_own_packet_pins_block(self):
        packets = make_message(10, 5)
        estimator = BlockIdEstimator(user_id=packets[7].frm_id, k=5, degree=4)
        estimator.observe(packets[7])
        assert estimator.determined
        assert estimator.low == estimator.high == 1

    def test_exact_wins_over_later_observations(self):
        packets = make_message(10, 5)
        estimator = BlockIdEstimator(user_id=packets[7].frm_id, k=5, degree=4)
        estimator.observe(packets[7])
        estimator.observe(packets[2])
        assert estimator.low == estimator.high == 1


class TestBoundTightening:
    def test_witness_sets_pin_lost_block(self):
        """Receiving a packet just before and just after pins block i."""
        k = 5
        packets = make_message(15, k)
        lost = packets[7]  # block 1, seq 2
        estimator = BlockIdEstimator(user_id=lost.frm_id, k=k, degree=4)
        estimator.observe(packets[6])  # block 1, seq 1: m > to -> low = 1
        estimator.observe(packets[8])  # block 1, seq 3: m < frm -> high = 1
        assert estimator.determined
        assert estimator.low == 1

    def test_last_seq_of_previous_block(self):
        k = 5
        packets = make_message(15, k)
        lost = packets[5]  # block 1, seq 0
        estimator = BlockIdEstimator(user_id=lost.frm_id, k=k, degree=4)
        estimator.observe(packets[4])  # block 0, seq k-1 -> low = 1
        assert estimator.low == 1

    def test_seq0_of_next_block(self):
        k = 5
        packets = make_message(15, k)
        lost = packets[9]  # block 1, seq 4
        estimator = BlockIdEstimator(user_id=lost.frm_id, k=k, degree=4)
        estimator.observe(packets[10])  # block 2, seq 0 -> high = 1
        assert estimator.high == 1

    def test_maxkid_bounds_high(self):
        estimator = BlockIdEstimator(user_id=10_000, k=5, degree=4)
        estimator.observe(FakeEnc(100, 110, block_id=0, seq=2, max_kid=500))
        # d*(maxKID+1) = 2004 user IDs at most; bounded, not infinite.
        assert estimator.high != math.inf

    def test_duplicates_ignored(self):
        estimator = BlockIdEstimator(user_id=50, k=5, degree=4)
        estimator.observe(
            FakeEnc(100, 110, block_id=3, seq=0, dup=True)
        )
        assert estimator.low == 0
        assert estimator.high == math.inf

    def test_range_request_when_undetermined(self):
        k = 5
        packets = make_message(15, k)
        lost = packets[7]
        estimator = BlockIdEstimator(user_id=lost.frm_id, k=k, degree=4)
        estimator.observe(packets[2])  # block 0 mid -> low stays 0
        estimator.observe(packets[13])  # block 2 mid -> high = 2
        blocks = estimator.blocks_to_request()
        assert 1 in blocks  # the true block is always inside the range
        assert blocks == list(range(estimator.low, estimator.high + 1))

    def test_blocks_to_request_needs_clip_when_unbounded(self):
        estimator = BlockIdEstimator(user_id=5, k=5, degree=4)
        with pytest.raises(ConfigurationError):
            estimator.blocks_to_request()
        assert estimator.blocks_to_request(n_blocks=3) == [0, 1, 2]


class TestNeverExcludesTrueBlock:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(0, 100_000),
        k=st.integers(2, 8),
        n_packets=st.integers(2, 40),
        loss=st.floats(0.05, 0.9),
    )
    def test_true_block_always_in_range(self, seed, k, n_packets, loss):
        """Whatever subset of packets arrives, the lost packet's true
        block is inside [low, high]."""
        rng = np.random.default_rng(seed)
        packets = make_message(n_packets, k)
        lost_index = int(rng.integers(0, n_packets))
        lost = packets[lost_index]
        estimator = BlockIdEstimator(user_id=lost.frm_id, k=k, degree=4)
        for index, packet in enumerate(packets):
            if index == lost_index:
                continue  # the user's own packet was lost
            if rng.random() < loss:
                continue
            estimator.observe(packet)
        n_blocks = packets[-1].block_id + 1
        assert lost.block_id in estimator.blocks_to_request(n_blocks)


class TestFailureProbability:
    def test_matches_paper_formula(self):
        p, k, j = 0.2, 10, 3
        expected = p ** (j + 2) + p ** (k - j + 1) - p ** (k + 2)
        assert estimation_failure_probability(p, k, j) == pytest.approx(expected)

    def test_worst_case_is_p_squared(self):
        """At j = 0 (or k-1) the failure probability is ~ p^2."""
        p = 0.1
        assert estimation_failure_probability(p, 10, 0) == pytest.approx(
            p**2, rel=0.02
        )

    def test_zero_loss(self):
        assert estimation_failure_probability(0.0, 10, 3) == 0.0

    def test_invalid_j(self):
        with pytest.raises(ConfigurationError):
            estimation_failure_probability(0.1, 5, 5)
