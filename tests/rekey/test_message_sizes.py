"""Packet-size and block-count edge cases of the message builder."""

import numpy as np
import pytest

from repro.crypto import KeyFactory
from repro.errors import PacketError
from repro.keytree import KeyTree, MarkingAlgorithm
from repro.rekey import RekeyMessageBuilder, enc_packet_capacity
from repro.rekey.packets import ENC_HEADER_SIZE, ENCRYPTION_ENTRY_SIZE


def build(n=256, n_leave=64, packet_size=1027, block_size=10, seed=0):
    rng = np.random.default_rng(seed)
    users = ["u%d" % i for i in range(n)]
    tree = KeyTree.full_balanced(users, 4, key_factory=KeyFactory(seed=2))
    batch = MarkingAlgorithm().apply(
        tree, leaves=list(rng.choice(users, n_leave, replace=False))
    )
    builder = RekeyMessageBuilder(
        packet_size=packet_size, block_size=block_size
    )
    return builder.build(batch, message_id=1)


class TestPacketSizes:
    def test_small_packets_make_more_of_them(self):
        big = build(packet_size=1027)
        small = build(packet_size=ENC_HEADER_SIZE + 8 * ENCRYPTION_ENTRY_SIZE)
        assert small.n_enc_packets > big.n_enc_packets
        # Capacity bound honoured in every packet.
        for packet in small.enc_packets():
            assert len(packet.encryptions) <= 8

    def test_wire_length_matches_configured_size(self):
        size = ENC_HEADER_SIZE + 12 * ENCRYPTION_ENTRY_SIZE
        message = build(packet_size=size)
        for packet in message.enc_packets():
            assert len(packet.encode(size)) == size

    def test_capacity_helper_consistent_with_builder(self):
        size = 500
        message = build(packet_size=size)
        capacity = enc_packet_capacity(size)
        assert all(
            len(p.encryptions) <= capacity for p in message.enc_packets()
        )

    def test_tiny_packet_rejected(self):
        with pytest.raises(PacketError):
            build(packet_size=ENC_HEADER_SIZE)


class TestBlockCounts:
    def test_single_block_message(self):
        message = build(n=64, n_leave=4, block_size=50)
        assert message.n_blocks == 1
        # Slots padded with duplicates up to k.
        assert len(message.enc_packets()) == 50

    def test_many_blocks(self):
        message = build(block_size=1)
        assert message.n_blocks == message.n_enc_packets
        assert message.partition.n_duplicates == 0

    def test_parity_per_block_independent(self):
        message = build(block_size=4)
        for block_id in range(message.n_blocks):
            parity = message.parity_packets(block_id, 2)
            assert all(p.block_id == block_id for p in parity)
            assert [p.seq_in_block for p in parity] == [4, 5]

    def test_block_id_wire_limit_enforced(self):
        """More than 256 blocks cannot be expressed on the wire."""
        # Capacity 5 (= tree height, so single users still fit) packs
        # this workload into > 256 packets of one block each.
        small = ENC_HEADER_SIZE + 5 * ENCRYPTION_ENTRY_SIZE
        message = build(
            n=1024, n_leave=256, packet_size=small, block_size=1
        )
        assert message.n_blocks > 256
        with pytest.raises(PacketError):
            message.enc_packets()
