"""Property-based tests of UKA over arbitrary (synthetic) need maps.

The marking-driven tests exercise realistic workloads; these drive UKA
with adversarial ones — arbitrary user IDs, arbitrary encryption sets,
heavy sharing, no tree structure at all — and assert the packing
contract holds regardless:

1. every user is covered by exactly one packet interval;
2. that packet contains all of the user's encryptions;
3. no packet exceeds capacity;
4. intervals are disjoint and strictly increasing;
5. the duplication accounting identities hold.
"""

from hypothesis import given, settings, strategies as st

from repro.rekey.assignment import UserOrientedKeyAssignment


@st.composite
def need_maps(draw):
    capacity = draw(st.integers(2, 12))
    n_users = draw(st.integers(1, 40))
    user_ids = draw(
        st.lists(
            st.integers(1, 10_000),
            min_size=n_users,
            max_size=n_users,
            unique=True,
        )
    )
    pool = draw(
        st.lists(
            st.integers(1, 200), min_size=1, max_size=60, unique=True
        )
    )
    needs = {}
    for user_id in user_ids:
        size = draw(st.integers(1, min(capacity, len(pool))))
        subset = draw(
            st.lists(
                st.sampled_from(pool),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        needs[user_id] = subset
    return capacity, needs


class TestUkaContract:
    @settings(max_examples=120, deadline=None)
    @given(data=need_maps())
    def test_all_invariants(self, data):
        capacity, needs = data
        result = UserOrientedKeyAssignment(capacity=capacity).assign(needs)
        plans = result.plans

        # (3) capacity respected
        assert all(plan.n_encryptions <= capacity for plan in plans)

        # (4) intervals disjoint and increasing
        for previous, following in zip(plans, plans[1:]):
            assert previous.to_id < following.frm_id

        # (1) + (2) single covering packet with all the encryptions
        for user_id, wanted in needs.items():
            covering = [
                p for p in plans if p.frm_id <= user_id <= p.to_id
            ]
            assert len(covering) == 1
            assert set(wanted) <= set(covering[0].encryption_ids)

        # (5) accounting identities
        stored = sum(plan.n_encryptions for plan in plans)
        unique = len({e for wanted in needs.values() for e in wanted})
        assert result.n_stored_encryptions == stored
        assert result.n_unique_encryptions == unique
        assert result.n_duplicates == stored - unique
        assert result.n_duplicates >= 0

    @settings(max_examples=60, deadline=None)
    @given(data=need_maps())
    def test_within_packet_no_duplicates(self, data):
        capacity, needs = data
        result = UserOrientedKeyAssignment(capacity=capacity).assign(needs)
        for plan in result.plans:
            assert len(plan.encryption_ids) == len(set(plan.encryption_ids))

    @settings(max_examples=60, deadline=None)
    @given(data=need_maps())
    def test_user_lists_sorted_and_within_interval(self, data):
        capacity, needs = data
        result = UserOrientedKeyAssignment(capacity=capacity).assign(needs)
        for plan in result.plans:
            assert plan.user_ids == sorted(plan.user_ids)
            assert plan.user_ids[0] == plan.frm_id
            assert plan.user_ids[-1] == plan.to_id
