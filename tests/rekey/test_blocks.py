"""Tests for repro.rekey.blocks — block partitioning (§5.1)."""

import pytest

from repro.errors import ConfigurationError
from repro.rekey.blocks import BlockPartition, interleaved_order


class TestBlockPartition:
    def test_exact_division(self):
        partition = BlockPartition(20, 5)
        assert partition.n_blocks == 4
        assert partition.n_duplicates == 0
        assert partition.n_enc_slots == 20

    def test_last_block_duplicated(self):
        partition = BlockPartition(7, 5)
        assert partition.n_blocks == 2
        assert partition.n_duplicates == 3
        last = partition.packets_in_block(1)
        assert [s.plan_index for s in last] == [5, 6, 5, 6, 5]
        assert [s.is_duplicate for s in last] == [False, False, True, True, True]

    def test_single_packet_block_of_one(self):
        partition = BlockPartition(1, 1)
        assert partition.n_blocks == 1
        assert partition.n_duplicates == 0

    def test_single_packet_large_k(self):
        partition = BlockPartition(1, 10)
        assert partition.n_blocks == 1
        assert partition.n_duplicates == 9
        assert all(
            s.plan_index == 0 for s in partition.packets_in_block(0)
        )

    def test_slot_sequence_numbers(self):
        partition = BlockPartition(6, 3)
        for block_id in range(2):
            seqs = [
                s.seq_in_block for s in partition.packets_in_block(block_id)
            ]
            assert seqs == [0, 1, 2]

    def test_block_of_packet(self):
        partition = BlockPartition(25, 10)
        assert partition.block_of_packet(0) == 0
        assert partition.block_of_packet(9) == 0
        assert partition.block_of_packet(10) == 1
        assert partition.block_of_packet(24) == 2

    def test_seq_of_packet(self):
        partition = BlockPartition(25, 10)
        assert partition.seq_of_packet(13) == 3

    def test_out_of_range_rejected(self):
        partition = BlockPartition(5, 2)
        with pytest.raises(ConfigurationError):
            partition.block_of_packet(5)
        with pytest.raises(ConfigurationError):
            partition.packets_in_block(3)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            BlockPartition(0, 5)
        with pytest.raises(ConfigurationError):
            BlockPartition(5, 0)

    def test_slots_are_block_major(self):
        partition = BlockPartition(9, 3)
        order = [(s.block_id, s.seq_in_block) for s in partition.slots]
        assert order == sorted(order)

    def test_duplicates_never_in_full_blocks(self):
        partition = BlockPartition(23, 5)
        for block_id in range(partition.n_blocks - 1):
            assert not any(
                s.is_duplicate for s in partition.packets_in_block(block_id)
            )


class TestInterleavedOrder:
    def test_round_robin_across_blocks(self):
        order = list(interleaved_order(3, 2))
        assert order == [(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]

    def test_consecutive_same_block_packets_are_spread(self):
        """Two packets of one block are n_blocks apart in send order."""
        n_blocks = 7
        order = list(interleaved_order(n_blocks, 4))
        positions = [
            i for i, (block, _) in enumerate(order) if block == 3
        ]
        gaps = {b - a for a, b in zip(positions, positions[1:])}
        assert gaps == {n_blocks}

    def test_zero_per_block(self):
        assert list(interleaved_order(3, 0)) == []

    def test_invalid_blocks(self):
        with pytest.raises(ConfigurationError):
            list(interleaved_order(0, 2))
