"""Tests for repro.rekey.assignment — the UKA algorithm (§4.3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KeyAssignmentError
from repro.keytree import KeyTree, MarkingAlgorithm
from repro.rekey.assignment import UserOrientedKeyAssignment


def assign(needs, capacity=5):
    return UserOrientedKeyAssignment(capacity=capacity).assign(needs)


class TestBasicPacking:
    def test_single_user(self):
        result = assign({10: [3, 1]})
        assert result.n_packets == 1
        assert result.plans[0].frm_id == 10
        assert result.plans[0].to_id == 10
        assert result.plans[0].encryption_ids == [3, 1]

    def test_shared_encryptions_stored_once(self):
        result = assign({10: [3, 1], 11: [3, 1]})
        assert result.n_packets == 1
        assert result.plans[0].n_encryptions == 2
        assert result.n_duplicates == 0

    def test_split_on_capacity(self):
        needs = {10: [1, 2, 3], 11: [4, 5, 6]}
        result = assign(needs, capacity=5)
        assert result.n_packets == 2
        assert result.plans[0].user_ids == [10]
        assert result.plans[1].user_ids == [11]

    def test_duplication_across_packets(self):
        # Users share encryption 9 but cannot fit together.
        needs = {10: [1, 2, 3, 9], 11: [4, 5, 6, 9]}
        result = assign(needs, capacity=5)
        assert result.n_packets == 2
        assert result.n_stored_encryptions == 8
        assert result.n_unique_encryptions == 7
        assert result.n_duplicates == 1
        assert result.duplication_overhead == pytest.approx(1 / 7)

    def test_intervals_disjoint_and_increasing(self):
        needs = {u: [u * 10, u * 10 + 1, u * 10 + 2] for u in range(20, 40)}
        result = assign(needs, capacity=7)
        plans = result.plans
        for previous, following in zip(plans, plans[1:]):
            assert previous.to_id < following.frm_id

    def test_users_sorted_within_packets(self):
        needs = {30: [1], 10: [2], 20: [3]}
        result = assign(needs, capacity=46)
        assert result.plans[0].user_ids == [10, 20, 30]

    def test_longest_prefix_greedy(self):
        # Three users of 2 encryptions each; capacity 4 -> 2 + 1 split.
        needs = {1: [10, 11], 2: [12, 13], 3: [14, 15]}
        result = assign(needs, capacity=4)
        assert [p.user_ids for p in result.plans] == [[1, 2], [3]]

    def test_empty_needs_rejected(self):
        with pytest.raises(KeyAssignmentError):
            assign({10: []})

    def test_over_capacity_user_rejected(self):
        with pytest.raises(KeyAssignmentError):
            assign({10: [1, 2, 3, 4, 5, 6]}, capacity=5)

    def test_plan_for_user(self):
        needs = {10: [1], 20: [2], 30: [3]}
        result = assign(needs, capacity=2)
        assert result.plan_for_user(10).index == 0
        assert result.plan_for_user(30).index == 1
        assert result.plan_for_user(99) is None

    def test_default_capacity_from_paper_packet(self):
        assigner = UserOrientedKeyAssignment()
        assert assigner.capacity == 46


class TestSinglePacketGuarantee:
    """UKA's defining property on real marking workloads."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_every_user_needs_exactly_one_packet(self, seed):
        rng = np.random.default_rng(seed)
        users = ["u%d" % i for i in range(64)]
        tree = KeyTree.full_balanced(users, 4)
        n_leave = int(rng.integers(1, 20))
        leaves = list(rng.choice(users, size=n_leave, replace=False))
        joins = ["j%d" % i for i in range(int(rng.integers(0, 20)))]
        batch = MarkingAlgorithm().apply(tree, joins=joins, leaves=leaves)
        needs = batch.needs_by_user()
        if not needs:
            return
        result = UserOrientedKeyAssignment(capacity=10).assign(needs)
        for user_id, wanted in needs.items():
            covering = [
                plan
                for plan in result.plans
                if plan.frm_id <= user_id <= plan.to_id
            ]
            assert len(covering) == 1
            assert set(wanted) <= set(covering[0].encryption_ids)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_union_of_plans_covers_all_edges(self, seed):
        rng = np.random.default_rng(seed)
        users = ["u%d" % i for i in range(64)]
        tree = KeyTree.full_balanced(users, 4)
        leaves = list(rng.choice(users, size=16, replace=False))
        batch = MarkingAlgorithm().apply(tree, leaves=leaves)
        needs = batch.needs_by_user()
        result = UserOrientedKeyAssignment(capacity=12).assign(needs)
        packed = set()
        for plan in result.plans:
            packed.update(plan.encryption_ids)
        assert packed == {e.child_id for e in batch.subtree.edges}

    def test_capacity_never_exceeded(self):
        rng = np.random.default_rng(5)
        needs = {}
        uid = 100
        for _ in range(200):
            uid += int(rng.integers(1, 4))
            needs[uid] = list(
                rng.choice(np.arange(1, 500), size=int(rng.integers(1, 7)), replace=False)
            )
        result = assign(needs, capacity=9)
        assert all(p.n_encryptions <= 9 for p in result.plans)
