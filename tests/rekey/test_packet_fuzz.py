"""Failure injection: packet decoders must never crash unexpectedly.

Whatever bytes arrive off the (simulated) wire — truncated, corrupted,
or adversarial — ``decode_packet`` either returns a well-formed packet
or raises :class:`PacketError`/`PacketDecodeError`.  Any other exception
is a robustness bug.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.cipher import EncryptedKey
from repro.errors import PacketError
from repro.rekey.packets import (
    EncPacket,
    NackPacket,
    NackRequest,
    ParityPacket,
    UsrPacket,
    decode_packet,
)


def make_valid_wires():
    enc = EncPacket(
        rekey_message_id=5,
        block_id=2,
        seq_in_block=1,
        max_kid=340,
        frm_id=341,
        to_id=360,
        encryptions=tuple(
            EncryptedKey(i + 1, bytes([i]) * 20) for i in range(5)
        ),
    ).encode()
    parity = ParityPacket(
        rekey_message_id=5, block_id=2, seq_in_block=12, payload=b"x" * 64
    ).encode()
    usr = UsrPacket(
        rekey_message_id=5,
        user_id=341,
        encryptions=(EncryptedKey(3, b"y" * 20),),
    ).encode()
    nack = NackPacket(
        rekey_message_id=5,
        user_id=341,
        requests=(NackRequest(block_id=2, n_parity=3),),
    ).encode()
    return [enc, parity, usr, nack]


class TestRandomBytes:
    @given(data=st.binary(min_size=0, max_size=200))
    @settings(max_examples=300)
    def test_arbitrary_bytes_never_crash(self, data):
        try:
            packet = decode_packet(data)
        except PacketError:
            return
        # If it decoded, it must re-encode to something decodable.
        assert packet.packet_type is not None


class TestTruncation:
    @pytest.mark.parametrize("wire_index", range(4))
    def test_every_truncation_point(self, wire_index):
        wire = make_valid_wires()[wire_index]
        for cut in range(len(wire)):
            try:
                decode_packet(wire[:cut])
            except PacketError:
                continue
            # Some prefixes of ENC packets are themselves valid (zero
            # padding shortens gracefully); that is fine.


class TestBitFlips:
    @given(
        wire_index=st.integers(0, 3),
        position=st.integers(0, 2000),
        flip=st.integers(1, 255),
    )
    @settings(max_examples=300)
    def test_single_byte_corruption(self, wire_index, position, flip):
        wire = bytearray(make_valid_wires()[wire_index])
        position %= len(wire)
        wire[position] ^= flip
        try:
            packet = decode_packet(bytes(wire))
        except PacketError:
            return
        assert packet.packet_type is not None

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=100)
    def test_heavy_corruption(self, seed):
        rng = np.random.default_rng(seed)
        wire = bytearray(make_valid_wires()[seed % 4])
        n_flips = int(rng.integers(1, 20))
        for _ in range(n_flips):
            wire[int(rng.integers(0, len(wire)))] ^= int(
                rng.integers(1, 256)
            )
        try:
            decode_packet(bytes(wire))
        except PacketError:
            pass


class TestCrossTypeConfusion:
    def test_type_field_rewrite_is_contained(self):
        """Rewriting the 2-bit type routes to another decoder, which
        must handle the mismatched body gracefully."""
        wires = make_valid_wires()
        for wire in wires:
            for new_type in range(4):
                mutated = bytearray(wire)
                mutated[0] = (new_type << 6) | (mutated[0] & 0x3F)
                try:
                    decode_packet(bytes(mutated))
                except PacketError:
                    pass
