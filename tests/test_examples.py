"""Smoke tests: every example script runs to completion.

Examples are the library's public face; each must exit 0 on default
arguments (scaled down where the script accepts size flags).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", []),
    ("pay_per_view.py", ["--subscribers", "256", "--intervals", "2"]),
    ("adaptive_fec_tuning.py", ["--messages", "6", "--users", "1024"]),
    ("scalability_study.py", []),
    ("wire_walkthrough.py", []),
    ("deadline_provisioning.py", []),
    ("authenticated_membership.py", []),
    ("localhost_udp_demo.py", ["--members", "24"]),
]


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_module_entry_point():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "analyze", "--users", "256"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "max supportable group size" in result.stdout
