"""Tests for repro.util.validation."""

import pytest

from repro.errors import ConfigurationError
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestCheckType:
    def test_accepts_matching_type(self):
        assert check_type("x", 5, int) == 5

    def test_rejects_wrong_type(self):
        with pytest.raises(ConfigurationError, match="x must be int"):
            check_type("x", "5", int)

    def test_rejects_bool_where_int_expected(self):
        with pytest.raises(ConfigurationError, match="got bool"):
            check_type("flag", True, int)

    def test_accepts_subclass(self):
        class MyInt(int):
            pass

        assert check_type("x", MyInt(3), int) == 3

    def test_message_contains_value(self):
        with pytest.raises(ConfigurationError, match="'oops'"):
            check_type("x", "oops", int)


class TestCheckPositive:
    def test_accepts_positive_int(self):
        assert check_positive("n", 3) == 3

    def test_accepts_positive_float(self):
        assert check_positive("rho", 1.5) == 1.5

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            check_positive("n", 0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_positive("n", -1)

    def test_integral_rejects_float(self):
        with pytest.raises(ConfigurationError):
            check_positive("n", 1.5, integral=True)

    def test_integral_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_positive("n", True, integral=True)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("n", 0) == 0

    def test_accepts_positive(self):
        assert check_non_negative("n", 10) == 10

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_non_negative("n", -0.1)


class TestCheckProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0, 0, 1])
    def test_accepts_valid(self, p):
        assert check_probability("p", p) == float(p)

    @pytest.mark.parametrize("p", [-0.01, 1.01, 2, -1])
    def test_rejects_out_of_range(self, p):
        with pytest.raises(ConfigurationError):
            check_probability("p", p)

    def test_rejects_non_number(self):
        with pytest.raises(ConfigurationError):
            check_probability("p", "0.5")

    def test_returns_float(self):
        assert isinstance(check_probability("p", 1), float)


class TestCheckInRange:
    def test_accepts_bounds(self):
        assert check_in_range("x", 1, 1, 3) == 1
        assert check_in_range("x", 3, 1, 3) == 3

    def test_rejects_below(self):
        with pytest.raises(ConfigurationError):
            check_in_range("x", 0, 1, 3)

    def test_rejects_above(self):
        with pytest.raises(ConfigurationError):
            check_in_range("x", 4, 1, 3)

    def test_integral_mode(self):
        assert check_in_range("x", 2, 1, 3, integral=True) == 2
        with pytest.raises(ConfigurationError):
            check_in_range("x", 2.5, 1, 3, integral=True)
