"""Property tests for RetryPolicy's full-jitter backoff.

The replication client reconnects with ``jitter=True`` — the standard
cure for reconnect stampedes after a leader restart.  The contract:
every jittered delay is uniform in ``[0, backoff]`` where ``backoff``
is the capped exponential, and disabling jitter returns exactly that
ceiling.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.util.retry import RetryPolicy


@given(
    attempt=st.integers(min_value=0, max_value=40),
    base=st.floats(min_value=1e-4, max_value=1.0),
    cap=st.floats(min_value=1e-3, max_value=30.0),
    multiplier=st.floats(min_value=1.0, max_value=4.0),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=200, deadline=None)
def test_jittered_delay_stays_within_the_backoff_envelope(
    attempt, base, cap, multiplier, seed
):
    policy = RetryPolicy(
        max_attempts=2,
        base_delay=base,
        multiplier=multiplier,
        max_delay=cap,
        jitter=True,
    )
    ceiling = min(cap, base * multiplier ** attempt)
    delay = policy.delay(attempt, rng=random.Random(seed))
    assert 0.0 <= delay <= ceiling


@given(
    attempt=st.integers(min_value=0, max_value=40),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=100, deadline=None)
def test_without_jitter_the_delay_is_the_ceiling(attempt, seed):
    policy = RetryPolicy(
        max_attempts=2, base_delay=0.05, multiplier=2.0, max_delay=2.0
    )
    ceiling = min(2.0, 0.05 * 2.0 ** attempt)
    assert policy.delay(attempt) == ceiling
    # A seeded rng is accepted but ignored without jitter.
    assert policy.delay(attempt, rng=random.Random(seed)) == ceiling


def test_seeded_jitter_is_reproducible():
    policy = RetryPolicy(jitter=True)
    a = [policy.delay(n, rng=random.Random(123)) for n in range(6)]
    b = [policy.delay(n, rng=random.Random(123)) for n in range(6)]
    assert a == b
