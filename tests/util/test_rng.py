"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.util.rng import RandomSource, spawn_rng


class TestSpawnRng:
    def test_default_seed_is_reproducible(self):
        a = spawn_rng().random(5)
        b = spawn_rng().random(5)
        assert np.array_equal(a, b)

    def test_explicit_seed_is_reproducible(self):
        assert np.array_equal(spawn_rng(42).random(5), spawn_rng(42).random(5))

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            spawn_rng(1).random(5), spawn_rng(2).random(5)
        )

    def test_rejects_negative_seed(self):
        with pytest.raises(ConfigurationError):
            spawn_rng(-1)


class TestRandomSource:
    def test_same_seed_same_streams(self):
        s1, s2 = RandomSource(9), RandomSource(9)
        assert np.array_equal(
            s1.generator().random(8), s2.generator().random(8)
        )

    def test_children_are_independent(self):
        source = RandomSource(5)
        g1, g2 = source.generators(2)
        assert not np.array_equal(g1.random(16), g2.random(16))

    def test_sequential_generators_differ(self):
        source = RandomSource(5)
        assert not np.array_equal(
            source.generator().random(8), source.generator().random(8)
        )

    def test_generators_count(self):
        assert len(RandomSource(1).generators(7)) == 7

    def test_child_source_reproducible(self):
        c1 = RandomSource(3).child().generator().random(4)
        c2 = RandomSource(3).child().generator().random(4)
        assert np.array_equal(c1, c2)

    def test_seed_property(self):
        assert RandomSource(11).seed == 11

    def test_repr(self):
        assert "11" in repr(RandomSource(11))

    def test_rejects_bad_seed(self):
        with pytest.raises(ConfigurationError):
            RandomSource(-3)
