"""Tests for repro.sim.topology."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import LossParameters, MulticastTopology, build_paper_topology
from repro.util import RandomSource, spawn_rng


class TestLossParameters:
    def test_paper_defaults(self):
        params = LossParameters()
        assert params.alpha == 0.20
        assert params.p_high == 0.20
        assert params.p_low == 0.02
        assert params.p_source == 0.01
        assert params.bursty

    def test_make_process_bursty(self):
        from repro.sim.loss import TwoStateMarkovLoss

        assert isinstance(
            LossParameters().make_process(0.1), TwoStateMarkovLoss
        )

    def test_make_process_bernoulli(self):
        from repro.sim.loss import BernoulliLoss

        params = LossParameters(bursty=False)
        assert isinstance(params.make_process(0.1), BernoulliLoss)

    def test_invalid_alpha(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            LossParameters(alpha=1.5)


class TestMulticastTopology:
    def test_high_loss_subset_size(self):
        topology = MulticastTopology(100)
        assert topology.n_high == 20
        assert topology.is_high_loss(0)
        assert topology.is_high_loss(19)
        assert not topology.is_high_loss(20)

    def test_user_loss_rate(self):
        topology = MulticastTopology(100)
        assert topology.user_loss_rate(0) == 0.20
        assert topology.user_loss_rate(50) == 0.02

    def test_out_of_range_user(self):
        with pytest.raises(SimulationError):
            MulticastTopology(10).is_high_loss(10)

    def test_reception_shape(self):
        topology = MulticastTopology(50, random_source=RandomSource(1))
        times = np.arange(20) * 0.1
        received = topology.multicast_reception(times)
        assert received.shape == (50, 20)

    def test_reception_rates_by_class(self):
        topology = MulticastTopology(
            400,
            params=LossParameters(p_source=0.0),
            random_source=RandomSource(2),
        )
        times = np.arange(500) * 0.1
        received = topology.multicast_reception(times)
        high = 1.0 - received[: topology.n_high].mean()
        low = 1.0 - received[topology.n_high :].mean()
        assert high == pytest.approx(0.20, abs=0.03)
        assert low == pytest.approx(0.02, abs=0.01)

    def test_source_loss_hits_everyone(self):
        params = LossParameters(
            p_source=1.0, p_high=0.0, p_low=0.0
        )
        topology = MulticastTopology(
            10, params=params, random_source=RandomSource(3)
        )
        received = topology.multicast_reception(np.arange(5) * 0.1)
        assert not received.any()

    def test_alpha_zero_all_low(self):
        params = LossParameters(alpha=0.0, p_source=0.0)
        topology = MulticastTopology(
            200, params=params, random_source=RandomSource(4)
        )
        received = topology.multicast_reception(np.arange(200) * 0.1)
        assert 1.0 - received.mean() == pytest.approx(0.02, abs=0.01)

    def test_alpha_one_all_high(self):
        params = LossParameters(alpha=1.0, p_source=0.0)
        topology = MulticastTopology(
            200, params=params, random_source=RandomSource(5)
        )
        received = topology.multicast_reception(np.arange(200) * 0.1)
        assert 1.0 - received.mean() == pytest.approx(0.20, abs=0.02)

    def test_unicast_reception(self):
        topology = MulticastTopology(20, random_source=RandomSource(6))
        rng = spawn_rng(7)
        got = topology.unicast_reception(0, np.arange(2000) * 1.0, rng=rng)
        # High-loss user: delivery ~ (1 - p_s)(1 - p_h) ~ 0.79.
        assert got.mean() == pytest.approx(0.79, abs=0.04)

    def test_deterministic_given_rng(self):
        params = LossParameters()
        times = np.arange(30) * 0.1
        a = MulticastTopology(
            16, params=params, random_source=RandomSource(7)
        ).multicast_reception(times)
        b = MulticastTopology(
            16, params=params, random_source=RandomSource(7)
        ).multicast_reception(times)
        assert np.array_equal(a, b)


class TestBuildPaperTopology:
    def test_defaults(self):
        topology = build_paper_topology(n_users=64)
        assert topology.n_users == 64
        assert topology.params.alpha == 0.20

    def test_overrides(self):
        topology = build_paper_topology(n_users=10, alpha=0.5, bursty=False)
        assert topology.n_high == 5
        assert not topology.params.bursty
