"""Tests for repro.sim.loss — loss-rate and burstiness properties."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.loss import BernoulliLoss, TwoStateMarkovLoss
from repro.util import spawn_rng


class TestBernoulliLoss:
    def test_empirical_rate(self):
        rng = spawn_rng(1)
        model = BernoulliLoss(0.2)
        times = np.arange(50_000) * 0.1
        lost = model.sample_at(times, rng)
        assert lost.mean() == pytest.approx(0.2, abs=0.01)

    def test_zero_and_one(self):
        rng = spawn_rng(1)
        times = np.arange(100) * 0.1
        assert not BernoulliLoss(0.0).sample_at(times, rng).any()
        assert BernoulliLoss(1.0).sample_at(times, rng).all()

    def test_stepper(self):
        rng = spawn_rng(2)
        stepper = BernoulliLoss(0.5).stepper(rng)
        outcomes = {stepper.is_lost(t) for t in range(100)}
        assert outcomes == {True, False}

    def test_invalid_p(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            BernoulliLoss(1.5)


class TestTwoStateMarkovLoss:
    def test_stationary_rate_matches_p(self):
        """Long-run loss fraction equals p (the model's calibration)."""
        rng = spawn_rng(3)
        model = TwoStateMarkovLoss(0.2)
        times = np.arange(200_000) * 0.01  # 10 ms grid, 2000 s
        lost = model.sample_at(times, rng)
        assert lost.mean() == pytest.approx(0.2, abs=0.01)

    def test_low_rate(self):
        rng = spawn_rng(4)
        model = TwoStateMarkovLoss(0.02)
        times = np.arange(400_000) * 0.01
        assert model.sample_at(times, rng).mean() == pytest.approx(
            0.02, abs=0.005
        )

    def test_burstiness_at_short_gaps(self):
        """Back-to-back packets see correlated loss: P(lost | prev lost)
        far exceeds the stationary rate."""
        rng = spawn_rng(5)
        model = TwoStateMarkovLoss(0.2, burst_scale_ms=100.0)
        times = np.arange(300_000) * 0.001  # 1 ms apart: inside bursts
        lost = model.sample_at(times, rng)
        pairs = lost[:-1] & lost[1:]
        p_joint = pairs.mean()
        p_conditional = p_joint / lost[:-1].mean()
        assert p_conditional > 0.8  # >> 0.2

    def test_wide_gaps_decorrelate(self):
        """Packets far apart (10 s) are nearly independent."""
        rng = spawn_rng(6)
        model = TwoStateMarkovLoss(0.2)
        times = np.arange(100_000) * 10.0
        lost = model.sample_at(times, rng)
        p_conditional = (lost[:-1] & lost[1:]).mean() / max(
            lost[:-1].mean(), 1e-12
        )
        assert p_conditional == pytest.approx(0.2, abs=0.02)

    def test_degenerate_rates(self):
        rng = spawn_rng(7)
        times = np.arange(50) * 0.1
        assert not TwoStateMarkovLoss(0.0).sample_at(times, rng).any()
        assert TwoStateMarkovLoss(1.0).sample_at(times, rng).all()

    def test_empty_times(self):
        rng = spawn_rng(8)
        assert TwoStateMarkovLoss(0.2).sample_at([], rng).size == 0

    def test_decreasing_times_rejected(self):
        rng = spawn_rng(9)
        with pytest.raises(SimulationError):
            TwoStateMarkovLoss(0.2).sample_at([1.0, 0.5], rng)

    def test_sample_matrix_matches_rate(self):
        rng = spawn_rng(10)
        model = TwoStateMarkovLoss(0.2)
        times = np.arange(200) * 0.1
        matrix = model.sample_matrix(times, 2000, rng)
        assert matrix.shape == (2000, 200)
        assert matrix.mean() == pytest.approx(0.2, abs=0.01)

    def test_sample_matrix_chains_independent(self):
        rng = spawn_rng(11)
        model = TwoStateMarkovLoss(0.5)
        times = np.arange(500) * 0.1
        matrix = model.sample_matrix(times, 2, rng)
        assert not np.array_equal(matrix[0], matrix[1])

    def test_stepper_matches_rate(self):
        rng = spawn_rng(12)
        stepper = TwoStateMarkovLoss(0.3).stepper(rng)
        lost = [stepper.is_lost(t * 0.05) for t in range(50_000)]
        assert np.mean(lost) == pytest.approx(0.3, abs=0.02)

    def test_stepper_rejects_time_reversal(self):
        rng = spawn_rng(13)
        stepper = TwoStateMarkovLoss(0.3).stepper(rng)
        stepper.is_lost(1.0)
        with pytest.raises(SimulationError):
            stepper.is_lost(0.5)

    def test_repr(self):
        assert "0.2" in repr(TwoStateMarkovLoss(0.2))
