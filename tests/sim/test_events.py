"""Tests for repro.sim.events."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventLoop


class TestEventLoop:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(2.0, order.append, "b")
        loop.schedule(1.0, order.append, "a")
        loop.schedule(3.0, order.append, "c")
        loop.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_schedule_order(self):
        loop = EventLoop()
        order = []
        for tag in "xyz":
            loop.schedule(1.0, order.append, tag)
        loop.run()
        assert order == ["x", "y", "z"]

    def test_clock_advances(self):
        loop = EventLoop()
        seen = []
        loop.schedule(0.5, lambda: seen.append(loop.now))
        loop.schedule(1.5, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [0.5, 1.5]

    def test_run_until_stops_early(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, order.append, "a")
        loop.schedule(5.0, order.append, "b")
        dispatched = loop.run(until=2.0)
        assert dispatched == 1
        assert order == ["a"]
        assert loop.now == 2.0
        assert loop.pending == 1

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        order = []

        def first():
            order.append("first")
            loop.schedule(1.0, order.append, "second")

        loop.schedule(1.0, first)
        loop.run()
        assert order == ["first", "second"]
        assert loop.now == 2.0

    def test_cannot_schedule_into_past(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            EventLoop().schedule(-1.0, lambda: None)

    def test_step(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, order.append, "a")
        assert loop.step()
        assert not loop.step()
        assert order == ["a"]

    def test_counts_dispatched(self):
        loop = EventLoop()
        for delay in (1, 2, 3):
            loop.schedule(delay, lambda: None)
        assert loop.run() == 3
