"""Tests for repro.crypto.cost."""

import pytest

from repro.crypto.cost import CostMeter, CostModel, CryptoOp
from repro.errors import ConfigurationError


class TestCostModel:
    def test_defaults_ordering(self):
        """Signing dominates symmetric operations (2001 cost structure)."""
        model = CostModel()
        assert model.sign_seconds > 100 * model.encrypt_seconds
        assert model.verify_seconds > model.encrypt_seconds

    def test_seconds_for_each_op(self):
        model = CostModel()
        for op in CryptoOp:
            assert model.seconds_for(op) >= 0

    def test_batch_seconds(self):
        model = CostModel(
            keygen_seconds=1.0, encrypt_seconds=2.0, sign_seconds=10.0
        )
        assert model.batch_seconds(3, 4) == 3 * 1.0 + 4 * 2.0 + 10.0

    def test_batch_seconds_multiple_signatures(self):
        model = CostModel(
            keygen_seconds=0.0, encrypt_seconds=0.0, sign_seconds=1.0
        )
        assert model.batch_seconds(0, 0, signatures=7) == 7.0

    def test_rejects_negative_cost(self):
        with pytest.raises(ConfigurationError):
            CostModel(keygen_seconds=-1.0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ConfigurationError):
            CostModel().batch_seconds(-1, 0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CostModel().sign_seconds = 1.0


class TestCostMeter:
    def test_accumulates_counts(self):
        meter = CostMeter()
        meter.record_keygen()
        meter.record_keygen()
        meter.record_encrypt()
        meter.record_sign()
        assert meter.count(CryptoOp.KEYGEN) == 2
        assert meter.count(CryptoOp.ENCRYPT) == 1
        assert meter.count(CryptoOp.SIGN) == 1
        assert meter.count(CryptoOp.VERIFY) == 0

    def test_accumulates_seconds(self):
        model = CostModel(
            keygen_seconds=1.0,
            encrypt_seconds=10.0,
            decrypt_seconds=0.0,
            sign_seconds=100.0,
            verify_seconds=0.0,
        )
        meter = CostMeter(model=model)
        meter.record_keygen()
        meter.record_encrypt()
        meter.record_sign()
        assert meter.seconds == pytest.approx(111.0)

    def test_charge_bulk(self):
        meter = CostMeter()
        meter.charge(CryptoOp.ENCRYPT, 50)
        assert meter.count(CryptoOp.ENCRYPT) == 50

    def test_charge_accepts_string_op(self):
        meter = CostMeter()
        meter.charge("encrypt", 2)
        assert meter.count("encrypt") == 2

    def test_reset(self):
        meter = CostMeter()
        meter.record_sign()
        meter.reset()
        assert meter.seconds == 0.0
        assert meter.count(CryptoOp.SIGN) == 0

    def test_snapshot(self):
        meter = CostMeter()
        meter.record_verify()
        counts, seconds = meter.snapshot()
        assert counts == {"verify": 1}
        assert seconds == pytest.approx(CostModel().verify_seconds)

    def test_charge_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            CostMeter().charge(CryptoOp.SIGN, -1)
