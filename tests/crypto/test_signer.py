"""Tests for repro.crypto.signer."""

import pytest

from repro.crypto.signer import Signature, SignatureScheme
from repro.errors import CryptoError


class TestSignatureScheme:
    def test_sign_verify_round_trip(self):
        scheme = SignatureScheme(secret_seed=1)
        signature = scheme.sign(b"rekey message")
        assert scheme.verify(b"rekey message", signature)

    def test_tampered_message_fails(self):
        scheme = SignatureScheme(secret_seed=1)
        signature = scheme.sign(b"rekey message")
        assert not scheme.verify(b"rekey messagX", signature)

    def test_different_secret_fails(self):
        signature = SignatureScheme(secret_seed=1).sign(b"m")
        assert not SignatureScheme(secret_seed=2).verify(b"m", signature)

    def test_same_seed_same_signature(self):
        assert SignatureScheme(secret_seed=5).sign(b"m") == SignatureScheme(
            secret_seed=5
        ).sign(b"m")

    def test_verify_requires_signature_type(self):
        scheme = SignatureScheme()
        with pytest.raises(CryptoError):
            scheme.verify(b"m", b"raw bytes")

    def test_meter_charged(self):
        from repro.crypto.cost import CostMeter, CryptoOp

        meter = CostMeter()
        scheme = SignatureScheme(meter=meter)
        signature = scheme.sign(b"m")
        scheme.verify(b"m", signature)
        assert meter.count(CryptoOp.SIGN) == 1
        assert meter.count(CryptoOp.VERIFY) == 1


class TestSignature:
    def test_fixed_length(self):
        assert len(SignatureScheme().sign(b"x")) == 64

    def test_rejects_wrong_length(self):
        with pytest.raises(CryptoError):
            Signature(b"\x00" * 10)

    def test_equality_and_hash(self):
        a = SignatureScheme(secret_seed=3).sign(b"x")
        b = SignatureScheme(secret_seed=3).sign(b"x")
        assert a == b
        assert hash(a) == hash(b)

    def test_repr(self):
        assert "Signature" in repr(SignatureScheme().sign(b"x"))
