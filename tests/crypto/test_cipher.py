"""Tests for repro.crypto.cipher."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.cipher import (
    ENCRYPTION_WIRE_SIZE,
    EncryptedKey,
    XorStreamCipher,
)
from repro.crypto.keys import KeyFactory
from repro.errors import CryptoError


@pytest.fixture
def cipher():
    return XorStreamCipher()


@pytest.fixture
def keys():
    factory = KeyFactory(seed=42)
    return factory.new_key(1, 0), factory.new_key(2, 0)


class TestRoundTrip:
    def test_encrypt_decrypt(self, cipher, keys):
        key, _ = keys
        assert cipher.decrypt(cipher.encrypt(b"hello", key), key) == b"hello"

    def test_empty_plaintext(self, cipher, keys):
        key, _ = keys
        assert cipher.decrypt(cipher.encrypt(b"", key), key) == b""

    def test_wrong_key_detected(self, cipher, keys):
        key, other = keys
        ciphertext = cipher.encrypt(b"secret", key)
        with pytest.raises(CryptoError, match="wrong key or corrupt"):
            cipher.decrypt(ciphertext, other)

    def test_corruption_detected(self, cipher, keys):
        key, _ = keys
        ciphertext = bytearray(cipher.encrypt(b"secret", key))
        ciphertext[0] ^= 0xFF
        with pytest.raises(CryptoError):
            cipher.decrypt(bytes(ciphertext), key)

    def test_ciphertext_length(self, cipher, keys):
        key, _ = keys
        assert len(cipher.encrypt(b"12345", key)) == 5 + 4

    def test_ciphertext_differs_from_plaintext(self, cipher, keys):
        key, _ = keys
        assert cipher.encrypt(b"A" * 64, key)[:64] != b"A" * 64

    def test_too_short_ciphertext_rejected(self, cipher, keys):
        key, _ = keys
        with pytest.raises(CryptoError, match="too short"):
            cipher.decrypt(b"ab", key)

    def test_rejects_non_key(self, cipher):
        with pytest.raises(CryptoError):
            cipher.encrypt(b"x", b"not a key object")

    @given(plaintext=st.binary(max_size=300))
    def test_round_trip_property(self, plaintext):
        cipher = XorStreamCipher()
        key = KeyFactory(seed=7).new_key(0, 0)
        assert cipher.decrypt(cipher.encrypt(plaintext, key), key) == plaintext

    def test_long_plaintext_uses_multiple_keystream_blocks(self, cipher, keys):
        key, _ = keys
        data = bytes(range(256)) * 3
        assert cipher.decrypt(cipher.encrypt(data, key), key) == data


class TestKeyEncryption:
    def test_encrypt_key_round_trip(self, cipher, keys):
        child_key, _ = keys
        new_key = KeyFactory(seed=9).new_key(0, 1)
        encrypted = cipher.encrypt_key(new_key, child_key)
        recovered = cipher.decrypt_key(
            encrypted, child_key, node_id=0, version=1
        )
        assert recovered == new_key
        assert recovered.node_id == 0
        assert recovered.version == 1

    def test_encryption_id_is_encrypting_node(self, cipher, keys):
        child_key, _ = keys
        new_key = KeyFactory(seed=9).new_key(0, 1)
        assert cipher.encrypt_key(new_key, child_key).encryption_id == 1

    def test_wrong_key_fails(self, cipher, keys):
        child_key, other = keys
        encrypted = cipher.encrypt_key(
            KeyFactory(seed=9).new_key(0, 1), child_key
        )
        with pytest.raises(CryptoError):
            cipher.decrypt_key(encrypted, other)

    def test_wire_size_constant_matches_payload(self, cipher, keys):
        """An <encryption, ID> pair costs 2 (ID) + 16 (key) + 4 (checksum)."""
        child_key, _ = keys
        encrypted = cipher.encrypt_key(
            KeyFactory(seed=9).new_key(0, 1), child_key
        )
        assert 2 + len(encrypted.ciphertext) == ENCRYPTION_WIRE_SIZE

    def test_meter_charged(self, keys):
        from repro.crypto.cost import CostMeter, CryptoOp

        meter = CostMeter()
        cipher = XorStreamCipher(meter=meter)
        key, _ = keys
        ciphertext = cipher.encrypt(b"abc", key)
        cipher.decrypt(ciphertext, key)
        assert meter.count(CryptoOp.ENCRYPT) == 1
        assert meter.count(CryptoOp.DECRYPT) == 1


class TestEncryptedKey:
    def test_equality(self):
        assert EncryptedKey(3, b"abc") == EncryptedKey(3, b"abc")
        assert EncryptedKey(3, b"abc") != EncryptedKey(4, b"abc")
        assert EncryptedKey(3, b"abc") != EncryptedKey(3, b"abd")

    def test_hashable(self):
        assert len({EncryptedKey(3, b"abc"), EncryptedKey(3, b"abc")}) == 1

    def test_len(self):
        assert len(EncryptedKey(3, b"abcd")) == 4

    def test_rejects_negative_id(self):
        with pytest.raises(CryptoError):
            EncryptedKey(-1, b"abc")
