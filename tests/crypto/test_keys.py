"""Tests for repro.crypto.keys."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.keys import KEY_LENGTH, KeyFactory, SymmetricKey
from repro.errors import CryptoError


class TestSymmetricKey:
    def test_holds_material(self):
        key = SymmetricKey(b"\x01" * 16, node_id=3, version=2)
        assert key.material == b"\x01" * 16
        assert key.node_id == 3
        assert key.version == 2

    def test_rejects_short_material(self):
        with pytest.raises(CryptoError):
            SymmetricKey(b"\x01" * 15)

    def test_rejects_long_material(self):
        with pytest.raises(CryptoError):
            SymmetricKey(b"\x01" * 17)

    def test_rejects_non_bytes(self):
        with pytest.raises(CryptoError):
            SymmetricKey("x" * 16)

    def test_equality_is_material_only(self):
        a = SymmetricKey(b"\x02" * 16, node_id=1, version=0)
        b = SymmetricKey(b"\x02" * 16, node_id=9, version=5)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        a = SymmetricKey(b"\x02" * 16)
        b = SymmetricKey(b"\x03" * 16)
        assert a != b

    def test_not_equal_to_bytes(self):
        assert SymmetricKey(b"\x02" * 16) != b"\x02" * 16

    def test_fingerprint_is_stable_hex(self):
        key = SymmetricKey(b"\x04" * 16)
        assert key.fingerprint() == SymmetricKey(b"\x04" * 16).fingerprint()
        int(key.fingerprint(), 16)  # valid hex

    def test_repr_mentions_identity(self):
        assert "node_id=7" in repr(SymmetricKey(b"\x05" * 16, node_id=7))

    def test_accepts_bytearray(self):
        assert SymmetricKey(bytearray(16)).material == bytes(16)


class TestKeyFactory:
    def test_deterministic_per_seed(self):
        assert (
            KeyFactory(seed=1).new_key(5, 0)
            == KeyFactory(seed=1).new_key(5, 0)
        )

    def test_distinct_across_seeds(self):
        assert (
            KeyFactory(seed=1).new_key(5, 0)
            != KeyFactory(seed=2).new_key(5, 0)
        )

    def test_distinct_across_node_ids(self):
        factory = KeyFactory(seed=1)
        assert factory.new_key(1, 0) != factory.new_key(2, 0)

    def test_distinct_across_versions(self):
        factory = KeyFactory(seed=1)
        assert factory.new_key(1, 0) != factory.new_key(1, 1)

    def test_counts_generated_keys(self):
        factory = KeyFactory()
        for i in range(5):
            factory.new_key(i, 0)
        assert factory.generated_count == 5

    def test_key_length(self):
        assert len(KeyFactory().new_key(0, 0).material) == KEY_LENGTH

    def test_identity_recorded(self):
        key = KeyFactory().new_key(12, 3)
        assert key.node_id == 12
        assert key.version == 3

    def test_charges_meter(self):
        from repro.crypto.cost import CostMeter, CryptoOp

        meter = CostMeter()
        factory = KeyFactory(seed=0, meter=meter)
        factory.new_key(0, 0)
        factory.new_key(1, 0)
        assert meter.count(CryptoOp.KEYGEN) == 2

    @given(
        node_a=st.integers(0, 10_000),
        node_b=st.integers(0, 10_000),
        version_a=st.integers(0, 100),
        version_b=st.integers(0, 100),
    )
    def test_injective_over_identity(self, node_a, node_b, version_a, version_b):
        """Distinct (node, version) pairs always yield distinct material."""
        factory = KeyFactory(seed=99)
        key_a = factory.new_key(node_a, version_a)
        key_b = factory.new_key(node_b, version_b)
        if (node_a, version_a) != (node_b, version_b):
            assert key_a != key_b
        else:
            assert key_a == key_b
