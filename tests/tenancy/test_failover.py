"""Bulk failover: one lease, every tenant re-homed, fencing enforced."""

import pytest

from repro.chaos.seams import FaultyClock
from repro.errors import HaError, StaleEpochError, TenancyError
from repro.ha.digest import server_digest
from repro.service.churn import PoissonChurn
from repro.tenancy.daemon import MultiGroupDaemon, read_digest
from repro.tenancy.failover import (
    committed_intervals,
    fleet_lease,
    promote_all,
)
from repro.tenancy.registry import make_fleet

TTL = 60.0


def _churn(fleet, alpha=0.25):
    return {spec.name: PoissonChurn(alpha=alpha) for spec in fleet}


def _boot(tmp_path, clock, count=6, seed=17):
    fleet = make_fleet(count, seed=seed, interval_ticks=1)
    lease = fleet_lease(tmp_path, "leader-0", ttl=TTL, clock=clock)
    daemon = MultiGroupDaemon.start_new(
        fleet, tmp_path, churn=_churn(fleet), clock=clock, lease=lease
    )
    return daemon


def test_promote_all_rehomes_every_tenant(tmp_path):
    clock = FaultyClock()
    leader = _boot(tmp_path, clock)
    leader.run_ticks(3)
    before = {
        name: (
            tenant.server.intervals_processed,
            server_digest(tenant.server),
        )
        for name, tenant in leader.daemons.items()
    }
    leader.close()
    clock.sleep(TTL + 1)  # the dead leader's lease expires

    standby, report = promote_all(
        tmp_path,
        "standby-1",
        ttl=TTL,
        churn=_churn(make_fleet(6, seed=17, interval_ticks=1)),
        clock=clock,
    )
    try:
        assert report.ok
        assert report.tenants == 6
        assert report.epoch == 2
        assert report.digests_verified == 6
        assert report.digest_mismatches == []
        for name, tenant in standby.daemons.items():
            interval, digest = before[name]
            assert tenant.server.intervals_processed == interval
            assert server_digest(tenant.server) == digest
        # the promoted fleet keeps serving under the new epoch
        standby.run_ticks(2)
        assert standby.check_agreement() == []
        for tenant in standby.daemons.values():
            assert tenant.epoch == 2
    finally:
        standby.close()


def test_promotion_fences_the_deposed_leader(tmp_path):
    clock = FaultyClock()
    leader = _boot(tmp_path, clock)
    leader.run_ticks(2)
    clock.sleep(TTL + 1)
    standby, report = promote_all(
        tmp_path, "standby-1", ttl=TTL, clock=clock
    )
    try:
        assert report.epoch == 2
        # one acquisition fences every tenant of the old leader: any
        # WAL append it attempts is refused before a byte lands
        name = leader.registry.names[0]
        with pytest.raises(StaleEpochError):
            leader.daemons[name].submit_join("zombie-user")
    finally:
        standby.close()
        leader.close()


def test_promotion_refused_while_lease_live(tmp_path):
    clock = FaultyClock()
    leader = _boot(tmp_path, clock)
    leader.run_ticks(1)
    try:
        with pytest.raises(HaError):
            promote_all(tmp_path, "standby-1", ttl=TTL, clock=clock)
    finally:
        leader.close()


def test_promotion_needs_a_registry(tmp_path):
    with pytest.raises(TenancyError):
        promote_all(tmp_path, "standby-1", ttl=TTL, clock=FaultyClock())


def test_mid_crash_tenant_is_skipped_then_caught_up(tmp_path):
    clock = FaultyClock()
    leader = _boot(tmp_path, clock)
    leader.run_ticks(3)
    # fake a mid-crash tenant: its recorded digest lags its WAL (as if
    # the crash landed after the commit but before the digest write)
    lagging = leader.registry.names[2]
    recorded = read_digest(tmp_path, lagging)
    assert recorded is not None
    leader.close()
    stale = dict(recorded, interval=recorded["interval"] - 1)
    import json
    import os

    from repro.tenancy.daemon import DIGEST_FILENAME, tenant_state_dir

    path = os.path.join(tenant_state_dir(tmp_path, lagging), DIGEST_FILENAME)
    with open(path, "w") as handle:
        handle.write(json.dumps(stale))
    clock.sleep(TTL + 1)
    standby, report = promote_all(
        tmp_path, "standby-1", ttl=TTL, clock=clock
    )
    try:
        # an interval mismatch defers the check instead of failing it
        assert report.ok
        assert report.digests_skipped == 1
        assert report.digests_verified == 5
    finally:
        standby.close()


def test_committed_intervals_witnesses_every_interval(tmp_path):
    clock = FaultyClock()
    leader = _boot(tmp_path, clock, count=4)
    leader.run_ticks(4)
    expected = {
        name: set(range(tenant.server.intervals_processed))
        for name, tenant in leader.daemons.items()
    }
    leader.close()
    for name, want in expected.items():
        assert committed_intervals(tmp_path, name) == want
