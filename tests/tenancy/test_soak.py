"""The tenancy-soak plans: green at small scale, pinned at full scale.

The full-scale digests are the repo's reproducibility contract for the
multi-tenant plane (CI pins the noisy-neighbor one through the CLI's
``--expect-digest``); a change here is a deliberate behaviour change
and the pins below must be re-derived, not deleted.
"""

import pytest

from repro.errors import ChaosError
from repro.tenancy.soak import (
    PLAN_TENANTS,
    PLAN_TICKS,
    TENANCY_PLAN_NAMES,
    run_tenancy_soak,
)

#: full-scale digests at seed 7 (default tenants/ticks per plan)
PINNED_DIGESTS = {
    "noisy-neighbor": (
        "f809d9df2bc3ef1db01a08e346a127c0ab14bfe13d67ecd36a1a8fdd533bd738"
    ),
    "tenant-wal-corruption": (
        "abfb01fa869e5b02a5692bf5dfe613f3ea1d433e17d054e30ec56b21071695eb"
    ),
    "mass-rehome": (
        "8e69c8b9e0d08e58dad6c86bbd3cd2343e336199279c57a666f23614cfd7b53f"
    ),
}


def test_plan_tables_are_consistent():
    assert set(PINNED_DIGESTS) == set(TENANCY_PLAN_NAMES)
    assert set(PLAN_TENANTS) == set(TENANCY_PLAN_NAMES)
    assert set(PLAN_TICKS) == set(TENANCY_PLAN_NAMES)


def test_unknown_plan_rejected(tmp_path):
    with pytest.raises(ChaosError):
        run_tenancy_soak(plan="kitchen-fire", state_root=str(tmp_path))


def test_noisy_neighbor_small_scale(tmp_path):
    result = run_tenancy_soak(
        plan="noisy-neighbor",
        seed=7,
        tenants=8,
        ticks=8,
        state_root=str(tmp_path / "a"),
    )
    assert result.ok, (result.failure, result.invariants)
    assert result.shed_total > 0
    assert result.quarantines >= 1
    assert result.aggressor["ledger"]["shed"] > 0
    assert result.victim_miss_delta == 0.0
    # determinism: the same (plan, seed, scale) reproduces the digest
    again = run_tenancy_soak(
        plan="noisy-neighbor",
        seed=7,
        tenants=8,
        ticks=8,
        state_root=str(tmp_path / "b"),
    )
    assert again.digest == result.digest
    # ... and a different seed does not
    other = run_tenancy_soak(
        plan="noisy-neighbor",
        seed=8,
        tenants=8,
        ticks=8,
        state_root=str(tmp_path / "c"),
    )
    assert other.digest != result.digest


def test_wal_corruption_small_scale(tmp_path):
    result = run_tenancy_soak(
        plan="tenant-wal-corruption",
        seed=7,
        tenants=9,
        ticks=8,
        state_root=str(tmp_path),
    )
    assert result.ok, (result.failure, result.invariants)
    assert result.restarts == 1
    assert result.invariants["wal-quarantine-isolated"]
    assert result.invariants["storm-tenant-benched"]


def test_mass_rehome_small_scale(tmp_path):
    result = run_tenancy_soak(
        plan="mass-rehome",
        seed=7,
        tenants=40,
        ticks=4,
        state_root=str(tmp_path),
    )
    assert result.ok, (result.failure, result.invariants)
    assert result.promotions == 1
    assert result.rehomed == 40
    assert result.digests_verified == 40
    assert result.final_epoch == 2
    assert result.invariants["no-interval-lost"]


@pytest.mark.parametrize("plan", TENANCY_PLAN_NAMES)
def test_full_scale_digest_is_pinned(plan, tmp_path):
    result = run_tenancy_soak(plan=plan, seed=7, state_root=str(tmp_path))
    assert result.ok, (result.failure, result.invariants)
    assert result.digest == PINNED_DIGESTS[plan]
    if plan == "mass-rehome":
        assert result.tenants == 1000
        assert result.rehomed == 1000
        assert result.digests_verified == 1000
