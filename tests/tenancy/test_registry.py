"""TenantSpec validation and the durable registry round-trip."""

import json

import pytest

from repro.core.config import GroupConfig
from repro.errors import TenancyError
from repro.tenancy.registry import (
    REGISTRY_FILENAME,
    TenantRegistry,
    TenantSpec,
    make_fleet,
)


def test_spec_defaults_and_members():
    spec = TenantSpec(name="acme")
    assert spec.n_members == 8
    assert spec.interval_ticks == 1
    assert spec.quota is None
    members = spec.initial_members()
    assert len(members) == 8
    assert members[0] == "acme-m0000"
    assert members[-1] == "acme-m0007"


@pytest.mark.parametrize(
    "kwargs",
    [
        {"name": ""},
        {"name": "-leading-dash"},
        {"name": "has space"},
        {"name": "slash/y"},
        {"name": 42},
        {"name": "ok", "n_members": 0},
        {"name": "ok", "interval_ticks": 0},
        {"name": "ok", "quota": 0},
        {"name": "ok", "config": {"degree": 4}},
    ],
)
def test_bad_specs_rejected(kwargs):
    with pytest.raises(TenancyError):
        TenantSpec(**kwargs)


def test_registry_rejects_duplicates_and_unknowns():
    registry = TenantRegistry([TenantSpec(name="a")])
    with pytest.raises(TenancyError):
        registry.add(TenantSpec(name="a"))
    with pytest.raises(TenancyError):
        registry.get("nobody")
    assert "a" in registry
    assert registry.names == ["a"]


def test_save_load_roundtrip(tmp_path):
    fleet = make_fleet(9, seed=11)
    path = fleet.save(tmp_path)
    assert path.endswith(REGISTRY_FILENAME)
    loaded = TenantRegistry.load(tmp_path)
    assert loaded.names == fleet.names
    for name in fleet.names:
        original, recovered = fleet.get(name), loaded.get(name)
        assert recovered.n_members == original.n_members
        assert recovered.interval_ticks == original.interval_ticks
        assert recovered.quota == original.quota
        assert recovered.config == original.config


def test_load_missing_and_damaged(tmp_path):
    with pytest.raises(TenancyError):
        TenantRegistry.load(tmp_path / "nowhere")
    target = tmp_path / REGISTRY_FILENAME
    target.write_text("{not json")
    with pytest.raises(TenancyError):
        TenantRegistry.load(tmp_path)
    target.write_text(json.dumps({"schema": 1}))
    with pytest.raises(TenancyError):
        TenantRegistry.load(tmp_path)


def test_load_revalidates_specs(tmp_path):
    fleet = make_fleet(2)
    data = fleet.to_dict()
    data["tenants"][0]["config"]["degree"] = 1
    (tmp_path / REGISTRY_FILENAME).write_text(json.dumps(data))
    with pytest.raises(ValueError):
        TenantRegistry.load(tmp_path)


def test_make_fleet_is_heterogeneous_and_deterministic():
    fleet = make_fleet(12, seed=7)
    assert len(fleet) == 12
    sizes = {spec.n_members for spec in fleet}
    cadences = {spec.interval_ticks for spec in fleet}
    engines = {spec.config.engine for spec in fleet}
    assert len(sizes) > 1
    assert len(cadences) > 1
    assert len(engines) > 1
    seeds = [spec.config.seed for spec in fleet]
    assert len(set(seeds)) == 12
    again = make_fleet(12, seed=7)
    assert [s.to_dict() for s in again] == [s.to_dict() for s in fleet]
    other = make_fleet(12, seed=8)
    assert [s.config.seed for s in other] != seeds


def test_make_fleet_pinned_knobs():
    fleet = make_fleet(5, n_members=3, interval_ticks=2, quota=16)
    for spec in fleet:
        assert spec.n_members == 3
        assert spec.interval_ticks == 2
        assert spec.quota == 16
