"""Admission control, the conservation identity, and the breaker FSM.

The conservation property is the load-shedding contract the tenancy
soak pins: every offered request lands in exactly one of accepted /
shed / quarantined, per tenant, no matter the churn driver, the seed,
or when the tenant is benched.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TenancyError
from repro.service.churn import (
    ChurnEvents,
    FlashCrowdChurn,
    NoChurn,
    PoissonChurn,
)
from repro.tenancy.quotas import (
    AdmissionController,
    TenantBreaker,
    TenantQuota,
)
from repro.util.rng import RandomSource


def _events(n_joins, n_leaves):
    return ChurnEvents(
        joins=["j%03d" % i for i in range(n_joins)],
        leaves=["l%03d" % i for i in range(n_leaves)],
    )


def test_quota_validation():
    assert TenantQuota().max_requests is None
    assert TenantQuota(max_requests=3).max_requests == 3
    with pytest.raises(TenancyError):
        TenantQuota(max_requests=0)


def test_unregistered_tenant_rejected():
    controller = AdmissionController()
    with pytest.raises(TenancyError):
        controller.admit("ghost", _events(1, 0))


def test_unlimited_quota_accepts_everything():
    controller = AdmissionController()
    controller.register("a")
    admitted, shed = controller.admit("a", _events(40, 17))
    assert shed == 0
    assert admitted.n_events == 57
    assert controller.ledger("a").accepted == 57


def test_overflow_sheds_joins_first_policy():
    controller = AdmissionController()
    controller.register("a", quota=5)
    admitted, shed = controller.admit("a", _events(3, 4))
    # joins fill the quota first, then leaves take the remainder
    assert admitted.joins == ["j000", "j001", "j002"]
    assert admitted.leaves == ["l000", "l001"]
    assert shed == 2
    ledger = controller.ledger("a")
    assert (ledger.offered, ledger.accepted, ledger.shed) == (7, 5, 2)


def test_quarantined_batch_is_bucketed_not_dropped_silently():
    controller = AdmissionController()
    controller.register("a", quota=5)
    admitted, shed = controller.admit("a", _events(9, 1), quarantined=True)
    assert admitted.n_events == 0
    assert shed == 0
    ledger = controller.ledger("a")
    assert ledger.quarantined == 10
    assert ledger.offered == 10
    assert controller.verify() == []


# -- satellite: conservation across seeds and churn drivers -----------

_drivers = st.sampled_from(["none", "poisson", "flash"])


def _make_driver(kind, alpha):
    if kind == "none":
        return NoChurn()
    if kind == "poisson":
        return PoissonChurn(alpha=alpha)
    return FlashCrowdChurn(alpha=alpha, burst_every=2, burst_size=24)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    kind=_drivers,
    alpha=st.floats(min_value=0.0, max_value=0.6),
    quota=st.one_of(st.none(), st.integers(min_value=1, max_value=32)),
    quarantine_mask=st.integers(min_value=0, max_value=255),
)
def test_offered_equals_accepted_plus_shed_plus_quarantined(
    seed, kind, alpha, quota, quarantine_mask
):
    """offered == accepted + shed + quarantined, per tenant, always."""
    driver = _make_driver(kind, alpha)
    rng = RandomSource(seed).generator()
    controller = AdmissionController()
    controller.register("t", quota=quota)
    members = {"m%04d" % i for i in range(12)}
    offered_total = 0
    for interval in range(8):
        events = driver.events(interval, members, rng)
        offered_total += events.n_events
        benched = bool((quarantine_mask >> interval) & 1)
        admitted, shed = controller.admit("t", events, quarantined=benched)
        members |= set(admitted.joins)
        members -= set(admitted.leaves)
        if quota is not None:
            assert admitted.n_events <= quota
    ledger = controller.ledger("t")
    assert ledger.offered == offered_total
    assert ledger.offered == (
        ledger.accepted + ledger.shed + ledger.quarantined
    )
    assert controller.verify() == []


# -- the breaker FSM ---------------------------------------------------


def test_breaker_threshold_and_trial_cycle():
    breaker = TenantBreaker(threshold=3, cooldown=2)
    assert breaker.state == TenantBreaker.OK
    assert breaker.record(True) is None
    assert breaker.record(True) is None
    assert breaker.record(True) == "tenant_quarantine"
    assert breaker.quarantined
    assert breaker.quarantines == 1
    # cooldown counts down to the half-open trial
    assert breaker.tick_quarantine() is None
    assert breaker.tick_quarantine() == "tenant_trial"
    assert breaker.state == TenantBreaker.TRIAL
    # a clean trial closes the breaker
    assert breaker.record(False) == "tenant_recovered"
    assert breaker.state == TenantBreaker.OK


def test_breaker_failed_trial_reopens():
    breaker = TenantBreaker(threshold=1, cooldown=1)
    assert breaker.record(True) == "tenant_quarantine"
    assert breaker.tick_quarantine() == "tenant_trial"
    assert breaker.record(True) == "tenant_quarantine"
    assert breaker.quarantines == 2


def test_breaker_strikes_must_be_consecutive():
    breaker = TenantBreaker(threshold=2, cooldown=1)
    assert breaker.record(True) is None
    assert breaker.record(False) is None  # resets the streak
    assert breaker.record(True) is None
    assert breaker.record(True) == "tenant_quarantine"


def test_breaker_trip_is_immediate():
    breaker = TenantBreaker(threshold=5, cooldown=3)
    assert breaker.trip() == "tenant_quarantine"
    assert breaker.quarantined
    assert breaker.tick_quarantine() is None
    snapshot = breaker.snapshot()
    assert snapshot["state"] == "quarantined"
    assert snapshot["quarantines"] == 1


def test_breaker_rejects_bad_knobs():
    with pytest.raises(TenancyError):
        TenantBreaker(threshold=0)
    with pytest.raises(TenancyError):
        TenantBreaker(cooldown=0)
