"""Deadline scheduling, whale fairness, cadences and the cost proxy."""

import pytest

from repro.errors import TenancyError
from repro.tenancy.scheduler import DeadlineScheduler, estimate_cost


def test_estimate_cost_shape():
    # one unit of fixed overhead with an empty queue
    assert estimate_cost(8, 0) == 1
    # cost grows linearly in pending requests
    assert estimate_cost(8, 4) - estimate_cost(8, 2) == estimate_cost(
        8, 2
    ) - estimate_cost(8, 0)
    # deeper trees (more members) cost more per request
    assert estimate_cost(4096, 1) > estimate_cost(4, 1)
    # cost is deterministic in its inputs
    assert estimate_cost(100, 7, degree=3) == estimate_cost(100, 7, degree=3)


def test_unbudgeted_scheduler_runs_everyone_due():
    scheduler = DeadlineScheduler()
    for name in ("a", "b", "c"):
        scheduler.register(name)
    plan = scheduler.plan(0, {"a": 100, "b": 200, "c": 300})
    assert plan.run == ["a", "b", "c"]
    assert plan.deferred == []
    assert plan.over_budget == []


def test_cadence_controls_when_due():
    scheduler = DeadlineScheduler()
    scheduler.register("fast", interval_ticks=1)
    scheduler.register("slow", interval_ticks=3)
    assert scheduler.due(0) == ["fast", "slow"]
    scheduler.plan(0, {"fast": 1, "slow": 1})
    assert scheduler.due(1) == ["fast"]
    scheduler.plan(1, {"fast": 1})
    assert scheduler.due(2) == ["fast"]
    scheduler.plan(2, {"fast": 1})
    assert scheduler.due(3) == ["fast", "slow"]


def test_whale_sorts_after_all_compliant_tenants():
    scheduler = DeadlineScheduler(budget=100, solo_fraction=0.5)
    scheduler.register("whale")
    scheduler.register("small-1")
    scheduler.register("small-2")
    plan = scheduler.plan(0, {"whale": 80, "small-1": 10, "small-2": 10})
    # the whale registered first but runs last; everyone still fits
    assert plan.run == ["small-1", "small-2", "whale"]
    assert plan.over_budget == ["whale"]


def test_whale_only_defers_itself():
    scheduler = DeadlineScheduler(budget=100, solo_fraction=0.5)
    scheduler.register("whale")
    for index in range(9):
        scheduler.register("small-%d" % index)
    costs = {"whale": 95}
    costs.update({"small-%d" % i: 10 for i in range(9)})
    plan = scheduler.plan(0, costs)
    # 9 compliant tenants consume 90 of 100; the whale no longer fits
    assert plan.deferred == ["whale"]
    assert all(name.startswith("small") for name in plan.run)
    assert scheduler.misses["whale"] == 1
    assert all(scheduler.misses["small-%d" % i] == 0 for i in range(9))


def test_budget_defers_overflow_in_deadline_order():
    scheduler = DeadlineScheduler(budget=25, solo_fraction=1.0)
    for name in ("a", "b", "c"):
        scheduler.register(name)
    plan = scheduler.plan(0, {"a": 10, "b": 10, "c": 10})
    assert plan.run == ["a", "b"]
    assert plan.deferred == ["c"]
    # the deferred tenant is still due next tick and now sorts first
    plan = scheduler.plan(1, {"c": 10, "a": 10, "b": 10})
    assert plan.run[0] == "c"


def test_quarantined_skip_is_not_a_miss():
    scheduler = DeadlineScheduler(budget=100)
    scheduler.register("benched")
    scheduler.register("healthy")
    for tick in range(3):
        plan = scheduler.plan(
            tick, {"healthy": 5}, skip={"benched"}
        )
        assert plan.run == ["healthy"]
    assert scheduler.misses["benched"] == 0
    assert scheduler.miss_rate("benched") == 0.0
    # re-entry defers the frozen deadline rather than back-filling
    scheduler.defer_quarantined("benched", 2)
    assert "benched" not in scheduler.due(2)
    assert "benched" in scheduler.due(3)


def test_miss_rate_and_snapshot():
    scheduler = DeadlineScheduler(budget=10, solo_fraction=1.0)
    scheduler.register("a")
    scheduler.register("b")
    scheduler.plan(0, {"a": 8, "b": 8})
    assert scheduler.miss_rate("b") == 1.0
    snapshot = scheduler.snapshot()
    assert snapshot["budget"] == 10
    assert snapshot["misses"]["b"] == 1
    assert snapshot["runs"]["a"] == 1


def test_scheduler_validation():
    with pytest.raises(TenancyError):
        DeadlineScheduler(budget=0)
    with pytest.raises(TenancyError):
        DeadlineScheduler(solo_fraction=0.0)
    with pytest.raises(TenancyError):
        DeadlineScheduler(solo_fraction=1.5)
    scheduler = DeadlineScheduler()
    scheduler.register("a")
    with pytest.raises(TenancyError):
        scheduler.register("a")
