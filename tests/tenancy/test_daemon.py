"""MultiGroupDaemon: ticks, isolation, quarantine and recovery."""

import pytest

from repro.chaos.faults import FaultPlan, IoFault
from repro.chaos.seams import FaultyFilesystem
from repro.errors import TenancyError
from repro.service.churn import FlashCrowdChurn, PoissonChurn
from repro.tenancy.daemon import MultiGroupDaemon, read_digest
from repro.tenancy.registry import TenantRegistry, make_fleet


def _churn(fleet, alpha=0.2):
    return {
        spec.name: PoissonChurn(alpha=alpha) for spec in fleet
    }


def test_needs_a_non_empty_registry(tmp_path):
    with pytest.raises(TenancyError):
        MultiGroupDaemon(TenantRegistry(), tmp_path, daemons={})


def test_fleet_ticks_and_health(tmp_path):
    fleet = make_fleet(6, seed=3)
    daemon = MultiGroupDaemon.start_new(
        fleet, tmp_path, churn=_churn(fleet)
    )
    try:
        plans = daemon.run_ticks(4)
        assert len(plans) == 4
        # tick 0 runs every tenant; later ticks respect cadences
        assert len(plans[0].run) == 6
        health = daemon.health()
        assert health["status"] == "ok"
        assert health["tenants"] == 6
        assert health["intervals_total"] == daemon.intervals_total > 6
        assert daemon.check_agreement() == []
        assert daemon.admission.verify() == []
        # every tenant that ran recorded a post-interval digest
        for spec in fleet:
            recorded = read_digest(tmp_path, spec.name)
            assert recorded is not None
            assert set(recorded) == {"interval", "digest"}
    finally:
        daemon.close()


def test_cadence_spreads_tenant_intervals(tmp_path):
    fleet = make_fleet(4, seed=5, interval_ticks=2)
    daemon = MultiGroupDaemon.start_new(fleet, tmp_path)
    try:
        daemon.run_ticks(4)
        for tenant in daemon.daemons.values():
            # due at ticks 0 and 2 only
            assert tenant.server.intervals_processed == 2
    finally:
        daemon.close()


def test_recover_all_resumes_fleet_and_churn_stream(tmp_path):
    fleet = make_fleet(5, seed=9, interval_ticks=1)
    daemon = MultiGroupDaemon.start_new(
        fleet, tmp_path, churn=_churn(fleet)
    )
    daemon.run_ticks(3)
    keys_before = {
        name: tenant.server.group_key.fingerprint()
        for name, tenant in daemon.daemons.items()
    }
    intervals_before = {
        name: tenant.server.intervals_processed
        for name, tenant in daemon.daemons.items()
    }
    daemon.close()

    # a full continuous run is the churn-replay oracle: recovery must
    # not rewind any tenant's workload stream
    oracle_root = tmp_path / "oracle"
    oracle_fleet = make_fleet(5, seed=9, interval_ticks=1)
    oracle = MultiGroupDaemon.start_new(
        oracle_fleet, oracle_root, churn=_churn(oracle_fleet)
    )
    oracle.run_ticks(6)
    oracle_members = {
        name: set(tenant.server.users)
        for name, tenant in oracle.daemons.items()
    }
    oracle.close()

    recovered = MultiGroupDaemon.recover_all(
        tmp_path, churn=_churn(make_fleet(5, seed=9, interval_ticks=1))
    )
    try:
        for name, tenant in recovered.daemons.items():
            assert tenant.server.intervals_processed == intervals_before[name]
            assert tenant.server.group_key.fingerprint() == keys_before[name]
        recovered.run_ticks(3)
        for name, tenant in recovered.daemons.items():
            assert tenant.server.intervals_processed == 6
            # churn-stream replay: the workload did not rewind, so the
            # membership evolves exactly as in the continuous run (key
            # material may differ; agreement is the key contract)
            assert set(tenant.server.users) == oracle_members[name]
        assert recovered.check_agreement() == []
    finally:
        recovered.close()


def test_wal_failure_quarantines_only_that_tenant(tmp_path):
    fleet = make_fleet(4, seed=13, interval_ticks=1)
    victim = fleet.names[1]
    fault = FaultPlan(
        name="wal-storm",
        seed=13,
        io_faults=(IoFault("wal-write", at=4, times=1 << 20),),
    )
    churn = _churn(fleet, alpha=0.5)
    daemon = MultiGroupDaemon.start_new(
        fleet,
        tmp_path,
        churn=churn,
        fs_overrides={victim: FaultyFilesystem(fault)},
        breaker_cooldown=2,
    )
    try:
        daemon.run_ticks(4)
        assert victim in daemon.quarantined_names()
        assert daemon.breakers[victim].quarantines >= 1
        health = daemon.health()
        assert health["status"] == "degraded"
        # neighbors keep their cadence: every tick ran for them
        for name, tenant in daemon.daemons.items():
            if name != victim:
                assert tenant.server.intervals_processed == 4
        # the victim's refused load is accounted, not lost
        ledger = daemon.admission.ledger(victim)
        assert ledger.offered == (
            ledger.accepted + ledger.shed + ledger.quarantined
        )
        assert ledger.quarantined > 0
    finally:
        daemon.close()


def test_whale_runs_degraded_with_carry(tmp_path):
    fleet = make_fleet(3, seed=21, n_members=8, interval_ticks=1)
    whale = fleet.names[0]
    churn = {whale: FlashCrowdChurn(alpha=0.0, burst_every=1, burst_size=40)}
    daemon = MultiGroupDaemon.start_new(
        fleet, tmp_path, churn=churn, budget=600, solo_fraction=0.05
    )
    try:
        plans = daemon.run_ticks(2)
        assert whale in plans[1].over_budget
        # degradation must not leak: the policy is restored after
        assert daemon.daemons[whale].service.deadline_policy != "carry"
        # the whale's own breaker takes the strike
        assert daemon.breakers[whale].consecutive >= 1 or (
            daemon.breakers[whale].quarantines >= 1
        )
    finally:
        daemon.close()
