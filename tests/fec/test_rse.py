"""Tests for repro.fec.rse — the any-k-of-n erasure property."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FECError, NotEnoughPacketsError
from repro.fec import MAX_CODEWORDS, RSECoder, encoding_cost_units


def make_block(k, length=64, seed=0):
    rng = np.random.default_rng(seed)
    return [
        bytes(rng.integers(0, 256, length, dtype=np.uint8)) for _ in range(k)
    ]


class TestEncode:
    def test_systematic_prefix(self):
        coder = RSECoder(4)
        data = make_block(4)
        codeword = coder.encode(data, 3)
        assert codeword[:4] == data
        assert len(codeword) == 7

    def test_parity_lengths_match_data(self):
        coder = RSECoder(4)
        parity = coder.parity(make_block(4, length=100), 2)
        assert all(len(p) == 100 for p in parity)

    def test_zero_parity(self):
        assert RSECoder(4).parity(make_block(4), 0) == []

    def test_parity_deterministic(self):
        coder = RSECoder(5)
        data = make_block(5)
        assert coder.parity(data, 3) == coder.parity(data, 3)

    def test_distinct_parity_rows_differ(self):
        coder = RSECoder(5)
        data = make_block(5)
        parity = coder.parity(data, 4)
        assert len(set(parity)) == 4

    def test_wrong_packet_count_rejected(self):
        with pytest.raises(FECError):
            RSECoder(4).parity(make_block(3), 1)

    def test_unequal_lengths_rejected(self):
        data = make_block(3) + [b"short"]
        with pytest.raises(FECError):
            RSECoder(4).parity(data, 1)

    def test_block_size_limit(self):
        with pytest.raises(FECError):
            RSECoder(255)

    def test_parity_row_limit(self):
        coder = RSECoder(250)
        data = make_block(250, length=8)
        with pytest.raises(FECError):
            coder.parity(data, 6)

    def test_max_parity(self):
        assert RSECoder(10).max_parity() == MAX_CODEWORDS - 10


class TestDecode:
    def test_all_data_received_fast_path(self):
        coder = RSECoder(4)
        data = make_block(4)
        received = dict(enumerate(data))
        assert coder.decode(received) == data

    def test_parity_only(self):
        coder = RSECoder(4)
        data = make_block(4)
        parity = coder.parity(data, 4)
        received = {4 + j: parity[j] for j in range(4)}
        assert coder.decode(received) == data

    def test_mixed_recovery(self):
        coder = RSECoder(5)
        data = make_block(5)
        parity = coder.parity(data, 3)
        received = {0: data[0], 2: data[2], 5: parity[0], 6: parity[1], 7: parity[2]}
        assert coder.decode(received) == data

    def test_extra_packets_ignored(self):
        coder = RSECoder(3)
        data = make_block(3)
        parity = coder.parity(data, 3)
        received = dict(enumerate(data))
        received.update({3 + j: parity[j] for j in range(3)})
        assert coder.decode(received) == data

    def test_not_enough_packets(self):
        coder = RSECoder(4)
        data = make_block(4)
        with pytest.raises(NotEnoughPacketsError):
            coder.decode({0: data[0], 1: data[1]})

    def test_bad_index_rejected(self):
        coder = RSECoder(2)
        data = make_block(2)
        with pytest.raises(FECError):
            coder.decode({0: data[0], 300: data[1]})

    def test_non_dict_rejected(self):
        with pytest.raises(FECError):
            RSECoder(2).decode([b"a", b"b"])

    def test_differing_lengths_rejected(self):
        coder = RSECoder(2)
        parity = coder.parity(make_block(2), 1)
        with pytest.raises(FECError):
            coder.decode({1: b"x" * 64, 2: parity[0][:10]})

    @settings(max_examples=40, deadline=None)
    @given(
        k=st.integers(1, 12),
        n_parity=st.integers(0, 12),
        seed=st.integers(0, 10_000),
    )
    def test_any_k_of_n_property(self, k, n_parity, seed):
        """THE erasure-code contract: any k of the n codewords suffice."""
        rng = np.random.default_rng(seed)
        coder = RSECoder(k)
        data = make_block(k, length=32, seed=seed)
        codeword = coder.encode(data, n_parity)
        n = len(codeword)
        if n < k:
            return
        chosen = rng.choice(n, size=k, replace=False)
        received = {int(i): codeword[int(i)] for i in chosen}
        assert coder.decode(received) == data


class TestIncrementalParity:
    def test_later_round_parity_is_new_rows(self):
        coder = RSECoder(6)
        data = make_block(6)
        first = coder.parity(data, 3)
        second = coder.parity(data, 3, first_parity_index=3)
        assert set(first).isdisjoint(second)

    def test_later_round_parity_decodes(self):
        coder = RSECoder(6)
        data = make_block(6)
        second = coder.parity(data, 6, first_parity_index=3)
        received = {6 + 3 + j: second[j] for j in range(6)}
        assert coder.decode(received) == data

    def test_mixed_rounds_decode(self):
        coder = RSECoder(4)
        data = make_block(4)
        round1 = coder.parity(data, 2)
        round2 = coder.parity(data, 2, first_parity_index=2)
        received = {
            0: data[0],
            4: round1[0],
            6: round2[0],
            7: round2[1],
        }
        assert coder.decode(received) == data


class TestHelpers:
    def test_parity_needed(self):
        coder = RSECoder(10)
        assert coder.parity_needed(7) == 3
        assert coder.parity_needed(10) == 0
        assert coder.parity_needed(15) == 0

    def test_encoding_cost_linear_in_k(self):
        assert encoding_cost_units(10, 5) == 50
        assert encoding_cost_units(20, 5) == 2 * encoding_cost_units(10, 5)

    def test_k_property(self):
        assert RSECoder(7).k == 7

    def test_repr(self):
        assert "k=7" in repr(RSECoder(7))

    def test_invalid_k(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            RSECoder(0)
