"""Stress and boundary tests for the RSE coder."""

import numpy as np
import pytest

from repro.errors import FECError
from repro.fec import MAX_CODEWORDS, RSECoder


def block(k, length=32, seed=0):
    rng = np.random.default_rng(seed)
    return [
        bytes(rng.integers(0, 256, length, dtype=np.uint8))
        for _ in range(k)
    ]


class TestBoundaries:
    def test_largest_block_size(self):
        k = MAX_CODEWORDS - 1  # 254: exactly one parity row possible
        coder = RSECoder(k)
        data = block(k, length=4)
        (parity,) = coder.parity(data, 1)
        received = dict(enumerate(data))
        del received[100]
        received[k] = parity
        assert coder.decode(received) == data

    def test_one_past_limit(self):
        with pytest.raises(FECError):
            RSECoder(MAX_CODEWORDS)

    def test_k_one_parity_flood(self):
        """k=1: every parity packet is an independent copy-equivalent."""
        coder = RSECoder(1)
        data = block(1)
        parity = coder.parity(data, 50)
        for row, packet in enumerate(parity):
            assert coder.decode({1 + row: packet}) == data

    def test_full_parity_space(self):
        coder = RSECoder(10)
        data = block(10, length=8)
        parity = coder.parity(data, coder.max_parity())
        assert len(parity) == MAX_CODEWORDS - 10
        # The last k rows alone still decode.
        received = {
            MAX_CODEWORDS - 1 - j: parity[-1 - j] for j in range(10)
        }
        assert coder.decode(received) == data

    def test_single_byte_packets(self):
        coder = RSECoder(5)
        data = [bytes([i]) for i in range(5)]
        parity = coder.parity(data, 5)
        received = {5 + j: parity[j] for j in range(5)}
        assert coder.decode(received) == data

    def test_large_packets(self):
        coder = RSECoder(4)
        data = block(4, length=8192, seed=3)
        parity = coder.parity(data, 4)
        received = {4 + j: parity[j] for j in range(4)}
        assert coder.decode(received) == data


class TestAdversarialSubsets:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_k_subsets_of_large_codeword(self, seed):
        rng = np.random.default_rng(seed)
        k = 20
        coder = RSECoder(k)
        data = block(k, length=64, seed=seed)
        n_parity = 60
        codeword = coder.encode(data, n_parity)
        chosen = rng.choice(k + n_parity, size=k, replace=False)
        received = {int(i): codeword[int(i)] for i in chosen}
        assert coder.decode(received) == data

    def test_interleaved_round_rows(self):
        """Rows drawn from many 'rounds' (disjoint parity ranges) mix."""
        coder = RSECoder(6)
        data = block(6, seed=9)
        rounds = [
            coder.parity(data, 2, first_parity_index=2 * r)
            for r in range(3)
        ]
        received = {}
        for round_index, packets in enumerate(rounds):
            for j, packet in enumerate(packets):
                received[6 + 2 * round_index + j] = packet
        assert coder.decode(received) == data

    def test_decode_is_pure(self):
        """Decoding doesn't disturb the coder: repeatable results."""
        coder = RSECoder(8)
        data = block(8, seed=11)
        parity = coder.parity(data, 8)
        received = {8 + j: parity[j] for j in range(8)}
        first = coder.decode(dict(received))
        second = coder.decode(dict(received))
        assert first == second == data
