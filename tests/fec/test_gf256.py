"""Tests for repro.fec.gf256 — field axioms and vectorised operations."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import FECError
from repro.fec import gf256

elements = st.integers(0, 255)
nonzero = st.integers(1, 255)


class TestFieldAxioms:
    @given(a=elements, b=elements)
    def test_mul_commutative(self, a, b):
        assert gf256.gf_mul(a, b) == gf256.gf_mul(b, a)

    @given(a=elements, b=elements, c=elements)
    def test_mul_associative(self, a, b, c):
        assert gf256.gf_mul(gf256.gf_mul(a, b), c) == gf256.gf_mul(
            a, gf256.gf_mul(b, c)
        )

    @given(a=elements, b=elements, c=elements)
    def test_distributive(self, a, b, c):
        left = gf256.gf_mul(a, b ^ c)
        right = gf256.gf_mul(a, b) ^ gf256.gf_mul(a, c)
        assert left == right

    @given(a=elements)
    def test_one_is_identity(self, a):
        assert gf256.gf_mul(a, 1) == a

    @given(a=elements)
    def test_zero_annihilates(self, a):
        assert gf256.gf_mul(a, 0) == 0

    @given(a=nonzero)
    def test_inverse(self, a):
        assert gf256.gf_mul(a, gf256.gf_inv(a)) == 1

    @given(a=elements, b=nonzero)
    def test_div_is_mul_by_inverse(self, a, b):
        assert gf256.gf_div(a, b) == gf256.gf_mul(a, gf256.gf_inv(b))

    def test_inv_of_zero_raises(self):
        with pytest.raises(FECError):
            gf256.gf_inv(0)

    def test_div_by_zero_raises(self):
        with pytest.raises(FECError):
            gf256.gf_div(3, 0)

    @given(a=elements)
    def test_add_is_self_inverse(self, a):
        assert gf256.gf_add(a, a) == 0

    @given(a=nonzero, e=st.integers(0, 520))
    def test_pow_matches_repeated_mul(self, a, e):
        expected = 1
        for _ in range(e):
            expected = gf256.gf_mul(expected, a)
        assert gf256.gf_pow(a, e) == expected

    def test_pow_negative_raises(self):
        with pytest.raises(FECError):
            gf256.gf_pow(2, -1)

    def test_pow_of_zero(self):
        assert gf256.gf_pow(0, 0) == 1
        assert gf256.gf_pow(0, 5) == 0

    def test_generator_has_full_order(self):
        """Powers of 2 hit all 255 non-zero elements."""
        seen = {gf256.gf_pow(2, i) for i in range(255)}
        assert len(seen) == 255
        assert 0 not in seen


class TestVectorisedOps:
    @given(coefficient=elements, data=st.binary(min_size=1, max_size=64))
    def test_mul_bytes_matches_scalar(self, coefficient, data):
        array = np.frombuffer(data, dtype=np.uint8)
        out = gf256.gf_mul_bytes(coefficient, array)
        for value, result in zip(array, out):
            assert gf256.gf_mul(coefficient, int(value)) == int(result)

    def test_mul_bytes_rejects_bad_coefficient(self):
        with pytest.raises(FECError):
            gf256.gf_mul_bytes(256, np.zeros(4, dtype=np.uint8))

    def test_matmul_identity(self):
        data = np.arange(12, dtype=np.uint8).reshape(3, 4)
        identity = np.eye(3, dtype=np.uint8)
        assert np.array_equal(gf256.gf_matmul(identity, data), data)

    def test_matmul_shape_mismatch(self):
        with pytest.raises(FECError):
            gf256.gf_matmul(
                np.zeros((2, 3), dtype=np.uint8),
                np.zeros((4, 5), dtype=np.uint8),
            )

    def test_matmul_linear_combination(self):
        data = np.array([[1, 0], [0, 1]], dtype=np.uint8)
        matrix = np.array([[3, 7]], dtype=np.uint8)
        out = gf256.gf_matmul(matrix, data)
        assert out.tolist() == [[3, 7]]


class TestMatrixInverse:
    def test_identity_inverse(self):
        identity = np.eye(4, dtype=np.uint8)
        assert np.array_equal(gf256.gf_matrix_invert(identity), identity)

    @given(seed=st.integers(0, 1000), size=st.integers(1, 8))
    def test_random_vandermonde_inverts(self, seed, size):
        """Vandermonde matrices over distinct points are invertible."""
        rng = np.random.default_rng(seed)
        points = rng.choice(np.arange(1, 256), size=size, replace=False)
        matrix = np.zeros((size, size), dtype=np.uint8)
        for i, x in enumerate(points):
            for j in range(size):
                matrix[i, j] = gf256.gf_pow(int(x), j)
        inverse = gf256.gf_matrix_invert(matrix)
        product = gf256.gf_matmul(matrix, inverse)
        assert np.array_equal(product, np.eye(size, dtype=np.uint8))

    def test_singular_matrix_raises(self):
        singular = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        with pytest.raises(FECError, match="singular"):
            gf256.gf_matrix_invert(singular)

    def test_non_square_raises(self):
        with pytest.raises(FECError):
            gf256.gf_matrix_invert(np.zeros((2, 3), dtype=np.uint8))
