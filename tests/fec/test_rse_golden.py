"""Golden-vector and exhaustive-erasure tests for the RSE codec.

``golden_rse_vectors.json`` pins the exact parity bytes the reference
(scalar) coder produced for k=10 and h in {1, 5, 10} when the fixture
was generated.  Two guarantees follow:

- the reference coder can never drift (the vectors are frozen bytes);
- the matrix coder is held to *byte equality* with the reference — the
  tentpole's rewrite must be a pure reimplementation, not an
  approximately-compatible one.

The exhaustive decode tests then cover every recoverable erasure
pattern for small k: any k-subset of the n = k + h codeword packets
must reconstruct the original data exactly.
"""

import json
import os
from itertools import combinations

import numpy as np
import pytest

from repro.fec.rse import (
    ReferenceRSECoder,
    RSECoder,
    _generator_matrix,
    _reference_generator_matrix,
)

FIXTURE = os.path.join(
    os.path.dirname(__file__), "golden_rse_vectors.json"
)


@pytest.fixture(scope="module")
def golden():
    with open(FIXTURE) as handle:
        document = json.load(handle)
    document["data"] = [bytes.fromhex(p) for p in document["data_hex"]]
    return document


class TestGoldenVectors:
    @pytest.mark.parametrize("h", [1, 5, 10])
    @pytest.mark.parametrize(
        "coder_cls", [ReferenceRSECoder, RSECoder]
    )
    def test_parity_matches_golden(self, golden, coder_cls, h):
        coder = coder_cls(golden["k"])
        parity = coder.parity(golden["data"], h)
        expected = [
            bytes.fromhex(p) for p in golden["parity_hex"][str(h)]
        ]
        assert parity == expected

    def test_fixture_is_self_consistent(self, golden):
        assert len(golden["data"]) == golden["k"]
        assert all(
            len(p) == golden["packet_bytes"] for p in golden["data"]
        )
        # h=1 parity is the prefix of h=5, which prefixes h=10 (parity
        # rows extend, never recompute).
        assert golden["parity_hex"]["5"][:1] == golden["parity_hex"]["1"]
        assert golden["parity_hex"]["10"][:5] == golden["parity_hex"]["5"]


class TestGeneratorMatrixIdentity:
    @pytest.mark.parametrize("k", [1, 2, 3, 7, 10, 32])
    def test_matrix_equals_reference(self, k):
        assert np.array_equal(
            _generator_matrix(k), _reference_generator_matrix(k)
        )

    def test_systematic_prefix(self):
        matrix = _generator_matrix(10)
        assert np.array_equal(
            matrix[:10], np.eye(10, dtype=np.uint8)
        )


def all_recoverable_patterns(k, h):
    """Every way to keep exactly k of the n = k + h codeword packets."""
    return combinations(range(k + h), k)


class TestExhaustiveErasureRecovery:
    """Round-trip decode under every recoverable pattern for small k."""

    @pytest.mark.parametrize(
        "k,h", [(1, 3), (2, 3), (3, 3), (4, 3), (5, 2), (6, 3)]
    )
    @pytest.mark.parametrize(
        "coder_cls", [ReferenceRSECoder, RSECoder]
    )
    def test_every_k_subset_decodes(self, coder_cls, k, h):
        rng = np.random.default_rng(1000 * k + h)
        data = [
            rng.integers(0, 256, 32, dtype=np.uint8).tobytes()
            for _ in range(k)
        ]
        coder = coder_cls(k)
        code = data + coder.parity(data, h)
        for kept in all_recoverable_patterns(k, h):
            received = {index: code[index] for index in kept}
            assert coder.decode(received) == data, (
                "pattern %r failed for %s(k=%d, h=%d)"
                % (kept, coder_cls.__name__, k, h)
            )

    @pytest.mark.parametrize(
        "coder_cls", [ReferenceRSECoder, RSECoder]
    )
    def test_decoders_agree_packet_for_packet(self, coder_cls):
        """Matrix and reference decoders return identical bytes for the
        same received set (not merely both-correct)."""
        k, h = 6, 4
        rng = np.random.default_rng(99)
        data = [
            rng.integers(0, 256, 48, dtype=np.uint8).tobytes()
            for _ in range(k)
        ]
        reference = ReferenceRSECoder(k)
        matrix = RSECoder(k)
        code = data + reference.parity(data, h)
        for kept in all_recoverable_patterns(k, h):
            received = {index: code[index] for index in kept}
            assert matrix.decode(dict(received)) == reference.decode(
                dict(received)
            )
