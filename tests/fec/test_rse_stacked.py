"""Stacked (multi-block) GF(256) encoding: fused kernel vs committed bytes.

``golden_rse_stacked.json`` extends the PR 2 golden vectors from one
block to a whole message's worth: four k=10 blocks whose parity — both
the proactive rows and a later round's offset rows — was produced by the
scalar :class:`ReferenceRSECoder` and frozen.  The fused
:func:`~repro.fec.gf256.gf_encode_stacked` kernel (reached through
:meth:`RSECoder.parity_blocks`) is held to those bytes, not merely to
runtime agreement with the oracle.
"""

import json
import os

import numpy as np
import pytest

from repro.errors import FECError
from repro.fec.gf256 import gf_encode_stacked, gf_matmul
from repro.fec.rse import ReferenceRSECoder, RSECoder, _generator_matrix

FIXTURE = os.path.join(
    os.path.dirname(__file__), "golden_rse_stacked.json"
)


@pytest.fixture(scope="module")
def golden():
    with open(FIXTURE) as handle:
        document = json.load(handle)
    document["blocks"] = [
        [bytes.fromhex(p) for p in block]
        for block in document["blocks_hex"]
    ]
    return document


class TestGoldenStackedVectors:
    @pytest.mark.parametrize("h", [1, 5, 10])
    @pytest.mark.parametrize("coder_cls", [ReferenceRSECoder, RSECoder])
    def test_parity_blocks_matches_golden(self, golden, coder_cls, h):
        coder = coder_cls(golden["k"])
        expected = [
            [bytes.fromhex(p) for p in block]
            for block in golden["parity_hex"][str(h)]
        ]
        assert coder.parity_blocks(golden["blocks"], h) == expected

    @pytest.mark.parametrize("coder_cls", [ReferenceRSECoder, RSECoder])
    def test_offset_rows_match_golden(self, golden, coder_cls):
        """Later multicast rounds start at a parity-row offset; the
        stacked path must select the same generator rows."""
        coder = coder_cls(golden["k"])
        expected = [
            [bytes.fromhex(p) for p in block]
            for block in golden["offset_parity_hex"]["3:4"]
        ]
        assert (
            coder.parity_blocks(golden["blocks"], 4, first_parity_index=3)
            == expected
        )

    def test_fixture_consistent_with_single_block_goldens(self, golden):
        """Each stacked block's parity equals the per-block parity() of
        both coders — the stacked fixture adds blocks, not semantics."""
        for coder in (ReferenceRSECoder(golden["k"]), RSECoder(golden["k"])):
            for block, expected in zip(
                golden["blocks"], golden["parity_hex"]["5"]
            ):
                assert coder.parity(block, 5) == [
                    bytes.fromhex(p) for p in expected
                ]

    def test_fixture_shape(self, golden):
        assert len(golden["blocks"]) == golden["n_blocks"]
        assert all(len(b) == golden["k"] for b in golden["blocks"])
        assert all(
            len(p) == golden["packet_bytes"]
            for b in golden["blocks"]
            for p in b
        )
        # Proactive-row prefixes nest, matching the single-block fixture.
        for block_1, block_5, block_10 in zip(
            golden["parity_hex"]["1"],
            golden["parity_hex"]["5"],
            golden["parity_hex"]["10"],
        ):
            assert block_5[:1] == block_1
            assert block_10[:5] == block_5


class TestStackedKernel:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "n_blocks,k,h,length", [(1, 10, 10, 64), (9, 10, 6, 1015), (5, 3, 2, 17)]
    )
    def test_matches_per_block_gf_matmul(self, seed, n_blocks, k, h, length):
        rng = np.random.default_rng(seed)
        blocks = rng.integers(
            0, 256, (n_blocks, k, length), dtype=np.uint8
        )
        rows = _generator_matrix(k)[k : k + h]
        fused = gf_encode_stacked(rows, blocks)
        for b in range(n_blocks):
            assert np.array_equal(fused[b], gf_matmul(rows, blocks[b]))

    def test_empty_rows_and_blocks(self):
        rows = _generator_matrix(4)[4:4]
        assert gf_encode_stacked(rows, np.zeros((3, 4, 8), np.uint8)).shape == (3, 0, 8)
        rows = _generator_matrix(4)[4:6]
        assert gf_encode_stacked(rows, np.zeros((0, 4, 8), np.uint8)).shape == (0, 2, 8)

    def test_shape_validation(self):
        with pytest.raises(FECError):
            gf_encode_stacked(np.zeros((2, 3), np.uint8), np.zeros((2, 4, 8), np.uint8))
        with pytest.raises(FECError):
            gf_encode_stacked(np.zeros((2, 3), np.uint8), np.zeros((4, 8), np.uint8))

    def test_chunking_boundary_is_invisible(self):
        """Enough blocks to force multiple chunks of the fused kernel
        still reproduce the per-block product exactly."""
        rng = np.random.default_rng(9)
        k, h, length = 10, 10, 1024
        n_blocks = 40  # > one 16 MiB chunk at this geometry
        blocks = rng.integers(0, 256, (n_blocks, k, length), dtype=np.uint8)
        rows = _generator_matrix(k)[k : k + h]
        fused = gf_encode_stacked(rows, blocks)
        for b in (0, 15, 16, 17, n_blocks - 1):
            assert np.array_equal(fused[b], gf_matmul(rows, blocks[b]))


class TestParityBlocksContract:
    def test_mixed_lengths_fall_back_to_loop(self):
        coder = RSECoder(3)
        block_a = [bytes([i] * 8) for i in range(3)]
        block_b = [bytes([i] * 12) for i in range(3)]
        expected = [coder.parity(block_a, 2), coder.parity(block_b, 2)]
        assert coder.parity_blocks([block_a, block_b], 2) == expected

    def test_zero_parity(self):
        coder = RSECoder(3)
        block = [bytes(8)] * 3
        assert coder.parity_blocks([block, block], 0) == [[], []]

    def test_row_range_validation(self):
        coder = RSECoder(200)
        block = [bytes(4)] * 200
        with pytest.raises(FECError):
            coder.parity_blocks([block], 60)

    def test_bad_block_shape_rejected(self):
        coder = RSECoder(4)
        with pytest.raises(FECError):
            coder.parity_blocks([[bytes(8)] * 3], 1)
