"""Deterministic slot-indexed loss: cohorts, replay, independence."""

from repro.sim.topology import LossParameters
from repro.wire.loss import MemberLoss, cohort_of


class TestCohortStriping:
    def test_exact_fraction_per_thousand(self):
        high = sum(
            1 for index in range(1000) if cohort_of(index, 0.20) == "high"
        )
        assert high == 200

    def test_membership_is_stable_under_churn(self):
        # A member's cohort depends only on its own index, never on who
        # else is in the roster.
        assert cohort_of(37, 0.20) == cohort_of(37, 0.20)

    def test_edges(self):
        assert cohort_of(5, 0.0) == "low"
        assert cohort_of(5, 1.0) == "high"

    def test_spread_not_clumped(self):
        # With alpha=0.5 the stripes must alternate, not fill a prefix.
        cohorts = [cohort_of(index, 0.5) for index in range(10)]
        assert "high" in cohorts[:2] and "low" in cohorts[:2]


class TestMemberLoss:
    def params(self, **overrides):
        fields = dict(alpha=0.25, p_high=0.3, p_low=0.05, p_source=0.02)
        fields.update(overrides)
        return LossParameters(**fields)

    def test_same_seed_same_history(self):
        a = MemberLoss(self.params(), 3, 1, seed=42, spacing_seconds=0.1)
        b = MemberLoss(self.params(), 3, 1, seed=42, spacing_seconds=0.1)
        assert [a.lost(s) for s in range(200)] == [
            b.lost(s) for s in range(200)
        ]

    def test_out_of_order_queries_match_in_order(self):
        a = MemberLoss(self.params(), 3, 1, seed=42, spacing_seconds=0.1)
        b = MemberLoss(self.params(), 3, 1, seed=42, spacing_seconds=0.1)
        forward = [a.lost(s) for s in range(100)]
        backward = [b.lost(s) for s in reversed(range(100))]
        assert forward == list(reversed(backward))

    def test_intervals_use_independent_chains(self):
        a = MemberLoss(self.params(), 3, 1, seed=42, spacing_seconds=0.1)
        b = MemberLoss(self.params(), 3, 2, seed=42, spacing_seconds=0.1)
        assert [a.lost(s) for s in range(300)] != [
            b.lost(s) for s in range(300)
        ]

    def test_members_use_independent_receiver_chains(self):
        # Indices 1 and 2 are both low-loss at alpha=0.25 striping.
        a = MemberLoss(self.params(), 1, 1, seed=42, spacing_seconds=0.1)
        b = MemberLoss(self.params(), 2, 1, seed=42, spacing_seconds=0.1)
        assert [a.lost(s) for s in range(500)] != [
            b.lost(s) for s in range(500)
        ]

    def test_source_outage_is_shared(self):
        # With lossless receiver links, every member sees exactly the
        # shared source chain — the paper's common uplink.
        params = self.params(p_high=0.0, p_low=0.0, p_source=0.3)
        a = MemberLoss(params, 1, 1, seed=42, spacing_seconds=0.1)
        b = MemberLoss(params, 9, 1, seed=42, spacing_seconds=0.1)
        history_a = [a.lost(s) for s in range(300)]
        history_b = [b.lost(s) for s in range(300)]
        assert history_a == history_b
        assert any(history_a)  # the chain actually drops something

    def test_dropped_counter(self):
        loss = MemberLoss(
            self.params(p_high=1.0, p_low=1.0, alpha=1.0),
            0,
            1,
            seed=1,
            spacing_seconds=0.1,
        )
        for slot in range(10):
            assert loss.lost(slot)
        assert loss.dropped == 10

    def test_high_cohort_drops_more(self):
        params = self.params(p_source=0.0)
        high = MemberLoss(params, 0, 1, seed=7, spacing_seconds=0.1)
        low = MemberLoss(params, 1, 1, seed=7, spacing_seconds=0.1)
        assert high.cohort == "high" and low.cohort == "low"
        n_high = sum(high.lost(s) for s in range(2000))
        n_low = sum(low.lost(s) for s in range(2000))
        assert n_high > n_low
