"""Aggregation-window semantics: completion, dedup, early close."""

import asyncio

import pytest

from repro.wire.codec import Feedback
from repro.wire.server import AggregationWindow


def make_feedback(member_index, nack=None, done=True):
    return Feedback(
        member_index=member_index,
        user_id=member_index + 100,
        done=done,
        recovery_round=1,
        dropped=0,
        fingerprint="a1b2c3d4e5f6",
        latency_ms=0.0,
        nack=nack,
    )


def run(coro):
    return asyncio.run(coro)


class TestOffer:
    def test_completes_when_all_report(self):
        async def scenario():
            window = AggregationWindow([1, 2, 3])
            assert not window.complete
            assert window.offer(1, make_feedback(1))
            assert window.offer(2, make_feedback(2))
            assert window.missing == [3]
            assert not window.complete
            assert window.offer(3, make_feedback(3))
            assert window.complete
            assert window.missing == []

        run(scenario())

    def test_duplicates_rejected(self):
        async def scenario():
            window = AggregationWindow([1])
            first = make_feedback(1, done=False)
            assert window.offer(1, first)
            assert not window.offer(1, make_feedback(1, done=True))
            # The first report wins; a cache-answered retry cannot flip
            # what the server already aggregated.
            assert window.reported[1] is first

        run(scenario())

    def test_unexpected_members_rejected(self):
        async def scenario():
            window = AggregationWindow([1, 2])
            assert not window.offer(9, make_feedback(9))
            assert window.reported == {}

        run(scenario())

    def test_nacks_collected_only_when_present(self):
        async def scenario():
            window = AggregationWindow([1, 2])
            window.offer(1, make_feedback(1, nack="nack-1", done=False))
            window.offer(2, make_feedback(2, nack=None))
            assert window.nacks == ["nack-1"]

        run(scenario())

    def test_empty_expected_set_is_born_complete(self):
        async def scenario():
            window = AggregationWindow([])
            assert window.complete
            assert await window.wait(0.01)

        run(scenario())


class TestWait:
    def test_times_out_while_incomplete(self):
        async def scenario():
            window = AggregationWindow([1])
            assert not await window.wait(0.01)

        run(scenario())

    def test_closes_early_on_last_report(self):
        async def scenario():
            window = AggregationWindow([1])
            loop = asyncio.get_running_loop()
            started = loop.time()
            loop.call_later(0.02, window.offer, 1, make_feedback(1))
            # The window cap is far longer than the report delay; an
            # early close must return well before the cap.
            assert await window.wait(5.0)
            assert loop.time() - started < 2.0

        run(scenario())

    def test_wait_after_completion_returns_immediately(self):
        async def scenario():
            window = AggregationWindow([1])
            window.offer(1, make_feedback(1))
            assert await window.wait(0.0001)

        run(scenario())


class TestWindowSecondsFromConfig:
    def test_group_config_carries_the_window(self):
        from repro.core.config import GroupConfig

        config = GroupConfig(nack_window_seconds=0.05)
        assert config.nack_window_seconds == 0.05
        with pytest.raises(ValueError):
            GroupConfig(nack_window_seconds=0.0)
