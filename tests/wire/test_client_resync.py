"""Client resync FSM unit tests — no server, frames fed directly.

The FSM under test (docs/robustness.md): epoch adoption from REGISTER
acks and ANNOUNCEs, refusal of stale-epoch frames (fencing), missed-
interval detection, scheduled deaths, and the bounded REGISTER cycle's
give-up accounting.
"""

import asyncio
import socket

import pytest

from repro.sim.topology import LossParameters
from repro.util.retry import RetryPolicy
from repro.wire.client import WireClient
from repro.wire.codec import (
    FrameKind,
    encode_announce,
    encode_frame,
    encode_register,
)


class FakeMessage:
    message_id = 1
    k = 5
    n_blocks = 3
    max_kid = 211


class FakeMember:
    """Just enough member for the FSM paths (no key material)."""

    user_id = 7
    group_key = None

    def absorb_encryptions(self, encryptions, max_kid=None):
        pass


def make_client(**overrides):
    kwargs = dict(
        name="m-0",
        member_index=0,
        member=FakeMember(),
        server_address=("127.0.0.1", 1),
        loss_params=LossParameters(),
        seed=3,
        spacing_seconds=0.0,
    )
    kwargs.update(overrides)
    return WireClient(**kwargs)


def announce_frame(interval, epoch=0, served=False):
    return encode_frame(
        FrameKind.ANNOUNCE,
        interval,
        slot=1 if served else 0,
        payload=encode_announce(FakeMessage(), 4, epoch=epoch),
    )


def register_ack(epoch):
    return encode_frame(
        FrameKind.REGISTER, 0, payload=encode_register(0, 7, epoch=epoch)
    )


class TestEpochAdoption:
    def test_register_ack_teaches_the_epoch(self):
        client = make_client()
        client._on_datagram(register_ack(5))
        assert client.epoch == 5
        # The initial sighting is not a change of leadership.
        assert client.resyncs == 0
        assert client.stats()["epoch"] == 5

    def test_higher_epoch_is_adopted(self):
        client = make_client()
        client._on_datagram(register_ack(2))
        client._on_datagram(register_ack(4))
        assert client.epoch == 4

    def test_lower_epoch_ack_is_ignored(self):
        client = make_client()
        client._on_datagram(register_ack(4))
        client._on_datagram(register_ack(2))
        assert client.epoch == 4

    def test_stale_epoch_announce_builds_no_session(self):
        """Fencing end to end: a deposed leader's ANNOUNCE must never
        start a session, so its keys can never be absorbed."""
        client = make_client()
        client._on_datagram(register_ack(3))
        client._on_datagram(announce_frame(1, epoch=2))
        assert client._session is None
        assert client.stale_epoch_refused == 1
        assert client.stats()["stale_epoch_refused"] == 1

    def test_promoted_announce_rehomes(self):
        client = make_client()
        client._on_datagram(announce_frame(1, epoch=1))
        assert client.epoch == 1
        assert client._session.interval == 1
        client._on_datagram(announce_frame(2, epoch=2))
        assert client.epoch == 2
        assert client._session.interval == 2


class TestIntervalTracking:
    def test_missed_intervals_are_counted(self):
        client = make_client()
        client._on_datagram(announce_frame(1))
        client._on_datagram(announce_frame(4))
        assert client.missed_intervals == 2
        assert client.resyncs == 1
        assert client._session.interval == 4

    def test_consecutive_intervals_are_not_missed(self):
        client = make_client()
        client._on_datagram(announce_frame(1))
        client._on_datagram(announce_frame(2))
        assert client.missed_intervals == 0
        assert client.resyncs == 0

    def test_repeated_announce_keeps_the_session(self):
        client = make_client()
        client._on_datagram(announce_frame(2))
        session = client._session
        client._on_datagram(announce_frame(2))  # retry: ack was lost
        assert client._session is session

    def test_stale_interval_straggler_ignored(self):
        client = make_client()
        client._on_datagram(announce_frame(3))
        client._on_datagram(announce_frame(2))
        assert client._session.interval == 3


class TestScheduledDeath:
    def test_crash_at_announce(self):
        client = make_client(crash_at=(2, 0))
        client._on_datagram(announce_frame(1))
        assert not client.dead
        client._on_datagram(announce_frame(2))
        assert client.dead
        assert client._session.interval == 1  # no new session was built

    def test_dead_client_ignores_everything(self):
        client = make_client(crash_at=(1, 0))
        client._on_datagram(announce_frame(1))
        assert client.dead
        client._on_datagram(announce_frame(2))
        client._on_datagram(register_ack(9))
        assert client._session is None
        assert client.epoch == 0


class TestRegisterCycle:
    def test_giveup_is_bounded_and_counted(self):
        """Against a dead address the bounded full-jitter cycle must
        give up after max_attempts, not retry forever (the old fixed
        50 ms loop this replaced)."""
        # A port nothing listens on: bind-then-close reserves a number.
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        dead_address = probe.getsockname()
        probe.close()

        async def run():
            client = make_client(
                server_address=dead_address,
                register_policy=RetryPolicy(
                    max_attempts=3,
                    base_delay=0.005,
                    multiplier=1.5,
                    max_delay=0.02,
                    jitter=False,
                ),
            )
            await client.start()
            try:
                assert await asyncio.wait_for(client._register_task, 5.0) is False
            finally:
                await client.close()
            return client.stats()

        stats = asyncio.run(run())
        assert stats["register_giveups"] == 1

    def test_stats_shape(self):
        client = make_client()
        assert set(client.stats()) == {
            "epoch",
            "dead",
            "resyncs",
            "reregisters",
            "missed_intervals",
            "stale_epoch_refused",
            "decode_errors",
            "socket_errors",
            "register_giveups",
        }

    def test_garbage_datagram_counted_not_fatal(self):
        client = make_client()
        client._on_datagram(b"\x00not a frame")
        assert client.decode_errors == 1
        assert client.errors == []
        client._on_datagram(announce_frame(1))
        assert client._session is not None
