"""End-to-end wire-plane tests over real loopback UDP.

The pinned digest is the determinism acceptance: the smoke plan at
seed 7 must replay the exact same canonical interval records on every
machine — rounds, NACK counts, parity shortfalls, per-member recovery
rounds — however the event loop schedules the sockets.  If a deliberate
protocol change shifts the records, re-pin after inspecting the diff;
an *unexplained* digest change means wall-clock timing leaked into the
protocol input.
"""

import io

import pytest

from repro.cli import main
from repro.core.config import GroupConfig
from repro.service.transports import make_backend
from repro.wire.delivery import WireDelivery
from repro.wire.fleet import FLEET_PLANS, resolve_plan, run_fleet

#: sha256 of the canonical interval records for (smoke, seed=7).
SMOKE_SEED7_DIGEST = (
    "fd1662c94da939c26609b9ac90930b865423f08c7e4699348b6a8662d75e186f"
)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestSmokeFleet:
    def test_all_invariants_green_and_digest_pinned(self):
        result = run_fleet("smoke", seed=7)
        assert result.failure is None, result.failure
        assert result.ok, result.to_dict()
        assert result.intervals_completed == 3
        assert result.digest == SMOKE_SEED7_DIGEST
        # Every interval must have been carried by the wire: a record
        # per interval, every served member reporting its recovery.
        assert len(result.records) == 3
        for record in result.records:
            assert record["served"] == len(record["recovery_rounds"])
            assert record["rounds"] >= 1
        # Recovery latencies come from wire events, split by cohort.
        assert set(result.cohorts) == {"high", "low"}
        for stats in result.cohorts.values():
            assert stats["reports"] > 0
            assert stats["recovery_ms"]["p99"] >= stats["recovery_ms"]["p50"]
            assert stats["recovery_ms"]["p50"] > 0.0

    def test_loss_actually_bites(self):
        result = run_fleet("smoke", seed=7)
        assert sum(record["dropped"] for record in result.records) > 0


class TestDeterminism:
    def test_same_seed_same_digest(self):
        first = run_fleet("smoke", seed=11, clients=16, intervals=2)
        second = run_fleet("smoke", seed=11, clients=16, intervals=2)
        assert first.ok and second.ok
        assert first.records == second.records
        assert first.digest == second.digest

    def test_different_seed_different_digest(self):
        first = run_fleet("smoke", seed=11, clients=16, intervals=2)
        second = run_fleet("smoke", seed=12, clients=16, intervals=2)
        assert first.digest != second.digest


class TestWorkerMode:
    def test_sharded_fleet_agrees(self):
        result = run_fleet("sharded", seed=5, clients=12, intervals=2)
        assert result.failure is None, result.failure
        assert result.ok, result.to_dict()
        assert result.workers == 2

    def test_worker_digest_matches_in_process(self):
        # Process placement must be invisible to the protocol: the same
        # (seed, clients, intervals) digests identically with clients
        # in-process and sharded over workers.
        sharded = run_fleet("sharded", seed=5, clients=12, intervals=2)
        local = run_fleet("sharded", seed=5, clients=12, intervals=2,
                          workers=0)
        assert sharded.ok and local.ok
        assert sharded.digest == local.digest


class TestHeavyLoss:
    """Force the NACK/extra-round/unicast paths with a brutal link."""

    def deliver_once(self, p, deadline_rounds, seed=2):
        from repro.core.server import GroupKeyServer
        from repro.service.members import MemberFleet
        from repro.sim.topology import LossParameters

        config = GroupConfig(
            block_size=5,
            seed=seed,
            nack_window_seconds=0.2,
            # Bernoulli rather than bursty: the Markov chain needs many
            # slots to mix, and this message is only a few slots long.
            loss=LossParameters(
                alpha=1.0, p_high=p, p_low=p, p_source=0.0, bursty=False
            ),
        )
        server = GroupKeyServer(
            ["m%02d" % i for i in range(12)], config=config
        )
        fleet = MemberFleet.register_all(server)
        leaver = sorted(server.users)[0]
        server.request_leave(leaver)
        fleet.evict(leaver)
        _, message = server.rekey()
        with WireDelivery(config, seed=seed + 1) as backend:
            report = backend.deliver(
                message, fleet, deadline_rounds=deadline_rounds
            )
        fleet.check_agreement(server)
        return report

    def test_nacks_and_extra_rounds(self):
        # At this (p, seed) two members lose all of round 1 and recover
        # from round-4 parity — deterministic, checked by scan.
        report = self.deliver_once(p=0.8, deadline_rounds=8, seed=3)
        assert report.first_round_nacks > 0
        assert report.multicast_rounds >= 2
        assert report.unicast_served == 0
        assert all(r > 0 for r in report.recovery_rounds)
        assert max(report.recovery_rounds) >= 2

    def test_unicast_cutover_at_the_deadline(self):
        report = self.deliver_once(p=0.9, deadline_rounds=2, seed=2)
        assert report.unicast_served > 0
        assert report.decision == "unicast-cutover"
        # Unicast recoveries report round 0 by convention.
        assert any(r == 0 for r in report.recovery_rounds)


class TestPlans:
    def test_catalog(self):
        assert set(FLEET_PLANS) == {"smoke", "standard", "surge", "sharded"}
        assert FLEET_PLANS["standard"].clients == 512
        assert FLEET_PLANS["surge"].clients == 1024
        assert FLEET_PLANS["sharded"].workers == 2

    def test_resolve_overrides(self):
        plan = resolve_plan("smoke", clients=8, intervals=1, workers=3)
        assert (plan.clients, plan.intervals, plan.workers) == (8, 1, 3)

    def test_unknown_plan_refused(self):
        from repro.errors import WireError

        with pytest.raises(WireError):
            resolve_plan("nope")


class TestBackendFactory:
    def test_make_backend_wire(self):
        backend = make_backend("wire", GroupConfig(block_size=5), seed=3)
        assert isinstance(backend, WireDelivery)
        backend.close()  # never started: close must be a no-op

    def test_close_is_idempotent(self):
        backend = WireDelivery(GroupConfig(block_size=5), seed=3)
        backend.close()
        backend.close()


class TestCli:
    def test_list_plans(self):
        code, output = run_cli("fleet", "--list-plans")
        assert code == 0
        for name in FLEET_PLANS:
            assert name in output

    def test_tiny_fleet_run(self):
        code, output = run_cli(
            "fleet", "--clients", "8", "--intervals", "1", "--seed", "3"
        )
        assert code == 0, output
        assert "all invariants green" in output
        assert "fleet digest:" in output

    def test_digest_mismatch_exits_3(self):
        code, output = run_cli(
            "fleet", "--clients", "8", "--intervals", "1", "--seed", "3",
            "--expect-digest", "f" * 64,
        )
        assert code == 3
        assert "digest mismatch" in output

    def test_unknown_plan_exits_2(self):
        code, output = run_cli("fleet", "--plan", "nope")
        assert code == 2
        assert "error:" in output

    def test_serve_with_wire_transport(self):
        code, output = run_cli(
            "serve",
            "--transport", "wire",
            "--members", "12",
            "--intervals", "2",
            "--seed", "3",
        )
        assert code == 0, output
        assert "wire transport" in output
        assert "health: ok" in output
