"""Tests for repro.wire — the asyncio UDP wire plane."""
