"""Frame codec tests: round-trips, rejection, buffer sizing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WireDecodeError, WireError
from repro.rekey.packets import NackPacket, NackRequest
from repro.wire.codec import (
    NO_FINGERPRINT,
    UNICAST_ROUND,
    WIRE_HEADER_SIZE,
    WIRE_MAGIC,
    WIRE_VERSION,
    Feedback,
    FrameKind,
    decode_announce,
    decode_feedback,
    decode_frame,
    decode_register,
    encode_announce,
    encode_feedback,
    encode_frame,
    encode_register,
    max_datagram_size,
    recv_buffer_size,
)


class FakeMessage:
    message_id = 3
    k = 5
    n_blocks = 7
    max_kid = 211


class TestFrameRoundTrip:
    def test_header_fields_survive(self):
        wire = encode_frame(
            FrameKind.DATA, 9, round_no=2, slot=41, payload=b"\x01\x02"
        )
        frame = decode_frame(wire)
        assert frame.kind is FrameKind.DATA
        assert frame.interval == 9
        assert frame.round_no == 2
        assert frame.slot == 41
        assert frame.payload == b"\x01\x02"

    def test_empty_payload(self):
        frame = decode_frame(encode_frame(FrameKind.ROUND_END, 1))
        assert frame.payload == b""
        assert len(encode_frame(FrameKind.ROUND_END, 1)) == WIRE_HEADER_SIZE

    def test_unicast_round_marker(self):
        frame = decode_frame(
            encode_frame(FrameKind.DATA, 1, round_no=UNICAST_ROUND)
        )
        assert frame.round_no == UNICAST_ROUND

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval": -1},
            {"interval": 2**32},
            {"round_no": 256},
            {"slot": 2**16},
        ],
    )
    def test_out_of_range_header_fields_refused(self, kwargs):
        fields = {"interval": 1, "round_no": 0, "slot": 0}
        fields.update(kwargs)
        with pytest.raises(WireError):
            encode_frame(FrameKind.DATA, **fields)


class TestFrameRejection:
    def test_truncated_header(self):
        with pytest.raises(WireDecodeError):
            decode_frame(b"\xc3\x01\x00")

    def test_empty_datagram(self):
        with pytest.raises(WireDecodeError):
            decode_frame(b"")

    def test_bad_magic(self):
        wire = bytearray(encode_frame(FrameKind.DATA, 1))
        wire[0] = WIRE_MAGIC ^ 0xFF
        with pytest.raises(WireDecodeError):
            decode_frame(bytes(wire))

    def test_future_version(self):
        wire = bytearray(encode_frame(FrameKind.DATA, 1))
        wire[1] = WIRE_VERSION + 1
        with pytest.raises(WireDecodeError):
            decode_frame(bytes(wire))

    def test_unknown_kind(self):
        wire = bytearray(encode_frame(FrameKind.DATA, 1))
        wire[2] = 0x7F
        with pytest.raises(WireDecodeError):
            decode_frame(bytes(wire))

    def test_random_garbage(self):
        with pytest.raises(WireDecodeError):
            decode_frame(b"\x00" * 64)


class TestAnnounce:
    def test_round_trip(self):
        announce = decode_announce(encode_announce(FakeMessage(), 4))
        assert announce.message_id == 3
        assert announce.k == 5
        assert announce.n_blocks == 7
        assert announce.max_kid == 211
        assert announce.degree == 4

    def test_wrong_size_refused(self):
        with pytest.raises(WireDecodeError):
            decode_announce(b"\x00\x00")

    def test_degenerate_geometry_refused(self):
        payload = bytearray(encode_announce(FakeMessage(), 4))
        payload[-1] = 1  # degree 1 cannot be a key tree
        with pytest.raises(WireDecodeError):
            decode_announce(bytes(payload))


class TestFeedback:
    def make(self, **overrides):
        fields = dict(
            member_index=12,
            user_id=7,
            done=True,
            recovery_round=2,
            dropped=5,
            fingerprint="a1b2c3d4e5f6",
            latency_ms=17.5,
            nack=None,
        )
        fields.update(overrides)
        return Feedback(**fields)

    def test_round_trip_without_nack(self):
        feedback = decode_feedback(encode_feedback(self.make()))
        assert feedback.member_index == 12
        assert feedback.user_id == 7
        assert feedback.done is True
        assert feedback.recovery_round == 2
        assert feedback.dropped == 5
        assert feedback.fingerprint == "a1b2c3d4e5f6"
        assert feedback.latency_ms == pytest.approx(17.5, rel=1e-6)
        assert feedback.nack is None

    def test_round_trip_with_nack(self):
        nack = NackPacket(
            rekey_message_id=3,
            user_id=7,
            requests=(NackRequest(0, 2), NackRequest(3, 1)),
        )
        feedback = decode_feedback(
            encode_feedback(self.make(done=False, nack=nack))
        )
        assert feedback.done is False
        assert feedback.nack is not None
        assert feedback.nack.user_id == 7
        assert feedback.nack.max_requested == 2

    def test_no_fingerprint_placeholder(self):
        feedback = decode_feedback(
            encode_feedback(self.make(fingerprint=NO_FINGERPRINT))
        )
        assert feedback.fingerprint == NO_FINGERPRINT

    def test_dropped_clamped_to_u16(self):
        feedback = decode_feedback(
            encode_feedback(self.make(dropped=10**6))
        )
        assert feedback.dropped == 0xFFFF

    def test_bad_fingerprint_refused(self):
        with pytest.raises(WireError):
            encode_feedback(self.make(fingerprint="not hex!!"))
        with pytest.raises(WireError):
            encode_feedback(self.make(fingerprint="abcd"))

    def test_truncated_refused(self):
        with pytest.raises(WireDecodeError):
            decode_feedback(b"\x00" * 4)


class TestRegister:
    def test_round_trip(self):
        register = decode_register(encode_register(99, 1234))
        assert register.member_index == 99
        assert register.user_id == 1234

    def test_wrong_size_refused(self):
        with pytest.raises(WireDecodeError):
            decode_register(b"\x00")


#: the full u64 trace-id range, endpoints included
trace_ids = st.integers(min_value=0, max_value=2**64 - 1)


class TestTracePropagation:
    """Every control frame kind must carry the trace id losslessly."""

    @given(trace_id=trace_ids, degree=st.integers(2, 255))
    @settings(max_examples=50, deadline=None)
    def test_announce_preserves_trace(self, trace_id, degree):
        announce = decode_announce(
            encode_announce(FakeMessage(), degree, trace_id=trace_id)
        )
        assert announce.trace_id == trace_id
        assert announce.degree == degree

    @given(trace_id=trace_ids)
    @settings(max_examples=50, deadline=None)
    def test_feedback_preserves_trace(self, trace_id):
        feedback = Feedback(
            member_index=12,
            user_id=7,
            done=True,
            recovery_round=2,
            dropped=5,
            fingerprint="a1b2c3d4e5f6",
            latency_ms=17.5,
            nack=None,
            trace_id=trace_id,
        )
        assert (
            decode_feedback(encode_feedback(feedback)).trace_id
            == trace_id
        )

    @given(trace_id=trace_ids)
    @settings(max_examples=50, deadline=None)
    def test_register_preserves_trace(self, trace_id):
        register = decode_register(
            encode_register(99, 1234, trace_id=trace_id)
        )
        assert register.trace_id == trace_id
        assert register.member_index == 99
        assert register.user_id == 1234

    def test_trace_defaults_to_none_sentinel(self):
        assert decode_register(encode_register(1, 2)).trace_id == 0
        assert decode_announce(
            encode_announce(FakeMessage(), 4)
        ).trace_id == 0

    @given(blob=st.binary(max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_garbage_still_refused(self, blob):
        """Widening the structs must not have opened a garbage hole."""
        for decoder in (decode_announce, decode_feedback, decode_register):
            try:
                decoder(blob)
            except WireDecodeError:
                pass


#: the full u32 epoch range, endpoints included
epochs = st.integers(min_value=0, max_value=2**32 - 1)


class TestEpochPropagation:
    """Every control frame kind must carry the leader epoch losslessly —
    the end-to-end fencing rides on it (docs/robustness.md)."""

    @given(epoch=epochs)
    @settings(max_examples=50, deadline=None)
    def test_announce_preserves_epoch(self, epoch):
        announce = decode_announce(
            encode_announce(FakeMessage(), 4, epoch=epoch)
        )
        assert announce.epoch == epoch

    @given(epoch=epochs)
    @settings(max_examples=50, deadline=None)
    def test_feedback_preserves_epoch(self, epoch):
        feedback = Feedback(
            member_index=12,
            user_id=7,
            done=True,
            recovery_round=2,
            dropped=5,
            fingerprint="a1b2c3d4e5f6",
            latency_ms=17.5,
            nack=None,
            epoch=epoch,
        )
        assert decode_feedback(encode_feedback(feedback)).epoch == epoch

    @given(epoch=epochs)
    @settings(max_examples=50, deadline=None)
    def test_register_preserves_epoch(self, epoch):
        register = decode_register(encode_register(99, 1234, epoch=epoch))
        assert register.epoch == epoch
        assert register.member_index == 99

    def test_epoch_defaults_to_zero(self):
        """Epoch 0 is the unfenced sentinel (single-node mode)."""
        assert decode_register(encode_register(1, 2)).epoch == 0
        assert decode_announce(encode_announce(FakeMessage(), 4)).epoch == 0

    @given(epoch=epochs, trace_id=trace_ids)
    @settings(max_examples=50, deadline=None)
    def test_epoch_and_trace_coexist(self, epoch, trace_id):
        register = decode_register(
            encode_register(3, 17, trace_id=trace_id, epoch=epoch)
        )
        assert register.epoch == epoch
        assert register.trace_id == trace_id


class TestBufferSizing:
    def test_datagram_bound_is_header_plus_packet(self):
        assert max_datagram_size(1027) == WIRE_HEADER_SIZE + 1027

    def test_buffer_floors_at_2k(self):
        assert recv_buffer_size(100) == 2048

    def test_buffer_rounds_up_with_slack(self):
        size = recv_buffer_size(4096)
        assert size >= max_datagram_size(4096) + 64
        assert size % 1024 == 0

    def test_paper_packet_size_fits_legacy_buffer(self):
        # The seed's hardcoded 4096 happened to fit the paper's 1027;
        # the shared rule must agree where the old constant was right.
        assert recv_buffer_size(1027) <= 4096
