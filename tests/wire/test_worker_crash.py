"""Worker-crash surfacing: dead processes become errors, not hangs.

A crashed worker process used to look like a registration timeout — a
30 s stall followed by a misleading "members never registered".  The
pool now reports the corpse directly (:class:`WorkerCrashError`, which
the CLI maps to exit code 4) and the registration barrier polls an
abort hook so the diagnosis is immediate.
"""

import asyncio
import socket

import pytest

from repro.core.config import GroupConfig
from repro.errors import WireError, WorkerCrashError
from repro.sim.topology import LossParameters
from repro.wire.server import WireServer
from repro.wire.worker import WorkerPool


def dead_udp_address():
    """A loopback port nothing listens on (bind-then-close reserves it)."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    probe.bind(("127.0.0.1", 0))
    address = probe.getsockname()
    probe.close()
    return address


@pytest.fixture
def pool():
    pool = WorkerPool(
        1, dead_udp_address(), LossParameters(), seed=3,
        spacing_seconds=0.0,
    )
    yield pool
    pool.close()


class TestWorkerPoolCrash:
    def test_dead_worker_is_listed_with_exit_code(self, pool):
        process = pool._procs[0]
        process.terminate()
        process.join(timeout=10.0)
        dead = pool.dead_workers()
        assert len(dead) == 1
        slot, exitcode = dead[0]
        assert slot == 0
        assert exitcode is not None

    def test_request_to_dead_worker_raises_not_hangs(self, pool):
        pool._procs[0].terminate()
        pool._procs[0].join(timeout=10.0)
        with pytest.raises(WorkerCrashError) as excinfo:
            pool.check(timeout=5.0)
        assert "worker 0" in str(excinfo.value)

    def test_live_worker_answers_check(self, pool):
        assert pool.check(timeout=10.0) == []
        assert pool.dead_workers() == []


class TestRegistrationBarrierAbort:
    def make_server(self):
        server = WireServer(GroupConfig(block_size=5))
        server._registered = asyncio.Event()
        return server

    def test_abort_hook_cuts_the_deadline_short(self):
        """A crashed worker must surface immediately, not after the
        full registration deadline."""
        server = self.make_server()

        def crashed():
            raise WorkerCrashError("worker 0 crashed (exit code -9)")

        async def run():
            await server.wait_registered([0, 1], timeout=30.0, abort=crashed)

        loop = asyncio.new_event_loop()
        try:
            start = loop.time()
            with pytest.raises(WorkerCrashError):
                loop.run_until_complete(run())
            assert loop.time() - start < 5.0
        finally:
            loop.close()

    def test_deadline_names_the_missing_members(self):
        server = self.make_server()
        server._addresses[0] = ("127.0.0.1", 1)

        async def run():
            await server.wait_registered([0, 1], timeout=0.05)

        with pytest.raises(WireError) as excinfo:
            asyncio.run(run())
        assert "[1]" in str(excinfo.value)

    def test_barrier_passes_once_all_registered(self):
        server = self.make_server()
        server._addresses.update({0: ("127.0.0.1", 1), 1: ("127.0.0.1", 2)})

        async def run():
            await server.wait_registered([0, 1], timeout=0.05)

        asyncio.run(run())  # returns without raising
