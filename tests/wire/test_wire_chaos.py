"""Wire-chaos soak tests: canonical timeline, small soaks, CLI.

The full pinned-digest plans run in CI (the ``wire-chaos-smoke`` job)
and as the acceptance command; here the harness is exercised at test
size — determinism across runs, the crash→evict→carry flow, and a
live-fleet failover — plus the timeline canonicalisation rules the
digests stand on.
"""

import io

import pytest

from repro.chaos.wire_faults import (
    ClientCrash,
    WireChaosPlan,
    WireFaultParams,
)
from repro.cli import main
from repro.wire.chaos import (
    WIRE_TIMELINE_KINDS,
    canonical_wire_timeline,
    run_wire_chaos_soak,
    wire_timeline_digest,
)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCanonicalTimeline:
    def test_filters_unregistered_kinds(self):
        events = [
            {"kind": "wire_chaos_fault", "t": 1.0, "detail": {"fault": "x"}},
            {"kind": "wire_resync", "t": 2.0, "detail": {"member": "m"}},
            {"kind": "span", "t": 3.0, "detail": {"ms": 4.2}},
        ]
        timeline = canonical_wire_timeline(events)
        assert timeline == [
            {"kind": "wire_chaos_fault", "detail": {"fault": "x"}}
        ]

    def test_drops_volatile_keys_and_basenames_paths(self):
        events = [
            {
                "kind": "wire_client_evicted",
                "t": 1.0,
                "detail": {
                    "member": 3,
                    "error": "scheduler-worded noise",
                    "trace": "deadbeef",
                    "path": "/tmp/xyz123/wal.jsonl",
                },
            }
        ]
        (entry,) = canonical_wire_timeline(events)
        assert entry["detail"] == {"member": 3, "path": "wal.jsonl"}

    def test_sorted_not_sequenced(self):
        """Receive-side fault applications land in scheduler order; the
        canonical timeline must not depend on it."""
        a = {"kind": "wire_chaos_fault", "t": 1.0, "detail": {"slot": 9}}
        b = {"kind": "wire_chaos_fault", "t": 2.0, "detail": {"slot": 1}}
        assert canonical_wire_timeline([a, b]) == canonical_wire_timeline(
            [b, a]
        )
        assert wire_timeline_digest(
            canonical_wire_timeline([a, b])
        ) == wire_timeline_digest(canonical_wire_timeline([b, a]))

    def test_client_side_fsm_events_are_excluded(self):
        """Resync/rehome/stale-epoch counts are timing- and placement-
        dependent — they must never enter the digest."""
        for kind in ("wire_resync", "wire_rehomed", "wire_stale_epoch",
                     "wire_register_giveup"):
            assert kind not in WIRE_TIMELINE_KINDS


class TestDatagramStormSmall:
    def run_small(self, seed=7):
        return run_wire_chaos_soak(
            "datagram-storm", seed=seed, clients=8, intervals=2
        )

    def test_invariants_green(self):
        result = self.run_small()
        assert result.failure is None, result.failure
        assert result.ok, result.to_dict()
        assert result.intervals_completed == 2
        assert not result.evictions  # faults degrade, they never kill
        assert sum(result.faults_applied.values()) > 0

    def test_same_seed_same_digest(self):
        first = self.run_small(seed=11)
        second = self.run_small(seed=11)
        assert first.ok and second.ok
        assert first.digest == second.digest
        assert first.timeline == second.timeline

    def test_different_seed_different_digest(self):
        assert self.run_small(seed=11).digest != self.run_small(
            seed=12
        ).digest


class TestClientCrashSmall:
    PLAN = WireChaosPlan(
        name="crash-small",
        clients=8,
        intervals=4,
        workers=0,
        churn_alpha_join=0.2,
        churn_alpha_leave=0.0,
        block_size=5,
        nack_window_seconds=0.1,
        faults=WireFaultParams(),
        crashes=(ClientCrash(member=2, interval=2, round_no=1),),
        liveness_tries=15,
        description="one scripted death at test size",
    )

    def test_crashed_client_is_evicted_and_carried(self):
        result = run_wire_chaos_soak(self.PLAN, seed=7)
        assert result.failure is None, result.failure
        assert result.ok, result.to_dict()
        assert result.evictions == 1
        assert result.crashes_scheduled == 1
        kinds = [entry["kind"] for entry in result.timeline]
        assert "wire_client_crashed" in kinds
        assert "wire_client_evicted" in kinds

    def test_digest_stable(self):
        first = run_wire_chaos_soak(self.PLAN, seed=7)
        second = run_wire_chaos_soak(self.PLAN, seed=7)
        assert first.ok and second.ok
        assert first.digest == second.digest


class TestLeaderKillSmall:
    PLAN = WireChaosPlan(
        name="leader-kill-small",
        clients=8,
        intervals=4,
        workers=1,
        churn_alpha_join=0.1,
        churn_alpha_leave=0.0,
        block_size=5,
        nack_window_seconds=0.15,
        faults=WireFaultParams(),
        crashes=(),
        leader_kill_interval=2,
        resync_timeout=0.5,
        description="live-fleet failover at test size",
    )

    def test_fleet_rehomes_to_promoted_leader(self):
        result = run_wire_chaos_soak(self.PLAN, seed=7)
        assert result.failure is None, result.failure
        assert result.ok, result.to_dict()
        assert result.promotions == 1
        assert result.final_epoch == 2  # node-a minted 1, node-b 2
        assert result.rehomes > 0
        assert result.invariants["no-interval-lost"]
        assert result.invariants["wal-epochs-monotonic"]

    def test_workers_required(self):
        from dataclasses import replace

        from repro.errors import ChaosError

        with pytest.raises(ChaosError):
            run_wire_chaos_soak(replace(self.PLAN, workers=0), seed=7)


#: The canonical wire-timeline digests at seed 7 — the same pins the CI
#: ``wire-chaos-smoke`` job and docs/robustness.md carry.  A deliberate
#: behaviour change that moves one must update all three places.
PINNED = {
    "datagram-storm":
        "7b991085b50dc90394b8472ce32b36a7a9ec394291866cd8336efb5c6ad832ca",
    "client-churn-crash":
        "e2403731b7cb39dc5ba6efa6056a1b0bad903297314df011e677241837211077",
    "leader-kill-live":
        "8008a13b292a4878770bc5e803b9518e0ec47c7e374db5b78421bcc33c21a6c3",
}


class TestPinnedDigests:
    def test_datagram_storm(self):
        result = run_wire_chaos_soak("datagram-storm", seed=7)
        assert result.ok, result.to_dict()
        assert result.digest == PINNED["datagram-storm"]

    def test_client_churn_crash(self):
        result = run_wire_chaos_soak("client-churn-crash", seed=7)
        assert result.ok, result.to_dict()
        assert result.evictions == 3
        assert result.digest == PINNED["client-churn-crash"]

    def test_leader_kill_live(self):
        result = run_wire_chaos_soak("leader-kill-live", seed=7)
        assert result.ok, result.to_dict()
        assert result.promotions == 1
        assert result.digest == PINNED["leader-kill-live"]


class TestCli:
    def test_list_plans(self):
        code, output = run_cli("wire-chaos-soak", "--list-plans")
        assert code == 0
        for name in ("datagram-storm", "client-churn-crash",
                     "leader-kill-live"):
            assert name in output

    def test_tiny_run_green(self):
        code, output = run_cli(
            "wire-chaos-soak", "--clients", "8", "--intervals", "2",
            "--seed", "5",
        )
        assert code == 0, output
        assert "all invariants green" in output
        assert "wire-timeline digest:" in output

    def test_digest_mismatch_exits_3(self):
        code, output = run_cli(
            "wire-chaos-soak", "--clients", "8", "--intervals", "2",
            "--seed", "5", "--expect-digest", "f" * 64,
        )
        assert code == 3
        assert "digest mismatch" in output

    def test_unknown_plan_exits_2(self):
        code, output = run_cli("wire-chaos-soak", "--plan", "nope")
        assert code == 2
        assert "error:" in output
