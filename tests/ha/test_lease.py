"""Tests for repro.ha.lease — the leader lease and its epoch tokens."""

import json

import pytest

from repro.chaos.seams import FaultyClock
from repro.errors import HaError, StaleEpochError
from repro.ha.lease import Lease


class Events:
    """Minimal obs stub capturing (kind, detail) pairs."""

    def __init__(self):
        self.events = []

    def emit(self, kind, **detail):
        self.events.append((kind, detail))

    def of(self, kind):
        return [d for k, d in self.events if k == kind]


def make_lease(tmp_path, node_id, clock, ttl=5.0, obs=None):
    return Lease(
        tmp_path / "lease.json", node_id, ttl=ttl, clock=clock, obs=obs
    )


class TestAcquire:
    def test_first_acquisition_mints_epoch_one(self, tmp_path):
        clock = FaultyClock()
        lease = make_lease(tmp_path, "node-a", clock)
        assert lease.current_epoch() == 0
        assert lease.expired()  # nothing protects the write path yet
        assert lease.acquire() == 1
        data = json.loads((tmp_path / "lease.json").read_text())
        assert data["holder"] == "node-a"
        assert data["epoch"] == 1
        assert data["ttl"] == 5.0

    def test_reacquire_by_holder_increments_epoch(self, tmp_path):
        clock = FaultyClock()
        lease = make_lease(tmp_path, "node-a", clock)
        assert lease.acquire() == 1
        # A restarted holder must not reuse its old epoch: any WAL
        # records from the previous incarnation stay older.
        assert lease.acquire() == 2

    def test_live_lease_refuses_other_node(self, tmp_path):
        clock = FaultyClock()
        make_lease(tmp_path, "node-a", clock).acquire()
        other = make_lease(tmp_path, "node-b", clock)
        with pytest.raises(HaError, match="held by 'node-a'"):
            other.acquire()

    def test_lapsed_lease_transfers_with_higher_epoch(self, tmp_path):
        clock = FaultyClock()
        obs = Events()
        make_lease(tmp_path, "node-a", clock, obs=obs).acquire()
        clock.sleep(6.0)  # past the 5 s ttl: the holder went quiet
        taker = make_lease(tmp_path, "node-b", clock, obs=obs)
        assert taker.expired()
        assert taker.acquire() == 2
        acquisitions = obs.of("ha_lease_acquired")
        assert acquisitions[-1]["holder"] == "node-b"
        assert acquisitions[-1]["previous_holder"] == "node-a"
        assert acquisitions[-1]["epoch"] == 2

    def test_corrupt_file_reads_as_absent(self, tmp_path):
        clock = FaultyClock()
        (tmp_path / "lease.json").write_bytes(b"\x00not json")
        lease = make_lease(tmp_path, "node-a", clock)
        assert lease.read() is None
        assert lease.current_epoch() == 0
        assert lease.expired()


class TestRenew:
    def test_renew_refreshes_renewed_at(self, tmp_path):
        clock = FaultyClock()
        lease = make_lease(tmp_path, "node-a", clock)
        lease.acquire()
        clock.sleep(3.0)
        assert not lease.expired()
        lease.renew()
        clock.sleep(3.0)
        # 6 s since acquire but only 3 s since renewal: still live.
        assert not lease.expired()

    def test_renew_without_acquire_refuses(self, tmp_path):
        lease = make_lease(tmp_path, "node-a", FaultyClock())
        with pytest.raises(HaError, match="never acquired"):
            lease.renew()

    def test_deposed_holder_renewal_raises_stale_epoch(self, tmp_path):
        clock = FaultyClock()
        old = make_lease(tmp_path, "node-a", clock)
        old.acquire()
        clock.sleep(6.0)
        make_lease(tmp_path, "node-b", clock).acquire()
        with pytest.raises(StaleEpochError, match="node-b"):
            old.renew()

    def test_expiry_uses_the_files_recorded_ttl(self, tmp_path):
        clock = FaultyClock()
        make_lease(tmp_path, "node-a", clock, ttl=1.0).acquire()
        # The watcher configured a longer ttl, but the holder's promise
        # (the ttl written into the file) is what expires the lease.
        watcher = make_lease(tmp_path, "node-b", clock, ttl=60.0)
        clock.sleep(2.0)
        assert watcher.expired()
