"""Tests for repro.ha.standby — stream replay, digests, promotion."""

import pytest

from repro.core.config import GroupConfig
from repro.errors import HaError, ReplicationError, StaleEpochError
from repro.ha.digest import server_digest
from repro.ha.lease import Lease
from repro.ha.replication import DirectLink, LeaderPublisher
from repro.ha.standby import StandbyReplica, promote
from repro.service import (
    DaemonConfig,
    RekeyDaemon,
    SessionDelivery,
    PoissonChurn,
)

MEMBERS = ["m%02d" % i for i in range(24)]


@pytest.fixture
def leader(tmp_path):
    config = GroupConfig(block_size=5, seed=3)
    daemon = RekeyDaemon.start_new(
        MEMBERS,
        config=config,
        backend=SessionDelivery(config, seed=4),
        churn=PoissonChurn(alpha=0.3),
        service=DaemonConfig(state_dir=str(tmp_path / "state")),
        seed=3,
        epoch=1,
    )
    publisher = daemon.attach_replication(
        LeaderPublisher(1, wal=daemon.wal)
    )
    yield daemon, publisher, config
    daemon.close()


def follow(daemon, publisher, config):
    link = DirectLink()
    replica = StandbyReplica(config=config)
    publisher.subscribe(link, server=daemon.server)
    replica.apply_frames(link.poll())
    return link, replica


class TestReplay:
    def test_bootstrap_snapshot_matches_leader_digest(self, leader):
        daemon, publisher, config = leader
        # Warm the leader first: the bootstrap must be faithful even
        # after churn has moved u-nodes around (the restore round-trip).
        for _ in range(3):
            daemon.run_interval()
        _, replica = follow(daemon, publisher, config)
        assert server_digest(replica.server) == server_digest(daemon.server)
        assert replica.applied_seq == publisher.last_seq

    def test_streamed_intervals_replay_to_digest_equality(self, leader):
        daemon, publisher, config = leader
        link, replica = follow(daemon, publisher, config)
        for _ in range(4):
            daemon.run_interval()
            replica.apply_frames(link.poll())
        assert replica.digest_ok is True
        assert replica.server.intervals_processed == 4
        assert replica.lag() == 0
        health = replica.health()
        assert health["digest_ok"] is True
        assert health["lag_records"] == 0

    def test_record_before_snapshot_refused(self):
        replica = StandbyReplica()
        with pytest.raises(ReplicationError, match="before the bootstrap"):
            replica.apply({"kind": "record", "record": {"seq": 0}})

    def test_duplicate_records_skipped_gaps_refused(self, leader):
        daemon, publisher, config = leader
        link, replica = follow(daemon, publisher, config)
        daemon.run_interval()
        payloads = link.poll()
        records = [p for p in payloads if p["kind"] == "record"]
        applied = replica.records_applied
        replica.apply_frames(payloads)
        replica.apply(records[0])  # duplicate: harmless no-op
        assert replica.records_applied == applied + len(records)
        gap = dict(records[-1])
        gap_record = dict(gap["record"])
        gap_record["seq"] = replica.applied_seq + 5
        with pytest.raises(ReplicationError, match="resubscribe"):
            replica.apply({"kind": "record", "record": gap_record})

    def test_unknown_frame_kind_refused(self, leader):
        daemon, publisher, config = leader
        _, replica = follow(daemon, publisher, config)
        with pytest.raises(ReplicationError, match="cannot apply"):
            replica.apply({"kind": "mystery"})

    def test_divergence_is_detected_by_the_digest_frame(self, leader):
        daemon, publisher, config = leader
        link, replica = follow(daemon, publisher, config)
        # Sabotage the shadow: one extra join the leader never saw.
        replica.server.request_join("phantom")
        daemon.run_interval()
        replica.apply_frames(link.poll())
        assert replica.digest_ok is False


class TestPromote:
    def test_promote_refuses_without_bootstrap(self, tmp_path):
        lease = Lease(tmp_path / "lease.json", "standby")
        with pytest.raises(HaError, match="before the bootstrap"):
            promote(StandbyReplica(), str(tmp_path), lease)

    def test_promote_refuses_a_diverged_replica(self, leader, tmp_path):
        daemon, publisher, config = leader
        link, replica = follow(daemon, publisher, config)
        replica.server.request_join("phantom")
        daemon.run_interval()
        replica.apply_frames(link.poll())
        lease = Lease(tmp_path / "state" / "lease.json", "standby")
        with pytest.raises(HaError, match="diverged"):
            promote(replica, str(tmp_path / "state"), lease)

    def test_promotion_fences_the_deposed_leader(self, leader, tmp_path):
        from repro.chaos.seams import FaultyClock

        daemon, publisher, config = leader
        link, replica = follow(daemon, publisher, config)
        for _ in range(2):
            daemon.run_interval()
            replica.apply_frames(link.poll())
        state_dir = str(tmp_path / "state")
        clock = FaultyClock()
        leader_lease = Lease(
            tmp_path / "state" / "lease.json", "leader", clock=clock
        )
        assert leader_lease.acquire() == daemon.epoch == 1
        daemon.wal.fence = leader_lease
        clock.sleep(6.0)  # the leader goes quiet; its lease lapses
        lease = Lease(
            tmp_path / "state" / "lease.json", "standby", clock=clock
        )
        promoted = promote(
            replica,
            state_dir,
            lease,
            backend=SessionDelivery(config, seed=4),
            churn=PoissonChurn(alpha=0.3),
            seed=3,
        )
        try:
            assert promoted.epoch == 2
            # The old leader's next durable write must refuse before a
            # byte lands: its WAL consults the lease as the fence.
            with pytest.raises(StaleEpochError, match="fenced out"):
                daemon.submit_join("intruder")
            assert not any(
                record.get("user") == "intruder"
                for record in daemon.wal.records()
            )
            promoted.run_interval()
            assert promoted.server.intervals_processed == 3
        finally:
            promoted.close()
