"""End-to-end HA soak tests: the three cluster plans and their pins.

As with the single-node chaos pins, each digest is the determinism
acceptance for its plan: the same (plan, seed) must replay the same
canonical fault timeline on every machine.  Re-pin only after a
deliberate, inspected change to the HA layer's behaviour.
"""

import io

import pytest

from repro.cli import main
from repro.errors import ChaosError
from repro.ha.soak import run_ha_soak

#: sha256 of the canonical fault timelines at seed 7 (docs/ha.md)
PINNED = {
    "leader-kill": (
        "7e59d05e2dbc64ad2b7a95d130cd6900a7969f63ec1958beca6069ef9a0a682e"
    ),
    "replication-partition": (
        "77ec534a3659e8ecd2f32d92affe0074581e7ab3626e3407821c9c509feeb2f5"
    ),
    "split-brain": (
        "0a1c1d6c0819127f8dc0cd86f93e174f5c28ac29c0502f88f51881bfec8ac7b9"
    ),
}


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestLeaderKill:
    def test_failover_matches_the_single_node_oracle(self, tmp_path):
        result = run_ha_soak(
            "leader-kill", seed=7, state_dir=str(tmp_path)
        )
        assert result.failure is None
        assert result.ok, result.to_dict()
        assert result.promotions == 1
        assert result.final_epoch == 2
        assert result.invariants["key-oracle"]
        assert result.invariants["no-interval-lost"]
        assert result.digest == PINNED["leader-kill"]


class TestReplicationPartition:
    def test_partition_heals_without_promotion(self, tmp_path):
        result = run_ha_soak(
            "replication-partition", seed=7, state_dir=str(tmp_path)
        )
        assert result.failure is None
        assert result.ok, result.to_dict()
        assert result.promotions == 0
        assert result.final_epoch == 1
        assert result.invariants["frames-dropped"]
        assert result.invariants["caught-up"]
        assert result.invariants["digest-match"]
        assert result.digest == PINNED["replication-partition"]


class TestSplitBrain:
    def test_deposed_leader_is_fenced(self, tmp_path):
        result = run_ha_soak(
            "split-brain", seed=7, state_dir=str(tmp_path)
        )
        assert result.failure is None
        assert result.ok, result.to_dict()
        assert result.promotions == 1
        assert result.invariants["fenced"]
        assert result.invariants["no-stale-record"]
        assert result.digest == PINNED["split-brain"]


class TestGuards:
    def test_single_node_plan_refused(self):
        with pytest.raises(ChaosError, match="single-node"):
            run_ha_soak("standard", seed=7)


class TestCli:
    def test_list_plans_exits_zero(self):
        code, output = run_cli("ha-soak", "--list-plans")
        assert code == 0
        for name in PINNED:
            assert name in output

    def test_chaos_soak_list_plans_covers_both_families(self):
        code, output = run_cli("chaos-soak", "--list-plans")
        assert code == 0
        assert "standard" in output
        assert "split-brain" in output

    def test_expect_digest_mismatch_exits_three(self, tmp_path):
        code, output = run_cli(
            "ha-soak", "--plan", "split-brain",
            "--state-dir", str(tmp_path),
            "--expect-digest", "deadbeef",
        )
        assert code == 3
        assert "digest mismatch" in output

    def test_green_run_exits_zero_and_prints_digest(self, tmp_path):
        code, output = run_cli(
            "ha-soak", "--plan", "replication-partition",
            # A directory that does not exist yet: the harness must
            # create it rather than crash on the lease write.
            "--state-dir", str(tmp_path / "fresh" / "cluster"),
            "--expect-digest", PINNED["replication-partition"],
        )
        assert code == 0
        assert "all invariants green" in output
        assert PINNED["replication-partition"] in output
