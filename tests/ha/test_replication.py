"""Tests for repro.ha.replication — frames, links, and the TCP pair."""

import pytest

from repro.errors import ReplicationError
from repro.ha.replication import (
    MAX_FRAME_BYTES,
    DirectLink,
    FrameReader,
    LeaderPublisher,
    ReplicationClient,
    ReplicationServer,
    SocketSink,
    decode_body,
    encode_frame,
)
from repro.service.wal import WriteAheadLog


class TestWireFormat:
    def test_round_trip(self):
        frame = encode_frame({"kind": "heartbeat", "epoch": 3})
        length = int.from_bytes(frame[:4], "big")
        assert length == len(frame) - 4
        payload = decode_body(frame[4:])
        assert payload == {"kind": "heartbeat", "epoch": 3}

    def test_unknown_kind_refused_on_encode_and_decode(self):
        with pytest.raises(ReplicationError, match="unknown frame kind"):
            encode_frame({"kind": "gossip"})
        body = encode_frame({"kind": "hello", "epoch": 1})[4:]
        tampered = body.replace(b'"hello"', b'"nosht"')
        with pytest.raises(ReplicationError):
            decode_body(tampered)

    def test_single_bit_flip_fails_the_crc(self):
        body = bytearray(encode_frame({"kind": "hello", "epoch": 7})[4:])
        index = body.index(b"7")
        body[index] ^= 0x01
        with pytest.raises(ReplicationError, match="CRC"):
            decode_body(bytes(body))

    def test_non_object_frame_refused(self):
        with pytest.raises(ReplicationError, match="not an object"):
            decode_body(b"[1, 2]")


class TestFrameReader:
    def test_reassembles_across_arbitrary_splits(self):
        frames = encode_frame({"kind": "hello", "epoch": 1}) + encode_frame(
            {"kind": "heartbeat", "epoch": 1, "last_seq": 9}
        )
        for chunk in (1, 3, 7):
            reader = FrameReader()
            payloads = []
            for i in range(0, len(frames), chunk):
                payloads.extend(reader.feed(frames[i:i + chunk]))
            assert [p["kind"] for p in payloads] == ["hello", "heartbeat"]

    def test_partial_frame_returns_nothing_yet(self):
        frame = encode_frame({"kind": "hello", "epoch": 1})
        reader = FrameReader()
        assert reader.feed(frame[:-1]) == []
        assert reader.feed(frame[-1:])[0]["epoch"] == 1

    def test_absurd_length_prefix_refused(self):
        reader = FrameReader()
        with pytest.raises(ReplicationError, match="cap"):
            reader.feed((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))


class TestDirectLink:
    def test_send_then_poll(self):
        link = DirectLink()
        link.send({"kind": "hello", "epoch": 1})
        link.send({"kind": "heartbeat", "epoch": 1, "last_seq": -1})
        assert [p["kind"] for p in link.poll()] == ["hello", "heartbeat"]
        assert link.poll() == []
        assert (link.sent, link.dropped) == (2, 0)

    def test_partition_drops_frames_for_good(self):
        link = DirectLink()
        link.partitioned = True
        link.send({"kind": "hello", "epoch": 1})
        link.partitioned = False
        link.send({"kind": "heartbeat", "epoch": 1, "last_seq": -1})
        # The partitioned frame never arrives late — it is simply gone.
        assert [p["kind"] for p in link.poll()] == ["heartbeat"]
        assert (link.sent, link.dropped) == (1, 1)


class TestLeaderPublisher:
    def test_wal_tap_streams_records_and_catchup_replays(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl", epoch=1)
        publisher = LeaderPublisher(1, wal=wal)
        live = DirectLink()
        publisher.subscribe(live)  # no server: bootstrap = catch-up
        wal.on_append = publisher.on_wal_record
        wal.append_request("join", "alice", 0)
        wal.append_commit(0)
        kinds = [p["kind"] for p in live.poll()]
        assert kinds == ["hello", "record", "record"]
        assert publisher.last_seq == 1

        late = DirectLink()
        publisher.subscribe(late, since_seq=0)
        payloads = late.poll()
        assert [p["kind"] for p in payloads] == ["hello", "record", "record"]
        assert [p["record"]["seq"] for p in payloads[1:]] == [0, 1]
        wal.close()

    def test_snapshot_counts_followers_and_drops(self, tmp_path):
        publisher = LeaderPublisher(2)
        link = DirectLink()
        publisher.subscribe(link, server=None)
        link.partitioned = True
        publisher.heartbeat()
        snapshot = publisher.snapshot()
        assert snapshot["followers"] == 1
        assert snapshot["dropped"] == 1


class TestLoopbackTcp:
    def test_subscribe_streams_over_a_real_socket(self):
        publisher = LeaderPublisher(1)

        def on_subscribe(sink, payload):
            assert payload["node"] == "standby"
            publisher.subscribe(sink)
            publisher.heartbeat()

        server = ReplicationServer(on_subscribe)
        client = ReplicationClient("127.0.0.1", server.port, "standby")
        try:
            client.connect()
            received = []
            for _ in range(20):
                payloads = client.poll(0.5)
                if payloads is None:
                    break
                received.extend(payloads)
                if len(received) >= 2:
                    break
            assert [p["kind"] for p in received] == ["hello", "heartbeat"]
            assert received[0]["epoch"] == 1
        finally:
            client.close()
            server.close()

    def test_closed_sink_counts_drops_instead_of_raising(self):
        import socket as socket_module

        a, b = socket_module.socketpair()
        sink = SocketSink(a)
        b.close()
        sink.close()
        sink.send({"kind": "heartbeat", "epoch": 1})
        assert sink.dropped == 1

    def test_client_poll_before_connect_refuses(self):
        client = ReplicationClient("127.0.0.1", 1, "standby")
        assert not client.connected
        with pytest.raises(ReplicationError, match="before connect"):
            client.poll(0.1)
