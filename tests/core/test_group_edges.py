"""Edge cases of the SecureGroup facade."""

import numpy as np
import pytest

from repro.core import GroupConfig, SecureGroup
from repro.sim import LossParameters


def make_group(n=16, **overrides):
    return SecureGroup(
        ["m%d" % i for i in range(n)],
        GroupConfig(block_size=4, **overrides),
    )


class TestEmptyIntervals:
    def test_lossy_empty_interval_is_noop(self):
        group = make_group()
        key = group.server.group_key
        message = group.rekey(lossy=True)
        assert message.is_empty
        assert group.server.group_key == key
        assert group.last_delivery_stats is None

    def test_many_empty_intervals(self):
        group = make_group()
        for _ in range(5):
            group.rekey()
        assert group.server.intervals_processed == 5


class TestChurnClamping:
    def test_leaves_clamped_to_membership(self):
        group = make_group(n=4)
        rng = np.random.default_rng(0)
        group.churn(0, 100, rng=rng)  # cannot evict more than exist
        assert group.n_members == 0 or group.n_members >= 0

    def test_group_can_empty_and_refill(self):
        group = make_group(n=4)
        for name in list(group.members):
            group.leave(name)
        group.rekey()
        assert group.n_members == 0
        group.join("phoenix-1")
        group.join("phoenix-2")
        group.rekey()
        assert group.n_members == 2
        assert all(
            m.group_key == group.server.group_key
            for m in group.members.values()
        )


class TestRejoin:
    def test_departed_member_can_rejoin_with_fresh_keys(self):
        group = make_group()
        group.leave("m3")
        group.rekey()
        stale = group.former_members["m3"].group_key
        group.join("m3")
        group.rekey()
        fresh = group.members["m3"].group_key
        assert fresh == group.server.group_key
        assert fresh != stale

    def test_rejoin_cannot_read_the_gap(self):
        """Keys from the eviction interval never reach the rejoiner."""
        group = make_group()
        group.leave("m3")
        group.rekey()
        gap_key = group.server.group_key
        group.churn(0, 1, rng=np.random.default_rng(1))  # another interval
        group.join("m3")
        group.rekey()
        rejoined = group.members["m3"]
        assert rejoined.group_key != gap_key


class TestLossEnvironments:
    @pytest.mark.parametrize(
        "loss",
        [
            LossParameters(alpha=0.0, p_low=0.0, p_high=0.0, p_source=0.0),
            LossParameters(bursty=False),
            LossParameters(alpha=1.0, p_high=0.3, p_low=0.3),
        ],
        ids=["lossless", "bernoulli", "all-high"],
    )
    def test_delivery_under_every_regime(self, loss):
        group = SecureGroup(
            ["m%d" % i for i in range(32)],
            GroupConfig(block_size=4, loss=loss, seed=5),
        )
        group.leave("m0")
        group.leave("m9")
        group.rekey(lossy=True)
        assert all(
            m.group_key == group.server.group_key
            for m in group.members.values()
        )
