"""Stateful property testing: the SecureGroup under arbitrary operation
sequences.

Hypothesis drives random interleavings of join / leave / rekey /
lossy-rekey against a model of expected membership, asserting after
every step:

- the key tree's structural invariants hold;
- current members (and only they) can produce the group key;
- the group key changes across any interval with membership changes
  and stays put across empty intervals.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
import hypothesis.strategies as st

from repro.core import GroupConfig, SecureGroup


class SecureGroupMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.group = None
        self.expected_members = set()
        self.expected_departed = set()
        self.counter = 0
        self.pending_joins = []
        self.pending_leaves = []

    @initialize(n=st.integers(2, 20), degree=st.integers(2, 4))
    def start(self, n, degree):
        names = ["m%d" % i for i in range(n)]
        self.group = SecureGroup(
            names, GroupConfig(degree=degree, block_size=4)
        )
        self.expected_members = set(names)
        self.counter = n

    @rule()
    def queue_join(self):
        name = "m%d" % self.counter
        self.counter += 1
        self.group.join(name)
        self.pending_joins.append(name)

    @precondition(
        lambda self: len(self.expected_members) - len(self.pending_leaves) > 1
    )
    @rule(data=st.data())
    def queue_leave(self, data):
        candidates = sorted(
            self.expected_members - set(self.pending_leaves)
        )
        name = data.draw(st.sampled_from(candidates))
        self.group.leave(name)
        self.pending_leaves.append(name)

    @rule(lossy=st.booleans())
    def rekey(self, lossy):
        key_before = self.group.server.group_key
        changed = bool(self.pending_joins or self.pending_leaves)
        self.group.rekey(lossy=lossy)
        self.expected_members |= set(self.pending_joins)
        self.expected_members -= set(self.pending_leaves)
        self.expected_departed |= set(self.pending_leaves)
        self.pending_joins = []
        self.pending_leaves = []
        key_after = self.group.server.group_key
        if changed:
            assert key_after != key_before
        else:
            assert key_after == key_before

    @invariant()
    def membership_matches(self):
        if self.group is None:
            return
        assert set(self.group.members) == self.expected_members

    @invariant()
    def tree_is_valid(self):
        if self.group is None:
            return
        self.group.server.tree.validate()

    @invariant()
    def members_hold_group_key(self):
        if self.group is None:
            return
        expected = self.group.server.group_key
        for name, member in self.group.members.items():
            if name in self.pending_joins:
                continue
            assert member.group_key == expected, name

    @invariant()
    def departed_are_locked_out(self):
        if self.group is None:
            return
        current = self.group.server.group_key
        for name in self.expected_departed:
            former = self.group.former_members.get(name)
            if former is not None:
                assert former.group_key != current, name


SecureGroupMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
TestSecureGroupStateful = SecureGroupMachine.TestCase
