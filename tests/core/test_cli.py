"""Tests for repro.cli — the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestDemo:
    def test_demo_runs_clean(self):
        code, text = run_cli("demo", "--members", "8", "--intervals", "2")
        assert code == 0
        assert "all members agree on the group key: True" in text
        assert "all departed members locked out: True" in text

    def test_demo_lossy(self):
        code, text = run_cli(
            "demo", "--members", "16", "--intervals", "1", "--lossy"
        )
        assert code == 0
        assert "rounds=" in text


class TestSimulate:
    def test_simulate_small(self):
        code, text = run_cli(
            "simulate",
            "--users", "256",
            "--messages", "3",
            "--seed", "2",
        )
        assert code == 0
        assert "workload:" in text
        assert "steady state:" in text
        assert text.count("\n") >= 6

    def test_simulate_fixed_rho(self):
        code, text = run_cli(
            "simulate",
            "--users", "256",
            "--messages", "2",
            "--fixed-rho",
        )
        assert code == 0
        # rho stays at its initial value in every row.
        rows = [l for l in text.splitlines() if l.strip().startswith(("0 |", "1 |"))]
        assert all("1.00" in row for row in rows)


class TestAnalyze:
    def test_analyze_tables(self):
        code, text = run_cli("analyze", "--users", "1024")
        assert code == 0
        assert "expected encryptions" in text
        assert "max supportable group size" in text

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("frobnicate")

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            run_cli()
