"""GroupConfig construction-time validation and dict round-trips.

The tenant registry persists every tenant's ``GroupConfig`` via
``to_dict`` and re-validates it through ``from_dict`` at load time, so
the round-trip has to be lossless over the whole valid space and the
validation has to reject bad documents loudly.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import GroupConfig
from repro.errors import ConfigurationError
from repro.sim.topology import LossParameters

loss_params = st.builds(
    LossParameters,
    alpha=st.floats(min_value=0.0, max_value=1.0),
    p_high=st.floats(min_value=0.0, max_value=1.0),
    p_low=st.floats(min_value=0.0, max_value=1.0),
    p_source=st.floats(min_value=0.0, max_value=1.0),
    burst_scale_ms=st.floats(min_value=1e-3, max_value=1e4),
    bursty=st.booleans(),
)

# rho <= rho_max by construction: draw the pair together
rho_pairs = st.tuples(
    st.floats(min_value=0.0, max_value=8.0),
    st.floats(min_value=8.0, max_value=64.0),
)

valid_configs = st.builds(
    lambda rho_pair, **kw: GroupConfig(
        rho=rho_pair[0], rho_max=rho_pair[1], **kw
    ),
    rho_pairs,
    degree=st.integers(min_value=2, max_value=16),
    packet_size=st.integers(min_value=1, max_value=4096),
    block_size=st.integers(min_value=1, max_value=64),
    num_nack=st.integers(min_value=0, max_value=50),
    max_nack=st.integers(min_value=0, max_value=200),
    sending_interval_ms=st.floats(min_value=1.0, max_value=1000.0),
    max_multicast_rounds=st.integers(min_value=1, max_value=8),
    deadline_rounds=st.integers(min_value=1, max_value=8),
    nack_window_seconds=st.floats(min_value=0.01, max_value=2.0),
    loss=loss_params,
    crypto_seed=st.integers(min_value=0, max_value=2**31),
    seed=st.integers(min_value=0, max_value=2**31),
    incremental_marking=st.booleans(),
    fec_coder=st.sampled_from(["matrix", "reference"]),
    engine=st.sampled_from(["python", "numpy"]),
)


@settings(max_examples=60, deadline=None)
@given(config=valid_configs)
def test_roundtrip_is_lossless(config):
    assert GroupConfig.from_dict(config.to_dict()) == config


@settings(max_examples=60, deadline=None)
@given(config=valid_configs)
def test_to_dict_is_plain_json_data(config):
    data = config.to_dict()
    assert isinstance(data, dict)
    assert isinstance(data["loss"], dict)
    # a second hop must also be stable (registry save -> load -> save)
    assert GroupConfig.from_dict(data).to_dict() == data


@pytest.mark.parametrize(
    "kwargs",
    [
        {"degree": 1},
        {"degree": 0},
        {"degree": 2.5},
        {"packet_size": 0},
        {"block_size": -1},
        {"rho": -0.1},
        {"rho_max": 0.0},
        {"rho": 9.0, "rho_max": 8.0},
        {"num_nack": -1},
        {"max_nack": -2},
        {"sending_interval_ms": 0.0},
        {"nack_window_seconds": -0.5},
        {"max_multicast_rounds": 0},
        {"deadline_rounds": 0},
        {"fec_coder": "wavelet"},
        {"engine": "fortran"},
    ],
)
def test_bad_values_raise_value_error(kwargs):
    with pytest.raises(ValueError):
        GroupConfig(**kwargs)


def test_configuration_error_is_a_value_error():
    # callers catching ValueError get the config failures too
    assert issubclass(ConfigurationError, ValueError)


def test_from_dict_rejects_non_dict():
    with pytest.raises(ConfigurationError):
        GroupConfig.from_dict([1, 2, 3])


def test_from_dict_rejects_unknown_field():
    data = GroupConfig().to_dict()
    data["flux_capacitor"] = 1.21
    with pytest.raises(ConfigurationError):
        GroupConfig.from_dict(data)


def test_from_dict_revalidates_values():
    data = GroupConfig().to_dict()
    data["degree"] = 1
    with pytest.raises(ValueError):
        GroupConfig.from_dict(data)


def test_from_dict_rebuilds_loss_parameters():
    config = GroupConfig()
    rebuilt = GroupConfig.from_dict(config.to_dict())
    assert isinstance(rebuilt.loss, LossParameters)
    assert rebuilt.loss == config.loss
