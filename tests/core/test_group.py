"""Tests for repro.core.group — the SecureGroup facade."""

import numpy as np
import pytest

from repro.core import GroupConfig, SecureGroup
from repro.sim import LossParameters


def make_group(n=27, degree=3, **overrides):
    config = GroupConfig(degree=degree, block_size=5, **overrides)
    return SecureGroup(["m%d" % i for i in range(n)], config)


def keys_agree(group):
    return all(
        member.group_key == group.server.group_key
        for member in group.members.values()
    )


class TestLifecycle:
    def test_initial_agreement(self):
        group = make_group()
        assert keys_agree(group)

    def test_leave_rotates_and_delivers(self):
        group = make_group()
        old = group.server.group_key
        group.leave("m0")
        group.rekey()
        assert group.server.group_key != old
        assert keys_agree(group)
        assert "m0" not in group.members

    def test_join_becomes_member(self):
        group = make_group()
        group.join("newbie")
        group.rekey()
        assert "newbie" in group.members
        assert keys_agree(group)

    def test_former_member_is_locked_out(self):
        group = make_group()
        group.leave("m1")
        group.rekey()
        former = group.former_members["m1"]
        assert former.group_key != group.server.group_key

    def test_empty_interval(self):
        group = make_group()
        message = group.rekey()
        assert message.is_empty
        assert keys_agree(group)

    def test_batched_interval(self):
        group = make_group()
        for name in ("m1", "m2", "m3"):
            group.leave(name)
        for name in ("a", "b"):
            group.join(name)
        group.rekey()
        assert group.n_members == 26
        assert keys_agree(group)


class TestLossyDelivery:
    def test_lossy_rekey_still_agrees(self):
        group = make_group(n=64, degree=4, seed=7)
        group.leave("m0")
        group.leave("m7")
        group.rekey(lossy=True)
        assert keys_agree(group)
        assert group.last_delivery_stats is not None

    def test_lossy_with_high_loss_uses_unicast(self):
        config_loss = LossParameters(alpha=1.0, p_high=0.35, p_low=0.35)
        group = make_group(n=64, degree=4, loss=config_loss, seed=9)
        for name in ("m0", "m1", "m2", "m3"):
            group.leave(name)
        group.rekey(lossy=True)
        assert keys_agree(group)

    def test_delivery_stats_recorded(self):
        group = make_group(n=64, degree=4)
        group.leave("m5")
        group.rekey(lossy=True)
        stats = group.last_delivery_stats
        assert stats.n_users == len(group.members)
        assert stats.n_multicast_rounds >= 1


class TestChurn:
    def test_long_churn_keeps_invariants(self):
        group = make_group(n=27)
        rng = np.random.default_rng(5)
        for _ in range(15):
            group.churn(
                int(rng.integers(0, 6)), int(rng.integers(0, 6)), rng=rng
            )
            assert keys_agree(group)
            group.server.tree.validate()

    def test_churn_with_growth_and_splits(self):
        group = make_group(n=9, degree=3)
        rng = np.random.default_rng(6)
        for _ in range(10):
            group.churn(5, 1, rng=rng)
        assert group.n_members == 9 + 10 * 4
        assert keys_agree(group)

    def test_churn_lossy(self):
        group = make_group(n=64, degree=4, seed=11)
        rng = np.random.default_rng(7)
        for _ in range(4):
            group.churn(3, 3, rng=rng, lossy=True)
            assert keys_agree(group)

    def test_every_former_member_locked_out_after_churn(self):
        group = make_group(n=27)
        rng = np.random.default_rng(8)
        for _ in range(8):
            group.churn(2, 3, rng=rng)
        current = group.server.group_key
        assert group.former_members
        assert all(
            member.group_key != current
            for member in group.former_members.values()
        )
