"""Tests for repro.core.registrar — the registration component."""

import pytest

from repro.core import GroupConfig, GroupKeyServer, GroupMember
from repro.core.registrar import (
    JoinRequest,
    RegistrationError,
    RegistrationGrant,
    Registrar,
    RequestValidator,
    make_join_request,
    make_leave_request,
)


@pytest.fixture
def world():
    server = GroupKeyServer(
        ["u%d" % i for i in range(16)],
        config=GroupConfig(block_size=5, crypto_seed=3),
    )
    registrar = Registrar(
        registrar_secret=11,
        credentials={"newbie": "hunter2", "u0": "pw0"},
    )
    validator = RequestValidator(registrar.shared_secret, server.tree)
    return server, registrar, validator


class TestRegistrar:
    def test_register_with_good_credential(self, world):
        _, registrar, _ = world
        grant = registrar.register("newbie", "hunter2")
        assert grant.user == "newbie"
        assert len(grant.seal) == 16

    def test_register_with_bad_credential(self, world):
        _, registrar, _ = world
        with pytest.raises(RegistrationError):
            registrar.register("newbie", "wrong")

    def test_register_unknown_user(self, world):
        _, registrar, _ = world
        with pytest.raises(RegistrationError):
            registrar.register("stranger", "hunter2")

    def test_open_enrolment(self):
        registrar = Registrar(registrar_secret=1)
        assert registrar.register("anyone").user == "anyone"

    def test_grants_have_fresh_nonces(self, world):
        _, registrar, _ = world
        a = registrar.register("newbie", "hunter2")
        b = registrar.register("newbie", "hunter2")
        assert a.nonce != b.nonce
        assert a.seal != b.seal


class TestJoinValidation:
    def test_valid_grant_accepted(self, world):
        server, registrar, validator = world
        grant = registrar.register("newbie", "hunter2")
        user = validator.validate_join(make_join_request(grant))
        server.request_join(user)
        server.rekey()
        assert "newbie" in server.users

    def test_forged_grant_rejected(self, world):
        _, _, validator = world
        forged = RegistrationGrant(user="evil", nonce=1, seal=b"\x00" * 16)
        with pytest.raises(RegistrationError, match="forged"):
            validator.validate_join(JoinRequest(grant=forged))

    def test_other_registrars_grants_rejected(self, world):
        _, _, validator = world
        other = Registrar(registrar_secret=99)
        grant = other.register("newbie")
        with pytest.raises(RegistrationError):
            validator.validate_join(make_join_request(grant))

    def test_replayed_grant_rejected(self, world):
        _, registrar, validator = world
        grant = registrar.register("newbie", "hunter2")
        request = make_join_request(grant)
        validator.validate_join(request)
        with pytest.raises(RegistrationError, match="replayed"):
            validator.validate_join(request)

    def test_non_request_rejected(self, world):
        _, _, validator = world
        with pytest.raises(RegistrationError):
            validator.validate_join("just let me in")


class TestLeaveValidation:
    def test_member_can_authenticate_its_leave(self, world):
        server, _, validator = world
        member = GroupMember.register(server, "u3")
        request = make_leave_request("u3", member.individual_key, nonce=1)
        assert validator.validate_leave(request) == "u3"

    def test_wrong_key_rejected(self, world):
        server, _, validator = world
        other = GroupMember.register(server, "u4")
        request = make_leave_request("u3", other.individual_key, nonce=1)
        with pytest.raises(RegistrationError, match="individual key"):
            validator.validate_leave(request)

    def test_unknown_member_rejected(self, world):
        server, _, validator = world
        member = GroupMember.register(server, "u3")
        request = make_leave_request("ghost", member.individual_key, nonce=1)
        with pytest.raises(RegistrationError, match="unknown member"):
            validator.validate_leave(request)

    def test_replay_rejected(self, world):
        server, _, validator = world
        member = GroupMember.register(server, "u3")
        request = make_leave_request("u3", member.individual_key, nonce=7)
        validator.validate_leave(request)
        with pytest.raises(RegistrationError, match="replayed"):
            validator.validate_leave(request)

    def test_fresh_nonce_accepted_after_first(self, world):
        server, _, validator = world
        member = GroupMember.register(server, "u3")
        validator.validate_leave(
            make_leave_request("u3", member.individual_key, nonce=1)
        )
        validator.validate_leave(
            make_leave_request("u3", member.individual_key, nonce=2)
        )

    def test_stale_key_after_rekey_rejected(self, world):
        """After the member's slot is rekeyed (its user replaced), the
        old individual key no longer authenticates leaves for the slot's
        new occupant."""
        server, _, _ = world
        old_member = GroupMember.register(server, "u3")
        server.request_leave("u3")
        server.request_join("taker")
        server.rekey()
        validator = RequestValidator(b"\x00" * 32, server.tree)
        request = make_leave_request(
            "taker", old_member.individual_key, nonce=1
        )
        with pytest.raises(RegistrationError):
            validator.validate_leave(request)


class TestEndToEnd:
    def test_full_admission_flow(self, world):
        """register -> validate -> join -> rekey -> member keyed."""
        server, registrar, validator = world
        grant = registrar.register("newbie", "hunter2")
        user = validator.validate_join(make_join_request(grant))
        server.request_join(user)
        server.rekey()
        member = GroupMember.register(server, "newbie")
        assert member.group_key == server.group_key
        # ... and the member can later authenticate its own departure.
        leave = make_leave_request("newbie", member.individual_key, nonce=1)
        assert validator.validate_leave(leave) == "newbie"
