"""Tests for repro.core.member — client-side key state."""

import pytest

from repro.core import GroupConfig, GroupKeyServer, GroupMember
from repro.errors import TransportError


def make_pair(n=16, degree=4):
    server = GroupKeyServer(
        ["u%d" % i for i in range(n)],
        config=GroupConfig(degree=degree, block_size=5),
    )
    members = {
        name: GroupMember.register(server, name) for name in server.users
    }
    return server, members


def deliver(message, member):
    for packet in message.enc_packets():
        if packet.is_duplicate:
            continue
        if member.process_enc_packet(packet):
            return True
    return False


class TestRegistration:
    def test_member_holds_path(self):
        server, members = make_pair()
        member = members["u3"]
        assert member.group_key == server.group_key
        assert member.individual_key == server.tree.key_of(member.user_id)

    def test_missing_individual_key_rejected(self):
        with pytest.raises(TransportError):
            GroupMember("x", 5, {0: None}, 4)


class TestRekeyProcessing:
    def test_member_tracks_group_key_across_leaves(self):
        server, members = make_pair()
        server.request_leave("u0")
        _, message = server.rekey()
        for name, member in members.items():
            if name == "u0":
                continue
            assert deliver(message, member)
            assert member.group_key == server.group_key

    def test_departed_member_cannot_obtain_new_key(self):
        """Forward secrecy at the client: u0's keys open nothing."""
        server, members = make_pair()
        departed = members["u0"]
        old_key = departed.group_key
        server.request_leave("u0")
        _, message = server.rekey()
        for packet in message.enc_packets():
            departed.process_enc_packet(packet)  # absorbs nothing useful
        assert departed.group_key == old_key
        assert departed.group_key != server.group_key

    def test_member_relocates_after_split(self):
        server, members = make_pair(n=16, degree=4)
        for i in range(4):
            server.request_join("n%d" % i)
        _, message = server.rekey()
        moved = members["u0"]
        old_id = moved.user_id
        assert deliver(message, moved)
        assert moved.user_id == server.tree.user_node_id("u0")
        assert moved.user_id != old_id
        assert moved.group_key == server.group_key

    def test_usr_packet_processing(self):
        server, members = make_pair()
        server.request_leave("u0")
        _, message = server.rekey()
        member = members["u5"]
        member.absorb_encryptions([], max_kid=message.max_kid)
        usr = message.usr_packet(member.user_id)
        member.process_usr_packet(usr)
        assert member.group_key == server.group_key

    def test_usr_packet_for_wrong_user_rejected(self):
        server, members = make_pair()
        server.request_leave("u0")
        _, message = server.rekey()
        u5, u6 = members["u5"], members["u6"]
        with pytest.raises(TransportError):
            u6.process_usr_packet(message.usr_packet(u5.user_id))

    def test_absorb_encryptions_direct(self):
        server, members = make_pair()
        server.request_leave("u0")
        batch, message = server.rekey()
        member = members["u9"]
        wanted = message.needs_by_user[member.user_id]
        member.absorb_encryptions(
            [message.encryption_map[e] for e in wanted],
            max_kid=message.max_kid,
        )
        assert member.group_key == server.group_key

    def test_multi_interval_chaining(self):
        """Keys from interval t decrypt interval t+1's message."""
        server, members = make_pair()
        survivors = [n for n in members if n not in ("u0", "u1")]
        for victim in ("u0", "u1"):
            server.request_leave(victim)
            _, message = server.rekey()
            for name in survivors:
                assert deliver(message, members[name])
        for name in survivors:
            assert members[name].group_key == server.group_key

    def test_signature_verification(self):
        server, members = make_pair()
        server.request_leave("u0")
        _, message = server.rekey()
        member = members["u5"]
        payload = b"".join(
            message.encryption_map[e].ciphertext
            for e in sorted(message.encryption_map)
        )
        assert member.verify_signature(payload, message.signature)
        assert not member.verify_signature(payload + b"x", message.signature)

    def test_repr(self):
        server, members = make_pair()
        assert "u3" in repr(members["u3"])
