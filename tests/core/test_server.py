"""Tests for repro.core.server — the GroupKeyServer."""

import pytest

from repro.core import GroupConfig, GroupKeyServer
from repro.errors import (
    ConfigurationError,
    DuplicateUserError,
    UnknownUserError,
)


def make_server(n=16, **config_overrides):
    config = GroupConfig(**config_overrides)
    return GroupKeyServer(["u%d" % i for i in range(n)], config=config)


class TestConstruction:
    def test_initial_group(self):
        server = make_server(16)
        assert server.n_users == 16
        assert server.group_key is not None

    def test_empty_group_rejected(self):
        with pytest.raises(ConfigurationError):
            GroupKeyServer([])

    def test_config_defaults_match_paper(self):
        config = GroupConfig()
        assert config.degree == 4
        assert config.block_size == 10
        assert config.packet_size == 1027
        assert config.num_nack == 20


class TestRequestQueue:
    def test_join_then_rekey(self):
        server = make_server()
        server.request_join("newbie")
        batch, message = server.rekey()
        assert "newbie" in server.users
        assert not message.is_empty

    def test_leave_then_rekey(self):
        server = make_server()
        old_key = server.group_key
        server.request_leave("u3")
        server.rekey()
        assert "u3" not in server.users
        assert server.group_key != old_key

    def test_duplicate_join_rejected(self):
        server = make_server()
        server.request_join("x")
        with pytest.raises(DuplicateUserError):
            server.request_join("x")
        with pytest.raises(DuplicateUserError):
            server.request_join("u1")

    def test_leave_of_unknown_rejected(self):
        with pytest.raises(UnknownUserError):
            make_server().request_leave("ghost")

    def test_double_leave_rejected(self):
        server = make_server()
        server.request_leave("u1")
        with pytest.raises(ConfigurationError):
            server.request_leave("u1")

    def test_join_then_leave_same_interval_cancels(self):
        server = make_server()
        server.request_join("flash")
        server.request_leave("flash")
        assert server.pending_requests == ([], [])
        batch, message = server.rekey()
        assert message.is_empty

    def test_leave_of_pending_join_then_rejoin(self):
        server = make_server()
        server.request_join("flash")
        server.request_leave("flash")
        server.request_join("flash")
        server.rekey()
        assert "flash" in server.users

    def test_queue_drains_on_rekey(self):
        server = make_server()
        server.request_join("a")
        server.rekey()
        assert server.pending_requests == ([], [])


class TestRekeyMessages:
    def test_message_ids_cycle_mod_64(self):
        server = make_server(64)
        for i in range(65):
            server.request_leave(sorted(server.users)[0])
            server.request_join("gen%d" % i)
            _, message = server.rekey()
            assert message.message_id == i % 64

    def test_empty_interval_is_empty_message(self):
        _, message = make_server().rekey()
        assert message.is_empty

    def test_message_is_signed(self):
        server = make_server()
        server.request_leave("u0")
        _, message = server.rekey()
        assert message.signature is not None

    def test_meter_accumulates(self):
        server = make_server()
        baseline = server.meter.seconds
        server.request_leave("u0")
        server.rekey()
        assert server.meter.seconds > baseline
        assert server.meter.count("sign") >= 1

    def test_forward_secrecy_key_rotation(self):
        server = make_server()
        keys = set()
        for user in ["u0", "u1", "u2"]:
            server.request_leave(user)
            server.rekey()
            keys.add(server.group_key)
        assert len(keys) == 3


class TestRegistrationState:
    def test_registration_state_contents(self):
        server = make_server()
        user_id, path_keys = server.registration_state("u5")
        assert user_id == server.tree.user_node_id("u5")
        assert set(path_keys) == set(server.tree.path_ids("u5"))
        assert path_keys[0] == server.group_key

    def test_registration_of_unknown_user(self):
        with pytest.raises(UnknownUserError):
            make_server().registration_state("ghost")
