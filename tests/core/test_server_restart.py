"""Tests for GroupKeyServer.snapshot()/restore() — the restart story."""

import json

import pytest

from repro.core import GroupConfig, GroupKeyServer, GroupMember
from repro.errors import ConfigurationError


def make_server():
    server = GroupKeyServer(
        ["u%d" % i for i in range(16)],
        config=GroupConfig(block_size=5, crypto_seed=7),
    )
    server.request_leave("u3")
    server.request_join("n1")
    server.rekey()
    return server


class TestSnapshotRestore:
    def test_round_trip_preserves_state(self):
        server = make_server()
        restored = GroupKeyServer.restore(
            server.snapshot(), config=server.config
        )
        assert restored.users == server.users
        assert restored.group_key == server.group_key
        assert restored.intervals_processed == server.intervals_processed

    def test_snapshot_is_json_safe(self):
        json.dumps(make_server().snapshot())

    def test_message_ids_continue(self):
        server = make_server()
        restored = GroupKeyServer.restore(
            server.snapshot(), config=server.config
        )
        restored.request_leave("u5")
        _, message = restored.rekey()
        assert message.message_id == 1  # continues after the pre-crash 0

    def test_pending_queues_dropped(self):
        server = make_server()
        server.request_leave("u7")  # queued but not snapshot
        restored = GroupKeyServer.restore(
            server.snapshot(), config=server.config
        )
        assert restored.pending_requests == ([], [])
        assert "u7" in restored.users

    def test_members_survive_restart(self):
        """Members keyed before the crash can follow post-restart rekeys."""
        server = make_server()
        member = GroupMember.register(server, "u5")
        restored = GroupKeyServer.restore(
            server.snapshot(), config=server.config
        )
        restored.request_leave("u9")
        _, message = restored.rekey()
        for packet in message.enc_packets():
            if packet.is_duplicate:
                continue
            if member.process_enc_packet(packet):
                break
        assert member.group_key == restored.group_key

    def test_key_material_continues_without_reuse(self):
        server = make_server()
        old_keys = {server.group_key}
        restored = GroupKeyServer.restore(
            server.snapshot(), config=server.config
        )
        for victim in ("u1", "u2"):
            restored.request_leave(victim)
            restored.rekey()
            assert restored.group_key not in old_keys
            old_keys.add(restored.group_key)

    def test_degree_mismatch_rejected(self):
        server = make_server()
        bad_config = GroupConfig(degree=3, crypto_seed=7)
        with pytest.raises(ConfigurationError):
            GroupKeyServer.restore(server.snapshot(), config=bad_config)

    def test_crypto_seed_adopted_from_snapshot(self):
        server = make_server()
        restored = GroupKeyServer.restore(
            server.snapshot(), config=GroupConfig(crypto_seed=999)
        )
        assert restored.config.crypto_seed == 7
        assert restored.group_key == server.group_key
