"""Tests for repro.core.policy — batching policies."""

import numpy as np
import pytest

from repro.core.policy import (
    HybridBatching,
    ImmediateRekeying,
    PeriodicBatching,
    PolicyOutcome,
    ThresholdBatching,
    poisson_trace,
    simulate_policy,
)
from repro.errors import ConfigurationError
from repro.util import spawn_rng


def fixed_trace():
    # Requests at 1..10 s, alternating join/leave.
    return [(float(t), t % 2 == 0) for t in range(1, 11)]


class TestPolicies:
    def test_immediate_rekeys_every_request(self):
        outcome = simulate_policy(ImmediateRekeying(), fixed_trace())
        assert outcome.n_rekeys == 10
        assert outcome.mean_batch == 1.0
        assert outcome.mean_vulnerability_window == 0.0

    def test_periodic_groups_by_interval(self):
        outcome = simulate_policy(PeriodicBatching(5.0), fixed_trace())
        assert outcome.n_rekeys <= 3
        assert outcome.mean_batch > 2
        assert outcome.worst_vulnerability_window <= 5.0 + 1.0

    def test_threshold_groups_by_count(self):
        outcome = simulate_policy(ThresholdBatching(5), fixed_trace())
        assert outcome.n_rekeys == 2
        assert outcome.batch_sizes == [5, 5]

    def test_hybrid_fires_on_either(self):
        # Low churn: the period fires; high churn: the threshold fires.
        sparse = [(float(t * 30), True) for t in range(1, 4)]
        outcome = simulate_policy(HybridBatching(10.0, 100), sparse)
        assert outcome.worst_vulnerability_window <= 10.0 + 1.0
        dense = fixed_trace()
        outcome = simulate_policy(HybridBatching(1000.0, 3), dense)
        assert outcome.batch_sizes[0] == 3

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            PeriodicBatching(0)
        with pytest.raises(ConfigurationError):
            ThresholdBatching(0)
        with pytest.raises(ConfigurationError):
            simulate_policy("not a policy", fixed_trace())


class TestTradeoffs:
    def test_batching_cuts_signatures_but_widens_window(self):
        rng = spawn_rng(1)
        trace = poisson_trace(2.0, 300.0, rng=rng)
        immediate = simulate_policy(ImmediateRekeying(), trace)
        periodic = simulate_policy(PeriodicBatching(30.0), trace)
        assert periodic.signatures() < immediate.signatures() / 10
        assert (
            periodic.mean_vulnerability_window
            > immediate.mean_vulnerability_window
        )

    def test_periodic_window_bounded_by_interval(self):
        rng = spawn_rng(2)
        trace = poisson_trace(1.0, 200.0, rng=rng)
        outcome = simulate_policy(PeriodicBatching(10.0), trace, tick_seconds=1.0)
        assert outcome.worst_vulnerability_window <= 11.0

    def test_threshold_window_unbounded_under_low_churn(self):
        """The failure mode periodic batching avoids."""
        sparse = [(0.0, True), (500.0, True)]
        outcome = simulate_policy(ThresholdBatching(10), sparse)
        assert outcome.worst_vulnerability_window > 100.0

    def test_hybrid_bounds_both(self):
        rng = spawn_rng(3)
        trace = poisson_trace(5.0, 120.0, rng=rng)
        outcome = simulate_policy(HybridBatching(10.0, 50), trace)
        assert outcome.worst_vulnerability_window <= 11.0
        assert max(outcome.batch_sizes) <= 50


class TestTrace:
    def test_poisson_rate(self):
        rng = spawn_rng(4)
        trace = poisson_trace(10.0, 1000.0, rng=rng)
        assert len(trace) == pytest.approx(10_000, rel=0.1)
        assert all(t1 < t2 for (t1, _), (t2, _) in zip(trace, trace[1:]))

    def test_leave_fraction(self):
        rng = spawn_rng(5)
        trace = poisson_trace(10.0, 500.0, leave_fraction=0.25, rng=rng)
        fraction = np.mean([is_leave for _, is_leave in trace])
        assert fraction == pytest.approx(0.25, abs=0.05)

    def test_outcome_defaults(self):
        outcome = PolicyOutcome()
        assert outcome.mean_batch == 0.0
        assert outcome.mean_vulnerability_window == 0.0
