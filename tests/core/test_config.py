"""Tests for repro.core.config — parameter validation and defaults."""

import pytest

from repro.core import GroupConfig
from repro.errors import ConfigurationError
from repro.sim import LossParameters


class TestDefaults:
    def test_paper_defaults(self):
        config = GroupConfig()
        assert config.degree == 4
        assert config.packet_size == 1027
        assert config.block_size == 10
        assert config.rho == 1.0
        assert config.num_nack == 20
        assert config.max_nack == 100
        assert config.sending_interval_ms == 100.0
        assert config.max_multicast_rounds == 2
        assert config.deadline_rounds == 2

    def test_default_loss_environment(self):
        loss = GroupConfig().loss
        assert loss.alpha == 0.20
        assert loss.p_high == 0.20
        assert loss.p_low == 0.02
        assert loss.p_source == 0.01
        assert loss.bursty


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("degree", 0),
            ("packet_size", 0),
            ("block_size", 0),
            ("rho", -1.0),
            ("num_nack", -1),
            ("max_nack", -2),
            ("sending_interval_ms", 0.0),
            ("max_multicast_rounds", 0),
            ("deadline_rounds", 0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises((ConfigurationError, ValueError)):
            GroupConfig(**{field: value})

    def test_degree_one_rejected(self):
        with pytest.raises(ValueError):
            GroupConfig(degree=1)

    def test_custom_loss(self):
        config = GroupConfig(loss=LossParameters(alpha=0.5, bursty=False))
        assert config.loss.alpha == 0.5
        assert not config.loss.bursty

    def test_overrides(self):
        config = GroupConfig(degree=8, block_size=5, rho=1.5)
        assert (config.degree, config.block_size, config.rho) == (8, 5, 1.5)
