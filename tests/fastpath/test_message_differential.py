"""Differential: the numpy engine's rekey messages, byte for byte.

Two :class:`GroupKeyServer` instances with identical seeds — one on the
``python`` oracle engine, one on ``numpy`` — are driven through the
*same* hypothesis-generated churn.  Every observable of every interval
must be **exactly** equal, never statistically close:

- the keyed trees (canonical ``tree_to_dict`` JSON: structure, users,
  every key's bytes, every version counter);
- the per-user needs map and its deepest-first ordering;
- every ENC packet's encoded wire bytes;
- PARITY payloads across multiple rounds (the numpy engine serves them
  from the batched stacked-GF(256) cache; the oracle encodes per block
  per call — same bytes required);
- USR packets and the message signature.

Together with the arraytree, session, and delivery differentials this
file forms the >=200-example hypothesis sweep the fastpath rides behind.
"""

import json

import pytest

hypothesis = pytest.importorskip("hypothesis")
import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.config import GroupConfig
from repro.core.server import GroupKeyServer
from repro.keytree.persistence import tree_to_dict


def canonical(tree):
    return json.dumps(tree_to_dict(tree), sort_keys=True)


def encryptions_digest(packets):
    return [
        (
            p.rekey_message_id,
            p.block_id,
            p.seq_in_block,
            p.frm_id,
            p.to_id,
            p.is_duplicate,
            [(e.encryption_id, e.ciphertext) for e in p.encryptions],
        )
        for p in packets
    ]


def message_digest(message):
    """Every wire-observable byte of one rekey message."""
    if message.is_empty:
        return {"empty": True, "id": message.message_id}
    digest = {
        "id": message.message_id,
        "max_kid": message.max_kid,
        "k": message.k,
        "needs": sorted(
            (u, list(v)) for u, v in message.needs_by_user.items()
        ),
        "enc_wires": [p.encode(message.packet_size)
                      for p in message.enc_packets()],
        "enc": encryptions_digest(message.enc_packets()),
        "signature": message.signature,
    }
    # Parity over several rounds: round 1 asks for 2 rows per block,
    # round 2 for 1 more — exercising the batched cache's uniform-fill
    # growth against the oracle's per-block calls.
    parity = []
    for block_id in range(message.n_blocks):
        for n, first in ((2, 0), (1, 2)):
            for p in message.parity_packets(
                block_id, n, first_parity_index=first
            ):
                parity.append((p.block_id, p.seq_in_block, p.payload))
    digest["parity"] = parity
    digest["usr"] = [
        (
            u,
            [(e.encryption_id, e.ciphertext)
             for e in message.usr_packet(u).encryptions],
        )
        for u in sorted(message.needs_by_user)[:5]
    ]
    return digest


def run_twin_servers(seed, degree, schedule, n_users=24, block_size=4):
    servers = {}
    for engine in ("python", "numpy"):
        servers[engine] = GroupKeyServer(
            ["u%04d" % i for i in range(n_users)],
            config=GroupConfig(
                degree=degree,
                block_size=block_size,
                engine=engine,
                crypto_seed=seed % 100_003,
            ),
        )
    oracle, fast = servers["python"], servers["numpy"]
    assert fast._builder.engine == "numpy"
    rng = np.random.default_rng(seed)
    next_name = n_users
    for n_join, n_leave in schedule:
        members = sorted(oracle.users)
        n_leave = min(n_leave, len(members))
        leaves = [
            str(u) for u in rng.choice(members, size=n_leave, replace=False)
        ]
        joins = ["u%04d" % (next_name + i) for i in range(n_join)]
        next_name += n_join
        if not members and not joins:
            continue
        for server in (oracle, fast):
            for name in joins:
                server.request_join(name)
            for name in leaves:
                server.request_leave(name)
        batch_o, message_o = oracle.rekey()
        batch_f, message_f = fast.rekey()
        assert message_f.batch_parity is True or message_f.is_empty
        assert message_o.batch_parity is False
        assert canonical(oracle.tree) == canonical(fast.tree)
        assert batch_o.needs_by_user() == batch_f.needs_by_user()
        assert message_digest(message_o) == message_digest(message_f)


class TestMessageBytesDifferential:
    @settings(max_examples=90, deadline=None)
    @given(
        seed=st.integers(0, 10_000_000),
        degree=st.sampled_from([2, 3, 4]),
        schedule=st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 12)),
            min_size=1,
            max_size=3,
        ),
    )
    def test_churn_batches(self, seed, degree, schedule):
        run_twin_servers(seed, degree, schedule)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000_000))
    def test_heavy_churn(self, seed):
        """Bigger groups, churn heavy enough for splits, prunes, and
        Theorem 4.2 moves in one run."""
        rng = np.random.default_rng(seed)
        schedule = [
            (int(rng.integers(0, 20)), int(rng.integers(0, 20)))
            for _ in range(4)
        ]
        run_twin_servers(seed, 4, schedule, n_users=48, block_size=5)


class TestEdgeCases:
    def test_empty_interval(self):
        run_twin_servers(1, 4, [(0, 0)])

    def test_full_turnover(self):
        servers = [
            GroupKeyServer(
                ["t%02d" % i for i in range(16)],
                config=GroupConfig(block_size=4, engine=engine),
            )
            for engine in ("python", "numpy")
        ]
        for server in servers:
            for name in sorted(server.users):
                server.request_leave(name)
            for i in range(16):
                server.request_join("n%02d" % i)
        digests = []
        for server in servers:
            _, message = server.rekey()
            digests.append((canonical(server.tree), message_digest(message)))
        assert digests[0] == digests[1]

    def test_rejoin_same_interval(self):
        """Leave + re-join of the same member in one interval (the PR 7
        rejoin fix) must agree across engines."""
        servers = [
            GroupKeyServer(
                ["r%02d" % i for i in range(9)],
                config=GroupConfig(degree=3, block_size=4, engine=engine),
            )
            for engine in ("python", "numpy")
        ]
        for server in servers:
            server.request_leave("r04")
            server.request_join("r04")
            server.request_leave("r07")
        digests = []
        for server in servers:
            _, message = server.rekey()
            digests.append((canonical(server.tree), message_digest(message)))
        assert digests[0] == digests[1]
