"""Differential: ArrayRekeySession vs the object-level RekeySession.

Both sessions get identically-seeded topologies and RNGs and the same
wire message; every observable must match exactly — per-round counters,
per-user recovery rounds, unicast totals, and the exact encryptions
each user walks away with.  Trials cover clean delivery, loss heavy
enough to force extra rounds and the unicast cutover, multicast-only
mode, and both parity generation modes (per-block oracle vs the batched
stacked cache).
"""

import numpy as np
import pytest

from repro.core.config import GroupConfig
from repro.core.server import GroupKeyServer
from repro.fastpath.session import ArrayRekeySession
from repro.sim.topology import LossParameters, MulticastTopology
from repro.transport.session import RekeySession, SessionConfig
from repro.util.rng import RandomSource


def make_message(n_users=90, n_leave=18, n_join=6, seed=5, block_size=5):
    server = GroupKeyServer(
        ["s%04d" % i for i in range(n_users)],
        config=GroupConfig(block_size=block_size, crypto_seed=seed),
    )
    rng = np.random.default_rng(seed)
    for name in rng.choice(sorted(server.users), n_leave, replace=False):
        server.request_leave(str(name))
    for i in range(n_join):
        server.request_join("j%04d" % i)
    _, message = server.rekey()
    assert not message.is_empty
    return message


def stats_digest(stats):
    return {
        "rounds": [
            (
                r.round_index,
                r.enc_packets_sent,
                r.parity_packets_sent,
                r.nacks_received,
                r.users_recovered_total,
            )
            for r in stats.rounds
        ],
        "unicast": (
            stats.unicast.users_served,
            stats.unicast.usr_packets_sent,
            stats.unicast.usr_bytes_sent,
            stats.unicast.attempts,
        ),
        "user_rounds": stats.user_rounds.tolist(),
        "n_users": stats.n_users,
        "overhead": round(stats.bandwidth_overhead, 9),
    }


def users_digest(session):
    out = {}
    for user_id, user in session.users.items():
        recovered = user.recovered_encryptions
        out[user_id] = (
            user.done,
            user.recovery_round,
            None
            if recovered is None
            else [(e.encryption_id, e.ciphertext) for e in recovered],
        )
    return out


def run_both(message, loss, config, seed):
    digests = []
    for session_class in (RekeySession, ArrayRekeySession):
        topology = MulticastTopology(
            len(message.needs_by_user),
            params=loss,
            random_source=RandomSource(seed).child(),
        )
        session = session_class(
            message,
            topology,
            config,
            rng=RandomSource(seed + 1).generator(),
        )
        stats = session.run()
        digests.append((stats_digest(stats), users_digest(session)))
    return digests


LOSS_LEVELS = {
    "paper-default": LossParameters(),
    "high": LossParameters(alpha=0.5, p_high=0.45),
    "lossless": LossParameters(p_high=0.0, p_low=0.0, p_source=0.0),
}


@pytest.mark.parametrize("loss_name", sorted(LOSS_LEVELS))
@pytest.mark.parametrize("multicast_only", [False, True])
@pytest.mark.parametrize("seed", [3, 17])
def test_session_equivalence(loss_name, multicast_only, seed):
    message = make_message(seed=seed)
    config = SessionConfig(
        rho=1.0,
        max_multicast_rounds=12 if multicast_only else 2,
        multicast_only=multicast_only,
    )
    oracle, fast = run_both(
        message, LOSS_LEVELS[loss_name], config, seed=seed * 7 + 1
    )
    assert oracle == fast


@pytest.mark.parametrize("batch_parity", [False, True])
def test_parity_mode_does_not_change_bytes(batch_parity):
    """The same session over a message in either parity mode must be
    indistinguishable — the batched cache is a pure implementation
    swap."""
    results = []
    for mode in (False, batch_parity):
        message = make_message(seed=29)
        message.batch_parity = mode
        oracle, fast = run_both(
            message,
            LOSS_LEVELS["high"],
            SessionConfig(rho=1.0, max_multicast_rounds=4),
            seed=41,
        )
        assert oracle == fast
        results.append(oracle)
    assert results[0] == results[1]


def test_adaptive_rho_trajectory_matches():
    """Chained sessions feeding an AdjustRho controller: the rho the
    *next* interval uses depends on the NACK counts the engines report,
    so trajectory equality catches any feedback drift."""
    from repro.transport.adaptive import ProactivityController

    trajectories = []
    for session_class in (RekeySession, ArrayRekeySession):
        controller = ProactivityController(
            k=5, rho=1.0, num_nack=20,
            rng=RandomSource(77).generator(),
        )
        trajectory = []
        for seed in (3, 5, 9, 11):
            message = make_message(seed=seed)
            controller.k = message.k
            topology = MulticastTopology(
                len(message.needs_by_user),
                params=LOSS_LEVELS["high"],
                random_source=RandomSource(seed + 100).child(),
            )
            session = session_class(
                message,
                topology,
                SessionConfig(rho=controller.rho, max_multicast_rounds=2),
                rng=RandomSource(seed + 200).generator(),
            )
            stats = session.run()
            controller.update([1] * stats.first_round_nacks)
            trajectory.append(round(controller.rho, 12))
        trajectories.append(trajectory)
    assert trajectories[0] == trajectories[1]
