"""Property tests: the array tree snapshot round-trips exactly.

``ArrayTree.from_keytree`` → ``to_keytree`` must reproduce the object
tree byte for byte — structure, user placement, key material, *and* the
version counters that key derivation consumes (losing a counter would
silently mint a stale key on the next renewal).  The churn schedules
here force node splits, prunes, and Theorem 4.2 u-node moves, so moved
users and resized levels are covered, not just the balanced seed tree.
"""

import json

import pytest

hypothesis = pytest.importorskip("hypothesis")
import numpy as np
from hypothesis import given, settings, strategies as st

from repro.crypto.keys import KeyFactory
from repro.fastpath.arraytree import ArrayTree
from repro.keytree import KeyTree
from repro.keytree.marking import IncrementalMarkingAlgorithm
from repro.keytree.persistence import tree_to_dict


def canonical(tree):
    return json.dumps(tree_to_dict(tree), sort_keys=True)


def assert_roundtrip(tree):
    snapshot = ArrayTree.from_keytree(tree)
    rebuilt = snapshot.to_keytree(key_factory=tree._factory)
    assert canonical(rebuilt) == canonical(tree)
    assert rebuilt.version_counters == tree.version_counters
    assert ArrayTree.from_keytree(rebuilt) == snapshot


def churn_tree(seed, degree, schedule, n_users=30, keyed=True):
    factory = KeyFactory(seed=seed % 100_003) if keyed else None
    tree = KeyTree.full_balanced(
        ["u%04d" % i for i in range(n_users)], degree, key_factory=factory
    )
    marking = IncrementalMarkingAlgorithm()
    rng = np.random.default_rng(seed)
    next_name = n_users
    assert_roundtrip(tree)
    for n_join, n_leave in schedule:
        members = sorted(tree.users)
        n_leave = min(n_leave, len(members))
        leaves = [
            str(u) for u in rng.choice(members, size=n_leave, replace=False)
        ]
        joins = ["u%04d" % (next_name + i) for i in range(n_join)]
        next_name += n_join
        if not tree.users and not joins:
            continue
        marking.apply(tree, joins=joins, leaves=leaves)
        if tree.users:
            assert_roundtrip(tree)
    return tree


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 10_000_000),
        degree=st.sampled_from([2, 3, 4]),
        schedule=st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)),
            min_size=1,
            max_size=4,
        ),
    )
    def test_keyed_roundtrip_under_churn(self, seed, degree, schedule):
        churn_tree(seed, degree, schedule, keyed=True)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000_000),
        schedule=st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 12)),
            min_size=1,
            max_size=3,
        ),
    )
    def test_keyless_roundtrip_under_churn(self, seed, schedule):
        """Plan-mode trees (no key material) must round-trip too — the
        HA replica path rebuilds from records without a factory."""
        churn_tree(seed, 4, schedule, keyed=False)

    def test_moved_unodes_survive(self):
        """A join-heavy batch splits u-node slots into k-nodes, moving
        the residents deeper; the moved users' IDs and versions must
        survive the array round trip."""
        factory = KeyFactory(seed=11)
        tree = KeyTree.full_balanced(
            ["m%02d" % i for i in range(5)], 4, key_factory=factory
        )
        marking = IncrementalMarkingAlgorithm()
        batch = marking.apply(
            tree,
            joins=["j%02d" % i for i in range(12)],
            leaves=[],
        )
        assert batch.moved  # the point of this case
        assert_roundtrip(tree)

    def test_version_counters_preserved_after_renewals(self):
        factory = KeyFactory(seed=3)
        tree = KeyTree.full_balanced(
            ["v%02d" % i for i in range(16)], 4, key_factory=factory
        )
        marking = IncrementalMarkingAlgorithm()
        for victim in ("v01", "v02", "v03"):
            marking.apply(tree, joins=[], leaves=[victim])
        assert any(v > 1 for v in tree.version_counters.values())
        assert_roundtrip(tree)
