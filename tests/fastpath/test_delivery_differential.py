"""End-to-end differential: twin daemons, python vs numpy engine.

The widest net in the fastpath suite: a full :class:`RekeyDaemon` with
the simulated lossy transport, churn, both deadline policies, and the
observability bus running — per-interval metric records, every member's
final key state, the group key, and the complete obs *event* stream
must be identical across engines.

Spans are excluded from the event comparison by design: the array
session recovers users without running the per-user RSE decoder, so
``fec.decode`` spans (pure timing diagnostics) do not fire on the numpy
path.  The ``phase_profile`` event is the span tap's aggregation — pure
timing plus the engine label — so it is excluded for the same reason.
Events are the semantic surface; they must match exactly.
"""

import pytest

from repro.core.config import GroupConfig
from repro.obs import EventBus, Recorder
from repro.service.churn import PoissonChurn
from repro.service.daemon import DaemonConfig, RekeyDaemon
from repro.service.transports import SessionDelivery
from repro.sim.topology import LossParameters

TIMING_KEYS = ("marking_ms", "duration_ms", "ms")


def scrub(value):
    if isinstance(value, dict):
        return {
            k: scrub(v) for k, v in value.items() if k not in TIMING_KEYS
        }
    if isinstance(value, list):
        return [scrub(v) for v in value]
    return value


def run_daemon(engine, policy, loss=None, n_intervals=8, members=32,
               alpha=0.3, seed=99):
    config = GroupConfig(
        block_size=5,
        seed=seed,
        engine=engine,
        loss=loss if loss is not None else LossParameters(),
    )
    bus = EventBus(path=None)
    daemon = RekeyDaemon.start_new(
        ["m-%03d" % i for i in range(members)],
        config=config,
        backend=SessionDelivery(config, seed=seed + 1),
        churn=PoissonChurn(alpha=alpha),
        service=DaemonConfig(deadline_policy=policy, deadline_rounds=2),
        seed=seed,
        obs=Recorder(bus=bus),
    )
    records = daemon.run(n_intervals)
    state = {
        name: (
            member.user_id,
            sorted(
                (node_id, key.material, key.version)
                for node_id, key in member.path_keys.items()
            ),
        )
        for name, member in daemon.fleet.members.items()
    }
    events = [
        (e["kind"], scrub(e["detail"]))
        for e in bus.events
        if e["kind"] not in ("span", "phase_profile")
    ]
    return {
        "records": [scrub(r.to_dict()) for r in records],
        "members": state,
        "group_key": daemon.server.group_key.fingerprint(),
        "events": events,
        "health": scrub(
            {k: v for k, v in daemon.health().items() if k != "engine"}
        ),
    }


@pytest.mark.parametrize("policy", ["unicast", "carry"])
def test_daemon_differential(policy):
    oracle = run_daemon("python", policy)
    fast = run_daemon("numpy", policy)
    assert oracle["group_key"] == fast["group_key"]
    assert oracle["members"] == fast["members"]
    assert oracle["records"] == fast["records"]
    assert len(oracle["events"]) == len(fast["events"])
    for left, right in zip(oracle["events"], fast["events"]):
        assert left == right
    assert oracle["health"] == fast["health"]


@pytest.mark.parametrize("policy", ["unicast", "carry"])
def test_daemon_differential_high_loss(policy):
    """Loss heavy enough to trigger cutovers, carries, and the circuit
    breaker — the degradation paths must agree byte for byte too."""
    loss = LossParameters(alpha=0.5, p_high=0.45)
    oracle = run_daemon("python", policy, loss=loss, n_intervals=6,
                        members=48, alpha=0.4, seed=13)
    fast = run_daemon("numpy", policy, loss=loss, n_intervals=6,
                      members=48, alpha=0.4, seed=13)
    assert oracle == fast
    decisions = {r["decision"] for r in oracle["records"]}
    assert decisions & {"unicast-cutover", "carry-over"}  # loss did bite


def test_health_reports_engine():
    config = GroupConfig(block_size=5, engine="numpy")
    daemon = RekeyDaemon.start_new(
        ["h-%02d" % i for i in range(8)],
        config=config,
        backend=SessionDelivery(config),
    )
    daemon.run(1)
    assert daemon.health()["engine"] == "numpy"
