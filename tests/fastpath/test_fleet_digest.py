"""Pinned fleet-simulator digest, fed by both marking engines.

The vectorised :class:`FleetSimulator` consumes plan-mode workloads
built from marking output.  Here twin keyless trees — one marked by the
python incremental algorithm, one by the array engine — feed identical
churn into :meth:`FleetWorkload.from_batch`, and identically-seeded
simulators run the resulting message sequence.  The
:meth:`SequenceStats.digest` (SHA-256 over every per-round counter,
per-user recovery round, and adaptive-control step) must be equal
across engines *and* match the pinned constant, anchoring the whole
plan-mode pipeline against silent drift from either engine.

Churn keeps joins == leaves so the active-user population stays
constant (one topology serves every message, as ``run_sequence``
requires).
"""

import numpy as np

from repro.keytree import KeyTree
from repro.keytree.marking import make_marking
from repro.sim import build_paper_topology
from repro.transport import FleetConfig, FleetSimulator
from repro.transport.fleet import FleetWorkload

N_USERS = 81
N_MESSAGES = 6
CHURN = 6  # joins == leaves per interval: membership stays N_USERS

PINNED_DIGEST = (
    "c13ca806540a5efb7ca55b729c1a1f45ad8709b741600ac3f742b597f4e59179"
)


def build_workloads(engine, seed=23):
    tree = KeyTree.full_balanced(
        ["f%04d" % i for i in range(N_USERS)], degree=3
    )
    marking = make_marking(True, engine=engine)
    rng = np.random.default_rng(seed)
    next_name = N_USERS
    workloads = []
    for _ in range(N_MESSAGES):
        members = sorted(tree.users)
        leaves = [
            str(u) for u in rng.choice(members, size=CHURN, replace=False)
        ]
        joins = ["f%04d" % (next_name + i) for i in range(CHURN)]
        next_name += CHURN
        batch = marking.apply(tree, joins=joins, leaves=leaves)
        workloads.append(FleetWorkload.from_batch(batch, k=5))
        assert workloads[-1].n_users == N_USERS
    return workloads


def run_sequence(engine):
    workloads = build_workloads(engine)
    topology = build_paper_topology(n_users=N_USERS, alpha=0.25, seed=31)
    simulator = FleetSimulator(
        topology,
        FleetConfig(rho=1.0, num_nack=20, adapt_rho=True,
                    multicast_only=True),
        seed=37,
    )
    return simulator.run_sequence(
        lambda index: workloads[index], N_MESSAGES
    )


def test_fleet_digest_equal_across_engines_and_pinned():
    oracle = run_sequence("python")
    fast = run_sequence("numpy")
    assert oracle.digest() == fast.digest()
    assert oracle.digest() == PINNED_DIGEST
