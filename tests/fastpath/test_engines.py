"""The engine knob itself: names, degradation, and the numba tier.

The contract: ``engine`` selects an implementation, never behaviour.
``resolve_engine`` validates the name and degrades ``"numba"`` to
``"numpy"`` when the JIT tier is not installed — so a config written on
a numba-equipped host still runs (vectorised) on a bare one.  The numba
differential below is **skipped, not failed**, on hosts without numba;
the CI minimal-deps leg relies on exactly that.
"""

import pytest

from repro.errors import ConfigurationError
from repro.fastpath import ENGINE_KINDS, HAS_NUMBA, resolve_engine


class TestResolveEngine:
    def test_known_engines(self):
        assert resolve_engine("python") == "python"
        assert resolve_engine("numpy") == "numpy"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_engine("cython")

    def test_numba_degrades_when_absent(self):
        expected = "numba" if HAS_NUMBA else "numpy"
        assert resolve_engine("numba") == expected

    def test_strict_numba_requires_numba(self):
        if HAS_NUMBA:
            assert resolve_engine("numba", strict=True) == "numba"
        else:
            with pytest.raises(ConfigurationError):
                resolve_engine("numba", strict=True)

    def test_engine_kinds_is_the_full_menu(self):
        assert ENGINE_KINDS == ("python", "numpy", "numba")


class TestConfigIntegration:
    def test_config_validates_engine(self):
        from repro.core.config import GroupConfig

        with pytest.raises(ConfigurationError):
            GroupConfig(engine="fortran")

    def test_config_degrades_numba(self):
        from repro.core.config import GroupConfig

        expected = "numba" if HAS_NUMBA else "numpy"
        assert GroupConfig(engine="numba").engine == expected

    def test_make_marking_dispatch(self):
        from repro.fastpath.marking import ArrayMarkingAlgorithm
        from repro.keytree.marking import (
            IncrementalMarkingAlgorithm,
            make_marking,
        )

        assert not isinstance(
            make_marking(True, engine="python"), ArrayMarkingAlgorithm
        )
        fast = make_marking(True, engine="numpy")
        assert isinstance(fast, ArrayMarkingAlgorithm)
        assert isinstance(fast, IncrementalMarkingAlgorithm)


@pytest.mark.skipif(not HAS_NUMBA, reason="numba is not installed")
class TestNumbaTier:
    """Runs only where numba exists; elsewhere it must *skip*."""

    def test_numba_engine_matches_python(self):
        from repro.core.config import GroupConfig
        from repro.core.server import GroupKeyServer
        from repro.keytree.persistence import tree_to_dict

        trees = []
        for engine in ("python", "numba"):
            server = GroupKeyServer(
                ["u%02d" % i for i in range(16)],
                config=GroupConfig(block_size=4, engine=engine),
            )
            server.request_leave("u03")
            server.request_join("fresh")
            server.rekey()
            trees.append(tree_to_dict(server.tree))
        assert trees[0] == trees[1]
