"""Unit tests for the perf library and the regression gate.

These never run the timed suite at measurement fidelity — they verify
the *machinery*: summary statistics, the pairwise-ratio speedup, the
document schema, and the compare_bench gate logic (loaded straight from
``benchmarks/perf/compare_bench.py``, which is deliberately
stdlib-only).
"""

import importlib.util
import json
import os
import subprocess
import sys

import pytest

from repro.perf import SCALE_PARAMS, SCALES, format_table, run_suite
from repro.perf.bench import _interleaved, _paired, _summary

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
COMPARE_PATH = os.path.abspath(
    os.path.join(REPO_ROOT, "benchmarks", "perf", "compare_bench.py")
)
PERF_DIR = os.path.dirname(COMPARE_PATH)


def load_compare_bench():
    spec = importlib.util.spec_from_file_location(
        "compare_bench", COMPARE_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestSummaryStatistics:
    def test_summary_fields(self):
        summary = _summary([0.2, 0.1, 0.4, 0.3, 0.5])
        assert summary["reps"] == 5
        assert summary["median_s"] == 0.3
        assert summary["p90_s"] == 0.5
        assert summary["ops_per_s"] == pytest.approx(1 / 0.3)

    def test_paired_uses_pairwise_ratios(self):
        # One corrupted pair (load spike hit the fast side): the median
        # pairwise ratio shrugs it off where a ratio of medians drifts.
        fast = [1.0, 1.0, 9.0, 1.0, 1.0]
        slow = [5.0, 5.0, 9.0, 5.0, 5.0]
        entry = _paired(fast, slow, params={})
        assert entry["speedup"] == 5.0

    def test_paired_falls_back_to_median_ratio(self):
        entry = _paired([1.0, 1.0, 1.0], [4.0, 4.0], params={})
        assert entry["speedup"] == pytest.approx(4.0)

    def test_interleaved_alternates_and_divides_inner(self):
        calls = []
        fast, slow = _interleaved(
            lambda: calls.append("f"),
            lambda: calls.append("s"),
            pairs=2,
            warmup=1,
            inner=3,
        )
        # warmup: f s; pair 0: fff sss; pair 1 (swapped): sss fff
        assert "".join(calls) == "fs" + "fffsss" + "sssfff"
        assert len(fast) == len(slow) == 2


class TestSuiteDocument:
    def test_scales_are_declared(self):
        assert set(SCALES) == set(SCALE_PARAMS)
        for params in SCALE_PARAMS.values():
            assert params["n_users"] > 0

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            run_suite("enormous")

    def test_format_table_handles_both_entry_kinds(self):
        document = {
            "benchmarks": {
                "paired": {
                    "fast": {"median_s": 0.001, "p90_s": 0.002},
                    "speedup": 5.0,
                },
                "single": {
                    "fast": {"median_s": 0.003, "p90_s": 0.004},
                },
            }
        }
        lines = format_table(document)
        assert len(lines) == 3
        assert "5.00x" in lines[1]
        assert lines[2].rstrip().endswith("-")


def make_document(**speedups):
    return {
        "schema": 1,
        "meta": {"scale": "quick"},
        "benchmarks": {
            name: {
                "params": {},
                "fast": {"median_s": 0.001, "p90_s": 0.001},
                "reference": {"median_s": 0.001 * s, "p90_s": 0.001 * s},
                "speedup": s,
            }
            for name, s in speedups.items()
        },
    }


class TestCompareGate:
    def test_no_regression(self):
        compare_bench = load_compare_bench()
        results = list(
            compare_bench.compare(
                make_document(rse=5.0),
                make_document(rse=5.0),
                tolerance=0.20,
                absolute=False,
            )
        )
        assert all(ok for _, ok, _ in results)

    def test_regression_beyond_tolerance_fails(self):
        compare_bench = load_compare_bench()
        results = dict(
            (name, ok)
            for name, ok, _ in compare_bench.compare(
                make_document(rse=3.9, marking=4.5),
                make_document(rse=5.0, marking=4.5),
                tolerance=0.20,
                absolute=False,
            )
        )
        assert results["rse"] is False  # 3.9 < 5.0 * 0.8
        assert results["marking"] is True

    def test_regression_within_tolerance_passes(self):
        compare_bench = load_compare_bench()
        results = list(
            compare_bench.compare(
                make_document(rse=4.1),
                make_document(rse=5.0),
                tolerance=0.20,
                absolute=False,
            )
        )
        assert all(ok for _, ok, _ in results)

    def test_new_and_removed_benchmarks_never_fail(self):
        compare_bench = load_compare_bench()
        results = list(
            compare_bench.compare(
                make_document(added=1.0),
                make_document(removed=9.0),
                tolerance=0.20,
                absolute=False,
            )
        )
        assert all(ok for _, ok, _ in results)

    def test_absolute_gate_catches_walltime_regression(self):
        compare_bench = load_compare_bench()
        current = make_document(rse=5.0)
        current["benchmarks"]["rse"]["fast"]["median_s"] = 0.005
        results = [
            ok
            for _, ok, _ in compare_bench.compare(
                current,
                make_document(rse=5.0),
                tolerance=0.20,
                absolute=True,
            )
        ]
        assert False in results  # 5ms vs 1ms baseline

    def test_overhead_gate_passes_near_unity(self):
        compare_bench = load_compare_bench()
        results = dict(
            (name, ok)
            for name, ok, _ in compare_bench.compare(
                make_document(daemon_obs=1.1),
                make_document(),  # overhead gates need no baseline entry
                tolerance=0.25,
                absolute=False,
                overhead=["daemon_obs"],
            )
        )
        assert results["daemon_obs"] is True

    def test_overhead_gate_fails_above_ceiling(self):
        compare_bench = load_compare_bench()
        results = dict(
            (name, ok)
            for name, ok, _ in compare_bench.compare(
                make_document(daemon_obs=1.6),
                make_document(),
                tolerance=0.25,
                absolute=False,
                overhead=["daemon_obs"],
            )
        )
        assert results["daemon_obs"] is False

    def test_overhead_gate_is_a_ceiling_not_a_floor(self):
        # A high baseline ratio must not raise the ceiling: the gate is
        # absolute (1 + tolerance), independent of the baseline entry.
        compare_bench = load_compare_bench()
        results = dict(
            (name, ok)
            for name, ok, _ in compare_bench.compare(
                make_document(daemon_obs=1.4),
                make_document(daemon_obs=2.0),
                tolerance=0.25,
                absolute=False,
                overhead=["daemon_obs"],
            )
        )
        assert results["daemon_obs"] is False

    def test_overhead_gate_requires_paired_benchmark(self):
        compare_bench = load_compare_bench()
        document = make_document(daemon_obs=1.0)
        del document["benchmarks"]["daemon_obs"]["speedup"]
        results = dict(
            (name, ok)
            for name, ok, _ in compare_bench.compare(
                document,
                make_document(),
                tolerance=0.25,
                absolute=False,
                overhead=["daemon_obs"],
            )
        )
        assert results["daemon_obs"] is False

    def test_cli_overhead_flag(self, tmp_path):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(make_document()))
        for ratio, expected in ((1.05, 0), (1.9, 1)):
            current.write_text(json.dumps(make_document(daemon_obs=ratio)))
            proc = subprocess.run(
                [
                    sys.executable, COMPARE_PATH, str(current),
                    str(baseline), "--overhead", "daemon_obs",
                ],
                capture_output=True,
                text=True,
            )
            assert proc.returncode == expected, proc.stdout

    def test_cli_exit_codes(self, tmp_path):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(make_document(rse=5.0)))
        for speedup, expected in ((5.0, 0), (1.0, 1)):
            current.write_text(json.dumps(make_document(rse=speedup)))
            proc = subprocess.run(
                [sys.executable, COMPARE_PATH, str(current), str(baseline)],
                capture_output=True,
                text=True,
            )
            assert proc.returncode == expected, proc.stdout


class TestCommittedArtifacts:
    """The repo ships measured documents; keep them loadable and sane."""

    @pytest.mark.parametrize(
        "filename,scale",
        [
            ("BENCH_perf.json", "full"),
            ("baseline.json", "full"),
            ("baseline_quick.json", "quick"),
        ],
    )
    def test_committed_documents(self, filename, scale):
        with open(os.path.join(PERF_DIR, filename)) as handle:
            document = json.load(handle)
        assert document["schema"] == 1
        assert document["meta"]["scale"] == scale
        for name in (
            "rse_encode",
            "rse_decode",
            "marking",
            "assignment",
            "fleet_interval",
            "daemon_interval",
            "interval_fastpath",
        ):
            assert name in document["benchmarks"]

    def test_committed_full_run_meets_acceptance(self):
        """The acceptance numbers, pinned to the committed full-scale
        run: matrix encode at least 5x the scalar reference at k=10,
        h=10, 1 KB; the end-to-end daemon interval at N=4096 (numpy
        engine, incremental marking, matrix coder) at least 5x the
        pre-optimization pipeline; and the engine-only differential
        (interval_fastpath: numpy vs python with marking/coder held
        fixed) a clear win in its own right."""
        with open(os.path.join(PERF_DIR, "BENCH_perf.json")) as handle:
            document = json.load(handle)
        benchmarks = document["benchmarks"]
        assert benchmarks["rse_encode"]["params"] == {
            "k": 10,
            "h": 10,
            "packet_bytes": 1024,
        }
        assert benchmarks["rse_encode"]["speedup"] >= 5.0
        assert benchmarks["daemon_interval"]["params"]["n_users"] == 4096
        assert benchmarks["daemon_interval"]["speedup"] >= 5.0
        assert benchmarks["interval_fastpath"]["params"]["n_users"] == 4096
        assert benchmarks["interval_fastpath"]["speedup"] >= 2.0
