"""Crash-recovery property tests (the ISSUE's durability acceptance).

The daemon is killed by an injected :class:`DaemonCrash` (the SIGKILL
stand-in — no cleanup runs; only fsynced state survives) at a random
interval and a random :data:`CRASH_POINTS` site, then restarted from
the WAL + snapshot in the same ``state_dir``.  The *member fleet
survives the crash* — members live on remote hosts and do not die with
the key server — so recovery must bring the restored server back into
agreement with their key state:

- every current member ends the next interval holding the server's
  group key (agreement / backward secrecy for joiners);
- every evicted member does not (lockout / forward secrecy), whether
  its eviction was consumed by a snapshot or replayed from the WAL.
"""

import shutil
import tempfile

from hypothesis import given, settings, strategies as st

from repro.core import GroupConfig
from repro.service import (
    CRASH_POINTS,
    CrashPlan,
    DaemonConfig,
    DaemonCrash,
    DirectDelivery,
    PoissonChurn,
    RekeyDaemon,
)


def run_crash_cycle(crash_interval, crash_point, seed, resync):
    """Soak → injected crash → recover (same fleet) → soak on.

    Returns the recovered daemon (caller asserts on it).  Uses its own
    temp dir per example: hypothesis reuses ``tmp_path`` across examples.
    """
    state_dir = tempfile.mkdtemp(prefix="rekeyd-")
    config = GroupConfig(
        degree=3, block_size=5, crypto_seed=seed, seed=seed
    )
    churn = PoissonChurn(alpha=0.25, min_members=4)
    daemon = RekeyDaemon.start_new(
        ["m%02d" % i for i in range(12)],
        config=config,
        backend=DirectDelivery(),
        churn=churn,
        service=DaemonConfig(
            state_dir=state_dir,
            crash_plan=CrashPlan(crash_interval, crash_point),
        ),
        seed=seed,
    )
    try:
        daemon.run(crash_interval + 3)
    except DaemonCrash:
        pass
    else:  # pragma: no cover - the plan must fire
        raise AssertionError("crash plan did not fire")

    # The fleet survives (members are remote); the server state is
    # whatever was fsynced.  Note: no daemon.close() — a SIGKILL
    # flushes nothing beyond what each append already fsynced.
    recovered = RekeyDaemon.recover(
        state_dir,
        config=config,
        backend=DirectDelivery(),
        fleet=daemon.fleet,
        churn=churn,
        service=DaemonConfig(state_dir=state_dir),
        seed=seed + 1,
        resync_members=resync,
    )
    return recovered, state_dir


@given(
    crash_interval=st.integers(min_value=0, max_value=4),
    crash_point=st.sampled_from(CRASH_POINTS),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25, deadline=None)
def test_recovery_restores_agreement_and_lockout(
    crash_interval, crash_point, seed
):
    recovered, state_dir = run_crash_cycle(
        crash_interval, crash_point, seed, resync=False
    )
    try:
        # Two more intervals: the first flushes any replayed requests
        # (its rekey regenerates the crashed interval's keys
        # deterministically, so redelivery is idempotent for members
        # that had already absorbed part of the lost interval).
        recovered.run(2)
        recovered.fleet.check_agreement(recovered.server)
        assert recovered.fleet.n_members == recovered.server.n_users
        assert set(recovered.fleet.members) == set(recovered.server.users)
    finally:
        recovered.close()
        shutil.rmtree(state_dir, ignore_errors=True)


@given(
    crash_point=st.sampled_from(CRASH_POINTS),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=10, deadline=None)
def test_recovery_with_member_resync(crash_point, seed):
    """The CLI path: re-register out-of-sync members at recovery time
    (the paper's SSL re-registration story) — agreement holds right
    away, before any post-recovery interval runs."""
    recovered, state_dir = run_crash_cycle(
        2, crash_point, seed, resync=True
    )
    try:
        recovered.fleet.check_agreement(recovered.server)
        recovered.run(1)
        recovered.fleet.check_agreement(recovered.server)
    finally:
        recovered.close()
        shutil.rmtree(state_dir, ignore_errors=True)


def test_recover_without_snapshot_raises(tmp_path):
    import pytest

    from repro.errors import ServiceError

    with pytest.raises(ServiceError):
        RekeyDaemon.recover(tmp_path / "nothing-here")
