"""Tests for repro.service.health — IntervalMetrics assembly and export.

The aggregate-only (UDP) percentile semantics matter: a backend that
cannot observe per-user recovery rounds must NOT fabricate a one-sample
latency distribution — the percentiles are NaN in memory and ``null`` in
JSON, and the table prints a dash.
"""

import json
import math

from repro.service.health import IntervalMetrics, ServiceMetrics
from repro.service.transports import DeliveryReport


def make_record(report, **overrides):
    kwargs = dict(
        interval=0,
        n_members=16,
        n_joins=1,
        n_leaves=2,
        rejected_requests=0,
        message=None,
        batch=None,
        marking_ms=1.5,
        duration_ms=10.0,
        report=report,
        carry_served=0,
        group_key_fp="abcd1234",
        wal_seq=-1,
    )
    kwargs.update(overrides)
    return IntervalMetrics.from_parts(**kwargs)


def session_report(recovery_rounds=(1, 1, 2, 0), rounds=2):
    return DeliveryReport(
        mode="session",
        rho=1.0,
        multicast_rounds=rounds,
        recovery_rounds=list(recovery_rounds),
    )


def udp_report(rounds=3):
    return DeliveryReport(
        mode="udp", rho=1.0, multicast_rounds=rounds, recovery_rounds=None
    )


class TestRecoveryLatencies:
    def test_per_user_rounds_observed(self):
        latencies = IntervalMetrics.recovery_latencies(session_report())
        # round-0 (never recovered by multicast) counts as rounds + 1
        assert latencies == [1, 1, 2, 3]

    def test_none_for_empty_interval(self):
        assert IntervalMetrics.recovery_latencies(None) is None

    def test_none_for_aggregate_only_backend(self):
        assert IntervalMetrics.recovery_latencies(udp_report()) is None


class TestPercentileSemantics:
    def test_observed_distribution_has_real_percentiles(self):
        record = make_record(session_report())
        assert record.recovery_p50 == 1.5
        assert record.recovery_p99 > record.recovery_p50

    def test_aggregate_only_is_nan_not_fake_sample(self):
        record = make_record(udp_report(rounds=3))
        # the old behaviour synthesized latencies=[3] and reported
        # p50 = p99 = 3.0 — a fabricated distribution
        assert math.isnan(record.recovery_p50)
        assert math.isnan(record.recovery_p90)
        assert math.isnan(record.recovery_p99)

    def test_empty_interval_stays_zero(self):
        record = make_record(None)
        assert record.recovery_p50 == 0.0
        assert record.recovery_p99 == 0.0


class TestExport:
    def test_to_dict_maps_nan_to_none(self):
        data = make_record(udp_report()).to_dict()
        assert data["recovery_p50"] is None
        assert data["recovery_p99"] is None
        json.dumps(data)  # the record must stay JSON-clean

    def test_to_dict_keeps_observed_values(self):
        data = make_record(session_report()).to_dict()
        assert data["recovery_p50"] == 1.5

    def test_ledger_json_round_trips_with_udp_intervals(self):
        metrics = ServiceMetrics()
        metrics.record(make_record(udp_report()))
        metrics.record(make_record(session_report(), interval=1))
        parsed = json.loads(metrics.to_json())
        assert parsed["intervals"][0]["recovery_p99"] is None
        assert parsed["intervals"][1]["recovery_p99"] is not None

    def test_format_row_prints_dash_for_nan(self):
        row = ServiceMetrics.format_row(make_record(udp_report()))
        assert "-" in row.split("|")[8]
        assert "nan" not in row.lower()

    def test_format_row_prints_value_when_observed(self):
        row = ServiceMetrics.format_row(make_record(session_report()))
        assert "nan" not in row.lower()

    def test_health_tolerates_nan_last_interval(self):
        metrics = ServiceMetrics()
        metrics.record(make_record(udp_report()))
        health = metrics.health()
        assert health["status"] == "ok"
        json.dumps(health)
