"""Tests for repro.service.churn — the workload drivers."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.service.churn import (
    ChurnEvents,
    FlashCrowdChurn,
    NoChurn,
    PoissonChurn,
    TraceChurn,
    make_driver,
    save_trace,
)


MEMBERS = {"m%d" % i for i in range(100)}


class TestPoisson:
    def test_rates_match_alpha(self):
        rng = np.random.default_rng(3)
        driver = PoissonChurn(alpha=0.20)
        joins = leaves = 0
        n_intervals = 300
        for interval in range(n_intervals):
            events = driver.events(interval, MEMBERS, rng)
            joins += len(events.joins)
            leaves += len(events.leaves)
        expected = 0.20 * len(MEMBERS) * n_intervals
        assert 0.85 * expected < joins < 1.15 * expected
        assert 0.85 * expected < leaves < 1.15 * expected

    def test_leavers_are_current_members_no_repeats(self):
        rng = np.random.default_rng(4)
        events = PoissonChurn(alpha=0.5).events(0, MEMBERS, rng)
        assert set(events.leaves) <= MEMBERS
        assert len(set(events.leaves)) == len(events.leaves)

    def test_min_members_floor(self):
        rng = np.random.default_rng(5)
        driver = PoissonChurn(alpha=10.0, min_members=2)
        events = driver.events(0, {"a", "b", "c"}, rng)
        assert len(events.leaves) <= 1

    def test_join_names_unique_across_intervals(self):
        rng = np.random.default_rng(6)
        driver = PoissonChurn(alpha=0.3)
        seen = set()
        for interval in range(20):
            for name in driver.events(interval, MEMBERS, rng).joins:
                assert name not in seen
                seen.add(name)


class TestFlashCrowd:
    def test_burst_fires_on_schedule(self):
        rng = np.random.default_rng(7)
        driver = FlashCrowdChurn(
            alpha=0.0, burst_every=3, burst_size=10
        )
        sizes = [
            len(driver.events(i, MEMBERS, rng).joins) for i in range(6)
        ]
        assert sizes == [0, 0, 10, 0, 0, 10]

    def test_cohort_departs_later(self):
        rng = np.random.default_rng(8)
        driver = FlashCrowdChurn(
            alpha=0.0, burst_every=2, burst_size=4, depart_after=2
        )
        members = set(MEMBERS)
        crowd = driver.events(1, members, rng).joins
        assert len(crowd) == 4
        members |= set(crowd)
        assert driver.events(2, members, rng).leaves == []
        leaves = driver.events(3, members, rng).leaves
        assert sorted(leaves) == sorted(crowd)


class TestTrace:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace(
            path,
            {
                0: ChurnEvents(joins=["x"], leaves=["m1"]),
                2: ChurnEvents(joins=[], leaves=["m2", "m3"]),
            },
        )
        driver = TraceChurn(path)
        assert driver.n_intervals == 3
        rng = np.random.default_rng(0)
        assert driver.events(0, MEMBERS, rng).joins == ["x"]
        assert driver.events(1, MEMBERS, rng).n_events == 0
        assert driver.events(2, MEMBERS, rng).leaves == ["m2", "m3"]
        assert driver.events(99, MEMBERS, rng).n_events == 0

    def test_returned_lists_are_copies(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace(path, {0: ChurnEvents(joins=["x"])})
        driver = TraceChurn(path)
        rng = np.random.default_rng(0)
        driver.events(0, MEMBERS, rng).joins.append("mutated")
        assert driver.events(0, MEMBERS, rng).joins == ["x"]

    def test_bad_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 evict m1\n")
        with pytest.raises(ServiceError):
            TraceChurn(path)


class TestFactory:
    def test_kinds(self, tmp_path):
        trace = tmp_path / "t.txt"
        save_trace(trace, {})
        assert isinstance(make_driver("poisson"), PoissonChurn)
        assert isinstance(make_driver("flash"), FlashCrowdChurn)
        assert isinstance(make_driver("none"), NoChurn)
        assert isinstance(
            make_driver("trace", trace_path=trace), TraceChurn
        )
        with pytest.raises(ServiceError):
            make_driver("trace")
        with pytest.raises(ServiceError):
            make_driver("bursty")
