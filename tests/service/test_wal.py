"""Tests for repro.service.wal — the daemon's write-ahead log."""

import json

import pytest

from repro.errors import WalError
from repro.service.wal import WriteAheadLog, read_records


def make_log(tmp_path, records=()):
    wal = WriteAheadLog(tmp_path / "wal.jsonl")
    for op, user, interval in records:
        if op == "commit":
            wal.append_commit(interval)
        else:
            wal.append_request(op, user, interval)
    return wal


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        wal = make_log(
            tmp_path,
            [("join", "a", 0), ("leave", "b", 0), ("commit", None, 0)],
        )
        records = wal.records()
        assert [r["op"] for r in records] == ["join", "leave", "commit"]
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert records[0]["user"] == "a"

    def test_reopen_continues_sequence(self, tmp_path):
        wal = make_log(tmp_path, [("join", "a", 0)])
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal.jsonl")
        assert reopened.next_seq == 1
        reopened.append_request("leave", "a", 1)
        assert [r["seq"] for r in reopened.records()] == [0, 1]

    def test_bytes_on_disk_after_append(self, tmp_path):
        """The append is durable before it returns (no close needed)."""
        wal = make_log(tmp_path, [("join", "a", 0)])
        on_disk = read_records(tmp_path / "wal.jsonl")
        assert len(on_disk) == 1 and on_disk[0]["user"] == "a"
        wal.close()

    def test_rejects_unknown_op(self, tmp_path):
        wal = make_log(tmp_path)
        with pytest.raises(WalError):
            wal.append("evict", 0, user="x")
        with pytest.raises(WalError):
            wal.append_request("commit", "x", 0)


class TestTornTail:
    def test_torn_last_line_dropped(self, tmp_path):
        wal = make_log(tmp_path, [("join", "a", 0), ("join", "b", 0)])
        wal.close()
        path = tmp_path / "wal.jsonl"
        with open(path, "a") as handle:
            handle.write('{"seq": 2, "op": "leave", "user": "a"')  # torn
        records = read_records(path)
        assert [r["seq"] for r in records] == [0, 1]

    def test_torn_mid_file_is_fatal(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with open(path, "w") as handle:
            handle.write('{"seq": 0, "op": "join", "user":\n')  # corrupt
            handle.write(
                '{"seq": 1, "op": "leave", "user": "a", "interval": 0}\n'
            )
        with pytest.raises(WalError):
            read_records(path)

    def test_sequence_gap_is_fatal(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with open(path, "w") as handle:
            for seq in (0, 2):
                handle.write(
                    json.dumps(
                        {"seq": seq, "op": "join", "user": "u",
                         "interval": 0}
                    )
                    + "\n"
                )
            handle.write("x\n")  # ensure the gap is not the tail
        with pytest.raises(WalError):
            read_records(path)

    def test_missing_file_is_empty(self, tmp_path):
        assert read_records(tmp_path / "absent.jsonl") == []


class TestPendingAndCompaction:
    def test_pending_filters_consumed_intervals(self, tmp_path):
        wal = make_log(
            tmp_path,
            [
                ("join", "a", 0),
                ("commit", None, 0),
                ("join", "b", 1),
                ("leave", "a", 1),
            ],
        )
        pending = wal.pending_requests(since_interval=1)
        assert [(r["op"], r["user"]) for r in pending] == [
            ("join", "b"),
            ("leave", "a"),
        ]
        assert wal.pending_requests(since_interval=2) == []

    def test_compact_preserves_replay_set(self, tmp_path):
        wal = make_log(
            tmp_path,
            [
                ("join", "a", 0),
                ("commit", None, 0),
                ("join", "b", 1),
            ],
        )
        before = wal.pending_requests(since_interval=1)
        dropped = wal.compact(before_interval=1)
        assert dropped == 2
        assert wal.pending_requests(since_interval=1) == before
        # appends still work after compaction, sequence unbroken
        wal.append_request("leave", "b", 1)
        seqs = [r["seq"] for r in wal.records()]
        assert seqs == sorted(seqs)
