"""End-to-end tests of ``python -m repro serve``."""

import io
import json

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestSoakCommand:
    def test_poisson_soak(self):
        code, output = run_cli(
            "serve", "--members", "24", "--intervals", "5",
            "--churn", "poisson", "--transport", "direct",
        )
        assert code == 0
        assert "serving a 24-member group" in output
        assert "decision" in output  # table header
        assert output.count("\n") >= 7  # banner + header + 5 rows + health
        assert "health: ok" in output

    def test_sim_transport_reports_rho(self):
        code, output = run_cli(
            "serve", "--members", "16", "--intervals", "3",
            "--transport", "sim",
        )
        assert code == 0
        assert "rho" in output

    def test_json_ledger(self):
        code, output = run_cli(
            "serve", "--members", "16", "--intervals", "2",
            "--transport", "direct", "--json",
        )
        assert code == 0
        payload = json.loads(output[output.index("{"):])
        assert payload["schema"] == 1
        assert len(payload["intervals"]) == 2

    def test_flash_churn(self):
        code, output = run_cli(
            "serve", "--members", "16", "--intervals", "4",
            "--churn", "flash", "--transport", "direct",
        )
        assert code == 0


class TestCrashResumeCycle:
    def test_crash_then_resume(self, tmp_path):
        state_dir = str(tmp_path / "state")
        code, output = run_cli(
            "serve", "--members", "24", "--intervals", "8",
            "--transport", "direct", "--state-dir", state_dir,
            "--crash-at", "3", "--crash-point", "post-rekey",
        )
        assert code == 0  # an *injected* crash is the expected outcome
        assert "daemon crashed" in output
        assert "--resume" in output

        code, output = run_cli(
            "serve", "--intervals", "4", "--transport", "direct",
            "--state-dir", state_dir, "--resume",
        )
        assert code == 0
        assert "recovered:" in output
        assert "request(s) replayed" in output
        assert "health: ok" in output

    def test_resume_requires_state_dir(self):
        code, output = run_cli("serve", "--resume")
        assert code == 2
        assert "--resume needs --state-dir" in output

    def test_uninjected_crash_would_fail(self, tmp_path):
        """A clean run with a state dir exits 0 and leaves a snapshot."""
        state_dir = tmp_path / "state"
        code, _ = run_cli(
            "serve", "--members", "8", "--intervals", "2",
            "--transport", "direct", "--state-dir", str(state_dir),
        )
        assert code == 0
        assert (state_dir / "server.json").exists()
        assert (state_dir / "wal.jsonl").exists()


class TestMultiTenantServe:
    def test_tenant_fleet_ticks_and_health(self):
        code, output = run_cli(
            "serve", "--tenants", "6", "--intervals", "4",
            "--churn", "poisson", "--transport", "direct",
        )
        assert code == 0, output
        assert output.count("tick ") == 4
        assert "health: ok (6 tenants" in output

    def test_tenant_fleet_resume(self, tmp_path):
        state_dir = str(tmp_path / "fleet")
        code, output = run_cli(
            "serve", "--tenants", "4", "--intervals", "3",
            "--transport", "direct", "--state-dir", state_dir,
        )
        assert code == 0, output
        code, output = run_cli(
            "serve", "--tenants", "4", "--intervals", "2",
            "--transport", "direct", "--state-dir", state_dir, "--resume",
        )
        assert code == 0, output
        assert "health: ok (4 tenants" in output

    def test_tenant_json_health(self):
        code, output = run_cli(
            "serve", "--tenants", "3", "--intervals", "2",
            "--transport", "direct", "--json",
        )
        assert code == 0, output
        payload = json.loads(output[output.index("{"):])
        assert payload["tenants"] == 3
        assert payload["intervals_total"] >= 3

    def test_tenants_reject_ha_roles(self):
        code, output = run_cli(
            "serve", "--tenants", "4", "--role", "standby",
        )
        assert code == 2
        assert "--tenants" in output
