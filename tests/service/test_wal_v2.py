"""WAL v2 hardening tests: CRC, v1 golden compat, quarantine, retry.

Complements ``test_wal.py`` (the format-agnostic append/replay/compaction
behaviour) with the robustness surface added for the chaos subsystem:
per-record CRC32, corruption quarantine, torn-tail truncation, and
retried appends through the filesystem seam.
"""

import json

import pytest

from repro.chaos.faults import FaultPlan, IoFault
from repro.chaos.seams import FaultyClock, FaultyFilesystem
from repro.errors import WalError
from repro.obs.events import EventBus
from repro.obs.recorder import Recorder
from repro.service.wal import (
    WriteAheadLog,
    encode_record,
    quarantine_path,
    read_records,
    record_crc,
    scan_records,
)
from repro.util.retry import RetryPolicy

#: a v1 (pre-CRC) log exactly as the seed daemon wrote it — golden
#: bytes, do not regenerate; the v2 reader must keep accepting them
GOLDEN_V1 = (
    '{"seq": 0, "op": "join", "user": "alice", "interval": 0}\n'
    '{"seq": 1, "op": "leave", "user": "bob", "interval": 0}\n'
    '{"seq": 2, "op": "commit", "interval": 0}\n'
    '{"seq": 3, "op": "join", "user": "carol", "interval": 1}\n'
)


class TestRecordCrc:
    def test_crc_excludes_itself_and_is_order_independent(self):
        record = {"seq": 1, "op": "join", "user": "u", "interval": 0}
        line = encode_record(record)
        wire = json.loads(line)
        assert wire["crc"] == record_crc(record)
        assert record_crc(wire) == record_crc(record)

    def test_any_field_change_breaks_crc(self):
        record = {"seq": 1, "op": "join", "user": "u", "interval": 0}
        crc = record_crc(record)
        for key, value in (
            ("seq", 2), ("op", "leave"), ("user", "v"), ("interval", 1),
        ):
            assert record_crc({**record, key: value}) != crc


class TestV1GoldenCompat:
    def test_v1_records_still_read(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text(GOLDEN_V1)
        records = read_records(path)
        assert [r["seq"] for r in records] == [0, 1, 2, 3]
        assert records[0]["user"] == "alice"

    def test_append_after_v1_writes_v2(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text(GOLDEN_V1)
        wal = WriteAheadLog(path)
        assert wal.next_seq == 4
        wal.append_request("leave", "alice", 1)
        wal.close()
        lines = path.read_text().splitlines()
        assert "crc" not in json.loads(lines[0])  # v1 prefix untouched
        assert "crc" in json.loads(lines[-1])  # new append is v2

    def test_compaction_upgrades_survivors_to_v2(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text(GOLDEN_V1)
        wal = WriteAheadLog(path)
        assert wal.compact(before_interval=1) == 3
        wal.close()
        for line in path.read_text().splitlines():
            assert "crc" in json.loads(line)
        assert [r["seq"] for r in read_records(path)] == [3]


def _write_v2(path, records):
    path.write_text("".join(encode_record(r) + "\n" for r in records))


_RECORDS = [
    {"seq": 0, "op": "join", "user": "a", "interval": 0},
    {"seq": 1, "op": "commit", "interval": 0},
    {"seq": 2, "op": "join", "user": "b", "interval": 1},
]


class TestCrcDetection:
    def test_tampered_field_with_stale_crc_is_fatal(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        _write_v2(path, _RECORDS)
        lines = path.read_text().splitlines()
        wire = json.loads(lines[0])
        wire["user"] = "mallory"  # body changed, crc left stale
        lines[0] = json.dumps(wire, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(WalError):
            read_records(path)

    def test_scan_returns_intact_prefix_and_error(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        _write_v2(path, _RECORDS)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-5] + "xx}"  # mangle mid-file
        path.write_text("\n".join(lines) + "\n")
        records, error = scan_records(path)
        assert [r["seq"] for r in records] == [0]
        assert error is not None


class TestQuarantine:
    def test_open_quarantines_and_salvages_prefix(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        _write_v2(path, _RECORDS)
        damaged = path.read_text().splitlines()
        damaged[1] = '{"broken'
        path.write_text("\n".join(damaged) + "\n")
        bus = EventBus()
        wal = WriteAheadLog(
            path, on_corruption="quarantine", obs=Recorder(bus=bus)
        )
        corrupt = tmp_path / "wal.jsonl.corrupt-0"
        assert corrupt.exists()
        assert '{"broken' in corrupt.read_text()  # evidence preserved
        assert [r["seq"] for r in wal.records()] == [0]  # salvaged prefix
        assert wal.next_seq == 1
        events = [e for e in bus.events if e["kind"] == "wal_quarantine"]
        assert len(events) == 1 and events[0]["detail"]["salvaged"] == 1
        wal.close()

    def test_default_open_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('{"broken\n{"also": "broken"}\n')
        with pytest.raises(WalError):
            WriteAheadLog(path)

    def test_quarantine_destinations_do_not_collide(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        first = quarantine_path(path)
        (tmp_path / "wal.jsonl.corrupt-0").write_text("x")
        second = quarantine_path(path)
        assert first.endswith(".corrupt-0") and second.endswith(".corrupt-1")

    def test_invalid_policy_rejected(self, tmp_path):
        with pytest.raises(WalError):
            WriteAheadLog(tmp_path / "wal.jsonl", on_corruption="ignore")


class TestTornTailTruncation:
    def test_open_physically_removes_torn_tail(self, tmp_path):
        """Regression: torn bytes left on disk merged with the next
        append into mid-file garbage that poisoned later reads."""
        path = tmp_path / "wal.jsonl"
        _write_v2(path, _RECORDS)
        with open(path, "a") as handle:
            handle.write('{"seq": 3, "op": "join"')  # torn append
        wal = WriteAheadLog(path)
        assert not path.read_text().rstrip().endswith('"join"')
        wal.append_request("join", "c", 1)
        records = read_records(path)  # a merged line would raise here
        assert [r["seq"] for r in records] == [0, 1, 2, 3]
        assert records[-1]["user"] == "c"
        wal.close()


class TestRetriedAppends:
    def make_wal(self, tmp_path, *faults):
        plan = FaultPlan(name="t", seed=0, io_faults=faults)
        bus = EventBus()
        wal = WriteAheadLog(
            tmp_path / "wal.jsonl",
            fs=FaultyFilesystem(plan),
            clock=FaultyClock(),
            obs=Recorder(bus=bus),
        )
        return wal, bus

    def test_transient_fsync_failure_retried(self, tmp_path):
        wal, bus = self.make_wal(tmp_path, IoFault("wal-fsync", at=1))
        wal.append_request("join", "a", 0)
        wal.append_request("join", "b", 0)  # first fsync try injected
        wal.close()
        records = read_records(tmp_path / "wal.jsonl")
        assert [r["user"] for r in records] == ["a", "b"]  # no partials
        assert [e["kind"] for e in bus.events if e["kind"] == "io_retry"]

    def test_persistent_failure_rolls_back_and_raises(self, tmp_path):
        wal, bus = self.make_wal(
            tmp_path, IoFault("wal-fsync", at=1, times=99)
        )
        wal.append_request("join", "a", 0)
        with pytest.raises(OSError):
            wal.append_request("join", "b", 0)
        # rolled back to the last durable record: no half-written line
        records = read_records(tmp_path / "wal.jsonl")
        assert [r["user"] for r in records] == ["a"]
        assert any(e["kind"] == "io_giveup" for e in bus.events)
        # the WAL remains usable once the fault clears
        wal.close()

    def test_retry_policy_backs_off_through_clock(self):
        clock = FaultyClock()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "done"

        policy = RetryPolicy(max_attempts=4, base_delay=0.01, multiplier=2)
        assert policy.run(flaky, clock=clock) == "done"
        assert len(attempts) == 3
        assert clock.slept == pytest.approx(0.01 + 0.02)
