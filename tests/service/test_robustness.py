"""Hardening tests: recovery ladder, circuit breaker, bounded stop.

Each fault class the chaos plans inject has its recovery path
demonstrated here in isolation (see ``docs/robustness.md``): damaged
snapshots escalate down the generation ladder, sustained unicast
cutovers trip the breaker, and a hung daemon shutdown reports instead
of blocking forever.
"""

import threading

import pytest

from repro.core import GroupConfig
from repro.errors import KeyTreeError, RecoveryError, ServiceError
from repro.keytree.persistence import (
    PREVIOUS_SUFFIX,
    load_server,
    save_server,
)
from repro.service import (
    CircuitBreaker,
    DaemonConfig,
    DirectDelivery,
    PoissonChurn,
    RekeyDaemon,
)
from repro.service.transports import IN_DEADLINE, UNICAST_CUTOVER


def make_daemon(state_dir, seed=5):
    return RekeyDaemon.start_new(
        ["m%02d" % i for i in range(10)],
        config=GroupConfig(block_size=5, seed=seed, crypto_seed=seed),
        backend=DirectDelivery(),
        churn=PoissonChurn(alpha=0.3, min_members=4),
        service=DaemonConfig(state_dir=state_dir),
        seed=seed,
    )


def recover_daemon(state_dir, fleet, seed=5):
    return RekeyDaemon.recover(
        state_dir,
        config=GroupConfig(block_size=5, seed=seed, crypto_seed=seed),
        backend=DirectDelivery(),
        fleet=fleet,
        churn=PoissonChurn(alpha=0.3, min_members=4),
        service=DaemonConfig(state_dir=state_dir),
        seed=seed + 1,
    )


def _corrupt(path):
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))


class TestSnapshotRotation:
    def test_daemon_rotates_previous_generation(self, tmp_path):
        daemon = make_daemon(str(tmp_path))
        daemon.run(3)
        daemon.close()
        assert (tmp_path / "server.json").exists()
        assert (tmp_path / ("server.json" + PREVIOUS_SUFFIX)).exists()
        current = load_server(tmp_path / "server.json")
        previous = load_server(
            tmp_path / ("server.json" + PREVIOUS_SUFFIX)
        )
        assert previous.intervals_processed == current.intervals_processed - 1

    def test_save_without_rotate_keeps_no_prev(self, tmp_path):
        daemon = make_daemon(None, seed=9)  # non-durable
        save_server(daemon.server, tmp_path / "solo.json")
        assert not (tmp_path / ("solo.json" + PREVIOUS_SUFFIX)).exists()
        daemon.close()


class TestRecoveryLadder:
    def test_damaged_primary_falls_back_to_prev(self, tmp_path):
        daemon = make_daemon(str(tmp_path))
        daemon.run(3)
        daemon.close()
        _corrupt(tmp_path / "server.json")
        recovered = recover_daemon(str(tmp_path), daemon.fleet)
        # the damaged rung is quarantined for forensics, not deleted
        assert (tmp_path / "server.json.corrupt-0").exists()
        assert recovered.server.intervals_processed >= 2
        # service continues: the fallback generation replays forward
        recovered.run(1)
        recovered.fleet.check_agreement(
            recovered.server, exclude=recovered.pending_carry_names()
        )
        recovered.close()

    def test_every_generation_damaged_is_recovery_error(self, tmp_path):
        daemon = make_daemon(str(tmp_path))
        daemon.run(3)
        daemon.close()
        _corrupt(tmp_path / "server.json")
        _corrupt(tmp_path / ("server.json" + PREVIOUS_SUFFIX))
        with pytest.raises(RecoveryError) as excinfo:
            recover_daemon(str(tmp_path), daemon.fleet)
        assert "every snapshot generation is damaged" in str(excinfo.value)

    def test_no_snapshot_at_all_is_service_error(self, tmp_path):
        daemon = make_daemon(str(tmp_path))
        daemon.close()
        fleet = daemon.fleet
        (tmp_path / "server.json").unlink(missing_ok=True)
        with pytest.raises(ServiceError):
            recover_daemon(str(tmp_path), fleet)

    def test_corrupt_snapshot_raises_keytree_error_directly(self, tmp_path):
        daemon = make_daemon(str(tmp_path))
        daemon.run(1)
        daemon.close()
        _corrupt(tmp_path / "server.json")
        with pytest.raises(KeyTreeError):
            load_server(tmp_path / "server.json")

    def test_structurally_wrong_snapshot_is_keytree_error(self, tmp_path):
        path = tmp_path / "server.json"
        for payload in ("[1, 2, 3]", '"text"', '{"format": 2}', "{nope"):
            path.write_text(payload)
            with pytest.raises(KeyTreeError):
                load_server(path)


class TestCircuitBreaker:
    def test_threshold_consecutive_cutovers_open(self):
        breaker = CircuitBreaker(threshold=2, cooldown=2)
        assert breaker.record(IN_DEADLINE) is None
        assert breaker.record(UNICAST_CUTOVER) is None
        assert breaker.record(UNICAST_CUTOVER) == "circuit_open"
        assert breaker.forcing_carry
        assert breaker.opened_total == 1

    def test_cooldown_then_half_open_then_close(self):
        breaker = CircuitBreaker(threshold=1, cooldown=2)
        assert breaker.record(UNICAST_CUTOVER) == "circuit_open"
        assert breaker.record("carry-over") is None  # cooling down
        assert breaker.record("carry-over") == "circuit_half_open"
        assert not breaker.forcing_carry
        assert breaker.record(IN_DEADLINE) == "circuit_close"
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1)
        breaker.record(UNICAST_CUTOVER)
        assert breaker.record("carry-over") == "circuit_half_open"
        assert breaker.record(UNICAST_CUTOVER) == "circuit_open"
        assert breaker.opened_total == 2

    def test_clean_interval_resets_the_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown=1)
        breaker.record(UNICAST_CUTOVER)
        breaker.record(IN_DEADLINE)
        assert breaker.record(UNICAST_CUTOVER) is None  # streak restarted
        assert breaker.state == CircuitBreaker.CLOSED

    def test_threshold_zero_disables(self):
        breaker = CircuitBreaker(threshold=0)
        for _ in range(10):
            assert breaker.record(UNICAST_CUTOVER) is None
        assert not breaker.forcing_carry
        assert breaker.snapshot()["state"] == "disabled"

    def test_validation(self):
        with pytest.raises(ServiceError):
            CircuitBreaker(threshold=-1)
        with pytest.raises(ServiceError):
            CircuitBreaker(cooldown=0)

    def test_health_surfaces_breaker(self, tmp_path):
        daemon = make_daemon(str(tmp_path))
        daemon.run(1)
        report = daemon.health()
        assert report["circuit"]["state"] == CircuitBreaker.CLOSED
        daemon.close()


class TestBoundedStop:
    def test_stop_without_loop_returns_true(self, tmp_path):
        daemon = make_daemon(str(tmp_path))
        assert daemon.stop() is True
        daemon.close()

    def test_stop_joins_running_loop(self, tmp_path):
        daemon = make_daemon(str(tmp_path))
        daemon.start(n_intervals=3)
        assert daemon.stop(timeout=30.0) is True
        daemon.close()

    def test_hung_loop_reports_false_with_warning(self, tmp_path, caplog):
        daemon = make_daemon(str(tmp_path))
        release = threading.Event()
        hung = threading.Thread(target=release.wait, daemon=True)
        hung.start()
        daemon._thread = hung
        with caplog.at_level("WARNING"):
            assert daemon.stop(timeout=0.05) is False
        assert "did not stop" in caplog.text
        release.set()
        hung.join(timeout=5.0)
        daemon._thread = None
        daemon.close()
