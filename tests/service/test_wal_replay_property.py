"""Property: WAL request replay is idempotent.

Recovery (and an HA replica's catch-up after a resubscribe) may see the
same request records more than once — the replay tolerance for
``ReproError`` is what makes that safe.  The property: replaying a
request log twice into a restored server leaves *exactly* the state one
replay produces, for any interleaving of valid, duplicate, and plainly
invalid join/leave requests.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import GroupConfig
from repro.core.server import GroupKeyServer
from repro.errors import ReproError
from repro.ha.digest import server_digest

BASE = ["m%02d" % i for i in range(8)]
NAMES = BASE + ["n%02d" % i for i in range(8)]

ops = st.lists(
    st.tuples(
        st.sampled_from(["join", "leave"]), st.sampled_from(NAMES)
    ),
    max_size=24,
)


def replay(server, records):
    """The recovery/replication replay loop, tolerance included."""
    for op, user in records:
        try:
            if op == "join":
                server.request_join(user)
            else:
                server.request_leave(user)
        except ReproError:
            pass


def restored_server():
    config = GroupConfig(block_size=5, crypto_seed=9)
    snapshot = GroupKeyServer(BASE, config=config).snapshot()
    return GroupKeyServer.restore(snapshot, config=config)


@given(records=ops)
@settings(max_examples=60, deadline=None)
def test_replaying_twice_equals_replaying_once(records):
    once, twice = restored_server(), restored_server()
    replay(once, records)
    replay(twice, records)
    replay(twice, records)
    # Queue *order* may differ: a replayed leave cancels a pending join
    # and the replayed join re-queues it at the back.  Membership and
    # committed state must not.
    once_joins, once_leaves = once.pending_requests
    twice_joins, twice_leaves = twice.pending_requests
    assert set(once_joins) == set(twice_joins)
    assert set(once_leaves) == set(twice_leaves)
    assert once.users == twice.users
    assert server_digest(once) == server_digest(twice)


@given(records=ops)
@settings(max_examples=60, deadline=None)
def test_replay_then_rekey_is_deterministic(records):
    a, b = restored_server(), restored_server()
    replay(a, records)
    replay(b, records)
    a.rekey()
    b.rekey()
    assert server_digest(a) == server_digest(b)
    assert a.group_key.fingerprint() == b.group_key.fingerprint()
