"""Tests for repro.service.daemon — soaks, degradation, metrics, threads."""

import json

import pytest

from repro.core import GroupConfig
from repro.errors import DuplicateUserError, ServiceError, UnknownUserError
from repro.service import (
    DaemonConfig,
    DirectDelivery,
    NoChurn,
    PoissonChurn,
    RekeyDaemon,
    SessionDelivery,
)


def small_config(**overrides):
    defaults = dict(block_size=5, crypto_seed=11, seed=42)
    defaults.update(overrides)
    return GroupConfig(**defaults)


def make_daemon(n=24, backend=None, churn=None, service=None, **config):
    return RekeyDaemon.start_new(
        ["m%02d" % i for i in range(n)],
        config=small_config(**config),
        backend=backend or DirectDelivery(),
        churn=churn,
        service=service,
    )


class TestSoak:
    def test_direct_soak_keeps_invariants(self):
        daemon = make_daemon(churn=PoissonChurn(alpha=0.25))
        records = daemon.run(10)
        assert len(records) == 10
        # check_agreement ran every interval (verify_invariants default);
        # spot-check the end state explicitly too.
        daemon.fleet.check_agreement(daemon.server)
        assert daemon.server.intervals_processed == 10
        assert daemon.fleet.n_members == daemon.server.n_users

    def test_session_soak_keeps_invariants(self):
        config = small_config()
        daemon = make_daemon(
            n=32,
            backend=SessionDelivery(config, seed=5),
            churn=PoissonChurn(alpha=0.25),
        )
        daemon.run(4)
        daemon.fleet.check_agreement(daemon.server)
        assert daemon.metrics.n_intervals == 4

    def test_empty_interval_records_no_delivery(self):
        daemon = make_daemon(churn=NoChurn())
        (record,) = daemon.run(1)
        assert record.decision == "empty"
        assert record.n_enc_packets == 0
        assert daemon.metrics.counters["empty_intervals"] == 1

    def test_message_ids_advance_across_intervals(self):
        daemon = make_daemon(churn=PoissonChurn(alpha=0.3))
        records = daemon.run(3)
        ids = [r.message_id for r in records if r.message_id >= 0]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)


class TestSubmitApi:
    def test_submit_then_interval(self):
        daemon = make_daemon(churn=NoChurn())
        daemon.submit_join("newcomer")
        daemon.submit_leave("m03")
        record = daemon.run_interval()
        assert record.n_joins == 1 and record.n_leaves == 1
        assert "newcomer" in daemon.fleet.members
        assert "m03" in daemon.fleet.former_members
        daemon.fleet.check_agreement(daemon.server)

    def test_submit_validation(self):
        daemon = make_daemon(churn=NoChurn())
        with pytest.raises(DuplicateUserError):
            daemon.submit_join("m01")
        with pytest.raises(UnknownUserError):
            daemon.submit_leave("nobody")

    def test_join_then_leave_cancels(self):
        daemon = make_daemon(churn=NoChurn())
        daemon.submit_join("flicker")
        daemon.submit_leave("flicker")
        record = daemon.run_interval()
        assert record.decision == "empty"
        assert "flicker" not in daemon.fleet.members

    def test_background_thread_with_concurrent_submits(self):
        daemon = make_daemon(n=16, churn=NoChurn())
        daemon.start(n_intervals=6)
        for index in range(5):
            daemon.submit_join("bg-%d" % index)
        daemon.stop()
        assert daemon.crashed is None
        assert daemon.server.intervals_processed >= 1
        # every accepted join eventually materialised as a member
        daemon.run_interval()  # flush any joins accepted after the loop
        for index in range(5):
            assert "bg-%d" % index in daemon.fleet.members
        daemon.fleet.check_agreement(daemon.server)


class TestDegradation:
    @staticmethod
    def lossy_config():
        # One multicast round as the deadline plus painful loss makes
        # the deadline genuinely miss-able for a 32-user group.
        from repro.sim.topology import LossParameters

        return small_config(
            loss=LossParameters(alpha=0.5, p_high=0.5, p_low=0.2)
        )

    def test_unicast_cutover_recorded(self):
        config = self.lossy_config()
        daemon = RekeyDaemon.start_new(
            ["m%02d" % i for i in range(32)],
            config=config,
            backend=SessionDelivery(config, seed=9, adapt_rho=False),
            churn=PoissonChurn(alpha=0.3),
            service=DaemonConfig(deadline_rounds=1),
        )
        records = daemon.run(4)
        decisions = {r.decision for r in records}
        assert "unicast-cutover" in decisions
        cutover = [r for r in records if r.decision == "unicast-cutover"]
        assert all(r.unicast_served > 0 for r in cutover)
        daemon.fleet.check_agreement(daemon.server)

    def test_carry_over_serves_next_interval(self):
        config = self.lossy_config()
        daemon = RekeyDaemon.start_new(
            ["m%02d" % i for i in range(32)],
            config=config,
            backend=SessionDelivery(config, seed=9, adapt_rho=False),
            churn=PoissonChurn(alpha=0.3),
            service=DaemonConfig(
                deadline_rounds=1, deadline_policy="carry"
            ),
        )
        records = daemon.run(5)
        carried = [r for r in records if r.decision == "carry-over"]
        assert carried, "expected at least one carry-over under heavy loss"
        # Somebody who was carried got served at a later interval's start
        # (an evicted carried member is the only exception, and eviction
        # of *every* carried user is vanishingly unlikely here).
        assert any(record.carry_served > 0 for record in records[1:])
        daemon.fleet.check_agreement(
            daemon.server, exclude=daemon.pending_carry_names()
        )


class TestMetricsSurface:
    def test_json_schema(self):
        daemon = make_daemon(churn=PoissonChurn(alpha=0.25))
        daemon.run(3)
        payload = json.loads(daemon.metrics.to_json())
        assert payload["schema"] == 1
        assert len(payload["intervals"]) == 3
        assert len(payload["rho_trajectory"]) == 3
        row = payload["intervals"][0]
        for key in (
            "interval", "n_members", "marking_ms", "n_encryptions",
            "rho", "multicast_rounds", "first_round_nacks",
            "recovery_p50", "recovery_p99", "decision", "group_key_fp",
        ):
            assert key in row

    def test_health_ok_then_degraded(self):
        daemon = make_daemon(churn=PoissonChurn(alpha=0.25))
        daemon.run(3)
        health = daemon.health()
        assert health["status"] == "ok"
        assert health["intervals_processed"] == 3
        assert health["members"] == daemon.server.n_users
        # Fake a bad recent window and watch the probe flip.
        for record in daemon.metrics.intervals:
            record.decision = "unicast-cutover"
        assert daemon.metrics.health()["status"] == "degraded"

    def test_invariant_violation_raises(self):
        daemon = make_daemon(churn=NoChurn())
        daemon.submit_leave("m00")
        # Sabotage: resurrect the evictee's member object post-rekey.
        daemon.run_interval()
        evicted = daemon.fleet.former_members["m00"]
        evicted.path_keys[0] = daemon.server.group_key
        with pytest.raises(ServiceError):
            daemon.fleet.check_agreement(daemon.server)
