"""The UDP transport cannot defer stragglers, so a configured ``carry``
policy silently degrading would lie to operators.  These tests pin the
honest path: an obs event at the transport, a counter in the daemon's
ledger, and a note in the health probe."""

from repro.core import GroupConfig, GroupKeyServer
from repro.obs import EventBus, Recorder, read_events
from repro.service import (
    DaemonConfig,
    MemberFleet,
    RekeyDaemon,
    UdpDelivery,
    make_backend,
)

MEMBERS = ["m%02d" % i for i in range(8)]


class Events:
    def __init__(self):
        self.events = []

    def emit(self, kind, **detail):
        self.events.append((kind, detail))


def lossless_udp(config):
    # drop_probability=0 keeps the loopback exchange to one round.
    return make_backend("udp", config, seed=5, drop_probability=0.0)


class TestTransport:
    def deliver(self, policy):
        config = GroupConfig(block_size=5, crypto_seed=2)
        server = GroupKeyServer(MEMBERS, config=config)
        fleet = MemberFleet.register_all(server)
        server.request_leave(MEMBERS[0])
        _, message = server.rekey()
        fleet.evict(MEMBERS[0])
        udp = lossless_udp(config)
        obs = Events()
        udp.set_observer(obs)
        return udp.deliver(message, fleet, policy=policy), obs

    def test_carry_policy_is_reported_ignored(self):
        report, obs = self.deliver("carry")
        assert report.detail["policy_ignored"] is True
        kinds = [kind for kind, _ in obs.events]
        assert "degradation_policy_ignored" in kinds
        detail = dict(obs.events[kinds.index("degradation_policy_ignored")][1])
        assert detail == {
            "transport": "udp", "policy": "carry", "effective": "unicast"
        }

    def test_unicast_policy_is_silent(self):
        report, obs = self.deliver("unicast")
        assert "policy_ignored" not in report.detail
        assert not any(
            kind == "degradation_policy_ignored" for kind, _ in obs.events
        )


class TestDaemonLedger:
    def test_counter_health_note_and_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        config = GroupConfig(block_size=5, crypto_seed=2)
        bus = EventBus(path=str(path))
        daemon = RekeyDaemon.start_new(
            MEMBERS,
            config=config,
            backend=lossless_udp(config),
            service=DaemonConfig(deadline_policy="carry"),
            obs=Recorder(bus=bus),
        )
        daemon.submit_leave(MEMBERS[1])
        daemon.run_interval()
        bus.close()
        assert daemon.metrics.counters["policy_ignored"] == 1
        health = daemon.metrics.health()
        assert any(
            "policy was not in force" in note for note in health["notes"]
        )
        kinds = [e["kind"] for e in read_events(str(path))]
        assert "degradation_policy_ignored" in kinds
