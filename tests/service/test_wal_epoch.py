"""Tests for the WAL's epoch fencing tokens (the HA safety argument).

The fence must refuse a stale writer *before any byte lands*: a deposed
leader that keeps appending would otherwise interleave its records with
the new epoch's, and recovery could replay a request the promoted
leader never accepted.
"""

import pytest

from repro.errors import StaleEpochError
from repro.service.wal import (
    WriteAheadLog,
    epochs_monotonic,
    max_epoch,
    read_records,
)


class FixedFence:
    """A fence stub: whatever epoch the test says is current."""

    def __init__(self, epoch):
        self.epoch = epoch

    def current_epoch(self):
        return self.epoch


class Events:
    def __init__(self):
        self.events = []

    def emit(self, kind, **detail):
        self.events.append((kind, detail))


class TestEpochInRecords:
    def test_records_carry_the_writer_epoch(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl", epoch=3)
        wal.append_request("join", "a", 0)
        wal.append_commit(0)
        records = read_records(tmp_path / "wal.jsonl")
        assert [r["epoch"] for r in records] == [3, 3]
        wal.close()

    def test_epochless_wal_writes_no_epoch_key(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        wal.append_request("join", "a", 0)
        assert "epoch" not in wal.records()[0]
        wal.close()

    def test_helpers(self):
        # Epochless (pre-HA) records read as epoch 0, so they may only
        # appear before the first epoch-stamped record.
        records = [{}, {"epoch": 1}, {"epoch": 2}, {"epoch": 2}]
        assert max_epoch(records) == 2
        assert max_epoch([]) == 0
        assert epochs_monotonic(records)
        assert not epochs_monotonic([{"epoch": 2}, {"epoch": 1}])
        assert not epochs_monotonic([{"epoch": 1}, {}])


class TestFencing:
    def test_stale_writer_refused_before_any_byte_lands(self, tmp_path):
        obs = Events()
        fence = FixedFence(1)
        wal = WriteAheadLog(
            tmp_path / "wal.jsonl", epoch=1, fence=fence, obs=obs
        )
        wal.append_request("join", "a", 0)
        size_before = (tmp_path / "wal.jsonl").stat().st_size
        fence.epoch = 2  # someone else acquired the lease
        with pytest.raises(StaleEpochError, match="fenced out by epoch 2"):
            wal.append_request("join", "intruder", 0)
        assert (tmp_path / "wal.jsonl").stat().st_size == size_before
        fenced = [d for k, d in obs.events if k == "ha_fenced"]
        assert fenced and fenced[0]["epoch"] == 1
        assert fenced[0]["current_epoch"] == 2
        wal.close()

    def test_newer_epoch_in_the_log_itself_fences(self, tmp_path):
        new = WriteAheadLog(tmp_path / "wal.jsonl", epoch=5)
        new.append_commit(0)
        new.close()
        # A deposed writer reopening the shared log must notice the
        # higher epoch already on disk even without a live fence.
        stale = WriteAheadLog(tmp_path / "wal.jsonl", epoch=4)
        with pytest.raises(StaleEpochError):
            stale.append_request("join", "late", 1)
        stale.close()

    def test_matching_epoch_appends_fine(self, tmp_path):
        wal = WriteAheadLog(
            tmp_path / "wal.jsonl", epoch=2, fence=FixedFence(2)
        )
        wal.append_request("join", "a", 0)
        assert wal.records()[0]["epoch"] == 2
        wal.close()


class TestSnapshotEpoch:
    def test_snapshot_header_carries_the_epoch(self, tmp_path):
        from repro.core.config import GroupConfig
        from repro.core.server import GroupKeyServer
        from repro.keytree.persistence import save_server, snapshot_epoch

        server = GroupKeyServer(
            ["a", "b", "c"], config=GroupConfig(block_size=5)
        )
        path = tmp_path / "server.json"
        save_server(server, path, epoch=7)
        assert snapshot_epoch(path) == 7
        save_server(server, path, rotate=True)
        assert snapshot_epoch(path) == 0  # pre-HA snapshots read as 0
