"""The shared soak-runner helper and its exit-code contract.

Every digest-pinned soak command (``chaos-soak``, ``ha-soak``,
``fleet``, ``wire-chaos-soak``, ``tenancy-soak``) routes through
``repro.cli.run_soak_command``; these tests pin each exit path once,
against a stub runner, plus the tenancy command end to end.
"""

import io
import json
from dataclasses import dataclass, field
from types import SimpleNamespace

from repro.cli import main, run_soak_command
from repro.errors import ChaosError


@dataclass
class StubResult:
    digest: str = "cafe" * 16
    failure: object = None
    invariants: dict = field(
        default_factory=lambda: {"green": True, "also-green": True}
    )
    worker_crash: bool = False

    @property
    def ok(self):
        return self.failure is None and all(self.invariants.values())

    def to_dict(self):
        return {"digest": self.digest, "ok": self.ok}


def _args(**overrides):
    defaults = {
        "list_plans": False,
        "json": False,
        "obs_file": None,
        "expect_digest": None,
    }
    defaults.update(overrides)
    return SimpleNamespace(**defaults)


def _invoke(result=None, args=None, run=None, **kwargs):
    out = io.StringIO()
    code = run_soak_command(
        args if args is not None else _args(),
        out,
        label="stub-soak",
        digest_label="stub digest",
        run=run if run is not None else (lambda log: result),
        error_types=(ChaosError,),
        list_plans=lambda stream: print("plans!", file=stream),
        **kwargs,
    )
    return code, out.getvalue()


def test_exit_0_all_green():
    result = StubResult()
    code, output = _invoke(result)
    assert code == 0
    assert "stub digest: %s" % result.digest in output
    assert "stub-soak: all invariants green" in output


def test_exit_0_list_plans_short_circuits():
    def boom(log):
        raise AssertionError("must not run")

    code, output = _invoke(args=_args(list_plans=True), run=boom)
    assert code == 0
    assert "plans!" in output


def test_exit_1_invariant_violated():
    result = StubResult(invariants={"b-bad": False, "a-bad": False})
    code, output = _invoke(result)
    assert code == 1
    # violations are listed sorted, for stable CI greps
    assert "invariant(s) violated: a-bad, b-bad" in output


def test_exit_1_failure_with_note():
    notes = []
    result = StubResult(failure="the wheels came off")
    code, output = _invoke(
        result, failure_note=lambda res, stream: notes.append(res)
    )
    assert code == 1
    assert "stub-soak: FAILED: the wheels came off" in output
    assert notes == [result]


def test_exit_2_config_error():
    def bad(log):
        raise ChaosError("no such plan")

    code, output = _invoke(run=bad)
    assert code == 2
    assert "error: no such plan" in output


def test_exit_3_digest_mismatch_beats_failure():
    # the digest verdict is printed and returned even when the run also
    # failed: CI pinning a digest wants the mismatch diagnosis first
    result = StubResult(failure="also broken")
    code, output = _invoke(
        result, args=_args(expect_digest="feed" * 16)
    )
    assert code == 3
    assert "digest mismatch: expected %s" % ("feed" * 16) in output


def test_exit_4_worker_crash():
    result = StubResult(failure="worker died", worker_crash=True)
    code, output = _invoke(result)
    assert code == 4
    assert "FAILED: worker died" in output


def test_json_payload_and_obs_note():
    result = StubResult()
    code, output = _invoke(
        result, args=_args(json=True, obs_file="/tmp/events.jsonl")
    )
    assert code == 0
    payload = json.loads(output[output.index("{"):output.rindex("}") + 1])
    assert payload["ok"] is True
    assert "wrote obs events to /tmp/events.jsonl" in output


# -- the tenancy command end to end ------------------------------------


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_tenancy_soak_list_plans():
    code, output = run_cli("tenancy-soak", "--list-plans")
    assert code == 0
    assert "noisy-neighbor" in output
    assert "mass-rehome" in output


def test_tenancy_soak_small_run_green(tmp_path):
    code, output = run_cli(
        "tenancy-soak",
        "--plan", "noisy-neighbor",
        "--seed", "7",
        "--tenants", "6",
        "--ticks", "6",
        "--state-root", str(tmp_path),
    )
    assert code == 0, output
    assert "tenancy-timeline digest:" in output
    assert "all invariants green" in output


def test_tenancy_soak_digest_mismatch_exits_3(tmp_path):
    code, output = run_cli(
        "tenancy-soak",
        "--plan", "noisy-neighbor",
        "--seed", "7",
        "--tenants", "6",
        "--ticks", "6",
        "--state-root", str(tmp_path),
        "--expect-digest", "0" * 64,
    )
    assert code == 3
    assert "digest mismatch" in output


def test_tenancy_soak_bad_tenant_count_exits_2(tmp_path):
    code, output = run_cli(
        "tenancy-soak",
        "--plan", "noisy-neighbor",
        "--tenants", "1",
        "--state-root", str(tmp_path),
    )
    assert code == 2
    assert "error:" in output
