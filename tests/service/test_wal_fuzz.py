"""Property tests: arbitrary single-byte WAL damage never misparses.

The contract under test (the chaos subsystem's storage acceptance):
whatever one flipped byte or one truncation does to a v2 WAL, a scan
returns a strict *prefix* of the original logical records — silently
dropping at most the final line (torn-tail semantics) — or reports the
damage as a :class:`WalError`.  It must never return a record sequence
that differs from the original in content, and reopening the log for
appends must always leave a cleanly replayable file.
"""

import os
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WalError
from repro.service.wal import WriteAheadLog, encode_record, scan_records

ORIGINAL = [
    {"seq": 0, "op": "join", "user": "alice", "interval": 0},
    {"seq": 1, "op": "join", "user": "bob", "interval": 0},
    {"seq": 2, "op": "commit", "interval": 0},
    {"seq": 3, "op": "leave", "user": "alice", "interval": 1},
    {"seq": 4, "op": "join", "user": "carol", "interval": 1},
    {"seq": 5, "op": "commit", "interval": 1},
]
GOLDEN = "".join(encode_record(r) + "\n" for r in ORIGINAL).encode("utf-8")

_DIR = tempfile.mkdtemp(prefix="wal-fuzz-")


def _write(name, data):
    path = os.path.join(_DIR, name)
    with open(path, "wb") as handle:
        handle.write(data)
    return path


#: the logical payload of a record — what replay actually consumes.  A
#: flip that lands on the three bytes of the ``"crc"`` *key name* turns
#: a v2 record into a v1-looking one with a stray key; the logical
#: fields are still byte-identical, so that is not a misparse.
_FIELDS = ("seq", "op", "user", "interval")


def logical(record):
    return {k: record[k] for k in _FIELDS if k in record}


def assert_prefix(records):
    """``records`` must be a *content-identical* prefix of ORIGINAL."""
    assert len(records) <= len(ORIGINAL)
    assert [logical(r) for r in records] == ORIGINAL[: len(records)]


@given(
    offset=st.integers(min_value=0, max_value=len(GOLDEN) - 1),
    mask=st.integers(min_value=1, max_value=255),
)
@settings(max_examples=300, deadline=None)
def test_single_byte_flip_is_prefix_or_error(offset, mask):
    data = bytearray(GOLDEN)
    data[offset] ^= mask
    path = _write("wal-flip.jsonl", bytes(data))
    records, error = scan_records(path)
    assert_prefix(records)
    if error is None:
        # Undetected damage is at most a torn-tail drop.  One flipped
        # newline can merge the final two lines into one unparseable
        # tail, so up to two trailing records may vanish — but content
        # is never misparsed.
        assert len(records) >= len(ORIGINAL) - 2


def test_every_offset_with_inverting_mask():
    """Exhaustive sweep: flip each byte with mask 0xFF."""
    for offset in range(len(GOLDEN)):
        data = bytearray(GOLDEN)
        data[offset] ^= 0xFF
        path = _write("wal-sweep.jsonl", bytes(data))
        records, error = scan_records(path)
        assert_prefix(records)
        if error is None:
            assert len(records) >= len(ORIGINAL) - 2


def test_every_truncation_offset_is_clean_prefix():
    """Cutting the log anywhere is always torn-tail clean, and the log
    stays appendable afterwards (the physical-truncation regression)."""
    for size in range(len(GOLDEN) + 1):
        path = _write("wal-cut.jsonl", GOLDEN[:size])
        records, error = scan_records(path)
        assert error is None  # truncation only ever severs the tail
        assert_prefix(records)
        if size % 7 == 0:  # reopen-and-append spot checks
            wal = WriteAheadLog(path)
            wal.append("commit", 9)
            wal.close()
            replayed, replay_error = scan_records(path)
            assert replay_error is None
            assert replayed[:-1] == ORIGINAL[: len(replayed) - 1]
            assert replayed[-1]["op"] == "commit"
            assert replayed[-1]["interval"] == 9


@given(
    offset=st.integers(min_value=0, max_value=len(GOLDEN) - 1),
    mask=st.integers(min_value=1, max_value=255),
)
@settings(max_examples=100, deadline=None)
def test_flip_then_quarantine_open_always_recovers(offset, mask):
    """However the flip lands, a quarantine-mode open yields a usable
    log whose records are an intact prefix — or raises WalError, never
    anything else."""
    data = bytearray(GOLDEN)
    data[offset] ^= mask
    subdir = tempfile.mkdtemp(dir=_DIR)
    path = os.path.join(subdir, "wal.jsonl")
    with open(path, "wb") as handle:
        handle.write(bytes(data))
    try:
        wal = WriteAheadLog(path, on_corruption="quarantine")
    except WalError:  # pragma: no cover - quarantine handles all damage
        pytest.fail("quarantine-mode open must not raise")
    assert_prefix(wal.records())
    wal.close()
