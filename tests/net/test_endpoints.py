"""Tests for repro.net — the protocol over real loopback UDP."""

import numpy as np
import pytest

from repro.core import GroupConfig, GroupKeyServer, GroupMember
from repro.net import MemberEndpoint, ServerEndpoint, run_udp_rekey


def make_world(n=32, n_leave=2, block_size=5, seed=0):
    server = GroupKeyServer(
        ["u%d" % i for i in range(n)],
        config=GroupConfig(block_size=block_size, crypto_seed=seed),
    )
    members = {
        name: GroupMember.register(server, name) for name in server.users
    }
    leavers = sorted(server.users)[:n_leave]
    for name in leavers:
        server.request_leave(name)
    batch, message = server.rekey()
    by_id = {}
    for name, member in members.items():
        if name in leavers:
            continue
        member.absorb_encryptions([], max_kid=message.max_kid)
        by_id[member.user_id] = member
    return server, message, by_id


class TestLossFreeUdp:
    def test_single_round_delivery(self):
        server, message, by_id = make_world()
        report = run_udp_rekey(
            message,
            members_by_user_id=by_id,
            drop_probability=0.0,
            nack_window_seconds=0.15,
            settle_seconds=0.1,
            seed=1,
        )
        assert report["all_done"]
        assert report["rounds"] == 1
        assert report["packets_dropped"] == 0
        assert all(
            member.group_key == server.group_key
            for member in by_id.values()
        )

    def test_packet_accounting(self):
        _, message, by_id = make_world()
        report = run_udp_rekey(
            message,
            members_by_user_id=by_id,
            drop_probability=0.0,
            nack_window_seconds=0.15,
            settle_seconds=0.1,
            seed=2,
        )
        # Emulated multicast: every member receives every packet.
        n_members = len(by_id)
        per_member = report["packets_sent"] // n_members
        assert report["packets_received"] == per_member * n_members


class TestLossyUdp:
    def test_injected_loss_recovered(self):
        server, message, by_id = make_world(n=32, seed=3)
        report = run_udp_rekey(
            message,
            members_by_user_id=by_id,
            drop_probability=0.2,
            nack_window_seconds=0.2,
            settle_seconds=0.1,
            seed=3,
        )
        assert report["all_done"]
        assert report["packets_dropped"] > 0
        assert all(
            member.group_key == server.group_key
            for member in by_id.values()
        )

    def test_heavy_loss_falls_back_to_unicast(self):
        server, message, by_id = make_world(n=16, seed=4)
        report = run_udp_rekey(
            message,
            members_by_user_id=by_id,
            drop_probability=0.5,
            max_multicast_rounds=1,
            nack_window_seconds=0.2,
            settle_seconds=0.1,
            seed=4,
        )
        assert report["all_done"]
        assert all(
            member.group_key == server.group_key
            for member in by_id.values()
        )


class TestEndpoints:
    def test_member_endpoint_lifecycle(self):
        _, message, _ = make_world()
        user_id = sorted(message.needs_by_user)[0]
        endpoint = MemberEndpoint(user_id, message).start()
        assert endpoint.address[0] == "127.0.0.1"
        assert endpoint.address[1] > 0
        endpoint.stop()

    def test_server_requires_registered_address(self):
        from repro.errors import TransportError

        _, message, _ = make_world()
        server = ServerEndpoint(message)
        try:
            with pytest.raises(TransportError):
                server.unicast_usr([sorted(message.needs_by_user)[0]])
        finally:
            server.close()
