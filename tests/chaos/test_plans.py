"""Tests for repro.chaos.plans — the named chaos gauntlets."""

import pytest

from repro.chaos.faults import FaultPlan
from repro.chaos.plans import PLAN_INTERVALS, PLAN_NAMES, make_plan
from repro.errors import ChaosError


class TestMakePlan:
    def test_every_name_builds(self):
        for name in PLAN_NAMES:
            plan = make_plan(name, seed=7)
            assert isinstance(plan, FaultPlan)
            assert plan.name == name
            assert name in PLAN_INTERVALS

    def test_unknown_name_raises(self):
        with pytest.raises(ChaosError):
            make_plan("barrage")

    def test_only_unrecoverable_expects_failure(self):
        for name in PLAN_NAMES:
            plan = make_plan(name)
            assert plan.expect_recoverable == (name != "unrecoverable")

    def test_standard_covers_every_family(self):
        plan = make_plan("standard")
        assert plan.io_faults and plan.storage_faults
        assert plan.clock_jumps and plan.feedback_faults

    def test_feedback_abuse_lowers_the_clamp(self):
        plan = make_plan("feedback-abuse")
        assert plan.group_overrides["rho_max"] < 8.0
        assert plan.daemon_overrides["circuit_threshold"] >= 1

    def test_seed_changes_damage_not_schedule(self):
        a, b = make_plan("standard", seed=1), make_plan("standard", seed=2)
        assert a.storage_faults == b.storage_faults
        assert a.io_faults == b.io_faults
