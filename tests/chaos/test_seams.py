"""Tests for repro.chaos.seams — the Filesystem/Clock fault seams."""

import time

import pytest

from repro.chaos.faults import FaultPlan, IoFault
from repro.chaos.seams import (
    REAL_FILESYSTEM,
    Clock,
    FaultyClock,
    FaultyFilesystem,
    Filesystem,
)


class TestRealFilesystem:
    def test_write_fsync_replace_roundtrip(self, tmp_path):
        fs = Filesystem()
        temp = str(tmp_path / "file.tmp")
        final = str(tmp_path / "file.txt")
        handle = fs.open(temp, "w")
        fs.write(handle, "payload")
        fs.fsync(handle)
        handle.close()
        fs.replace(temp, final)
        fs.fsync_dir(str(tmp_path))
        assert fs.exists(final) and not fs.exists(temp)
        assert fs.read_bytes(final) == b"payload"
        assert fs.getsize(final) == 7
        fs.truncate(final, 3)
        assert fs.read_bytes(final) == b"pay"
        fs.remove(final)
        assert not fs.exists(final)

    def test_shared_default_instance(self):
        assert isinstance(REAL_FILESYSTEM, Filesystem)


class TestFaultyFilesystem:
    def make(self, *faults):
        plan = FaultPlan(name="t", seed=1, io_faults=faults)
        return FaultyFilesystem(plan), plan

    def test_scheduled_fsync_occurrence_fails_once(self, tmp_path):
        fs, plan = self.make(IoFault("wal-fsync", at=1))
        handle = fs.open(str(tmp_path / "wal.jsonl"), "w")
        fs.fsync(handle)  # occurrence 0: fine
        with pytest.raises(OSError):
            fs.fsync(handle)  # occurrence 1: injected
        fs.fsync(handle)  # occurrence 2: fine again
        handle.close()
        assert plan.injected == 1

    def test_classification_by_basename(self, tmp_path):
        """A wal-targeted fault never fires for the snapshot family."""
        fs, _ = self.make(IoFault("wal-fsync", at=0, times=99))
        handle = fs.open(str(tmp_path / "server.json"), "w")
        fs.fsync(handle)  # snapshot-fsync: not scheduled
        handle.close()
        wal = fs.open(str(tmp_path / "wal.jsonl"), "w")
        with pytest.raises(OSError):
            fs.fsync(wal)
        wal.close()

    def test_replace_fault_keyed_on_destination(self, tmp_path):
        fs, _ = self.make(IoFault("snapshot-replace", at=0))
        source = tmp_path / "server.json.tmp"
        source.write_text("{}")
        with pytest.raises(OSError):
            fs.replace(str(source), str(tmp_path / "server.json"))
        # the file was NOT moved
        assert source.exists()

    def test_write_fault(self, tmp_path):
        fs, _ = self.make(IoFault("wal-write", at=0))
        handle = fs.open(str(tmp_path / "wal.jsonl"), "w")
        with pytest.raises(OSError):
            fs.write(handle, "x")
        handle.close()


class TestFaultyClock:
    def test_jump_shifts_wall_time(self):
        clock = FaultyClock()
        before = clock.time()
        clock.jump(3600.0)
        assert clock.time() - before >= 3600.0
        clock.jump(-7200.0)
        assert clock.time() < before + 1.0

    def test_monotonic_never_jumps_backwards(self):
        clock = FaultyClock()
        first = clock.monotonic()
        clock.jump(-1e6)
        assert clock.monotonic() >= first

    def test_sleep_is_virtual_and_advances_monotonic(self):
        clock = FaultyClock()
        first = clock.monotonic()
        t0 = time.monotonic()
        clock.sleep(500.0)
        assert time.monotonic() - t0 < 5.0  # did not actually block
        assert clock.slept == 500.0
        assert clock.monotonic() >= first + 500.0

    def test_negative_sleep_ignored(self):
        clock = FaultyClock()
        clock.sleep(-3.0)
        assert clock.slept == 0.0

    def test_real_clock_contract(self):
        clock = Clock()
        assert clock.time() > 0
        assert clock.monotonic() <= clock.monotonic()
