"""Datagram fault injector: purity, dedup, and plan-registry tests.

The load-bearing property (the satellite the fuzz proves): the set of
applied faults — and therefore the fault-timeline digest — is a pure
function of ``(params, seed)`` and the *set* of datagram coordinates,
never of call order, duplication from retries, or which worker process
a member happens to live in.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chaos.wire_faults import (
    WIRE_CHAOS_PLAN_NAMES,
    WIRE_CHAOS_PLANS,
    ClientCrash,
    DatagramFaultInjector,
    WireChaosPlan,
    WireFaultParams,
    corrupt_frame,
    describe_wire_plans,
    fault_timeline_digest,
    make_wire_plan,
)
from repro.errors import ChaosError, WireDecodeError
from repro.wire.codec import FrameKind, decode_frame, encode_frame

STORM = WireFaultParams(
    corrupt_rate=0.2,
    duplicate_rate=0.2,
    reorder_rate=0.15,
    delay_rate=0.15,
    blackout_rate=0.1,
)


def _frame(kind, interval, round_no=0, slot=0):
    return encode_frame(kind, interval, round_no=round_no, slot=slot)


#: One abstract datagram coordinate: (member, kind, interval, round, slot).
coordinates = st.tuples(
    st.integers(0, 15),
    st.sampled_from([FrameKind.DATA, FrameKind.ROUND_END, FrameKind.ANNOUNCE]),
    st.integers(1, 4),
    st.integers(0, 3),
    st.integers(0, 40),
)


def _drive(injector, coords):
    """Route every coordinate through the send path, flushing at the end
    (as the server does at each window boundary)."""
    for member, kind, interval, round_no, slot in coords:
        injector.plan_send(
            member, _frame(kind, interval, round_no=round_no, slot=slot)
        )
    injector.flush()
    return fault_timeline_digest(injector.timeline)


class TestInjectorPurity:
    @given(coords=st.lists(coordinates, max_size=60), seed=st.integers(0, 99))
    @settings(max_examples=40, deadline=None)
    def test_same_coordinates_same_digest(self, coords, seed):
        first = _drive(DatagramFaultInjector(STORM, seed), coords)
        second = _drive(DatagramFaultInjector(STORM, seed), coords)
        assert first == second

    @given(
        coords=st.lists(coordinates, max_size=60, unique=True),
        seed=st.integers(0, 99),
        shuffle_seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_call_order_is_irrelevant(self, coords, seed, shuffle_seed):
        """Worker placement only changes the order datagrams hit the
        seam — the applied-fault set must not notice."""
        import random

        shuffled = list(coords)
        random.Random(shuffle_seed).shuffle(shuffled)
        assert _drive(DatagramFaultInjector(STORM, seed), coords) == _drive(
            DatagramFaultInjector(STORM, seed), shuffled
        )

    @given(coords=st.lists(coordinates, max_size=40), seed=st.integers(0, 99))
    @settings(max_examples=40, deadline=None)
    def test_retries_do_not_grow_the_timeline(self, coords, seed):
        """A retried datagram reuses its coordinate: drop-like faults
        apply only to occurrence 0, so retransmissions converge and the
        timeline digests identically with or without them."""
        once = _drive(DatagramFaultInjector(STORM, seed), coords)
        twice = _drive(DatagramFaultInjector(STORM, seed), coords + coords)
        assert once == twice

    @given(seed=st.integers(0, 99))
    @settings(max_examples=20, deadline=None)
    def test_seed_changes_the_timeline(self, seed):
        coords = [
            (member, FrameKind.DATA, 1, 1, slot)
            for member in range(8)
            for slot in range(8)
        ]
        baseline = _drive(DatagramFaultInjector(STORM, seed), coords)
        other = _drive(DatagramFaultInjector(STORM, seed + 1000), coords)
        # Not a tautology: 64 draws across five families at these rates
        # make an identical decision set astronomically unlikely.
        assert baseline != other

    def test_recv_and_send_draw_independently(self):
        injector = DatagramFaultInjector(STORM, 7)
        wire = _frame(FrameKind.DATA, 1, round_no=1, slot=3)
        injector.plan_send(4, wire)
        # The recv path needs a member-bearing frame; FEEDBACK carries
        # one but building it needs a full Feedback struct — the
        # coordinate spaces are disjoint by the direction tag, which
        # the digest entries record explicitly.
        for entry in injector.timeline:
            if entry["fault"] != "blackout":
                assert entry["direction"] == "send"


class TestFaultMechanics:
    def test_corrupt_frame_is_always_detected(self):
        wire = _frame(FrameKind.DATA, 3, round_no=1, slot=9)
        with pytest.raises(WireDecodeError):
            decode_frame(corrupt_frame(wire))

    def test_corrupt_frame_empty_input(self):
        assert corrupt_frame(b"") == b""

    def test_reorder_holds_multicast_data_until_flush(self):
        params = WireFaultParams(reorder_rate=1.0)
        injector = DatagramFaultInjector(params, 7)
        wire = _frame(FrameKind.DATA, 1, round_no=1, slot=5)
        plan = injector.plan_send(2, wire)
        assert plan.sends == ()  # held, not dropped
        released = injector.flush()
        assert released == [(2, wire)]
        assert injector.applied == {"reorder": 1}

    def test_reorder_never_touches_control_frames(self):
        params = WireFaultParams(reorder_rate=1.0)
        injector = DatagramFaultInjector(params, 7)
        wire = _frame(FrameKind.ROUND_END, 1, round_no=1)
        plan = injector.plan_send(2, wire)
        assert [w for w, _ in plan.sends] == [wire]
        assert injector.flush() == []

    def test_delay_only_on_non_multicast_data(self):
        params = WireFaultParams(delay_rate=1.0, delay_seconds=0.5)
        injector = DatagramFaultInjector(params, 7)
        control = injector.plan_send(1, _frame(FrameKind.ROUND_END, 1, 1))
        assert [d for _, d in control.sends] == [0.5]
        data = injector.plan_send(
            1, _frame(FrameKind.DATA, 1, round_no=1, slot=2)
        )
        assert [d for _, d in data.sends] == [0.0]

    def test_blackout_swallows_both_directions(self):
        params = WireFaultParams(blackout_rate=1.0)
        injector = DatagramFaultInjector(params, 7)
        sent = injector.plan_send(3, _frame(FrameKind.DATA, 2, 1, 1))
        assert sent.sends == ()
        # One blackout record per (member, interval), direction-free.
        assert injector.applied == {"blackout": 1}
        assert injector.timeline == [
            {"fault": "blackout", "member": 3, "interval": 2}
        ]

    def test_duplicate_sends_twice(self):
        params = WireFaultParams(duplicate_rate=1.0)
        injector = DatagramFaultInjector(params, 7)
        wire = _frame(FrameKind.DATA, 1, round_no=1, slot=0)
        plan = injector.plan_send(0, wire)
        assert [w for w, _ in plan.sends] == [wire, wire]

    def test_garbage_passes_recv_untouched(self):
        injector = DatagramFaultInjector(STORM, 7)
        assert injector.plan_recv(b"\x00garbage") == [b"\x00garbage"]

    def test_bad_rate_refused(self):
        with pytest.raises(ChaosError):
            WireFaultParams(corrupt_rate=1.5)


class TestWirePlans:
    def test_registry_names_match(self):
        assert set(WIRE_CHAOS_PLANS) == set(WIRE_CHAOS_PLAN_NAMES)

    def test_describe_covers_every_plan(self):
        names = [name for name, _ in describe_wire_plans()]
        assert names == list(WIRE_CHAOS_PLAN_NAMES)

    def test_make_plan_overrides(self):
        plan = make_wire_plan("datagram-storm", clients=8, intervals=2)
        assert plan.clients == 8
        assert plan.intervals == 2
        assert plan.faults.any_enabled

    def test_unknown_plan_refused(self):
        with pytest.raises(ChaosError):
            make_wire_plan("no-such-plan")

    def test_leader_kill_plan_shape(self):
        plan = WIRE_CHAOS_PLANS["leader-kill-live"]
        assert plan.workers >= 1  # the fleet must outlive the leader
        assert plan.leader_kill_interval > 0
        assert plan.resync_timeout > 0  # the watchdog drives re-homing

    def test_crash_plan_shape(self):
        plan = WIRE_CHAOS_PLANS["client-churn-crash"]
        assert plan.crashes
        assert plan.liveness_tries > 0
        assert all(isinstance(c, ClientCrash) for c in plan.crashes)
        assert plan.churn_alpha_leave == 0.0  # churn must not steal targets

    def test_plans_are_frozen(self):
        plan = WIRE_CHAOS_PLANS["datagram-storm"]
        with pytest.raises(AttributeError):
            plan.clients = 1
        assert isinstance(plan, WireChaosPlan)
