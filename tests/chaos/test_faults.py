"""Tests for repro.chaos.faults — fault vocabulary and the FaultPlan."""

from types import SimpleNamespace

import pytest

from repro.chaos.faults import (
    ClockJump,
    FaultPlan,
    FeedbackChaos,
    FeedbackFault,
    IoFault,
    StorageFault,
)
from repro.chaos.seams import FaultyClock
from repro.errors import ChaosError
from repro.obs.events import EventBus
from repro.obs.recorder import Recorder

_WHITESPACE = (0x20, 0x09, 0x0A, 0x0D)


class TestValidation:
    def test_unknown_io_op(self):
        with pytest.raises(ChaosError):
            IoFault("wal-explode")

    def test_bad_io_schedule(self):
        with pytest.raises(ChaosError):
            IoFault("wal-fsync", at=-1)
        with pytest.raises(ChaosError):
            IoFault("wal-fsync", times=0)

    def test_unknown_storage_kind(self):
        with pytest.raises(ChaosError):
            StorageFault("wal-shred", after_interval=0)

    def test_unknown_feedback_kind(self):
        with pytest.raises(ChaosError):
            FeedbackFault("whisper", at_interval=0)


class TestFaultPlanDeterminism:
    def test_same_seed_same_damage(self, tmp_path):
        payload = b'{"a": 1, "b": "payload-bytes-here"}\n' * 5
        for name in ("one", "two"):
            (tmp_path / name).write_bytes(payload)
        first = FaultPlan(name="t", seed=42).flip_byte(str(tmp_path / "one"))
        second = FaultPlan(name="t", seed=42).flip_byte(str(tmp_path / "two"))
        assert first == second
        assert (tmp_path / "one").read_bytes() == (tmp_path / "two").read_bytes()

    def test_flip_avoids_whitespace(self, tmp_path):
        path = tmp_path / "snap"
        payload = b'{"k": 1}   \n' * 20
        path.write_bytes(payload)
        for seed in range(12):
            path.write_bytes(payload)
            offset, mask = FaultPlan(name="t", seed=seed).flip_byte(str(path))
            assert payload[offset] not in _WHITESPACE
            assert mask >= 1
            assert path.read_bytes()[offset] == payload[offset] ^ mask

    def test_flip_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty"
        path.write_bytes(b" \n \n")  # only whitespace: nothing flippable
        with pytest.raises(ChaosError):
            FaultPlan(name="t", seed=0).flip_byte(str(path))

    def test_truncate_tail_cuts_bounded(self, tmp_path):
        path = tmp_path / "wal"
        path.write_bytes(b"x" * 100)
        cut = FaultPlan(name="t", seed=3).truncate_tail(str(path))
        assert 1 <= cut <= 23
        assert path.stat().st_size == 100 - cut


class TestIoSchedule:
    def test_occurrence_window(self):
        plan = FaultPlan(
            name="t", seed=0, io_faults=(IoFault("snapshot-fsync", at=1, times=2),)
        )
        plan.check_io("snapshot-fsync", "server.json")  # occurrence 0
        for _ in range(2):  # occurrences 1 and 2 injected
            with pytest.raises(OSError):
                plan.check_io("snapshot-fsync", "server.json")
        plan.check_io("snapshot-fsync", "server.json")  # occurrence 3
        assert plan.injected == 2

    def test_ops_count_independently(self):
        plan = FaultPlan(
            name="t", seed=0, io_faults=(IoFault("wal-fsync", at=0),)
        )
        plan.check_io("wal-write", "wal.jsonl")  # different op: no fault
        with pytest.raises(OSError):
            plan.check_io("wal-fsync", "wal.jsonl")

    def test_injections_emit_events(self):
        bus = EventBus()
        plan = FaultPlan(
            name="t", seed=0, io_faults=(IoFault("wal-fsync", at=0),)
        ).bind(Recorder(bus=bus))
        with pytest.raises(OSError):
            plan.check_io("wal-fsync", "wal.jsonl")
        kinds = [e["kind"] for e in bus.events]
        assert kinds == ["fault_injected"]
        assert bus.events[0]["detail"]["op"] == "wal-fsync"


class TestClockJumps:
    def test_apply_clock_jump(self):
        plan = FaultPlan(
            name="t", seed=0, clock_jumps=(ClockJump(at_interval=2, delta=60.0),)
        )
        clock = FaultyClock()
        assert plan.apply_clock_jump(clock, 1) is None
        jump = plan.apply_clock_jump(clock, 2)
        assert jump is not None and jump.delta == 60.0
        assert plan.injected == 1


class _StubSession:
    user_ids = (1, 2, 3)
    message = SimpleNamespace(message_id=9)


class TestFeedbackChaos:
    def make(self, kind, interval=0):
        plan = FaultPlan(
            name="t",
            seed=0,
            feedback_faults=(FeedbackFault(kind, at_interval=interval),),
        )
        plan.set_interval(interval)
        return FeedbackChaos(plan), plan

    def test_duplicate_doubles(self):
        chaos, _ = self.make("duplicate")
        assert chaos.mangle_nacks(_StubSession(), 1, ["a", "b"]) == [
            "a", "b", "a", "b",
        ]

    def test_reorder_reverses(self):
        chaos, _ = self.make("reorder")
        assert chaos.mangle_nacks(_StubSession(), 1, ["a", "b", "c"]) == [
            "c", "b", "a",
        ]

    def test_storm_fabricates_maximal_requests(self):
        chaos, plan = self.make("storm")
        mangled = chaos.mangle_nacks(_StubSession(), 1, [])
        assert len(mangled) == len(_StubSession.user_ids)
        for packet in mangled:
            assert packet.requests[0].n_parity == 255
        assert plan.injected == 1

    def test_untouched_outside_schedule(self):
        chaos, plan = self.make("storm", interval=5)
        plan.set_interval(0)
        nacks = ["x"]
        assert chaos.mangle_nacks(_StubSession(), 1, nacks) is nacks
        plan.set_interval(5)
        assert chaos.mangle_nacks(_StubSession(), 2, nacks) is nacks  # round
