"""End-to-end chaos-soak tests: determinism pin, plan outcomes, CLI.

The pinned digest is the determinism acceptance: the standard plan at
seed 7 must replay the exact same canonical fault timeline on every
machine.  If a deliberate change to the chaos layer or the daemon's
fault handling shifts the timeline, re-pin after inspecting the diff —
an *unexplained* digest change means nondeterminism leaked in.
"""

import io
import json

from repro.chaos.soak import canonical_timeline, run_soak, timeline_digest
from repro.cli import main
from repro.errors import RecoveryError

#: sha256 of the canonical fault timeline for (standard, seed=7).
#: Re-pinned when KeyTree.from_records stopped seeding version counters
#: from node records (restore is now a faithful round-trip): snapshots
#: written after a recovery serialise slightly differently, which moves
#: the plan RNG's byte-flip offsets.
STANDARD_SEED7_DIGEST = (
    "7a1eb3a936a7a660c08c350ec0c5eaf1d3aded6486cef6e792f08c05244515e2"
)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCanonicalTimeline:
    def test_drops_volatile_detail(self):
        events = [
            {"kind": "wal_quarantine", "t": 123.4, "detail": {
                "quarantined": "/tmp/x/wal.jsonl.corrupt-0",
                "salvaged": 3,
                "error": "oserror text with /tmp/x paths",
            }},
            {"kind": "span", "t": 1.0, "detail": {"name": "n"}},  # not chaos
        ]
        timeline = canonical_timeline(events)
        assert timeline == [
            {"kind": "wal_quarantine", "detail": {
                "quarantined": "wal.jsonl.corrupt-0", "salvaged": 3,
            }},
        ]

    def test_digest_is_stable(self):
        timeline = [{"kind": "fault_injected", "detail": {"op": "wal-fsync"}}]
        assert timeline_digest(timeline) == timeline_digest(list(timeline))
        assert timeline_digest(timeline) != timeline_digest([])


class TestStandardPlan:
    def test_all_invariants_green_and_digest_pinned(self, tmp_path):
        result = run_soak("standard", seed=7, state_dir=str(tmp_path))
        assert result.ok, result.to_dict()
        assert result.invariants and all(result.invariants.values())
        assert result.restarts == 3
        assert result.faults_injected > 0
        assert result.digest == STANDARD_SEED7_DIGEST

    def test_result_serializes(self, tmp_path):
        result = run_soak("standard", seed=7, state_dir=str(tmp_path))
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["ok"] is True
        assert payload["plan"] == "standard"
        assert payload["failure"] is None


class TestUnrecoverablePlan:
    def test_fails_with_recovery_error_not_traceback(self, tmp_path):
        result = run_soak("unrecoverable", seed=7, state_dir=str(tmp_path))
        assert isinstance(result.failure, RecoveryError)
        assert result.ok  # failure IS this plan's expected outcome
        assert result.intervals_completed < result.intervals_target
        assert "every snapshot generation is damaged" in str(result.failure)


class TestChaosSoakCli:
    def test_green_run_exit_zero(self, tmp_path):
        code, output = run_cli(
            "chaos-soak", "--plan", "feedback-abuse", "--seed", "7",
            "--state-dir", str(tmp_path),
        )
        assert code == 0
        assert "all invariants green" in output

    def test_unrecoverable_exits_nonzero_cleanly(self, tmp_path):
        code, output = run_cli(
            "chaos-soak", "--plan", "unrecoverable", "--seed", "7",
            "--state-dir", str(tmp_path),
        )
        assert code == 1
        assert "deliberately unrecoverable" in output
        assert "Traceback" not in output

    def test_digest_mismatch_exits_three(self, tmp_path):
        code, output = run_cli(
            "chaos-soak", "--plan", "standard", "--seed", "7",
            "--state-dir", str(tmp_path), "--expect-digest", "deadbeef",
        )
        assert code == 3
        assert "digest mismatch" in output

    def test_json_output(self, tmp_path):
        code, output = run_cli(
            "chaos-soak", "--plan", "feedback-abuse", "--seed", "7",
            "--state-dir", str(tmp_path), "--json",
        )
        assert code == 0
        payload, _ = json.JSONDecoder().raw_decode(
            output[output.index("{"):]
        )
        assert payload["plan"] == "feedback-abuse"
        assert payload["ok"] is True
