"""Tests for repro.analysis.tuning — parameter provisioning."""

import pytest

from repro.analysis.fec_model import expected_first_round_nacks
from repro.analysis.tuning import (
    block_size_for_encoding_budget,
    rho_for_deadline,
    rho_for_target_nacks,
)
from repro.errors import ConfigurationError

PAPER = dict(alpha=0.2, p_high=0.2, p_low=0.02, p_source=0.01)


class TestRhoForTargetNacks:
    def test_meets_the_target(self):
        rho = rho_for_target_nacks(
            3072, k=10, target_nacks=20, **PAPER
        )
        expected = expected_first_round_nacks(3072, 0.2, 0.2, 0.02, 0.01, 10, rho)
        assert expected <= 20

    def test_is_minimal(self):
        rho = rho_for_target_nacks(3072, k=10, target_nacks=20, **PAPER)
        one_less = rho - 1 / 10
        if one_less >= 1.0:
            assert (
                expected_first_round_nacks(
                    3072, 0.2, 0.2, 0.02, 0.01, 10, one_less
                )
                > 20
            )

    def test_matches_adaptive_stable_band(self):
        """The a-priori fixed point sits in the AdjustRho stable band
        observed in bench E06 (1.5-1.6 at the paper's defaults)."""
        rho = rho_for_target_nacks(3072, k=10, target_nacks=20, **PAPER)
        assert 1.3 <= rho <= 1.8

    def test_looser_target_smaller_rho(self):
        tight = rho_for_target_nacks(3072, k=10, target_nacks=5, **PAPER)
        loose = rho_for_target_nacks(3072, k=10, target_nacks=100, **PAPER)
        assert loose <= tight

    def test_zero_loss_needs_no_parity(self):
        rho = rho_for_target_nacks(
            1000,
            alpha=0.0,
            p_high=0.0,
            p_low=0.0,
            p_source=0.0,
            k=10,
            target_nacks=0,
        )
        assert rho == 1.0


class TestRhoForDeadline:
    def test_high_loss_single_round(self):
        rho = rho_for_deadline(0.2, 0.01, k=10, deadline_rounds=1,
                               success_probability=0.999)
        assert rho > 1.5

    def test_two_rounds_cheaper_than_one(self):
        one = rho_for_deadline(0.2, 0.01, k=10, deadline_rounds=1)
        two = rho_for_deadline(0.2, 0.01, k=10, deadline_rounds=2)
        assert two <= one

    def test_low_loss_is_cheap(self):
        rho = rho_for_deadline(0.02, 0.01, k=10, deadline_rounds=2,
                               success_probability=0.999)
        assert rho <= 1.3

    def test_lossless(self):
        assert rho_for_deadline(0.0, 0.0, k=10) == 1.0


class TestBlockSizeBudget:
    def test_budget_inversion(self):
        k = block_size_for_encoding_budget(
            expected_enc_packets=100,
            encoding_budget_units=8000,
            overhead_factor=1.8,
        )
        # cost = k * 0.8 * 100 <= 8000 -> k <= 100 (capped at 128)
        assert k == 100

    def test_tiny_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            block_size_for_encoding_budget(
                expected_enc_packets=1000,
                encoding_budget_units=100,
                overhead_factor=2.0,
            )

    def test_capped_at_k_max(self):
        k = block_size_for_encoding_budget(
            expected_enc_packets=10,
            encoding_budget_units=10**9,
        )
        assert k == 128

    def test_no_overhead_returns_max(self):
        assert (
            block_size_for_encoding_budget(100, 10, overhead_factor=1.0)
            == 128
        )
