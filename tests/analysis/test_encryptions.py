"""Tests for repro.analysis.encryptions — closed forms vs marking."""

import pytest

from repro.analysis.encryptions import (
    expected_encryptions_joins_equal_leaves,
    expected_encryptions_leaves_only,
    expected_updated_knodes_leaves_only,
    simulate_batch,
)
from repro.errors import ConfigurationError
from repro.util import spawn_rng


class TestClosedFormsSmall:
    """Exact values checked by exhaustive reasoning on tiny trees."""

    def test_single_leave_d2_h2(self):
        # N=4, d=2: one departure updates both path k-nodes.
        # Edges: root->2 children, but one child subtree has the leaver;
        # deepest k-node keeps 1 sibling: E = (2-1) + 2 = 3 = d*h - 1.
        assert expected_encryptions_leaves_only(4, 2, 1) == pytest.approx(3.0)

    def test_single_leave_matches_dh_minus_1(self):
        for degree, height in [(2, 3), (3, 2), (4, 6)]:
            n_users = degree**height
            assert expected_encryptions_leaves_only(
                n_users, degree, 1
            ) == pytest.approx(degree * height - 1)

    def test_all_leave_is_zero(self):
        assert expected_encryptions_leaves_only(16, 4, 16) == pytest.approx(
            0.0
        )

    def test_zero_leaves_zero(self):
        assert expected_encryptions_leaves_only(16, 4, 0) == 0.0
        assert expected_encryptions_joins_equal_leaves(16, 4, 0) == 0.0

    def test_single_replace_d2(self):
        # J=L=1 on N=4, d=2: both path k-nodes change, no pruning:
        # deepest encrypts to 2 children, root to 2: E = 4 = d*h.
        assert expected_encryptions_joins_equal_leaves(
            4, 2, 1
        ) == pytest.approx(4.0)

    def test_full_replace_rekeys_everything(self):
        # J=L=N: every k-node changes; E = total edges = d + d^2.
        assert expected_encryptions_joins_equal_leaves(
            16, 4, 16
        ) == pytest.approx(4 + 16)

    def test_updated_knodes_single_leave(self):
        # One departure updates exactly h k-nodes.
        assert expected_updated_knodes_leaves_only(64, 4, 1) == pytest.approx(
            3.0
        )

    def test_updated_knodes_all_leave(self):
        assert expected_updated_knodes_leaves_only(
            64, 4, 64
        ) == pytest.approx(0.0)


class TestClosedFormsVsSimulation:
    @pytest.mark.parametrize(
        "n_users,degree,n_leaves",
        [(256, 4, 64), (256, 4, 16), (512, 2, 128), (729, 3, 243)],
    )
    def test_leaves_only(self, n_users, degree, n_leaves):
        rng = spawn_rng(1)
        sim = simulate_batch(
            n_users, degree, 0, n_leaves, n_trials=30, rng=rng
        )
        analytic = expected_encryptions_leaves_only(n_users, degree, n_leaves)
        mean = sim["encryptions"].mean()
        assert analytic == pytest.approx(mean, rel=0.05)

    @pytest.mark.parametrize(
        "n_users,degree,batch", [(256, 4, 64), (512, 2, 64)]
    )
    def test_joins_equal_leaves(self, n_users, degree, batch):
        rng = spawn_rng(2)
        sim = simulate_batch(n_users, degree, batch, batch, n_trials=30, rng=rng)
        analytic = expected_encryptions_joins_equal_leaves(
            n_users, degree, batch
        )
        assert analytic == pytest.approx(sim["encryptions"].mean(), rel=0.05)

    def test_updated_knodes_vs_simulation(self):
        rng = spawn_rng(3)
        sim = simulate_batch(256, 4, 0, 64, n_trials=30, rng=rng)
        analytic = expected_updated_knodes_leaves_only(256, 4, 64)
        assert analytic == pytest.approx(
            sim["updated_knodes"].mean(), rel=0.05
        )


class TestShape:
    def test_peak_near_n_over_d(self):
        """E[#encryptions] peaks around L = N/d then declines (Fig 6)."""
        n_users, degree = 1024, 4
        values = {
            n_leaves: expected_encryptions_leaves_only(
                n_users, degree, n_leaves
            )
            for n_leaves in (64, 256, 512, 896, 1000)
        }
        assert values[256] > values[64]
        assert values[256] > values[896]
        assert values[896] > values[1000]

    def test_monotone_in_batch_for_replacement(self):
        previous = 0.0
        for batch in (1, 16, 64, 256):
            value = expected_encryptions_joins_equal_leaves(1024, 4, batch)
            assert value > previous
            previous = value

    def test_grows_linearly_with_n(self):
        """At L = N/4 the expected size is ~linear in N (Fig 6 right)."""
        small = expected_encryptions_leaves_only(1024, 4, 256)
        large = expected_encryptions_leaves_only(4096, 4, 1024)
        assert large / small == pytest.approx(4.0, rel=0.05)


class TestValidation:
    def test_non_power_rejected(self):
        with pytest.raises(ConfigurationError):
            expected_encryptions_leaves_only(1000, 4, 10)

    def test_too_many_leaves(self):
        with pytest.raises(ConfigurationError):
            expected_encryptions_leaves_only(16, 4, 17)

    def test_degree_one_rejected(self):
        with pytest.raises(ConfigurationError):
            expected_encryptions_leaves_only(16, 1, 2)
