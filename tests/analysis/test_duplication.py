"""Tests for repro.analysis.duplication — UKA duplication model."""

import numpy as np
import pytest

from repro.analysis.duplication import (
    expected_duplication_overhead,
    expected_duplications_per_boundary,
    paper_duplication_bound,
)
from repro.keytree import KeyTree, MarkingAlgorithm
from repro.rekey.assignment import UserOrientedKeyAssignment
from repro.util import spawn_rng


def measured_overhead(n_users, degree, n_leaves, trials=4, seed=0):
    rng = spawn_rng(seed)
    users = ["u%d" % i for i in range(n_users)]
    values = []
    for _ in range(trials):
        tree = KeyTree.full_balanced(users, degree)
        leavers = rng.choice(n_users, n_leaves, replace=False)
        batch = MarkingAlgorithm(renew_keys=False).apply(
            tree, leaves=[users[i] for i in leavers]
        )
        result = UserOrientedKeyAssignment().assign(batch.needs_by_user())
        values.append(result.duplication_overhead)
    return float(np.mean(values))


class TestPerBoundary:
    def test_geometric_weighting(self):
        # d=4, h=6: 0.75*5 + 0.1875*4 + ... ~ 4.66
        value = expected_duplications_per_boundary(4, 6)
        assert 4.0 < value < 5.0

    def test_grows_with_height(self):
        assert expected_duplications_per_boundary(
            4, 7
        ) > expected_duplications_per_boundary(4, 6)

    def test_binary_tree(self):
        # d=2: sum (1/2^j)(h-j); h=3: 0.5*2 + 0.25*1 = 1.25
        assert expected_duplications_per_boundary(2, 3) == pytest.approx(1.25)


class TestOverheadModel:
    def test_within_band_of_real_packer(self):
        model = expected_duplication_overhead(4096, 4, 1024)
        measured = measured_overhead(4096, 4, 1024)
        assert measured / 2.5 < model < measured * 2.5

    def test_respects_paper_bound_direction(self):
        """The paper's bound dominates the observed overhead."""
        bound = paper_duplication_bound(4096, 4)
        measured = measured_overhead(4096, 4, 1024)
        assert measured <= bound * 1.25  # bound, with trial noise slack

    def test_overhead_grows_with_log_n(self):
        small = expected_duplication_overhead(256, 4, 64)
        large = expected_duplication_overhead(16384, 4, 4096)
        assert large > small

    def test_zero_leaves(self):
        assert expected_duplication_overhead(256, 4, 0) == 0.0

    def test_tiny_message_no_boundaries(self):
        # A message that fits one packet duplicates nothing.
        assert expected_duplication_overhead(16, 4, 1) == 0.0


class TestBound:
    def test_paper_values(self):
        assert paper_duplication_bound(4096, 4) == pytest.approx(
            (6 - 1) / 46, rel=1e-6
        )

    def test_invalid_degree(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            paper_duplication_bound(16, 1)
