"""Tests for repro.analysis.fec_model — model vs fleet simulation."""

import numpy as np
import pytest

from repro.analysis.fec_model import (
    combined_loss_rate,
    expected_first_round_nacks,
    first_round_failure_probability,
    round_one_recovery_fraction,
)
from repro.sim import LossParameters, MulticastTopology
from repro.transport import FleetConfig, FleetSimulator
from repro.transport.fleet import make_paper_workload
from repro.util import RandomSource


class TestCombinedLoss:
    def test_independent_composition(self):
        assert combined_loss_rate(0.2, 0.01) == pytest.approx(
            1 - 0.8 * 0.99
        )

    def test_zero(self):
        assert combined_loss_rate(0.0, 0.0) == 0.0


class TestFailureProbability:
    def test_zero_loss(self):
        assert first_round_failure_probability(0.0, 10, 0) == 0.0

    def test_no_parity_closed_form(self):
        """a = 0: losing your own packet is unrecoverable (at most k-1 of
        the k codewords remain), so P(fail) = p exactly."""
        p, k = 0.2, 10
        assert first_round_failure_probability(p, k, 0) == pytest.approx(p)

    def test_one_parity_closed_form(self):
        """a = 1: fail iff own packet lost and >= 1 of the other k lost."""
        p, k = 0.2, 10
        expected = p * (1 - (1 - p) ** k)
        assert first_round_failure_probability(p, k, 1) == pytest.approx(
            expected
        )

    def test_k_one_no_parity(self):
        # Single-packet block: failure = losing the packet.
        assert first_round_failure_probability(0.3, 1, 0) == pytest.approx(0.3)

    def test_monotone_decreasing_in_parity(self):
        values = [
            first_round_failure_probability(0.2, 10, a) for a in range(8)
        ]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_roughly_exponential_decay_in_parity(self):
        """Each extra parity packet multiplies failure by ~p (Fig 9)."""
        p = 0.2
        values = [
            first_round_failure_probability(p, 10, a) for a in range(2, 9)
        ]
        ratios = [b / a for a, b in zip(values, values[1:])]
        # Successive ratios shrink toward ~p: log-linear decay.
        assert all(r < 0.8 for r in ratios)
        assert all(b <= a + 1e-12 for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] < 0.5


class TestRecoveryFraction:
    def test_paper_operating_point(self):
        """rho=1, alpha=20 %: the model predicts ~93-95 % single-round
        recovery (the paper reports 94.4 % under burst loss)."""
        fraction = round_one_recovery_fraction(
            0.2, 0.2, 0.02, 0.01, 10, 1.0
        )
        assert 0.92 < fraction < 0.96

    def test_high_rho_near_one(self):
        fraction = round_one_recovery_fraction(0.2, 0.2, 0.02, 0.01, 10, 2.0)
        assert fraction > 0.999

    def test_alpha_interpolates(self):
        lo = round_one_recovery_fraction(0.0, 0.2, 0.02, 0.01, 10, 1.0)
        hi = round_one_recovery_fraction(1.0, 0.2, 0.02, 0.01, 10, 1.0)
        mid = round_one_recovery_fraction(0.5, 0.2, 0.02, 0.01, 10, 1.0)
        assert lo > mid > hi
        assert mid == pytest.approx((lo + hi) / 2)


class TestModelVsSimulation:
    def test_nack_prediction_matches_fleet(self):
        """Independent-loss fleet run vs the analytic NACK count."""
        workload = make_paper_workload(n_users=1024, k=10, seed=3)
        params = LossParameters(bursty=False)
        topology = MulticastTopology(
            workload.n_users, params=params, random_source=RandomSource(4)
        )
        sim = FleetSimulator(
            topology, FleetConfig(multicast_only=True), seed=5
        )
        counts = []
        for index in range(6):
            stats, _ = sim.run_message(workload, rho=1.0, message_index=index)
            counts.append(stats.first_round_nacks)
        simulated = np.mean(counts)
        predicted = expected_first_round_nacks(
            workload.n_users, 0.2, 0.2, 0.02, 0.01, 10, 1.0
        )
        # The model ignores source-loss correlation across users; allow
        # a generous band.
        assert simulated == pytest.approx(predicted, rel=0.4)
