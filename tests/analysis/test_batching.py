"""Tests for repro.analysis.batching."""

import pytest

from repro.analysis.batching import (
    BatchCost,
    batch_cost,
    individual_cost,
    individual_leave_encryptions,
    signature_savings,
)
from repro.crypto.cost import CostModel
from repro.util import spawn_rng


class TestBatchCost:
    def test_seconds_uses_model(self):
        cost = BatchCost(encryptions=10, key_generations=5, signatures=1)
        model = CostModel(
            keygen_seconds=1.0, encrypt_seconds=2.0, sign_seconds=100.0
        )
        assert cost.seconds(model) == pytest.approx(5 + 20 + 100)

    def test_addition(self):
        total = BatchCost(1, 2, 3) + BatchCost(10, 20, 30)
        assert total == BatchCost(11, 22, 33)


class TestFormulas:
    def test_individual_leave_formula(self):
        assert individual_leave_encryptions(4, 6) == 23
        assert individual_leave_encryptions(2, 3) == 5

    def test_signature_savings(self):
        assert signature_savings(10, 10) == 19
        assert signature_savings(0, 1) == 0
        assert signature_savings(0, 0) == 0


class TestMeasuredCosts:
    def test_individual_leave_matches_formula(self):
        rng = spawn_rng(1)
        cost = individual_cost(256, 4, 0, 1, rng=rng)
        assert cost.encryptions == individual_leave_encryptions(4, 4)
        assert cost.signatures == 1

    def test_batch_cheaper_than_individual(self):
        rng = spawn_rng(2)
        batch = batch_cost(256, 4, 32, 32, rng=rng)
        rng = spawn_rng(2)  # same request set
        individual = individual_cost(256, 4, 32, 32, rng=rng)
        assert batch.encryptions < individual.encryptions
        assert batch.signatures == 1
        assert individual.signatures == 64
        assert batch.seconds() < individual.seconds() / 10

    def test_batch_of_one_equals_individual(self):
        rng = spawn_rng(3)
        batch = batch_cost(256, 4, 0, 1, rng=rng)
        rng = spawn_rng(3)
        individual = individual_cost(256, 4, 0, 1, rng=rng)
        assert batch == individual

    def test_empty_batch_is_free(self):
        cost = batch_cost(64, 4, 0, 0)
        assert cost.encryptions == 0
        assert cost.signatures == 0
        assert cost.seconds() == 0.0

    def test_signature_dominates_batch_gain(self):
        """With RSA-scale signing, batching wins even at tiny batches."""
        rng = spawn_rng(4)
        batch = batch_cost(256, 4, 4, 4, rng=rng)
        rng = spawn_rng(4)
        individual = individual_cost(256, 4, 4, 4, rng=rng)
        model = CostModel()
        ratio = individual.seconds(model) / batch.seconds(model)
        assert ratio > 5
