"""Tests for repro.analysis.rounds_model — multi-round recovery."""

import numpy as np
import pytest

from repro.analysis.fec_model import combined_loss_rate
from repro.analysis.rounds_model import (
    expected_bandwidth_overhead,
    expected_block_amax,
    expected_rounds_per_user,
)
from repro.errors import ConfigurationError


class TestExpectedRounds:
    def test_lossless_is_one_round(self):
        assert expected_rounds_per_user(0.0, 10, 0) == 1.0

    def test_p_one_rejected(self):
        with pytest.raises(ConfigurationError):
            expected_rounds_per_user(1.0, 10, 0)

    def test_monotone_in_loss(self):
        values = [
            expected_rounds_per_user(p, 10, 0)
            for p in (0.02, 0.1, 0.2, 0.4)
        ]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_parity_reduces_rounds(self):
        base = expected_rounds_per_user(0.2, 10, 0)
        helped = expected_rounds_per_user(0.2, 10, 6)
        assert helped < base
        assert helped >= 1.0

    def test_close_to_one_at_low_loss(self):
        assert expected_rounds_per_user(0.02, 10, 0) < 1.05

    def test_matches_fleet_simulation(self):
        """Mixed-population model vs the paper-default fleet run."""
        from repro.sim import build_paper_topology
        from repro.transport import FleetConfig, FleetSimulator
        from repro.transport.fleet import make_paper_workload

        workload = make_paper_workload(n_users=1024, k=10, seed=1)
        simulator = FleetSimulator(
            build_paper_topology(n_users=workload.n_users, seed=2),
            FleetConfig(rho=1.0, adapt_rho=False, multicast_only=True),
            seed=3,
        )
        measured = np.mean(
            [
                simulator.run_message(workload, message_index=i)[0]
                .mean_rounds_per_user
                for i in range(4)
            ]
        )
        p_high = combined_loss_rate(0.2, 0.01)
        p_low = combined_loss_rate(0.02, 0.01)
        model = 0.2 * expected_rounds_per_user(
            p_high, 10, 0
        ) + 0.8 * expected_rounds_per_user(p_low, 10, 0)
        assert measured == pytest.approx(model, rel=0.15)


class TestBlockAmax:
    def test_zero_loss(self):
        assert expected_block_amax(0.0, 10, 0, 50) == 0.0

    def test_grows_with_population(self):
        small = expected_block_amax(0.2, 10, 0, 5)
        large = expected_block_amax(0.2, 10, 0, 500)
        assert large > small

    def test_bounded_by_k(self):
        assert expected_block_amax(0.5, 10, 0, 10_000) <= 10

    def test_parity_shrinks_amax(self):
        assert expected_block_amax(0.2, 10, 6, 100) < expected_block_amax(
            0.2, 10, 0, 100
        )


class TestBandwidthOverhead:
    def test_lossless_floor(self):
        assert expected_bandwidth_overhead(0.0, 10, 0, 50) == 1.0
        assert expected_bandwidth_overhead(0.0, 10, 5, 50) == 1.5

    def test_monotone_in_loss(self):
        low = expected_bandwidth_overhead(0.05, 10, 0, 90)
        high = expected_bandwidth_overhead(0.3, 10, 0, 90)
        assert high > low

    def test_reasonable_at_paper_point(self):
        """alpha=1 (all high loss): simulated overhead ~2; model close."""
        p = combined_loss_rate(0.2, 0.01)
        value = expected_bandwidth_overhead(p, 10, 0, 380)
        assert 1.5 < value < 2.6
