"""Tests for repro.analysis.scalability."""

import pytest

from repro.analysis.scalability import (
    max_supported_group_size,
    processing_seconds_per_interval,
)
from repro.crypto.cost import CostModel
from repro.errors import ConfigurationError


class TestProcessingSeconds:
    def test_zero_churn_is_free(self):
        assert processing_seconds_per_interval(1024, 4, 0.0) == 0.0

    def test_grows_with_group_size(self):
        small = processing_seconds_per_interval(1024, 4, 0.25)
        large = processing_seconds_per_interval(16384, 4, 0.25)
        assert large > 4 * small

    def test_grows_with_churn(self):
        low = processing_seconds_per_interval(4096, 4, 0.05)
        high = processing_seconds_per_interval(4096, 4, 0.25)
        assert high > low

    def test_leaves_only_cheaper_than_replacement(self):
        leaves = processing_seconds_per_interval(
            4096, 4, 0.25, join_equals_leave=False
        )
        replaced = processing_seconds_per_interval(
            4096, 4, 0.25, join_equals_leave=True
        )
        assert leaves < replaced

    def test_includes_one_signature(self):
        model = CostModel(
            keygen_seconds=0.0, encrypt_seconds=0.0, sign_seconds=7.0
        )
        seconds = processing_seconds_per_interval(
            1024, 4, 0.25, cost_model=model
        )
        assert seconds == pytest.approx(7.0)


class TestMaxGroupSize:
    def test_longer_interval_supports_more_users(self):
        short = max_supported_group_size(1.0)
        long = max_supported_group_size(600.0)
        assert long > short

    def test_returns_power_of_degree(self):
        size = max_supported_group_size(30.0, degree=4)
        assert size > 0
        while size % 4 == 0:
            size //= 4
        assert size == 1

    def test_impossible_budget_returns_zero(self):
        model = CostModel(sign_seconds=1e6)
        assert max_supported_group_size(1.0, cost_model=model) == 0

    def test_budget_fraction_shrinks_capacity(self):
        full = max_supported_group_size(60.0, budget_fraction=1.0)
        half = max_supported_group_size(60.0, budget_fraction=0.01)
        assert half <= full

    def test_single_server_scales_to_large_groups(self):
        """The paper's conclusion: minute-scale intervals support groups
        far beyond 10^5 users."""
        assert max_supported_group_size(60.0, degree=4) >= 4**9

    def test_degree_validated(self):
        with pytest.raises(ConfigurationError):
            max_supported_group_size(10.0, degree=1)
