"""Tests for repro.keytree.ids — the key-identification strategy (§4.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import KeyTreeError
from repro.keytree import ids as idmath


class TestParentChild:
    def test_root_children_d3(self):
        assert idmath.children_ids(0, 3) == [1, 2, 3]

    def test_figure4_example(self):
        """Figure 4: node m's children are d*m+1 .. d*m+d."""
        assert idmath.children_ids(3, 3) == [10, 11, 12]

    def test_parent_of_children(self):
        for child in idmath.children_ids(7, 4):
            assert idmath.parent_id(child, 4) == 7

    def test_root_has_no_parent(self):
        with pytest.raises(KeyTreeError):
            idmath.parent_id(0, 3)

    def test_child_index(self):
        assert [idmath.child_index(c, 3) for c in idmath.children_ids(5, 3)] == [
            0,
            1,
            2,
        ]

    def test_degree_must_be_at_least_two(self):
        with pytest.raises(KeyTreeError):
            idmath.children_ids(0, 1)

    @given(m=st.integers(0, 10**6), d=st.integers(2, 16))
    def test_parent_child_inverse(self, m, d):
        for child in idmath.children_ids(m, d):
            assert idmath.parent_id(child, d) == m


class TestLevels:
    def test_level_zero_is_root(self):
        assert idmath.level_of(0, 3) == 0

    def test_level_one(self):
        for node_id in (1, 2, 3):
            assert idmath.level_of(node_id, 3) == 1

    def test_level_two_bounds(self):
        assert idmath.level_of(4, 3) == 2
        assert idmath.level_of(12, 3) == 2
        assert idmath.level_of(13, 3) == 3

    def test_first_id_of_level(self):
        assert idmath.first_id_of_level(0, 3) == 0
        assert idmath.first_id_of_level(1, 3) == 1
        assert idmath.first_id_of_level(2, 3) == 4
        assert idmath.first_id_of_level(3, 3) == 13

    def test_ids_of_level(self):
        assert list(idmath.ids_of_level(2, 3)) == list(range(4, 13))

    @given(level=st.integers(0, 10), d=st.integers(2, 8))
    def test_level_of_first_and_last(self, level, d):
        ids = idmath.ids_of_level(level, d)
        assert idmath.level_of(ids[0], d) == level
        assert idmath.level_of(ids[-1], d) == level


class TestPaths:
    def test_path_to_root(self):
        assert idmath.path_to_root(12, 3) == [12, 3, 0]

    def test_path_of_root(self):
        assert idmath.path_to_root(0, 5) == [0]

    def test_is_ancestor_true(self):
        assert idmath.is_ancestor(3, 12, 3)
        assert idmath.is_ancestor(0, 12, 3)

    def test_is_ancestor_self(self):
        assert idmath.is_ancestor(12, 12, 3)

    def test_is_ancestor_false(self):
        assert not idmath.is_ancestor(1, 12, 3)
        assert not idmath.is_ancestor(12, 3, 3)

    @given(node=st.integers(0, 10**6), d=st.integers(2, 8))
    def test_path_is_strictly_decreasing(self, node, d):
        path = idmath.path_to_root(node, d)
        assert path[-1] == 0
        assert all(a > b for a, b in zip(path, path[1:]))
        assert len(path) == idmath.level_of(node, d) + 1


class TestLeftmostDescendant:
    def test_generation_zero_is_self(self):
        assert idmath.leftmost_descendant(7, 0, 3) == 7

    def test_generation_one_is_leftmost_child(self):
        assert idmath.leftmost_descendant(7, 1, 3) == 22

    def test_formula_matches_iterated_children(self):
        node, d = 5, 4
        expected = node
        for generations in range(5):
            assert idmath.leftmost_descendant(node, generations, d) == expected
            expected = d * expected + 1

    @given(
        node=st.integers(0, 1000),
        generations=st.integers(0, 6),
        d=st.integers(2, 6),
    )
    def test_descendant_is_ancestor_inverse(self, node, generations, d):
        descendant = idmath.leftmost_descendant(node, generations, d)
        assert idmath.is_ancestor(node, descendant, d)
        assert idmath.level_of(descendant, d) == (
            idmath.level_of(node, d) + generations
        )


class TestDeriveNewUserId:
    """Theorem 4.2: users re-derive their ID from maxKID alone."""

    def test_unsplit_user_keeps_id(self):
        # nk = 3, user at 12: f(0)=12 in (3, 15] -> unchanged.
        assert idmath.derive_new_user_id(12, 3, 3) == 12

    def test_split_once(self):
        # A user at 4 whose node was split (nk grew to 4): f(1) = 13.
        assert idmath.derive_new_user_id(4, 4, 3) == 13

    def test_figure_example_from_smoke(self):
        # 9 users d=3; split of node 4 moved its user to 13, nk = 4.
        assert idmath.derive_new_user_id(4, 4, 3) == 13
        # Untouched users keep their IDs.
        for node_id in range(5, 13):
            assert idmath.derive_new_user_id(node_id, 4, 3) == node_id

    def test_inconsistent_maxkid_raises(self):
        # old_id 5 with nk = 100, d = 3: f(0)=5<=100, f(1)=16<=100,
        # f(2)=49<=100, f(3)=148 <= 303 -> actually consistent; craft a
        # genuinely impossible case: old_id far beyond the bound.
        with pytest.raises(KeyTreeError):
            idmath.derive_new_user_id(1000, 2, 3)

    @given(old=st.integers(1, 500), x=st.integers(0, 4), d=st.integers(2, 5))
    def test_uniqueness_of_x(self, old, x, d):
        """If nk is such that f(x) is the answer, no other f(y) fits."""
        target = idmath.leftmost_descendant(old, x, d)
        # Choose nk so that target is in (nk, d*nk + d]: nk = target - 1
        # always satisfies the lower bound; check upper bound holds.
        nk = target - 1
        if target <= d * nk + d and nk >= 0:
            assert idmath.derive_new_user_id(old, nk, d) == target


class TestCapacity:
    def test_subtree_capacity(self):
        assert idmath.subtree_capacity(3, 2) == 8
        assert idmath.subtree_capacity(0, 4) == 1

    def test_min_height_for(self):
        assert idmath.min_height_for(1, 4) == 0
        assert idmath.min_height_for(4, 4) == 1
        assert idmath.min_height_for(5, 4) == 2
        assert idmath.min_height_for(4096, 4) == 6
        assert idmath.min_height_for(8192, 4) == 7
