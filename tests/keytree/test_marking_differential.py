"""Differential tests: incremental marking vs the from-scratch oracle.

:class:`IncrementalMarkingAlgorithm` re-marks only the paths touched by
one interval's joins and leaves; :class:`MarkingAlgorithm` rebuilds the
labelling from scratch.  These tests drive both over the *same* churn —
two trees built from identically-seeded key factories — and require
**exact** equality, never statistical tolerance:

- the trees themselves must stay byte-identical (the canonical
  ``tree_to_dict`` JSON, which covers structure, user placement, and
  every key's bytes);
- every semantic output of the batch must match: updated k-nodes,
  encryption edges, per-user needs, join/departure/move bookkeeping.

One deliberate representation difference exists and is pinned by
``test_labels_agree_semantically``: the from-scratch pass records an
explicit ``UNCHANGED`` label for every untouched k-node, while the
incremental pass never visits them.  ``RekeySubtree.label_of`` defaults
missing entries to ``UNCHANGED``, so the *semantics* coincide even
though the raw ``labels`` dicts differ — comparisons must go through
``label_of``, not the dict.
"""

import json

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.crypto.keys import KeyFactory
from repro.keytree import KeyTree
from repro.keytree.marking import (
    IncrementalMarkingAlgorithm,
    MarkingAlgorithm,
)
from repro.keytree.persistence import tree_to_dict


def make_tree_pair(n_users, degree, key_seed=7):
    """Two keyed trees that start byte-identical."""
    users = ["u%04d" % i for i in range(n_users)]
    trees = []
    for _ in range(2):
        trees.append(
            KeyTree.full_balanced(
                users, degree, key_factory=KeyFactory(seed=key_seed)
            )
        )
    return trees


def canonical(tree):
    return json.dumps(tree_to_dict(tree), sort_keys=True)


def assert_batches_equal(oracle, candidate):
    """Every semantic output of one interval, exactly equal."""
    assert (
        oracle.subtree.updated_knode_ids
        == candidate.subtree.updated_knode_ids
    )
    assert [
        (e.parent_id, e.child_id) for e in oracle.subtree.edges
    ] == [(e.parent_id, e.child_id) for e in candidate.subtree.edges]
    assert oracle.joined_ids == candidate.joined_ids
    assert oracle.departed_ids == candidate.departed_ids
    assert oracle.moved == candidate.moved
    assert oracle.max_knode_id == candidate.max_knode_id
    assert oracle.needs_by_user() == candidate.needs_by_user()
    # Labels agree through label_of (see module docstring).
    for node_id in set(oracle.subtree.labels) | set(
        candidate.subtree.labels
    ):
        assert oracle.subtree.label_of(node_id) == (
            candidate.subtree.label_of(node_id)
        )


def run_intervals(schedule, n_users=48, degree=3, key_seed=7):
    """Apply ``schedule`` — a list of (n_join, n_leave) pairs — to both
    algorithms on twin trees; assert exact equivalence after each."""
    baseline_tree, incremental_tree = make_tree_pair(
        n_users, degree, key_seed
    )
    oracle = MarkingAlgorithm()
    incremental = IncrementalMarkingAlgorithm()
    rng = np.random.default_rng(key_seed)
    next_name = n_users
    for n_join, n_leave in schedule:
        members = sorted(baseline_tree.users)
        n_leave = min(n_leave, len(members))
        leaves = [
            str(u)
            for u in rng.choice(members, size=n_leave, replace=False)
        ]
        joins = ["u%04d" % (next_name + i) for i in range(n_join)]
        next_name += n_join
        oracle_batch = oracle.apply(
            baseline_tree, joins=list(joins), leaves=list(leaves)
        )
        incremental_batch = incremental.apply(
            incremental_tree, joins=list(joins), leaves=list(leaves)
        )
        assert canonical(baseline_tree) == canonical(incremental_tree)
        assert_batches_equal(oracle_batch, incremental_batch)


class TestRandomChurnDifferential:
    """The hypothesis sweep the tentpole requires (>=200 examples)."""

    @settings(max_examples=140, deadline=None)
    @given(
        seed=st.integers(0, 10_000_000),
        degree=st.sampled_from([2, 3, 4]),
        intervals=st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)),
            min_size=1,
            max_size=4,
        ),
    )
    def test_interleaved_join_leave_batches(
        self, seed, degree, intervals
    ):
        run_intervals(
            intervals, n_users=36, degree=degree, key_seed=seed
        )

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10_000_000))
    def test_heavy_churn_long_sequence(self, seed):
        """Deeper sequences with churn heavy enough to force splits,
        prunes, and slot reuse in the same run."""
        rng = np.random.default_rng(seed)
        schedule = [
            (int(rng.integers(0, 30)), int(rng.integers(0, 30)))
            for _ in range(6)
        ]
        run_intervals(schedule, n_users=64, degree=4, key_seed=seed)


class TestEdgeCases:
    def test_empty_batch(self):
        run_intervals([(0, 0)])

    def test_empty_batch_after_churn(self):
        run_intervals([(5, 9), (0, 0), (3, 0), (0, 0)])

    def test_full_turnover(self):
        """Every member leaves and an equal cohort joins: all slots are
        replacements, nothing is vacated, nothing is pruned."""
        n = 27
        baseline_tree, incremental_tree = make_tree_pair(n, 3)
        leaves = sorted(baseline_tree.users)
        joins = ["new%04d" % i for i in range(n)]
        oracle_batch = MarkingAlgorithm().apply(
            baseline_tree, joins=list(joins), leaves=list(leaves)
        )
        incremental_batch = IncrementalMarkingAlgorithm().apply(
            incremental_tree, joins=list(joins), leaves=list(leaves)
        )
        assert canonical(baseline_tree) == canonical(incremental_tree)
        assert_batches_equal(oracle_batch, incremental_batch)
        assert set(baseline_tree.users) == set(joins)

    def test_total_departure_then_rebootstrap(self):
        """Everyone leaves (empty tree), then a join-only batch takes
        the bootstrap path; both algorithms must mirror each other
        through both extremes."""
        baseline_tree, incremental_tree = make_tree_pair(16, 4)
        leaves = sorted(baseline_tree.users)
        oracle = MarkingAlgorithm()
        incremental = IncrementalMarkingAlgorithm()
        assert_batches_equal(
            oracle.apply(baseline_tree, joins=[], leaves=list(leaves)),
            incremental.apply(
                incremental_tree, joins=[], leaves=list(leaves)
            ),
        )
        assert canonical(baseline_tree) == canonical(incremental_tree)
        assert baseline_tree.n_users == 0
        joins = ["re%04d" % i for i in range(9)]
        assert_batches_equal(
            oracle.apply(baseline_tree, joins=list(joins), leaves=[]),
            incremental.apply(
                incremental_tree, joins=list(joins), leaves=[]
            ),
        )
        assert canonical(baseline_tree) == canonical(incremental_tree)

    def test_labels_agree_semantically(self):
        """The raw labels dicts intentionally differ (incremental skips
        untouched k-nodes); label_of must still agree everywhere."""
        baseline_tree, incremental_tree = make_tree_pair(64, 4)
        oracle_batch = MarkingAlgorithm().apply(
            baseline_tree, joins=[], leaves=["u0003"]
        )
        incremental_batch = IncrementalMarkingAlgorithm().apply(
            incremental_tree, joins=[], leaves=["u0003"]
        )
        # From-scratch records every k-node; incremental only the
        # touched path — strictly fewer entries on a one-leave batch.
        assert len(incremental_batch.subtree.labels) < len(
            oracle_batch.subtree.labels
        )
        for node_id in oracle_batch.subtree.labels:
            assert oracle_batch.subtree.label_of(node_id) == (
                incremental_batch.subtree.label_of(node_id)
            )
