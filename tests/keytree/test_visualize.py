"""Tests for repro.keytree.visualize."""

import pytest

from repro.keytree import KeyTree, MarkingAlgorithm
from repro.keytree.visualize import render_rekey, render_tree


def make_tree(n=9, d=3):
    return KeyTree.full_balanced(["u%d" % i for i in range(1, n + 1)], d)


class TestRenderTree:
    def test_contains_every_node(self):
        tree = make_tree()
        text = render_tree(tree)
        for node_id in tree.node_ids():
            prefix = "u" if tree.node(node_id).is_u_node else "k"
            assert "%s%d" % (prefix, node_id) in text

    def test_root_first(self):
        text = render_tree(make_tree())
        assert text.splitlines()[0].startswith("k0")

    def test_users_named(self):
        text = render_tree(make_tree())
        assert "'u1'" in text
        assert "'u9'" in text

    def test_structure_glyphs(self):
        text = render_tree(make_tree())
        assert "├── " in text
        assert "└── " in text

    def test_truncation(self):
        tree = make_tree(81, 3)
        text = render_tree(tree, max_nodes=10)
        assert "…" in text
        # At most one ellipsis line per ancestor level beyond the cap.
        assert len(text.splitlines()) <= 10 + tree.height + 1

    def test_empty_tree(self):
        assert render_tree(KeyTree(3)) == "(empty tree)"

    def test_type_checked(self):
        with pytest.raises(TypeError):
            render_tree("not a tree")


class TestRenderRekey:
    def test_labels_overlaid(self):
        tree = make_tree()
        batch = MarkingAlgorithm().apply(
            tree, leaves=["u9"], joins=["n1"]
        )
        text = render_rekey(batch)
        assert "[REPLACE]" in text
        # n1 replaced u9's slot, so the u-node is REPLACE, not JOIN.
        assert "'n1'" in text

    def test_join_label_appears_on_growth(self):
        tree = make_tree()
        batch = MarkingAlgorithm().apply(tree, joins=["n1"])
        text = render_rekey(batch)
        assert "[JOIN]" in text

    def test_versions_visible_after_rekey(self):
        tree = KeyTree.full_balanced(
            ["a", "b", "c"], 3,
        )
        batch = MarkingAlgorithm().apply(tree, leaves=["c"])
        text = render_rekey(batch)
        assert "k0 v1" in text  # root rekeyed once
