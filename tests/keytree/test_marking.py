"""Tests for repro.keytree.marking — the batch-rekeying marking algorithm."""

import pytest

from repro.crypto import KeyFactory
from repro.errors import DuplicateUserError, UnknownUserError
from repro.keytree import (
    KeyTree,
    MarkingAlgorithm,
    NodeKind,
    NodeLabel,
)
from repro.keytree import ids as idmath


def make_tree(n=9, d=3, keyed=False):
    users = ["u%d" % i for i in range(1, n + 1)]
    factory = KeyFactory(seed=1) if keyed else None
    return KeyTree.full_balanced(users, d, key_factory=factory)


@pytest.fixture
def alg():
    return MarkingAlgorithm()


class TestPaperExample:
    """The §2.1 example: 9 users, d = 3, u9 leaves."""

    def test_rekey_message_edges(self, alg):
        tree = make_tree()
        result = alg.apply(tree, leaves=["u9"])
        assert [(e.parent_id, e.child_id) for e in result.subtree.edges] == [
            (3, 10),
            (3, 11),
            (0, 1),
            (0, 2),
            (0, 3),
        ]

    def test_updated_knodes(self, alg):
        result = alg.apply(make_tree(), leaves=["u9"])
        assert result.subtree.updated_knode_ids == [0, 3]

    def test_u7_needs_two_encryptions(self, alg):
        result = alg.apply(make_tree(), leaves=["u9"])
        # u7 sits at node 10; it needs {k78}k7 (id 10) then {k1-8}k78 (id 3).
        assert result.needs_for_user(10) == [10, 3]

    def test_u1_needs_one_encryption(self, alg):
        result = alg.apply(make_tree(), leaves=["u9"])
        assert result.needs_for_user(4) == [1]

    def test_departed_slot_becomes_nnode(self, alg):
        tree = make_tree()
        alg.apply(tree, leaves=["u9"])
        assert tree.kind_of(12) is NodeKind.N_NODE

    def test_keys_renewed(self):
        tree = make_tree(keyed=True)
        old_root, old_aux = tree.key_of(0), tree.key_of(3)
        MarkingAlgorithm().apply(tree, leaves=["u9"])
        assert tree.key_of(0) != old_root
        assert tree.key_of(3) != old_aux

    def test_departed_user_cannot_decrypt_new_group_key(self):
        """Forward secrecy: no edge is encrypted under a key u9 holds."""
        tree = make_tree(keyed=True)
        departed_path = set(tree.path_ids("u9"))  # {12, 3, 0} pre-rekey keys
        result = MarkingAlgorithm().apply(tree, leaves=["u9"])
        # Edges encrypt under *current* child keys; keys at 3 and 0 were
        # renewed, so encrypting-key IDs on u9's old path are fine only
        # if their material changed.  Check by ID: no edge uses node 12.
        used_ids = {e.child_id for e in result.subtree.edges}
        assert 12 not in used_ids
        # And node 3's key used for {k1-8}k78 is the *new* k78.
        assert tree.version_of(3) == 1


class TestBatchEqualJoinLeave:
    def test_replaces_in_place(self, alg):
        tree = make_tree()
        result = alg.apply(tree, joins=["n1", "n2"], leaves=["u2", "u5"])
        assert tree.user_node_id("n1") == 5  # u2 sat at node 5
        assert tree.user_node_id("n2") == 8  # u5 sat at node 8
        assert tree.n_users == 9
        tree.validate()
        # Replaced slots get REPLACE labels.
        assert result.subtree.label_of(5) is NodeLabel.REPLACE
        assert result.subtree.label_of(8) is NodeLabel.REPLACE

    def test_replaced_user_key_changes(self):
        tree = make_tree(keyed=True)
        old = tree.key_of(5)
        MarkingAlgorithm().apply(tree, joins=["n1"], leaves=["u2"])
        assert tree.key_of(5) != old

    def test_smallest_departed_ids_replaced_first(self, alg):
        tree = make_tree()
        # u1 at 4, u9 at 12 leave; one join must take node 4 (smallest).
        alg.apply(tree, joins=["n1"], leaves=["u9", "u1"])
        assert tree.user_node_id("n1") == 4
        assert tree.kind_of(12) is NodeKind.N_NODE


class TestMoreLeavesThanJoins:
    def test_subtree_pruned_when_all_children_leave(self, alg):
        tree = make_tree()
        result = alg.apply(tree, leaves=["u1", "u2", "u3"])
        # Entire subtree under k-node 1 departed: node 1 pruned.
        assert tree.kind_of(1) is NodeKind.N_NODE
        tree.validate()
        # Only the root key changes; children 2 and 3 receive it.
        assert result.subtree.updated_knode_ids == [0]
        assert [(e.parent_id, e.child_id) for e in result.subtree.edges] == [
            (0, 2),
            (0, 3),
        ]

    def test_all_users_leave_empties_tree(self, alg):
        tree = make_tree(3, 3)
        result = alg.apply(tree, leaves=["u1", "u2", "u3"])
        assert tree.n_users == 0
        assert tree.max_knode_id == -1
        assert result.subtree.n_encryptions == 0
        tree.validate()

    def test_partial_replace_and_prune(self, alg):
        tree = make_tree()
        result = alg.apply(tree, joins=["n1"], leaves=["u1", "u2", "u3"])
        # n1 replaces u1 at node 4; 5 and 6 vacated; k-node 1 survives.
        assert tree.user_node_id("n1") == 4
        assert tree.kind_of(5) is NodeKind.N_NODE
        assert tree.kind_of(1) is NodeKind.K_NODE
        assert result.subtree.label_of(1) is NodeLabel.REPLACE
        tree.validate()


class TestMoreJoinsThanLeaves:
    def test_fills_nnode_holes_first(self, alg):
        tree = make_tree()
        alg.apply(tree, leaves=["u9"])  # node 12 becomes an n-node hole
        result = alg.apply(tree, joins=["n1"])
        assert tree.user_node_id("n1") == 12
        assert result.subtree.label_of(12) is NodeLabel.JOIN
        tree.validate()

    def test_split_when_full(self, alg):
        tree = make_tree()  # full: 9 users, d=3
        result = alg.apply(tree, joins=["n1"])
        # Node 4 splits: u1 moves to 13, n1 joins at 14.
        assert tree.kind_of(4) is NodeKind.K_NODE
        assert tree.user_node_id("u1") == 13
        assert tree.user_node_id("n1") == 14
        assert result.moved == {4: 13}
        assert tree.max_knode_id == 4
        tree.validate()

    def test_moved_user_id_derivable_via_theorem42(self, alg):
        tree = make_tree()
        result = alg.apply(tree, joins=["n1"])
        nk = result.max_knode_id
        # Every pre-existing user can re-derive its new ID from nk alone.
        assert idmath.derive_new_user_id(4, nk, 3) == 13
        for old_id in range(5, 13):
            assert idmath.derive_new_user_id(old_id, nk, 3) == old_id

    def test_moved_user_keeps_individual_key(self):
        tree = make_tree(keyed=True)
        individual = tree.key_of(4)
        MarkingAlgorithm().apply(tree, joins=["n1"])
        assert tree.key_of(13) == individual

    def test_many_splits(self, alg):
        tree = make_tree(9, 3)
        joins = ["n%d" % i for i in range(20)]
        result = alg.apply(tree, joins=joins)
        assert tree.n_users == 29
        tree.validate()
        # All joined users present and labelled JOIN.
        for user in joins:
            node_id = tree.user_node_id(user)
            assert result.subtree.label_of(node_id) is NodeLabel.JOIN

    def test_join_into_empty_tree_bootstraps(self, alg):
        tree = KeyTree(3)
        result = alg.apply(tree, joins=["a", "b", "c", "d"])
        assert tree.n_users == 4
        tree.validate()
        # Everyone needs their full path: encryptions exist.
        assert result.subtree.n_encryptions > 0

    def test_doubling_group(self, alg):
        tree = make_tree(16, 4)
        alg.apply(tree, joins=["n%d" % i for i in range(16)])
        assert tree.n_users == 32
        tree.validate()


class TestLabels:
    def test_unchanged_subtree_not_rekeyed(self, alg):
        tree = make_tree()
        result = alg.apply(tree, leaves=["u9"])
        assert result.subtree.label_of(1) is NodeLabel.UNCHANGED
        assert result.subtree.label_of(2) is NodeLabel.UNCHANGED
        assert 1 not in result.subtree.updated_knode_ids

    def test_join_label_propagates_as_join(self, alg):
        tree = make_tree()
        alg.apply(tree, leaves=["u9"])  # open hole at 12
        result = alg.apply(tree, joins=["n1"])
        # Path of node 12: 3, 0 — both should be JOIN (no leave involved).
        assert result.subtree.label_of(3) is NodeLabel.JOIN
        assert result.subtree.label_of(0) is NodeLabel.JOIN

    def test_leave_dominates_join(self, alg):
        tree = make_tree()
        result = alg.apply(tree, joins=["n1"], leaves=["u1", "u9"])
        # n1 replaces u1 at node 4 (REPLACE); node 12 vacated (LEAVE).
        # Root has a REPLACE child and a LEAVE-descendant child.
        assert result.subtree.label_of(0) is NodeLabel.REPLACE

    def test_empty_batch_no_changes(self, alg):
        tree = make_tree(keyed=True)
        old_root = tree.key_of(0)
        result = alg.apply(tree)
        assert result.subtree.n_encryptions == 0
        assert result.subtree.n_updated_keys == 0
        assert tree.key_of(0) == old_root

    def test_label_of_unknown_node_is_unchanged(self, alg):
        result = alg.apply(make_tree(), leaves=["u9"])
        assert result.subtree.label_of(999) is NodeLabel.UNCHANGED


class TestValidation:
    def test_leave_of_unknown_user(self, alg):
        with pytest.raises(UnknownUserError):
            alg.apply(make_tree(), leaves=["ghost"])

    def test_join_of_existing_member(self, alg):
        with pytest.raises(DuplicateUserError):
            alg.apply(make_tree(), joins=["u1"])

    def test_duplicate_joins(self, alg):
        with pytest.raises(DuplicateUserError):
            alg.apply(make_tree(), joins=["x", "x"])

    def test_tree_type_checked(self, alg):
        from repro.errors import MarkingError

        with pytest.raises(MarkingError):
            alg.apply("not a tree")


class TestNeeds:
    def test_every_member_covered_when_root_changes(self, alg):
        tree = make_tree()
        result = alg.apply(tree, leaves=["u9"])
        needs = result.needs_by_user()
        assert set(needs) == set(tree.u_node_ids())

    def test_needs_empty_when_no_change(self, alg):
        result = alg.apply(make_tree())
        assert result.needs_by_user() == {}

    def test_needs_are_decryptable_in_order(self):
        """Each needed encryption is decryptable with the individual key
        or with a key recovered earlier in the user's list."""
        tree = make_tree(27, 3, keyed=True)
        result = MarkingAlgorithm().apply(
            tree, leaves=["u1", "u14", "u27"], joins=["n1"]
        )
        from repro.keytree import ids as idmath

        updated = set(result.subtree.updated_knode_ids)
        for u_id, wanted in result.needs_by_user().items():
            path = idmath.path_to_root(u_id, 3)
            # Keys the user holds before processing: its individual key
            # plus every path key that was not renewed this batch.
            held = {u_id} | {n for n in path if n not in updated}
            for child_id in wanted:
                assert child_id in held
                held.add((child_id - 1) // 3)  # now holds parent's new key
            # After processing, the user holds its entire path again.
            assert set(path) <= held

    def test_needs_bounded_by_tree_height(self, alg):
        tree = make_tree(81, 3)
        result = alg.apply(
            tree, leaves=["u%d" % i for i in range(1, 30, 3)]
        )
        height = tree.height
        for wanted in result.needs_by_user().values():
            assert len(wanted) <= height


class TestMultiBatchInvariants:
    def test_long_churn_sequence_keeps_invariants(self, alg):
        import numpy as np

        rng = np.random.default_rng(3)
        tree = make_tree(27, 3, keyed=True)
        next_id = 100
        for _ in range(30):
            members = sorted(tree.users)
            n_leave = int(rng.integers(0, min(8, len(members)) + 1))
            leaves = list(
                rng.choice(members, size=n_leave, replace=False)
            )
            n_join = int(rng.integers(0, 9))
            joins = ["m%d" % (next_id + i) for i in range(n_join)]
            next_id += n_join
            result = alg.apply(tree, joins=joins, leaves=leaves)
            tree.validate()
            # Every join is a member; every leaver is gone.
            for user in joins:
                assert user in tree.users
            for user in leaves:
                assert user not in tree.users
            # Rekey subtree is internally consistent.
            for edge in result.subtree.edges:
                assert tree.has_node(edge.child_id)
                assert edge.parent_id in result.subtree.updated_knode_ids
