"""Tests for repro.keytree.strategies — WGL rekeying-strategy costs."""

import numpy as np
import pytest

from repro.keytree import KeyTree, MarkingAlgorithm
from repro.keytree.strategies import (
    compare_strategies,
    group_oriented_cost,
    key_oriented_cost,
    user_oriented_cost,
)


def batch_for(n=27, d=3, leaves=("u9",), joins=()):
    users = ["u%d" % i for i in range(1, n + 1)]
    tree = KeyTree.full_balanced(users, d)
    return MarkingAlgorithm(renew_keys=False).apply(
        tree, joins=list(joins), leaves=list(leaves)
    )


class TestSingleLeave:
    """The classical d=3, 9-user, one-leave example (§2.1 workload)."""

    def setup_method(self):
        users = ["u%d" % i for i in range(1, 10)]
        tree = KeyTree.full_balanced(users, 3)
        self.batch = MarkingAlgorithm(renew_keys=False).apply(
            tree, leaves=["u9"]
        )

    def test_group_oriented(self):
        cost = group_oriented_cost(self.batch)
        assert cost.server_encryptions == 5  # the paper's message
        assert cost.server_messages == 1
        assert cost.max_user_encryptions == 2  # u7/u8 need k78 and k1-8
        assert cost.max_user_messages == 1

    def test_key_oriented(self):
        cost = key_oriented_cost(self.batch)
        assert cost.server_encryptions == 5  # same total work
        assert cost.server_messages == 2  # k78 and k1-8
        assert cost.max_user_messages == 2

    def test_user_oriented(self):
        cost = user_oriented_cost(self.batch)
        # Classes: u7 (needs k78,k1-8), u8 (same but own class via its
        # individual key), subtree-123 (needs k1-8), subtree-456.
        # Anchors: nodes 10, 11 (size 2 each) and 1, 2 (size 1 each).
        assert cost.server_messages == 4
        assert cost.server_encryptions == 2 + 2 + 1 + 1
        assert cost.max_user_encryptions == 2
        assert cost.max_user_messages == 1

    def test_signatures_follow_messages(self):
        for cost in compare_strategies(self.batch):
            assert cost.signatures() == cost.server_messages


class TestTradeoffs:
    def test_user_oriented_costs_more_server_encryptions(self):
        rng = np.random.default_rng(0)
        users = ["u%d" % i for i in range(256)]
        tree = KeyTree.full_balanced(users, 4)
        batch = MarkingAlgorithm(renew_keys=False).apply(
            tree, leaves=list(rng.choice(users, 64, replace=False))
        )
        group = group_oriented_cost(batch)
        user = user_oriented_cost(batch)
        assert user.server_encryptions > group.server_encryptions
        # But the user side receives exactly its needs in one message.
        assert user.max_user_messages == 1

    def test_key_oriented_splits_messages(self):
        batch = batch_for(n=81, d=3, leaves=("u5", "u50"))
        key = key_oriented_cost(batch)
        group = group_oriented_cost(batch)
        assert key.server_encryptions == group.server_encryptions
        assert key.server_messages > group.server_messages
        assert key.max_user_messages > 1

    def test_empty_batch(self):
        batch = batch_for(leaves=())
        for cost in compare_strategies(batch):
            assert cost.server_encryptions == 0
            assert cost.server_messages == 0

    def test_user_oriented_classes_cover_all_users(self):
        batch = batch_for(n=81, d=3, leaves=("u5", "u50", "u77"))
        needs = batch.needs_by_user()
        cost = user_oriented_cost(batch)
        # Each class message carries at least the longest need.
        assert cost.max_user_encryptions == max(
            len(v) for v in needs.values()
        )

    def test_batch_with_joins(self):
        batch = batch_for(n=27, d=3, leaves=("u1",), joins=("n1", "n2"))
        group = group_oriented_cost(batch)
        user = user_oriented_cost(batch)
        assert group.server_encryptions > 0
        assert user.server_encryptions >= group.server_encryptions
