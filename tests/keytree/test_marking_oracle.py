"""Oracle tests: the marking algorithm vs first-principles definitions.

The labelling rules of Appendix B are an efficient *implementation* of
a simple specification: after the structural update,

- a k-node's key must change iff its subtree contains a changed u-node
  (joined, replaced, or vacated this batch) — unless the k-node itself
  was pruned;
- the rekey message must carry, for every updated k-node, one
  encryption per present child;
- every remaining user must be able to reach the new root key through
  the encryption edges, starting from keys it already holds.

This module recomputes those predicates directly from recorded batch
inputs (an independent oracle) and checks the algorithm against them
over randomized churn, including the join-overflow (split) path.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.keytree import KeyTree, MarkingAlgorithm
from repro.keytree import ids as idmath


def oracle_updated_knodes(tree, changed_u_ids, vacated_ids):
    """Updated k-nodes from the spec: ancestors of changed u-nodes."""
    updated = set()
    for u_id in changed_u_ids:
        for ancestor in idmath.path_to_root(u_id, tree.degree)[1:]:
            if tree.has_node(ancestor) and tree.node(ancestor).is_k_node:
                updated.add(ancestor)
    # Vacated positions also force their surviving ancestors to rekey.
    for v_id in vacated_ids:
        for ancestor in idmath.path_to_root(v_id, tree.degree)[1:]:
            if tree.has_node(ancestor) and tree.node(ancestor).is_k_node:
                updated.add(ancestor)
    return updated


def run_batch(seed, n_users=64, degree=4, max_leave=24, max_join=24):
    rng = np.random.default_rng(seed)
    users = ["u%d" % i for i in range(n_users)]
    tree = KeyTree.full_balanced(users, degree)
    n_leave = int(rng.integers(0, max_leave + 1))
    leaves = list(rng.choice(users, size=n_leave, replace=False))
    joins = ["j%d" % i for i in range(int(rng.integers(0, max_join + 1)))]
    result = MarkingAlgorithm(renew_keys=False).apply(
        tree, joins=joins, leaves=leaves
    )
    return tree, result, joins, leaves


class TestUpdatedSetMatchesOracle:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_updated_knodes(self, seed):
        tree, result, joins, leaves = run_batch(seed)
        changed = set()
        for user in joins:
            changed.add(tree.user_node_id(user))
        # Replaced slots are joined slots; vacated ones no longer exist.
        vacated = {
            node_id
            for node_id in result.departed_ids
            if not tree.has_node(node_id)
            or tree.node(node_id).is_k_node  # converted by a later split
        }
        # Moved users' old and new positions both changed.
        for old_id, new_id in result.moved.items():
            changed.add(new_id)
        expected = oracle_updated_knodes(tree, changed, vacated)
        assert set(result.subtree.updated_knode_ids) == expected

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_edges_cover_updated_children(self, seed):
        tree, result, _, _ = run_batch(seed)
        expected_edges = {
            (k_id, child)
            for k_id in result.subtree.updated_knode_ids
            for child in tree.children_of(k_id)
        }
        actual = {
            (e.parent_id, e.child_id) for e in result.subtree.edges
        }
        assert actual == expected_edges


class TestReachability:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_every_user_reaches_the_root(self, seed):
        """Walking the edges with initially-held keys reaches node 0."""
        tree, result, _, _ = run_batch(seed)
        if not result.subtree.edges:
            return
        updated = set(result.subtree.updated_knode_ids)
        assert 0 in updated  # any change reaches the root
        by_child = {e.child_id: e.parent_id for e in result.subtree.edges}
        for user in tree.users:
            u_id = tree.user_node_id(user)
            path = idmath.path_to_root(u_id, tree.degree)
            held = {u_id} | {n for n in path if n not in updated}
            # Iteratively decrypt anything decryptable.
            changed = True
            while changed:
                changed = False
                for child, parent in by_child.items():
                    if child in held and parent not in held:
                        held.add(parent)
                        changed = True
            assert 0 in held, "user %s cannot reach the new root" % user


class TestDepartedExclusion:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_no_edge_encrypts_under_departed_keys(self, seed):
        """Forward secrecy at the edge level: no encryption uses a key
        held only by a departed user (its old individual key slot)."""
        tree, result, joins, leaves = run_batch(seed)
        for edge in result.subtree.edges:
            child = tree.node(edge.child_id)
            if child.is_u_node:
                # The encrypting individual key belongs to a current
                # member, never a departed one.
                assert child.user in tree.users
