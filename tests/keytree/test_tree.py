"""Tests for repro.keytree.tree — the KeyTree container."""

import pytest

from repro.crypto import KeyFactory
from repro.errors import (
    DuplicateUserError,
    KeyTreeError,
    UnknownUserError,
)
from repro.keytree import KeyTree, NodeKind


def make_tree(n=9, d=3, keyed=False, prefix="u"):
    users = ["%s%d" % (prefix, i) for i in range(1, n + 1)]
    factory = KeyFactory(seed=1) if keyed else None
    return KeyTree.full_balanced(users, d, key_factory=factory)


class TestConstruction:
    def test_full_balanced_shape(self):
        tree = make_tree(9, 3)
        assert tree.n_users == 9
        assert tree.u_node_ids() == list(range(4, 13))
        assert tree.k_node_ids() == [0, 1, 2, 3]
        assert tree.height == 2
        tree.validate()

    def test_non_power_of_d(self):
        tree = make_tree(6, 3)
        assert tree.u_node_ids() == list(range(4, 10))
        # Only ancestors of present users exist.
        assert tree.k_node_ids() == [0, 1, 2]
        tree.validate()

    def test_single_user_gets_knode_root(self):
        tree = make_tree(1, 3)
        assert tree.kind_of(0) is NodeKind.K_NODE
        assert tree.u_node_ids() == [1]
        tree.validate()

    def test_empty_users_rejected(self):
        with pytest.raises(KeyTreeError):
            KeyTree.full_balanced([], 3)

    def test_duplicate_users_rejected(self):
        with pytest.raises(DuplicateUserError):
            KeyTree.full_balanced(["a", "a"], 3)

    def test_degree_one_rejected(self):
        with pytest.raises(KeyTreeError):
            KeyTree(1)

    def test_keyed_tree_has_material(self):
        tree = make_tree(9, 3, keyed=True)
        assert tree.group_key is not None
        assert not tree.keyless

    def test_keyless_tree(self):
        tree = make_tree(9, 3)
        assert tree.keyless
        assert tree.group_key is None


class TestIntrospection:
    def test_user_node_id(self):
        tree = make_tree(9, 3)
        assert tree.user_node_id("u1") == 4
        assert tree.user_node_id("u9") == 12

    def test_unknown_user(self):
        with pytest.raises(UnknownUserError):
            make_tree().user_node_id("nobody")

    def test_user_at(self):
        tree = make_tree(9, 3)
        assert tree.user_at(4) == "u1"

    def test_user_at_knode_raises(self):
        with pytest.raises(KeyTreeError):
            make_tree().user_at(0)

    def test_kind_of_absent_is_nnode(self):
        assert make_tree().kind_of(999) is NodeKind.N_NODE

    def test_node_absent_raises(self):
        with pytest.raises(KeyTreeError):
            make_tree().node(999)

    def test_max_knode_id(self):
        assert make_tree(9, 3).max_knode_id == 3

    def test_max_knode_id_empty(self):
        assert KeyTree(3).max_knode_id == -1

    def test_path_ids(self):
        tree = make_tree(9, 3)
        assert tree.path_ids("u9") == [12, 3, 0]

    def test_path_keys_keyed(self):
        tree = make_tree(9, 3, keyed=True)
        keys = tree.path_keys("u9")
        assert len(keys) == 3
        assert keys[-1] == tree.group_key
        assert keys[0] == tree.key_of(12)

    def test_children_of(self):
        tree = make_tree(9, 3)
        assert tree.children_of(0) == [1, 2, 3]
        assert tree.children_of(1) == [4, 5, 6]

    def test_children_of_partial(self):
        tree = make_tree(5, 3)
        assert tree.children_of(2) == [7, 8]
        assert tree.children_of(2, present_only=False) == [7, 8, 9]

    def test_users_property(self):
        assert make_tree(3, 3).users == {"u1", "u2", "u3"}

    def test_repr(self):
        assert "users=9" in repr(make_tree(9, 3))


class TestMutation:
    def test_replace_user_renews_key(self):
        tree = make_tree(9, 3, keyed=True)
        old_key = tree.key_of(4)
        tree.replace_user(4, "newbie")
        assert tree.user_at(4) == "newbie"
        assert tree.key_of(4) != old_key
        assert "u1" not in tree.users
        tree.validate()

    def test_replace_user_rejects_existing_member(self):
        tree = make_tree(9, 3)
        with pytest.raises(DuplicateUserError):
            tree.replace_user(4, "u2")

    def test_remove_node(self):
        tree = make_tree(9, 3)
        tree.remove_node(4)
        assert not tree.has_node(4)
        assert "u1" not in tree.users

    def test_move_u_node_preserves_key(self):
        tree = make_tree(9, 3, keyed=True)
        key = tree.key_of(12)
        tree.move_u_node(12, 39)  # 3*12+3: an absent slot
        assert tree.user_node_id("u9") == 39
        assert tree.key_of(39) == key
        assert not tree.has_node(12)

    def test_move_to_occupied_slot_rejected(self):
        tree = make_tree(9, 3)
        with pytest.raises(KeyTreeError):
            tree.move_u_node(12, 11)

    def test_convert_u_to_k(self):
        tree = make_tree(9, 3, keyed=True)
        tree.convert_u_to_k(12)
        assert tree.kind_of(12) is NodeKind.K_NODE
        assert "u9" not in tree.users
        assert tree.key_of(12) is not None

    def test_convert_absent_node_rejected(self):
        tree = make_tree(9, 3)
        tree.move_u_node(4, 13)
        with pytest.raises(KeyTreeError):
            tree.convert_u_to_k(4)

    def test_renew_key_bumps_version(self):
        tree = make_tree(9, 3, keyed=True)
        v0 = tree.version_of(0)
        old = tree.key_of(0)
        tree.renew_key(0)
        assert tree.version_of(0) == v0 + 1
        assert tree.key_of(0) != old

    def test_create_duplicate_node_rejected(self):
        tree = make_tree(9, 3)
        with pytest.raises(KeyTreeError):
            tree.create_k_node(0)

    def test_recreated_node_gets_fresh_version(self):
        tree = make_tree(9, 3, keyed=True)
        first_key = tree.key_of(4)
        tree.remove_node(4)
        tree.create_u_node(4, "again")
        assert tree.key_of(4) != first_key


class TestValidate:
    def test_valid_tree_passes(self):
        make_tree(9, 3).validate()

    def test_lemma_41_violation_detected(self):
        tree = make_tree(9, 3)
        # Force a u-node below every k-node ID by abusing internals.
        tree.remove_node(4)
        tree._nodes[2].kind = NodeKind.U_NODE
        tree._nodes[2].user = "bad"
        tree._users["bad"] = 2
        with pytest.raises(KeyTreeError):
            tree.validate()

    def test_childless_knode_detected(self):
        tree = make_tree(9, 3)
        for node_id in (4, 5, 6):
            tree.remove_node(node_id)
        with pytest.raises(KeyTreeError, match="no present descendants"):
            tree.validate()

    def test_empty_tree_valid(self):
        KeyTree(3).validate()

    def test_membership_index_out_of_sync_detected(self):
        tree = make_tree(9, 3)
        tree._users["ghost"] = 4
        with pytest.raises(KeyTreeError):
            tree.validate()
