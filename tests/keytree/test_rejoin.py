"""Regression tests: a member that leaves and re-joins in one interval.

Before this fix a batch carrying the same name in ``joins`` and
``leaves`` was rejected at every layer (marking's ``_check_batch``, the
server's intake), even though the paper's periodic-batch model makes
"left and came straight back within one interval" a perfectly ordinary
churn event.  The defined semantics now: the member keeps its u-node
slot, the slot is relabelled **Replace**, and its individual key is
renewed in place — so the key it held before the interval dies exactly
as it would for any other departure.

The differential half of these tests pins the incremental algorithm to
the from-scratch oracle over rejoin-carrying batches, which were
previously unreachable by either (and therefore untested).
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import GroupConfig
from repro.core.server import GroupKeyServer
from repro.crypto.keys import KeyFactory
from repro.errors import ConfigurationError, DuplicateUserError
from repro.keytree import KeyTree
from repro.keytree.marking import (
    IncrementalMarkingAlgorithm,
    MarkingAlgorithm,
)
from repro.keytree.nodes import NodeLabel
from repro.keytree.persistence import tree_to_dict

from tests.keytree.test_marking_differential import (
    assert_batches_equal,
    canonical,
    make_tree_pair,
)


class TestRejoinSemantics:
    def test_rejoin_keeps_slot_and_renews_key(self):
        tree = KeyTree.full_balanced(
            ["u%d" % i for i in range(8)], 2, key_factory=KeyFactory(seed=3)
        )
        old_id = tree.user_node_id("u3")
        old_key = tree.key_of(old_id).material
        old_version = tree.version_of(old_id)
        batch = MarkingAlgorithm().apply(
            tree, joins=["u3"], leaves=["u3"]
        )
        assert tree.user_node_id("u3") == old_id
        assert tree.key_of(old_id).material != old_key
        assert tree.version_of(old_id) == old_version + 1
        assert batch.subtree.label_of(old_id) is NodeLabel.REPLACE
        # Every ancestor key is renewed, so the old path keys all die.
        assert batch.subtree.n_updated_keys == len(tree.path_ids("u3")) - 1
        assert batch.joined_ids == {"u3": old_id}
        assert batch.departed_ids == [old_id]
        tree.validate()

    def test_rejoin_batch_departed_ids_report_the_slot(self):
        """The vacated-slot ledger still reports the rejoiner's slot
        ("before any reuse"), exactly like any other replacement."""
        tree = KeyTree.full_balanced(["a", "b", "c", "d"], 2)
        slot = tree.user_node_id("b")
        batch = IncrementalMarkingAlgorithm().apply(
            tree, joins=["b"], leaves=["b"]
        )
        assert batch.departed_ids == [slot]
        assert batch.moved == {}

    def test_single_user_group_full_rejoin(self):
        tree = KeyTree.full_balanced(
            ["solo"], 4, key_factory=KeyFactory(seed=1)
        )
        old_group_key = tree.group_key.material
        MarkingAlgorithm().apply(tree, joins=["solo"], leaves=["solo"])
        assert tree.users == {"solo"}
        assert tree.group_key.material != old_group_key
        tree.validate()

    def test_rejoin_mixed_with_surplus_leaves_prunes_correctly(self):
        """Rejoins must not consume replacement slots: with 1 rejoin,
        1 fresh join and 3 other leaves, one vacated slot is reused and
        two are removed (possibly pruning ancestors)."""
        tree = KeyTree.full_balanced(
            ["u%d" % i for i in range(9)], 3, key_factory=KeyFactory(seed=5)
        )
        rejoin_slot = tree.user_node_id("u4")
        batch = MarkingAlgorithm().apply(
            tree,
            joins=["u4", "fresh"],
            leaves=["u4", "u6", "u7", "u8"],
        )
        assert tree.user_node_id("u4") == rejoin_slot
        assert "fresh" in tree.users
        assert {"u6", "u7", "u8"} & tree.users == set()
        assert tree.n_users == 7
        assert batch.subtree.label_of(rejoin_slot) is NodeLabel.REPLACE
        tree.validate()


class TestRejoinDifferential:
    """Incremental vs from-scratch equality on rejoin-carrying batches."""

    @settings(max_examples=80, deadline=None)
    @given(
        seed=st.integers(0, 10_000_000),
        degree=st.sampled_from([2, 3, 4]),
        n_rejoin=st.integers(1, 8),
        n_join=st.integers(0, 10),
        n_leave=st.integers(0, 10),
    )
    def test_random_rejoin_batches(
        self, seed, degree, n_rejoin, n_join, n_leave
    ):
        baseline_tree, incremental_tree = make_tree_pair(
            30, degree, key_seed=seed
        )
        rng = np.random.default_rng(seed)
        members = sorted(baseline_tree.users)
        picked = [
            str(u)
            for u in rng.choice(
                members,
                size=min(n_rejoin + n_leave, len(members)),
                replace=False,
            )
        ]
        rejoins = picked[:n_rejoin]
        pure_leaves = picked[n_rejoin:]
        joins = rejoins + ["x%04d" % i for i in range(n_join)]
        leaves = rejoins + pure_leaves
        oracle_batch = MarkingAlgorithm().apply(
            baseline_tree, joins=list(joins), leaves=list(leaves)
        )
        incremental_batch = IncrementalMarkingAlgorithm().apply(
            incremental_tree, joins=list(joins), leaves=list(leaves)
        )
        assert canonical(baseline_tree) == canonical(incremental_tree)
        assert_batches_equal(oracle_batch, incremental_batch)
        baseline_tree.validate()

    def test_everyone_leaves_and_rejoins(self):
        baseline_tree, incremental_tree = make_tree_pair(27, 3)
        names = sorted(baseline_tree.users)
        assert_batches_equal(
            MarkingAlgorithm().apply(
                baseline_tree, joins=list(names), leaves=list(names)
            ),
            IncrementalMarkingAlgorithm().apply(
                incremental_tree, joins=list(names), leaves=list(names)
            ),
        )
        assert canonical(baseline_tree) == canonical(incremental_tree)
        assert baseline_tree.users == set(names)


class TestServerIntakeRejoin:
    def make_server(self):
        return GroupKeyServer(
            ["m%d" % i for i in range(8)], config=GroupConfig(seed=2)
        )

    def test_leave_then_join_queues_a_rejoin(self):
        server = self.make_server()
        server.request_leave("m2")
        server.request_join("m2")
        assert server.pending_requests == (["m2"], ["m2"])
        old_id = server.tree.user_node_id("m2")
        old_key = server.tree.key_of(old_id).material
        batch, message = server.rekey()
        assert server.tree.user_node_id("m2") == old_id
        assert server.tree.key_of(old_id).material != old_key
        assert batch.joined_ids == {"m2": old_id}
        assert batch.n_encryptions > 0
        assert len(message.enc_packets()) > 0

    def test_leave_join_leave_nets_to_a_single_leave(self):
        server = self.make_server()
        server.request_leave("m2")
        server.request_join("m2")
        server.request_leave("m2")
        assert server.pending_requests == ([], ["m2"])
        server.rekey()
        assert "m2" not in server.users

    def test_join_of_member_without_pending_leave_still_rejected(self):
        server = self.make_server()
        with pytest.raises(DuplicateUserError):
            server.request_join("m1")

    def test_double_rejoin_rejected(self):
        server = self.make_server()
        server.request_leave("m2")
        server.request_join("m2")
        with pytest.raises(DuplicateUserError):
            server.request_join("m2")

    def test_double_leave_still_rejected(self):
        server = self.make_server()
        server.request_leave("m2")
        with pytest.raises(ConfigurationError):
            server.request_leave("m2")

    def test_nonmember_join_then_leave_still_cancels_both(self):
        server = self.make_server()
        server.request_join("newbie")
        server.request_leave("newbie")
        assert server.pending_requests == ([], [])

    def test_rejoin_snapshot_roundtrip_stays_consistent(self):
        """A rekeyed rejoin must survive snapshot -> restore with the
        same tree bytes (guards version-counter bookkeeping)."""
        server = self.make_server()
        server.request_leave("m5")
        server.request_join("m5")
        server.rekey()
        restored = GroupKeyServer.restore(server.snapshot())
        assert json.dumps(
            tree_to_dict(server.tree), sort_keys=True
        ) == json.dumps(tree_to_dict(restored.tree), sort_keys=True)
