"""Tests for repro.keytree.persistence — server-restart snapshots."""

import numpy as np
import pytest

from repro.crypto import KeyFactory
from repro.errors import KeyTreeError
from repro.keytree import KeyTree, MarkingAlgorithm
from repro.keytree.persistence import (
    load_tree,
    save_tree,
    tree_from_dict,
    tree_to_dict,
)


def make_tree(keyed=True):
    users = ["u%d" % i for i in range(27)]
    factory = KeyFactory(seed=5) if keyed else None
    tree = KeyTree.full_balanced(users, 3, key_factory=factory)
    MarkingAlgorithm().apply(
        tree, leaves=["u3", "u7"], joins=["n1", "n2", "n3"]
    )
    return tree


def trees_equal(a, b):
    if a.degree != b.degree or a.node_ids() != b.node_ids():
        return False
    for node_id in a.node_ids():
        na, nb = a.node(node_id), b.node(node_id)
        if (na.kind, na.user, na.version, na.key) != (
            nb.kind,
            nb.user,
            nb.version,
            nb.key,
        ):
            return False
    return True


class TestRoundTrip:
    def test_keyed_round_trip(self):
        tree = make_tree(keyed=True)
        restored = tree_from_dict(tree_to_dict(tree))
        assert trees_equal(tree, restored)
        assert restored.group_key == tree.group_key

    def test_keyless_round_trip(self):
        tree = make_tree(keyed=False)
        restored = tree_from_dict(tree_to_dict(tree))
        assert trees_equal(tree, restored)
        assert restored.keyless

    def test_file_round_trip(self, tmp_path):
        tree = make_tree()
        path = tmp_path / "snapshot.json"
        save_tree(tree, path)
        restored = load_tree(path, key_factory=KeyFactory(seed=5))
        assert trees_equal(tree, restored)

    def test_json_safe(self):
        import json

        json.dumps(tree_to_dict(make_tree()))  # must not raise

    def test_unsupported_format_rejected(self):
        data = tree_to_dict(make_tree())
        data["format"] = 99
        with pytest.raises(KeyTreeError):
            tree_from_dict(data)


class TestContinuity:
    def test_rekeying_continues_after_restore(self):
        """A restored server rekeys correctly: versions keep advancing
        and members keyed before the restart can still follow."""
        tree = make_tree()
        snapshot = tree_to_dict(tree)
        version_before = tree.version_of(0)

        restored = tree_from_dict(snapshot, key_factory=KeyFactory(seed=5))
        result = MarkingAlgorithm().apply(restored, leaves=["u10"])
        restored.validate()
        assert restored.version_of(0) == version_before + 1
        assert restored.key_of(0) != tree.key_of(0)
        assert result.n_encryptions > 0

    def test_restored_versions_never_regress(self):
        """Key material never repeats across a restore boundary."""
        tree = make_tree()
        old_root_keys = {tree.key_of(0)}
        snapshot = tree_to_dict(tree)
        restored = tree_from_dict(snapshot, key_factory=KeyFactory(seed=5))
        for victim in ("u1", "u2", "u5"):
            MarkingAlgorithm().apply(restored, leaves=[victim])
            key = restored.key_of(0)
            assert key not in old_root_keys
            old_root_keys.add(key)

    def test_restore_after_heavy_churn(self):
        rng = np.random.default_rng(1)
        users = ["u%d" % i for i in range(64)]
        tree = KeyTree.full_balanced(users, 4, key_factory=KeyFactory(seed=9))
        alg = MarkingAlgorithm()
        next_id = 0
        for _ in range(10):
            members = sorted(tree.users)
            leaves = list(
                rng.choice(members, size=int(rng.integers(0, 8)), replace=False)
            )
            joins = ["m%d" % (next_id + i) for i in range(int(rng.integers(0, 8)))]
            next_id += len(joins)
            alg.apply(tree, joins=joins, leaves=leaves)
        restored = tree_from_dict(
            tree_to_dict(tree), key_factory=KeyFactory(seed=9)
        )
        assert trees_equal(tree, restored)
        restored.validate()
