"""Tests for repro.keytree.persistence — server-restart snapshots."""

import numpy as np
import pytest

from repro.crypto import KeyFactory
from repro.errors import DuplicateUserError, KeyTreeError
from repro.keytree import KeyTree, MarkingAlgorithm
from repro.keytree.nodes import NodeKind
from repro.keytree.persistence import (
    load_server,
    load_tree,
    save_server,
    save_tree,
    tree_from_dict,
    tree_to_dict,
)


def make_tree(keyed=True):
    users = ["u%d" % i for i in range(27)]
    factory = KeyFactory(seed=5) if keyed else None
    tree = KeyTree.full_balanced(users, 3, key_factory=factory)
    MarkingAlgorithm().apply(
        tree, leaves=["u3", "u7"], joins=["n1", "n2", "n3"]
    )
    return tree


def trees_equal(a, b):
    if a.degree != b.degree or a.node_ids() != b.node_ids():
        return False
    for node_id in a.node_ids():
        na, nb = a.node(node_id), b.node(node_id)
        if (na.kind, na.user, na.version, na.key) != (
            nb.kind,
            nb.user,
            nb.version,
            nb.key,
        ):
            return False
    return True


class TestRoundTrip:
    def test_keyed_round_trip(self):
        tree = make_tree(keyed=True)
        restored = tree_from_dict(tree_to_dict(tree))
        assert trees_equal(tree, restored)
        assert restored.group_key == tree.group_key

    def test_keyless_round_trip(self):
        tree = make_tree(keyed=False)
        restored = tree_from_dict(tree_to_dict(tree))
        assert trees_equal(tree, restored)
        assert restored.keyless

    def test_file_round_trip(self, tmp_path):
        tree = make_tree()
        path = tmp_path / "snapshot.json"
        save_tree(tree, path)
        restored = load_tree(path, key_factory=KeyFactory(seed=5))
        assert trees_equal(tree, restored)

    def test_json_safe(self):
        import json

        json.dumps(tree_to_dict(make_tree()))  # must not raise

    def test_unsupported_format_rejected(self):
        data = tree_to_dict(make_tree())
        data["format"] = 99
        with pytest.raises(KeyTreeError):
            tree_from_dict(data)


class TestContinuity:
    def test_rekeying_continues_after_restore(self):
        """A restored server rekeys correctly: versions keep advancing
        and members keyed before the restart can still follow."""
        tree = make_tree()
        snapshot = tree_to_dict(tree)
        version_before = tree.version_of(0)

        restored = tree_from_dict(snapshot, key_factory=KeyFactory(seed=5))
        result = MarkingAlgorithm().apply(restored, leaves=["u10"])
        restored.validate()
        assert restored.version_of(0) == version_before + 1
        assert restored.key_of(0) != tree.key_of(0)
        assert result.n_encryptions > 0

    def test_restored_versions_never_regress(self):
        """Key material never repeats across a restore boundary."""
        tree = make_tree()
        old_root_keys = {tree.key_of(0)}
        snapshot = tree_to_dict(tree)
        restored = tree_from_dict(snapshot, key_factory=KeyFactory(seed=5))
        for victim in ("u1", "u2", "u5"):
            MarkingAlgorithm().apply(restored, leaves=[victim])
            key = restored.key_of(0)
            assert key not in old_root_keys
            old_root_keys.add(key)

    def test_restore_after_heavy_churn(self):
        rng = np.random.default_rng(1)
        users = ["u%d" % i for i in range(64)]
        tree = KeyTree.full_balanced(users, 4, key_factory=KeyFactory(seed=9))
        alg = MarkingAlgorithm()
        next_id = 0
        for _ in range(10):
            members = sorted(tree.users)
            leaves = list(
                rng.choice(members, size=int(rng.integers(0, 8)), replace=False)
            )
            joins = ["m%d" % (next_id + i) for i in range(int(rng.integers(0, 8)))]
            next_id += len(joins)
            alg.apply(tree, joins=joins, leaves=leaves)
        restored = tree_from_dict(
            tree_to_dict(tree), key_factory=KeyFactory(seed=9)
        )
        assert trees_equal(tree, restored)
        restored.validate()

class TestAtomicWrites:
    def test_save_leaves_no_temp_litter(self, tmp_path):
        tree = make_tree()
        path = tmp_path / "snapshot.json"
        save_tree(tree, path)
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "snapshot.json"
        ]

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        """Re-saving replaces the file content atomically (the restore
        of either version must parse — no torn mixture)."""
        path = tmp_path / "snapshot.json"
        tree = make_tree()
        save_tree(tree, path)
        MarkingAlgorithm().apply(tree, leaves=["u20"])
        save_tree(tree, path)
        restored = load_tree(path, key_factory=KeyFactory(seed=5))
        assert trees_equal(tree, restored)
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "snapshot.json"
        ]

    def test_failed_write_cleans_temp_and_keeps_old(self, tmp_path):
        path = tmp_path / "snapshot.json"
        save_tree(make_tree(), path)
        before = path.read_bytes()
        with pytest.raises(TypeError):
            from repro.keytree.persistence import _atomic_write_json

            _atomic_write_json(path, {"bad": object()})
        assert path.read_bytes() == before
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "snapshot.json"
        ]


class TestServerSnapshots:
    @staticmethod
    def make_server():
        from repro.core import GroupConfig
        from repro.core.server import GroupKeyServer

        server = GroupKeyServer(
            ["u%d" % i for i in range(16)],
            config=GroupConfig(block_size=5, crypto_seed=3),
        )
        for victim, joiner in (("u3", "j1"), ("u5", "j2"), ("u7", "j3")):
            server.request_leave(victim)
            server.request_join(joiner)
            server.rekey()
        return server

    def test_round_trip_preserves_counters(self, tmp_path):
        server = self.make_server()
        path = tmp_path / "server.json"
        save_server(server, path)
        restored = load_server(path)
        assert restored.intervals_processed == server.intervals_processed
        assert restored.group_key == server.group_key
        assert restored.users == server.users
        # Message IDs continue the 6-bit sequence instead of resetting.
        restored.request_leave("u9")
        _, message = restored.rekey()
        server.request_leave("u9")
        _, expected = server.rekey()
        assert message.message_id == expected.message_id

    def test_restored_server_rekeys_identically(self, tmp_path):
        """Determinism across the snapshot boundary: the same requests
        produce the same key material (what makes post-crash redelivery
        idempotent)."""
        server = self.make_server()
        path = tmp_path / "server.json"
        save_server(server, path)
        restored = load_server(path)
        for s in (server, restored):
            s.request_leave("u11")
            s.request_join("j9")
            s.rekey()
        assert restored.group_key == server.group_key

    def test_wrong_kind_rejected(self, tmp_path):
        tree_path = tmp_path / "tree.json"
        save_tree(make_tree(), tree_path)
        with pytest.raises(KeyTreeError):
            load_server(tree_path)


class TestFromRecords:
    def test_public_restore_path(self):
        tree = make_tree()
        data = tree_to_dict(tree)
        restored = tree_from_dict(data, key_factory=KeyFactory(seed=5))
        assert trees_equal(tree, restored)

    def test_duplicate_node_rejected(self):
        record = {"id": 0, "kind": NodeKind.K_NODE, "version": 0, "key": None}
        with pytest.raises(KeyTreeError):
            KeyTree.from_records(3, [record, dict(record)])

    def test_explicit_n_node_rejected(self):
        with pytest.raises(KeyTreeError):
            KeyTree.from_records(
                3,
                [{"id": 0, "kind": NodeKind.N_NODE, "version": 0}],
            )

    def test_userless_u_node_rejected(self):
        with pytest.raises(KeyTreeError):
            KeyTree.from_records(
                3,
                [
                    {"id": 0, "kind": NodeKind.K_NODE, "version": 0},
                    {"id": 1, "kind": NodeKind.U_NODE, "version": 0},
                ],
            )

    def test_duplicate_user_rejected(self):
        records = [
            {"id": 0, "kind": NodeKind.K_NODE, "version": 0},
            {"id": 1, "kind": NodeKind.U_NODE, "user": "a", "version": 0},
            {"id": 2, "kind": NodeKind.U_NODE, "user": "a", "version": 0},
        ]
        with pytest.raises(DuplicateUserError):
            KeyTree.from_records(3, records)

    def test_versions_override_wins(self):
        records = [
            {"id": 0, "kind": NodeKind.K_NODE, "version": 1},
            {"id": 1, "kind": NodeKind.U_NODE, "user": "a", "version": 0},
            {"id": 2, "kind": NodeKind.U_NODE, "user": "b", "version": 0},
            {"id": 3, "kind": NodeKind.U_NODE, "user": "c", "version": 0},
        ]
        tree = KeyTree.from_records(3, records, versions={0: 7})
        # The override feeds the renewal counter: the next root renewal
        # continues from 7, not from the record's own version.
        MarkingAlgorithm().apply(tree, leaves=["a"])
        assert tree.version_of(0) == 8
