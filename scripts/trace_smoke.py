"""End-to-end distributed-tracing smoke test (the CI ``trace-smoke``
job).

Runs ``python -m repro fleet --plan smoke --workers 2 --obs-dir`` as a
real subprocess — three rekey intervals over loopback UDP with the 48
clients sharded across two worker processes, each process writing its
own line-buffered obs stream — then:

1. validates every stream (server + both workers) against the obs
   event schema;
2. assembles the streams into skew-corrected per-member timelines and
   checks every member the announce barrier counted has a *complete*
   timeline (announce → decode → key decrypted);
3. runs ``python -m repro obs-report --trace-dir`` over the directory
   and checks the trace section renders (timelines, clock offsets, the
   per-cohort recovery-latency CDF).

Exit status 0 on success; any failure raises (non-zero exit).

Usage::

    PYTHONPATH=src python scripts/trace_smoke.py [--seed 7]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
SRC = os.path.join(REPO, "src")
sys.path.insert(0, SRC)

from repro.obs.assemble import assemble, load_trace_dir  # noqa: E402
from repro.obs.events import validate_jsonl  # noqa: E402


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")

    with tempfile.TemporaryDirectory(prefix="trace-smoke-") as tmp:
        command = [
            sys.executable, "-u", "-m", "repro", "fleet",
            "--plan", "smoke",
            "--seed", str(args.seed),
            "--workers", str(args.workers),
            "--obs-dir", tmp,
        ]
        fleet = subprocess.run(
            command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=REPO,
        )
        sys.stdout.write(fleet.stdout)
        if fleet.returncode != 0:
            raise SystemExit("fleet exited with %d" % fleet.returncode)

        streams = load_trace_dir(tmp)
        expected_streams = {"server.jsonl"} | {
            "worker-%02d.jsonl" % index for index in range(args.workers)
        }
        if set(streams) != expected_streams:
            raise SystemExit(
                "expected streams %s, found %s"
                % (sorted(expected_streams), sorted(streams))
            )
        for name in sorted(streams):
            count = validate_jsonl(os.path.join(tmp, name))
            print("validated %-16s %d event(s)" % (name, count))
            if count == 0:
                raise SystemExit("stream %s is empty" % name)

        assembly = assemble(streams)
        incomplete = assembly.incomplete()
        if incomplete:
            raise SystemExit(
                "%d incomplete timeline(s), e.g. %r"
                % (len(incomplete), incomplete[0].canonical())
            )
        for interval, row in sorted(assembly.completeness().items()):
            print(
                "interval %d: %d/%d members traced, %d complete"
                % (interval, row["seen"], row["expected"], row["complete"])
            )
            if row["seen"] != row["expected"]:
                raise SystemExit(
                    "interval %d traced %d of %d announced members"
                    % (interval, row["seen"], row["expected"])
                )
            if row["complete"] != row["expected"]:
                raise SystemExit(
                    "interval %d has incomplete timelines" % interval
                )
        print("trace digest: %s" % assembly.digest())

        report = subprocess.run(
            [
                sys.executable, "-m", "repro", "obs-report",
                "--trace-dir", tmp,
            ],
            capture_output=True, text=True, env=env, cwd=REPO,
        )
        sys.stdout.write(report.stdout)
        if report.returncode != 0:
            sys.stderr.write(report.stderr)
            raise SystemExit(
                "obs-report exited with %d" % report.returncode
            )
        for needle in (
            "distributed traces",
            "clock offsets",
            "trace digest",
            "recovery-latency CDF per cohort",
        ):
            if needle not in report.stdout:
                raise SystemExit("obs-report output missing %r" % needle)

    print("trace smoke test passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
