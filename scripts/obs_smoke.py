"""End-to-end observability smoke test (the CI ``obs-smoke`` job).

Launches ``python -m repro serve`` as a real subprocess with the full
observability surface on — an ephemeral ``--metrics-port`` and an
``--obs-file`` — then, while the daemon is rekeying:

1. scrapes ``/metrics`` and checks the Prometheus exposition parses and
   carries the expected families;
2. probes ``/healthz`` and checks the JSON body;

and after the daemon exits:

3. validates every JSONL record against the obs event schema;
4. runs ``python -m repro obs-report`` over the file and checks the
   headline lines are present.

Exit status 0 on success; any failure raises (non-zero exit).

Usage::

    PYTHONPATH=src python scripts/obs_smoke.py [--intervals 4]
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
SRC = os.path.join(REPO, "src")
sys.path.insert(0, SRC)

from repro.obs.events import read_events, validate_jsonl  # noqa: E402
from repro.obs.prometheus import parse  # noqa: E402

_URL_RE = re.compile(r"metrics: (http://[^/\s]+)/metrics")


def scrape(base_url, deadline_s=15.0):
    """Scrape both endpoints until each succeeds once (or time out)."""
    results = {}
    deadline = time.monotonic() + deadline_s
    while len(results) < 2 and time.monotonic() < deadline:
        for path in ("/metrics", "/healthz"):
            if path in results:
                continue
            try:
                with urllib.request.urlopen(
                    base_url + path, timeout=2
                ) as response:
                    results[path] = response.read().decode("utf-8")
            except (urllib.error.URLError, OSError):
                pass
        time.sleep(0.05)
    missing = {"/metrics", "/healthz"} - set(results)
    if missing:
        raise SystemExit("never scraped %s on %s" % (missing, base_url))
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--intervals", type=int, default=4)
    parser.add_argument("--members", type=int, default=24)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="obs-smoke-") as tmp:
        obs_path = os.path.join(tmp, "obs.jsonl")
        command = [
            sys.executable, "-u", "-m", "repro", "serve",
            "--members", str(args.members),
            "--intervals", str(args.intervals),
            "--transport", "sim",
            "--metrics-port", "0",
            "--obs-file", obs_path,
            "--interval-seconds", "0.4",
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=REPO,
        )
        try:
            base_url = None
            for line in process.stdout:
                sys.stdout.write(line)
                match = _URL_RE.search(line)
                if match:
                    base_url = match.group(1)
                    break
            if base_url is None:
                raise SystemExit("serve never printed its metrics URL")

            results = scrape(base_url)

            families = parse(results["/metrics"])
            for family in (
                "repro_up",
                "repro_intervals_processed_total",
                "repro_members",
                "repro_span_ms",
            ):
                if family not in families:
                    raise SystemExit(
                        "scrape is missing family %r" % family
                    )
            print("scraped /metrics: %d families" % len(families))
            if '"status"' not in results["/healthz"]:
                raise SystemExit(
                    "healthz body looks wrong: %r" % results["/healthz"]
                )
            print("scraped /healthz: %s" % results["/healthz"].strip())

            for line in process.stdout:
                sys.stdout.write(line)
            if process.wait(timeout=120) != 0:
                raise SystemExit(
                    "serve exited with %d" % process.returncode
                )
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

        count = validate_jsonl(obs_path)
        print("validated %d obs event(s)" % count)
        if count == 0:
            raise SystemExit("obs file is empty")
        events = read_events(obs_path)
        completes = [
            e for e in events if e["kind"] == "interval_complete"
        ]
        if len(completes) != args.intervals:
            raise SystemExit(
                "expected %d interval_complete events, got %d"
                % (args.intervals, len(completes))
            )

        report = subprocess.run(
            [sys.executable, "-m", "repro", "obs-report", obs_path],
            capture_output=True, text=True, env=env, cwd=REPO,
        )
        sys.stdout.write(report.stdout)
        if report.returncode != 0:
            raise SystemExit(
                "obs-report exited with %d" % report.returncode
            )
        for needle in ("headline", "rho trajectory", "where the time goes"):
            if needle not in report.stdout:
                raise SystemExit("obs-report output missing %r" % needle)

    print("obs smoke test passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
