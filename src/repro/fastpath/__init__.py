"""Vectorized interval hot path (the ``engine`` knob).

The object-level pipeline — marking, message build, the packet-by-packet
:class:`~repro.transport.session.RekeySession`, per-member absorption —
is the *oracle*: exact wire formats, one Python object per packet and
user.  This package is the array plane behind the same interfaces:

- :mod:`~repro.fastpath.arraytree` — the key tree as flat numpy node
  arrays (IDs, kinds, versions, parent index maps), convertible to and
  from :class:`~repro.keytree.tree.KeyTree` without loss;
- :mod:`~repro.fastpath.marking` — marking whose label propagation and
  per-user needs enumeration run as whole-array operations;
- :mod:`~repro.fastpath.session` — a :class:`RekeySession` subclass
  whose per-round reception, block-ID estimation, FEC bookkeeping and
  NACK synthesis are masked array reductions instead of per-user loops;
- :mod:`~repro.fastpath.absorb` — fleet-wide relocation and encryption
  absorption with a shared decryption memo.

Every engine produces **byte-identical protocol output** (rekey message
bytes, tree serialisations, delivery statistics, observability events);
the differential suite in ``tests/fastpath`` enforces this.  ``numba``
is an optional further tier: when the module is importable the numpy
engine JIT-compiles nothing today but the knob is reserved (and
validated) so configs written for numba-enabled hosts degrade to the
numpy engine elsewhere instead of failing.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Engine names accepted by :class:`repro.core.config.GroupConfig`.
ENGINE_KINDS = ("python", "numpy", "numba")

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # noqa: F401

    HAS_NUMBA = True
except ImportError:
    HAS_NUMBA = False


def resolve_engine(engine, strict=False):
    """Map a configured engine name onto an available implementation.

    ``"numba"`` silently degrades to ``"numpy"`` when numba is not
    importable (the numba tier is an optimisation of the same array
    plane, never a behaviour change); with ``strict=True`` the
    degradation is an error instead — used by tests that must *know*
    which tier ran.
    """
    if engine not in ENGINE_KINDS:
        raise ConfigurationError(
            "engine must be one of %s, got %r"
            % (", ".join(ENGINE_KINDS), engine)
        )
    if engine == "numba" and not HAS_NUMBA:
        if strict:
            raise ConfigurationError(
                "engine 'numba' requested but numba is not installed"
            )
        return "numpy"
    return engine
