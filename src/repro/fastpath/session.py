"""Array-plane delivery: the per-user transport loops as reductions.

:class:`ArrayRekeySession` is a :class:`~repro.transport.session.RekeySession`
whose receiver side keeps no per-user state machines.  Reception,
coverage detection, block-ID estimation, FEC-recovery bookkeeping and
NACK synthesis run as masked array operations over the whole user
population at once; only the NACK packets themselves (small, post-loss)
and the unicast mop-up (inherited unchanged) stay object-level.

**Equivalence contract** (enforced by ``tests/fastpath``): identical RNG
draw sequence (one multicast draw per round, the same per-user unicast
draws), identical NACK packets in the same order, identical round/
unicast statistics, identical per-user recovery rounds and recovered
encryptions, identical protocol *events* on the obs bus.  The facts that
make the vectorization exact:

- a done user ignores every further packet, so its internal state is
  unobservable — over-ingesting counts for done users changes nothing;
- every codeword ``(block, seq)`` is multicast at most once per session
  (ENC only in round 1, parity rows always fresh), so per-block payload
  counts are plain cumulative sums, no dedup;
- for a user that is *not* done, the estimator's ``exact`` flag is never
  set (a covering packet implies done), and its low/high updates are
  order-independent max/min accumulations;
- a pending user's own block always lies inside its ``[low, high]``
  range, so recovery-by-decode is exactly "own block has ≥ k codewords
  within the pre-tightening range";
- every non-duplicate slot of a decoded block ``b ≠ own_block`` sits on
  the same side of the user's ID, so each block's estimator contribution
  collapses to three static per-block aggregates.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TransportError
from repro.rekey.packets import NackPacket, NackRequest, PacketType
from repro.transport.session import RekeySession

#: Sentinel for an unbounded estimator upper bound (``math.inf`` in the
#: object-level estimator); large enough that min() against any real
#: block bound always prefers the bound.
_INF = np.int64(1) << 60


def _ceil_div(numerator, denominator):
    """Element-wise ``ceil(numerator / denominator)`` for ints (any sign)."""
    return -((-numerator) // denominator)


class _UserView:
    """Per-user facade over the session's arrays.

    Presents the slice of :class:`~repro.transport.user.UserTransport`
    the rest of the system touches after the multicast loop: ``done``,
    ``recovery_round``, ``recovered_encryptions`` (the delivery layer's
    absorb input) and ``on_usr`` (the unicast mop-up's entry point).
    """

    __slots__ = ("_session", "_position", "user_id")

    def __init__(self, session, position, user_id):
        self._session = session
        self._position = position
        self.user_id = user_id

    @property
    def done(self):
        return bool(self._session._done[self._position])

    @property
    def recovery_round(self):
        if not self._session._done[self._position]:
            return None
        return int(self._session._recovery_round[self._position])

    @property
    def recovered_encryptions(self):
        session = self._session
        if not session._done[self._position]:
            return None
        usr = session._usr_encryptions.get(self._position)
        if usr is not None:
            return list(usr)
        # Recovered by multicast: whichever packet delivered the user
        # (original, duplicate, or FEC-decoded), its encryptions equal
        # the covering plan slot's.
        slot = int(session._own_slot[self._position])
        return list(session.message.enc_packets()[slot].encryptions)

    def recovered_shared(self):
        """:attr:`recovered_encryptions` without the defensive copy.

        Members recovered by the same multicast slot share one
        encryption tuple, which is what lets the fleet absorber key its
        per-list index on object identity instead of re-scanning the
        list per member.  Callers must not mutate the result.
        """
        session = self._session
        if not session._done[self._position]:
            return None
        usr = session._usr_encryptions.get(self._position)
        if usr is not None:
            return usr
        slot = int(session._own_slot[self._position])
        return session.message.enc_packets()[slot].encryptions

    def on_usr(self, packet):
        session = self._session
        if packet.rekey_message_id != session.message.message_id:
            raise TransportError(
                "packet for message %d delivered to session %d"
                % (packet.rekey_message_id, session.message.message_id)
            )
        if packet.user_id != self.user_id:
            raise TransportError(
                "USR packet for user %d delivered to user %d"
                % (packet.user_id, self.user_id)
            )
        if session._done[self._position]:
            return
        session._usr_encryptions[self._position] = tuple(packet.encryptions)
        session._done[self._position] = True
        session._recovery_round[self._position] = 0

    def __repr__(self):
        return "_UserView(user=%d, done=%s)" % (self.user_id, self.done)


class ArrayRekeySession(RekeySession):
    """The ``engine="numpy"`` delivery session (see module docstring)."""

    def _make_users(self):
        message = self.message
        n = len(self.user_ids)
        k = message.k
        self._n_blocks = message.n_blocks
        self._uid = np.asarray(self.user_ids, dtype=np.int64)

        enc = message.enc_packets()
        slot_frm = np.array([p.frm_id for p in enc], dtype=np.int64)
        slot_to = np.array([p.to_id for p in enc], dtype=np.int64)
        slot_block = np.array([p.block_id for p in enc], dtype=np.int64)
        slot_seq = np.array([p.seq_in_block for p in enc], dtype=np.int64)
        slot_dup = np.array([p.is_duplicate for p in enc], dtype=bool)

        # The covering (non-duplicate) slot per user: non-dup slots in
        # block-major order are the plan order, whose <frm, to> intervals
        # are disjoint and increasing (the UKA invariant the block-ID
        # estimator itself relies on).
        nd = np.flatnonzero(~slot_dup)
        position = np.searchsorted(slot_to[nd], self._uid, side="left")
        own = nd[position]
        if np.any(slot_frm[own] > self._uid) or np.any(
            slot_to[own] < self._uid
        ):
            raise TransportError(
                "message plans do not cover every session user"
            )
        self._own_slot = own
        self._own_block = slot_block[own]

        # Static estimator contributions of each decoded block's
        # non-duplicate slots (all same-side for a pending user):
        # a block below the user's own tightens low (and the step-6
        # upper bound); a block above tightens high to b - 1.
        degree = self._degree_hint()
        remaining = degree * (message.max_kid + 1) - slot_to[nd]
        nd_hi_above = slot_block[nd] + _ceil_div(
            remaining - (k - 1 - slot_seq[nd]), k
        )
        nd_lo = np.where(
            slot_seq[nd] == k - 1, slot_block[nd] + 1, slot_block[nd]
        )
        self._lo_from_block = np.zeros(self._n_blocks, dtype=np.int64)
        np.maximum.at(self._lo_from_block, slot_block[nd], nd_lo)
        self._hi_above_block = np.full(self._n_blocks, _INF, dtype=np.int64)
        np.minimum.at(self._hi_above_block, slot_block[nd], nd_hi_above)

        self._done = np.zeros(n, dtype=bool)
        self._recovery_round = np.zeros(n, dtype=np.int64)
        self._counts = np.zeros((n, self._n_blocks), dtype=np.int32)
        self._low = np.zeros(n, dtype=np.int64)
        self._high = np.full(n, _INF, dtype=np.int64)
        self._usr_encryptions = {}
        return {
            user_id: _UserView(self, index, user_id)
            for index, user_id in enumerate(self.user_ids)
        }

    # -- multicast reception ------------------------------------------------

    def _deliver_round(self, planned, clock):
        if not planned:
            return clock
        times = clock + np.array([p.offset for p in planned])
        received = self.topology.multicast_reception(times, rng=self._rng)
        matrix = received[self._rows]

        # Per-block codeword counts (ENC and PARITY both count): group
        # the round's columns by block and sum each group in one pass.
        p_block = np.array(
            [p.packet.block_id for p in planned], dtype=np.int64
        )
        order = np.argsort(p_block, kind="stable")
        sorted_blocks = p_block[order]
        starts = np.flatnonzero(
            np.r_[True, sorted_blocks[1:] != sorted_blocks[:-1]]
        )
        self._counts[:, sorted_blocks[starts]] += np.add.reduceat(
            matrix[:, order].astype(np.int32), starts, axis=1
        )

        enc_cols = np.flatnonzero(
            [p.packet.packet_type is PacketType.ENC for p in planned]
        )
        if len(enc_cols):
            self._ingest_enc(matrix, [planned[i].packet for i in enc_cols],
                             enc_cols)
        return float(times[-1])

    def _ingest_enc(self, matrix, enc_packets, enc_cols):
        uid = self._uid[:, None]
        frm = np.array([p.frm_id for p in enc_packets], dtype=np.int64)
        to = np.array([p.to_id for p in enc_packets], dtype=np.int64)
        dup = np.array([p.is_duplicate for p in enc_packets], dtype=bool)
        blk = np.array([p.block_id for p in enc_packets], dtype=np.int64)
        seq = np.array([p.seq_in_block for p in enc_packets], dtype=np.int64)
        max_kid = np.array([p.max_kid for p in enc_packets], dtype=np.int64)
        got = matrix[:, enc_cols]

        active = ~self._done
        covered = (got & (frm[None, :] <= uid) & (uid <= to[None, :])).any(
            axis=1
        )
        newly_done = active & covered
        self._done[newly_done] = True
        self._recovery_round[newly_done] = self.server.rounds_completed

        pending = active & ~covered
        if not pending.any():
            return
        nd = ~dup
        if not nd.any():
            return
        got = got[:, nd]
        frm, to, blk, seq, max_kid = (
            frm[nd], to[nd], blk[nd], seq[nd], max_kid[nd]
        )
        k = self.message.k
        degree = self._degree_hint()
        col_lo = np.where(seq == k - 1, blk + 1, blk)
        col_hi_above = blk + _ceil_div(
            degree * (max_kid + 1) - to - (k - 1 - seq), k
        )
        col_hi_below = np.where(seq == 0, blk - 1, blk)

        above = got & (uid > to[None, :])
        below = got & (uid < frm[None, :])
        low_new = np.max(np.where(above, col_lo[None, :], -1), axis=1)
        high_new = np.minimum(
            np.min(np.where(above, col_hi_above[None, :], _INF), axis=1),
            np.min(np.where(below, col_hi_below[None, :], _INF), axis=1),
        )
        self._low[pending] = np.maximum(
            self._low[pending], low_new[pending]
        )
        self._high[pending] = np.minimum(
            self._high[pending], high_new[pending]
        )

    # -- round boundary -----------------------------------------------------

    def _collect_nacks(self):
        round_index = self.server.rounds_completed
        n_blocks = self._n_blocks
        k = self.message.k
        active = ~self._done
        if active.any():
            # FEC recovery over the pre-tightening range: a pending user
            # decodes every block in [low, min(high, B-1)] with >= k
            # codewords; decoding its own block makes it done, the
            # others only tighten the estimator (static per-block
            # aggregates — see module docstring).
            block_axis = np.arange(n_blocks, dtype=np.int64)[None, :]
            hi_eff = np.minimum(self._high, n_blocks - 1)[:, None]
            candidates = (
                (self._counts >= k)
                & (block_axis >= self._low[:, None])
                & (block_axis <= hi_eff)
                & active[:, None]
            )
            own_decoded = candidates[
                np.arange(len(self._uid)), self._own_block
            ]
            newly_done = active & own_decoded
            self._done[newly_done] = True
            self._recovery_round[newly_done] = round_index

            pending = active & ~own_decoded
            if pending.any():
                below = candidates & (block_axis < self._own_block[:, None])
                above = candidates & (block_axis > self._own_block[:, None])
                low_new = np.max(
                    np.where(below, self._lo_from_block[None, :], -1), axis=1
                )
                high_new = np.minimum(
                    np.min(
                        np.where(below, self._hi_above_block[None, :], _INF),
                        axis=1,
                    ),
                    np.min(np.where(above, block_axis - 1, _INF), axis=1),
                )
                self._low[pending] = np.maximum(
                    self._low[pending], low_new[pending]
                )
                self._high[pending] = np.minimum(
                    self._high[pending], high_new[pending]
                )

        # NACKs come from the freshly tightened range; the pending set is
        # small after round 1, so real packet objects (the chaos layer's
        # seam) cost nothing.
        nacks = []
        message_id = self.message.message_id
        hi_eff = np.minimum(self._high, n_blocks - 1)
        for position in np.flatnonzero(~self._done).tolist():
            requests = []
            for block_id in range(
                int(self._low[position]), int(hi_eff[position]) + 1
            ):
                shortfall = k - int(self._counts[position, block_id])
                if shortfall > 0:
                    requests.append(
                        NackRequest(block_id=block_id, n_parity=shortfall)
                    )
            if requests:
                nacks.append(
                    NackPacket(
                        rekey_message_id=message_id,
                        user_id=int(self._uid[position]),
                        requests=tuple(requests),
                    )
                )
        return nacks

    # -- aggregates ---------------------------------------------------------

    def _n_done(self):
        return int(self._done.sum())

    def _pending_users(self):
        return [int(u) for u in self._uid[~self._done]]

    def _user_rounds(self):
        return self._recovery_round.astype(int)
