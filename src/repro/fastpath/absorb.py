"""Fleet-wide post-delivery absorption for the array engine.

After a delivery session, every member re-derives its u-node ID from the
message's ``maxKID`` (Theorem 4.2) and decrypts the path encryptions it
recovered.  The object path does both per member: an O(height) Python ID
walk times N, and — the expensive part — a fresh toy-cipher decryption
per (member, path edge) even though members below the same updated
k-node decrypt the *same* ciphertext with the *same* child key.

:class:`FleetAbsorber` keeps the member objects and their observable
state byte-identical (``tests/fastpath`` diffs every member's
``user_id`` and ``path_keys`` against the oracle) while:

- running the Theorem 4.2 relocation for the whole fleet as an iterated
  ``candidate -> d * candidate + 1`` array map (the ``f(x+1) = d f(x) + 1``
  recurrence), then applying the few actual moves in Python;
- memoising decryptions on ``(child_id, ciphertext, child key material)``
  so each distinct rekey-subtree edge is decrypted once per distinct
  child key, not once per member — the memo key includes the key
  material, so a member holding a stale sibling key still gets its own
  (failing) decryption attempt, exactly as the per-member path would;
- indexing each recovered-encryption list by encryption ID once per
  *distinct list object* (members delivered by the same multicast slot
  share one tuple — see ``_UserView.recovered_shared``), so per member
  the on-path filter is an O(height) walk of dict probes instead of an
  O(list) scan plus a sort.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.cipher import XorStreamCipher
from repro.errors import CryptoError, KeyTreeError, TransportError
from repro.keytree import ids as idmath


class FleetAbsorber:
    """Shared-work relocation + absorption across a member fleet."""

    def __init__(self, degree):
        self.degree = int(degree)
        self._cipher = XorStreamCipher()
        #: (child_id, ciphertext, child key material) -> SymmetricKey
        #: (shared instance; SymmetricKey equality is by material) or
        #: None for a failed (stale-key) decryption.
        self._memo = {}
        #: id(encryption sequence) -> (by-encryption-id dict, sequence).
        #: The sequence itself is kept in the value so the id() key
        #: cannot be recycled while the cache entry is live.
        self._indexes = {}

    # -- Theorem 4.2, fleet-wide -------------------------------------------

    def relocate_fleet(self, fleet, max_kid):
        """Relocate every member of ``fleet`` for ``max_kid`` at once.

        Equivalent to ``fleet.relocate_all(max_kid)``: each member ends
        with the ID ``derive_new_user_id`` would give it and with the
        keys that fell off its (possibly longer) path dropped.
        """
        members = list(fleet.members.values())
        if not members:
            return
        d = self.degree
        old_ids = np.array([m.user_id for m in members], dtype=np.int64)
        candidate = old_ids.copy()
        # f(x+1) = d * f(x) + 1 until every walk has cleared maxKID; the
        # loop runs at most the tree-height growth of this interval.
        while True:
            pending = candidate <= max_kid
            if not pending.any():
                break
            candidate[pending] = d * candidate[pending] + 1
        if np.any(candidate > d * max_kid + d):
            bad = int(old_ids[np.argmax(candidate > d * max_kid + d)])
            raise KeyTreeError(
                "no f(x) in (%d, %d] for old_id=%d, d=%d: inconsistent "
                "maxKID" % (max_kid, d * max_kid + d, bad, d)
            )
        for member, new_id in zip(members, candidate.tolist()):
            if new_id == member.user_id:
                # Unmoved member: its path is the same node set (the
                # path of an ID is a pure function of the ID), and keys
                # are only ever installed on the path — nothing can
                # have fallen off, so skip the filter.
                continue
            individual = member.path_keys[member.user_id]
            member.path_keys.pop(member.user_id, None)
            member.user_id = new_id
            member.path_keys[new_id] = individual
            valid = set(
                idmath.path_to_root(member.user_id, d)
            )
            member.path_keys = {
                node_id: key
                for node_id, key in member.path_keys.items()
                if node_id in valid
            }

    # -- memoised decryption ------------------------------------------------

    def absorb(self, member, encryptions):
        """``member._absorb(encryptions)`` with fleet-shared decryptions.

        The member must already be relocated (``relocate_fleet``).
        """
        if not encryptions:
            return
        cached = self._indexes.get(id(encryptions))
        if cached is None or cached[1] is not encryptions:
            cached = (
                {e.encryption_id: e for e in encryptions},
                encryptions,
            )
            self._indexes[id(encryptions)] = cached
        by_id = cached[0]
        # Walk the path bottom-up: node IDs strictly decrease towards
        # the root, so probing each path node in walk order visits the
        # member's encryptions in exactly the descending-ID order the
        # per-member path uses — a just-installed parent key is the
        # child key of the next edge up.
        d = self.degree
        memo = self._memo
        path_keys = member.path_keys
        node_id = member.user_id
        while True:
            encrypted = by_id.get(node_id)
            if encrypted is not None:
                child_key = path_keys.get(node_id)
                if child_key is None:
                    raise TransportError(
                        "missing key for node %d; encryptions out of order"
                        % node_id
                    )
                parent_id = (node_id - 1) // d
                token = (node_id, encrypted.ciphertext, child_key.material)
                if token in memo:
                    new_key = memo[token]
                else:
                    try:
                        new_key = self._cipher.decrypt_key(
                            encrypted, child_key, node_id=parent_id
                        )
                    except CryptoError:
                        # Stale sibling key (Replace-labelled slot): the
                        # per-member path skips it silently too.
                        new_key = None
                    memo[token] = new_key
                if new_key is not None:
                    path_keys[parent_id] = new_key
            if node_id == 0:
                break
            node_id = (node_id - 1) // d
