"""The key tree as flat numpy arrays.

:class:`ArrayTree` is a column-oriented snapshot of a
:class:`~repro.keytree.tree.KeyTree`: one row per *present* node, sorted
by node ID, with parallel arrays for kind, key version and (when the
source tree is keyed) key material, plus the full renewal-counter map —
including counters of currently *absent* nodes, which the object tree
keeps so a re-created node continues its version sequence (the PR 5
``from_records`` phantom-counter lesson).

Conversion is lossless both ways: ``to_keytree`` goes through the
supported :meth:`KeyTree.from_records` restore path with the counters
passed as the authoritative ``versions`` map, so
``ArrayTree.from_keytree(t).to_keytree()`` serialises byte-identically
to ``t`` (enforced by the round-trip property tests).

The array form is what the vectorized marking stages operate on:
ancestor propagation, label derivation and per-user needs enumeration
become iterated ``(id - 1) // d`` maps and ``np.isin`` reductions over
these columns instead of per-node Python.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.keys import KEY_LENGTH, SymmetricKey
from repro.errors import KeyTreeError
from repro.keytree.nodes import NodeKind
from repro.keytree.tree import KeyTree


class ArrayTree:
    """Flat-array snapshot of a key tree (rows sorted by node ID)."""

    __slots__ = (
        "degree",
        "node_ids",
        "is_u",
        "versions",
        "users",
        "key_material",
        "counters",
        "marked",
    )

    def __init__(
        self, degree, node_ids, is_u, versions, users, key_material, counters
    ):
        self.degree = int(degree)
        #: present node IDs, ascending
        self.node_ids = np.asarray(node_ids, dtype=np.int64)
        #: True where the row is a u-node (False: k-node)
        self.is_u = np.asarray(is_u, dtype=bool)
        #: each row's current key version (``TreeNode.version``)
        self.versions = np.asarray(versions, dtype=np.int64)
        #: user name per row (None on k-node rows)
        self.users = list(users)
        #: 16-byte key material per row, or None for a keyless tree
        self.key_material = (
            None if key_material is None else list(key_material)
        )
        #: renewal counters ``{node_id: last version}`` — the full map,
        #: absent-node entries included
        self.counters = dict(counters)
        #: scratch flags for marking passes (not part of equality)
        self.marked = np.zeros(len(self.node_ids), dtype=bool)
        if not (
            len(self.node_ids)
            == len(self.is_u)
            == len(self.versions)
            == len(self.users)
        ):
            raise KeyTreeError("array tree columns disagree in length")
        if self.key_material is not None and len(self.key_material) != len(
            self.node_ids
        ):
            raise KeyTreeError("key column disagrees in length")
        if len(self.node_ids) > 1 and not np.all(
            np.diff(self.node_ids) > 0
        ):
            raise KeyTreeError("node IDs must be strictly increasing")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_keytree(cls, tree):
        """Snapshot ``tree`` (any :class:`KeyTree`, keyed or keyless)."""
        ids = tree.node_ids()
        is_u = []
        versions = []
        users = []
        material = []
        for node_id in ids:
            node = tree.node(node_id)
            is_u.append(node.is_u_node)
            versions.append(node.version)
            users.append(node.user)
            material.append(None if node.key is None else node.key.material)
        # Keyed-ness is a property of the *nodes*, not of whether a
        # factory is attached: ``from_records`` restores key material
        # into a factory-less tree (the HA replica path), and that must
        # still snapshot as keyed.
        if all(m is None for m in material):
            material = None
        return cls(
            degree=tree.degree,
            node_ids=ids,
            is_u=is_u,
            versions=versions,
            users=users,
            key_material=material,
            counters=tree.version_counters,
        )

    def to_keytree(self, key_factory=None):
        """Rebuild the object tree (validated by ``from_records``).

        ``key_factory`` re-attaches a factory for *future* key
        generation; the snapshot's own key material is restored verbatim
        (a keyless snapshot stays keyless regardless of the factory,
        mirroring how persistence restores keyed state).
        """
        records = []
        for row in range(len(self.node_ids)):
            node_id = int(self.node_ids[row])
            record = {
                "id": node_id,
                "kind": (
                    NodeKind.U_NODE if self.is_u[row] else NodeKind.K_NODE
                ),
                "version": int(self.versions[row]),
            }
            if self.is_u[row]:
                record["user"] = self.users[row]
            if self.key_material is not None:
                record["key"] = SymmetricKey(
                    self.key_material[row],
                    node_id=node_id,
                    version=int(self.versions[row]),
                )
            records.append(record)
        return KeyTree.from_records(
            self.degree,
            records,
            versions=dict(self.counters),
            key_factory=key_factory,
        )

    # -- structure queries -------------------------------------------------

    @property
    def n_nodes(self):
        return len(self.node_ids)

    @property
    def u_node_ids(self):
        return self.node_ids[self.is_u]

    @property
    def k_node_ids(self):
        return self.node_ids[~self.is_u]

    @property
    def max_knode_id(self):
        k_ids = self.k_node_ids
        return int(k_ids[-1]) if len(k_ids) else -1

    def index_of(self, ids):
        """Row indices of ``ids`` (must all be present nodes)."""
        ids = np.asarray(ids, dtype=np.int64)
        rows = np.searchsorted(self.node_ids, ids)
        if np.any(rows >= len(self.node_ids)) or np.any(
            self.node_ids[np.minimum(rows, len(self.node_ids) - 1)] != ids
        ):
            raise KeyTreeError("lookup of absent node IDs")
        return rows

    def parent_rows(self):
        """Row index of each row's parent (-1 for the root row)."""
        parents = (self.node_ids - 1) // self.degree
        rows = np.searchsorted(self.node_ids, parents)
        rows = np.where(self.node_ids == 0, -1, rows)
        return rows

    # -- vectorized ancestor machinery ------------------------------------

    def touched_ancestors(self, touched_ids):
        """All proper ancestors (root included) of ``touched_ids``.

        The array analogue of the marking algorithm's
        ``_touched_ancestors``: iterate the parent map over the whole
        frontier at once, de-duplicating per level, until every walk has
        passed the root.  Returns a sorted ``int64`` array.
        """
        frontier = np.unique(np.asarray(list(touched_ids), dtype=np.int64))
        collected = []
        while len(frontier):
            frontier = np.unique((frontier[frontier > 0] - 1) // self.degree)
            collected.append(frontier)
        if not collected:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(collected))

    def needs_pairs(self, updated_knode_ids):
        """Vectorized needs enumeration for every current member.

        For each u-node, the encryption IDs it must receive are the
        *child* IDs along its path whose parent is an updated k-node,
        deepest first.  Returns ``(u_ids, level_children)`` where
        ``level_children[j][i]`` is the needed child ID of user
        ``u_ids[i]`` at the ``j``-th step up its path, or ``-1`` when
        that parent was not updated — exactly the per-user lists the
        oracle's ``BatchResult.needs_by_user`` builds one path at a
        time.
        """
        u_ids = self.u_node_ids
        updated = np.asarray(updated_knode_ids, dtype=np.int64)
        level_children = []
        current = u_ids.copy()
        while np.any(current > 0):
            parent = np.where(current > 0, (current - 1) // self.degree, -1)
            wanted = (current > 0) & np.isin(parent, updated)
            level_children.append(np.where(wanted, current, -1))
            current = parent
        return u_ids, level_children

    # -- equality ----------------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, ArrayTree):
            return NotImplemented
        if (self.key_material is None) != (other.key_material is None):
            return False
        return (
            self.degree == other.degree
            and np.array_equal(self.node_ids, other.node_ids)
            and np.array_equal(self.is_u, other.is_u)
            and np.array_equal(self.versions, other.versions)
            and self.users == other.users
            and self.key_material == other.key_material
            and self.counters == other.counters
        )

    def __repr__(self):
        return "ArrayTree(d=%d, nodes=%d, users=%d, %s)" % (
            self.degree,
            self.n_nodes,
            int(self.is_u.sum()),
            "keyless" if self.key_material is None else "keyed",
        )


# Re-exported for callers that size buffers from the snapshot.
__all__ = ["ArrayTree", "KEY_LENGTH"]
