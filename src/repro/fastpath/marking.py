"""Array-plane marking: vectorized propagation and needs enumeration.

The object-level marking algorithms already keep the *tree mutation*
cheap (O(batch × height)); what remains O(N) every interval is the
downstream enumeration — walking every member's path to decide which
encryptions it needs, and (for large batches) collecting the ancestor
frontier to re-label.  :class:`ArrayMarkingAlgorithm` keeps the
incremental algorithm's mutation byte-for-byte (it *is* the incremental
algorithm) and replaces those scans with whole-array operations:

- ancestor propagation as an iterated ``(id - 1) // d`` parent map over
  the whole frontier with per-level ``np.unique`` dedup;
- needs enumeration as level-synchronous path ascent over the sorted
  u-node ID column with ``np.isin`` membership tests against the
  updated-k-node set.

Key-version bumps and key material regeneration stay per-node: each new
key is an independent BLAKE2b derivation, so there is nothing to fuse —
the version *sequence* (and therefore every derived key byte) is
identical across engines by construction.

The labelling decision per candidate k-node remains a small dict loop
(bounded by the batch's touched paths, not by N); only the candidate
*generation* is vectorized, and only once the frontier is large enough
to beat the object walk.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MarkingError
from repro.keytree.marking import (
    BatchResult,
    IncrementalMarkingAlgorithm,
    _touched_ancestors,
)
from repro.keytree.nodes import NodeKind, NodeLabel


class ArrayBatchResult(BatchResult):
    """BatchResult whose needs enumeration is a whole-array operation.

    Produces a dict equal (same keys, same ordered value lists) to the
    oracle's per-path walk — the differential suite compares them
    directly — while touching each (user, level) pair only inside numpy.
    """

    def needs_by_user(self):
        if self._needs_cache is not None:
            return self._needs_cache
        updated = np.asarray(
            self.subtree.updated_knode_ids, dtype=np.int64
        )
        u_ids = np.asarray(self.tree.u_node_ids(), dtype=np.int64)
        if len(u_ids) == 0 or len(updated) == 0:
            self._needs_cache = {}
            return self._needs_cache
        d = self.tree.degree
        current = u_ids.copy()
        level_columns = []
        while np.any(current > 0):
            parent = np.where(current > 0, (current - 1) // d, 0)
            wanted = (current > 0) & np.isin(parent, updated)
            level_columns.append(np.where(wanted, current, -1))
            current = np.where(current > 0, parent, 0)
        columns = np.stack(level_columns, axis=1)
        needs = {}
        for u_id, row in zip(u_ids.tolist(), columns.tolist()):
            wanted = [child for child in row if child >= 0]
            if wanted:
                needs[u_id] = wanted
        self._needs_cache = needs
        return needs


#: Below this many touched leaves the object-level frontier walk wins
#: (numpy call overhead dominates); measured on the bench workloads.
_VECTOR_FRONTIER_MIN = 64


def _touched_ancestors_vectorized(touched_ids, degree):
    """Array analogue of ``marking._touched_ancestors`` (same set)."""
    frontier = np.unique(np.fromiter(touched_ids, dtype=np.int64))
    collected = []
    while len(frontier):
        frontier = np.unique((frontier[frontier > 0] - 1) // degree)
        collected.append(frontier)
    if not collected:
        return set()
    return set(np.concatenate(collected).tolist())


def _frontier(touched_ids, degree):
    touched_ids = list(touched_ids)
    if len(touched_ids) < _VECTOR_FRONTIER_MIN:
        return _touched_ancestors(touched_ids, degree)
    return _touched_ancestors_vectorized(touched_ids, degree)


class ArrayMarkingAlgorithm(IncrementalMarkingAlgorithm):
    """The ``engine="numpy"`` marking algorithm.

    Tree mutation, labelling decisions, version bumps and edge order are
    inherited from :class:`IncrementalMarkingAlgorithm` unchanged; the
    ancestor-frontier collection and the needs enumeration run on
    arrays.  Output is identical to both object algorithms (enforced by
    ``tests/fastpath``).
    """

    result_class = ArrayBatchResult

    def _prune_empty_knodes(self, tree, vacated):
        pruned = set()
        for k_id in sorted(_frontier(vacated, tree.degree), reverse=True):
            if (
                tree.kind_of(k_id) is NodeKind.K_NODE
                and not tree.children_of(k_id)
            ):
                tree.remove_node(k_id)
                pruned.add(k_id)
        return pruned

    def _label_k_nodes(self, tree, leaf_labels, vacated):
        touched = set(leaf_labels) | set(vacated)
        candidates = _frontier(touched, tree.degree)
        labels = dict(leaf_labels)
        k_labels = {}
        for k_id in sorted(candidates, reverse=True):
            if tree.kind_of(k_id) is not NodeKind.K_NODE:
                continue
            child_labels = []
            for child in tree.children_of(k_id, present_only=False):
                if tree.has_node(child):
                    child_labels.append(
                        labels.get(child, NodeLabel.UNCHANGED)
                    )
                elif child in vacated:
                    child_labels.append(NodeLabel.LEAVE)
            if not child_labels:
                raise MarkingError(
                    "k-node %d has no children to label from" % k_id
                )
            if all(c is NodeLabel.UNCHANGED for c in child_labels):
                label = NodeLabel.UNCHANGED
            elif all(
                c in (NodeLabel.UNCHANGED, NodeLabel.JOIN)
                for c in child_labels
            ):
                label = NodeLabel.JOIN
            else:
                label = NodeLabel.REPLACE
            labels[k_id] = label
            k_labels[k_id] = label
        return k_labels
