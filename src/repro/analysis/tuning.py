"""Provisioning helpers: choose protocol parameters for a target.

The analytic models answer "what happens at these parameters"; these
helpers invert them for the questions an operator actually asks:

- :func:`rho_for_target_nacks` — the smallest proactivity factor whose
  expected first-round NACK count is at or below a target (what
  ``AdjustRho`` converges to, computed a priori);
- :func:`rho_for_deadline` — the smallest rho such that a user on the
  *worst* link recovers within ``deadline_rounds`` with the requested
  probability;
- :func:`block_size_for_encoding_budget` — the largest block size whose
  per-message FEC encoding cost stays within a budget, given the
  expected message size.
"""

from __future__ import annotations

import math

from repro.analysis.fec_model import (
    combined_loss_rate,
    expected_first_round_nacks,
    first_round_failure_probability,
)
from repro.errors import ConfigurationError
from repro.transport.adaptive import proactive_parity_count
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
)

_RHO_STEP_LIMIT = 400


def _rho_grid(k):
    """Meaningful rho values: one per whole parity packet per block."""
    for parity in range(_RHO_STEP_LIMIT):
        yield 1.0 + parity / k, parity


def rho_for_target_nacks(
    n_users, alpha, p_high, p_low, p_source, k, target_nacks
):
    """Smallest rho with E[first-round NACKs] <= ``target_nacks``.

    This is the fixed point the AdjustRho controller hunts for; bench
    E06's stable values land on it.
    """
    check_positive("n_users", n_users, integral=True)
    check_non_negative("target_nacks", target_nacks)
    for rho, _ in _rho_grid(k):
        expected = expected_first_round_nacks(
            n_users, alpha, p_high, p_low, p_source, k, rho
        )
        if expected <= target_nacks:
            return rho
    raise ConfigurationError(
        "no rho within the parity budget meets the NACK target"
    )


def rho_for_deadline(
    p_receiver,
    p_source,
    k,
    deadline_rounds=1,
    success_probability=0.999,
):
    """Smallest rho giving per-user recovery within the deadline.

    Round-one failure is the binomial model; each later round
    multiplies the failure probability by at most the per-packet loss
    (the shortfall chain's slowest mode), which keeps the bound
    conservative.
    """
    check_probability("success_probability", success_probability)
    check_positive("deadline_rounds", deadline_rounds, integral=True)
    p = combined_loss_rate(p_receiver, p_source)
    allowed_failure = 1.0 - success_probability
    for rho, parity in _rho_grid(k):
        failure = first_round_failure_probability(p, k, parity)
        # Later rounds: shortfall shrinks geometrically; bound the
        # residual failure by p per extra round.
        residual = failure * (p ** (deadline_rounds - 1))
        if residual <= allowed_failure:
            return rho
    raise ConfigurationError(
        "no rho within the parity budget meets the deadline target"
    )


def block_size_for_encoding_budget(
    expected_enc_packets,
    encoding_budget_units,
    overhead_factor=1.8,
    k_min=5,
    k_max=128,
):
    """Largest k whose expected FEC encoding cost fits the budget.

    Encoding one parity packet costs ``k`` units (Rizzo); a message of
    ``h`` ENC packets at server overhead ``c`` sends about
    ``(c - 1) * h`` parity packets, costing ``k * (c - 1) * h`` units.
    Since the overhead is ~flat for k >= 5 (bench E03), the cost is
    ~linear in k and the inversion is a simple bound.
    """
    check_positive("expected_enc_packets", expected_enc_packets)
    check_positive("encoding_budget_units", encoding_budget_units)
    check_positive("overhead_factor", overhead_factor)
    if overhead_factor <= 1.0:
        return k_max
    parity_packets = (overhead_factor - 1.0) * expected_enc_packets
    best = math.floor(encoding_budget_units / parity_packets)
    if best < k_min:
        raise ConfigurationError(
            "budget %.0f units cannot cover even k=%d"
            % (encoding_budget_units, k_min)
        )
    return min(best, k_max)
