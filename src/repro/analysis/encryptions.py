"""Expected rekey-subtree size for batches on a full balanced tree.

Setting: a full, balanced d-ary key tree with ``N = d^h`` users; a batch
of ``L`` departures drawn uniformly without replacement (and, for the
J = L case, the departures replaced in place by joins).  The rekey
subtree's edge count — the number of encryptions in the rekey message —
has a closed form by linearity of expectation over edges:

An edge (parent ``p`` at level ``l``, child ``c`` at level ``l+1``)
carries an encryption iff ``p``'s key changed and ``c`` still exists.

- **Leaves only (J = 0).**  ``p`` changes iff at least one of its
  ``s_l = d^(h-l)`` descendant users departed and not all of them did
  (all-departed means ``p`` is pruned); ``c`` is removed iff all of its
  ``s_(l+1)`` users departed.  With hypergeometric departure counts::

      P(edge) = 1 - C(N - s_l, L)/C(N, L) - C(N - s_{l+1}, L - s_{l+1})/C(N, L)

  (the second term doubles as ``P(p unaffected)``, the third as
  ``P(c pruned)``; the events are disjoint).

- **J = L (replacement batch).**  Departed u-nodes are immediately
  refilled, so nothing is pruned: ``P(edge) = 1 - C(N - s_l, L)/C(N, L)``.

Binomial ratios are evaluated with log-gamma so the formulas hold to
N in the millions.  ``simulate_batch`` runs the *real* marking algorithm
for Monte-Carlo validation (bench E15 plots both).
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln

from repro.errors import ConfigurationError
from repro.keytree.marking import MarkingAlgorithm
from repro.keytree.tree import KeyTree
from repro.util.validation import check_non_negative, check_positive


def _check_full_tree(n_users, degree):
    check_positive("n_users", n_users, integral=True)
    check_positive("degree", degree, integral=True)
    if degree < 2:
        raise ConfigurationError("degree must be >= 2")
    height = 0
    size = 1
    while size < n_users:
        size *= degree
        height += 1
    if size != n_users:
        raise ConfigurationError(
            "closed forms need N to be a power of d; got N=%d, d=%d"
            % (n_users, degree)
        )
    return height


def _log_choose(n, k):
    """log C(n, k) via log-gamma (valid for 0 <= k <= n)."""
    return gammaln(n + 1) - gammaln(k + 1) - gammaln(n - k + 1)


def _choose_ratio(n_top, k_top, n_bottom, k_bottom):
    """C(n_top, k_top) / C(n_bottom, k_bottom), safely in log space."""
    if k_top < 0 or k_top > n_top:
        return 0.0
    return float(
        np.exp(_log_choose(n_top, k_top) - _log_choose(n_bottom, k_bottom))
    )


def expected_encryptions_leaves_only(n_users, degree, n_leaves):
    """E[#encryptions] for a batch of ``n_leaves`` departures (J = 0)."""
    height = _check_full_tree(n_users, degree)
    check_non_negative("n_leaves", n_leaves, integral=True)
    if n_leaves > n_users:
        raise ConfigurationError("more leaves than users")
    if n_leaves == 0:
        return 0.0
    total = 0.0
    for level in range(height):
        s_parent = degree ** (height - level)
        s_child = s_parent // degree
        p_parent_unaffected = _choose_ratio(
            n_users - s_parent, n_leaves, n_users, n_leaves
        )
        p_child_pruned = _choose_ratio(
            n_users - s_child, n_leaves - s_child, n_users, n_leaves
        )
        p_edge = 1.0 - p_parent_unaffected - p_child_pruned
        total += degree ** (level + 1) * p_edge
    return total


def expected_updated_knodes_leaves_only(n_users, degree, n_leaves):
    """E[#k-nodes whose key changes] for ``n_leaves`` departures (J = 0).

    A k-node at level ``l`` is rekeyed iff its subtree is affected but
    not fully departed.
    """
    height = _check_full_tree(n_users, degree)
    check_non_negative("n_leaves", n_leaves, integral=True)
    if n_leaves > n_users:
        raise ConfigurationError("more leaves than users")
    if n_leaves == 0:
        return 0.0
    total = 0.0
    for level in range(height):
        size = degree ** (height - level)
        p_unaffected = _choose_ratio(
            n_users - size, n_leaves, n_users, n_leaves
        )
        p_all_departed = _choose_ratio(
            n_users - size, n_leaves - size, n_users, n_leaves
        )
        total += degree**level * (1.0 - p_unaffected - p_all_departed)
    return total


def expected_encryptions_joins_equal_leaves(n_users, degree, batch_size):
    """E[#encryptions] for J = L = ``batch_size`` (in-place replacement)."""
    height = _check_full_tree(n_users, degree)
    check_non_negative("batch_size", batch_size, integral=True)
    if batch_size > n_users:
        raise ConfigurationError("batch larger than the group")
    if batch_size == 0:
        return 0.0
    total = 0.0
    for level in range(height):
        size = degree ** (height - level)
        p_unaffected = _choose_ratio(
            n_users - size, batch_size, n_users, batch_size
        )
        total += degree ** (level + 1) * (1.0 - p_unaffected)
    return total


def simulate_batch(
    n_users, degree, n_joins, n_leaves, n_trials=10, rng=None
):
    """Monte-Carlo rekey-subtree sizes from the real marking algorithm.

    Returns a dict of numpy arrays (one entry per trial):
    ``encryptions``, ``updated_knodes``, ``enc_packets`` is left to the
    caller (depends on packing).
    """
    check_positive("n_trials", n_trials, integral=True)
    if rng is None:
        from repro.util.rng import spawn_rng

        rng = spawn_rng()
    encryptions = np.zeros(n_trials)
    updated = np.zeros(n_trials)
    algorithm = MarkingAlgorithm(renew_keys=False)
    users = ["u%d" % i for i in range(n_users)]
    for trial in range(n_trials):
        tree = KeyTree.full_balanced(users, degree)
        leave_idx = rng.choice(n_users, size=n_leaves, replace=False)
        leaves = [users[i] for i in leave_idx]
        joins = ["j%d" % i for i in range(n_joins)]
        result = algorithm.apply(tree, joins=joins, leaves=leaves)
        encryptions[trial] = result.n_encryptions
        updated[trial] = result.subtree.n_updated_keys
    return {"encryptions": encryptions, "updated_knodes": updated}
