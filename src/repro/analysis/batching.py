"""Batch vs individual rekeying cost (the paper's headline saving).

Rekeying after every request costs one digital signature *per request*
plus per-request encryptions; periodic batching pays one signature per
interval and removes redundant key changes (a key on the path of two
departures is changed once, not twice; a join filling a departure's slot
cancels its structural work).

``individual_leave_encryptions`` is exact for a full balanced tree: a
single departure changes the ``h`` k-node keys on its path; the deepest
is encrypted for ``d - 1`` remaining siblings, each higher one for ``d``
children, giving ``d*h - 1``.

``individual_cost`` / ``batch_cost`` return full
:class:`BatchCost` records (encryptions, key generations, signatures,
modelled seconds) — ``individual_cost`` by replaying requests one at a
time through the real marking algorithm, ``batch_cost`` in one shot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cost import CostModel
from repro.errors import ConfigurationError
from repro.keytree.marking import MarkingAlgorithm
from repro.keytree.tree import KeyTree
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class BatchCost:
    """Server-side work for processing one batch (or request stream)."""

    encryptions: int
    key_generations: int
    signatures: int

    def seconds(self, cost_model=None):
        """Modelled processing time under ``cost_model``."""
        model = cost_model or CostModel()
        return model.batch_seconds(
            self.key_generations, self.encryptions, self.signatures
        )

    def __add__(self, other):
        return BatchCost(
            encryptions=self.encryptions + other.encryptions,
            key_generations=self.key_generations + other.key_generations,
            signatures=self.signatures + other.signatures,
        )


def individual_leave_encryptions(degree, height):
    """Encryptions to rekey one departure on a full tree: ``d*h - 1``."""
    check_positive("degree", degree, integral=True)
    check_positive("height", height, integral=True)
    return degree * height - 1


def signature_savings(n_joins, n_leaves):
    """Signatures saved by batching: ``J + L`` signings become one."""
    check_non_negative("n_joins", n_joins, integral=True)
    check_non_negative("n_leaves", n_leaves, integral=True)
    total = n_joins + n_leaves
    if total == 0:
        return 0
    return total - 1


def _cost_from_result(result):
    subtree = result.subtree
    # Key generations: every updated k-node plus every fresh individual
    # key handed to a joined/replaced user.
    return BatchCost(
        encryptions=subtree.n_encryptions,
        key_generations=subtree.n_updated_keys + len(result.joined_ids),
        signatures=1 if subtree.n_encryptions else 0,
    )


def batch_cost(n_users, degree, n_joins, n_leaves, rng=None):
    """Cost of processing the batch in one marking run (measured)."""
    tree, users, leaves, joins = _setup(
        n_users, degree, n_joins, n_leaves, rng
    )
    result = MarkingAlgorithm(renew_keys=False).apply(
        tree, joins=joins, leaves=leaves
    )
    return _cost_from_result(result)


def individual_cost(n_users, degree, n_joins, n_leaves, rng=None):
    """Cost of processing the same requests one at a time.

    Leaves are processed first, then joins (order barely matters for the
    totals; this matches a server draining its queue).
    """
    tree, users, leaves, joins = _setup(
        n_users, degree, n_joins, n_leaves, rng
    )
    algorithm = MarkingAlgorithm(renew_keys=False)
    total = BatchCost(encryptions=0, key_generations=0, signatures=0)
    for user in leaves:
        total = total + _cost_from_result(algorithm.apply(tree, leaves=[user]))
    for user in joins:
        total = total + _cost_from_result(algorithm.apply(tree, joins=[user]))
    return total


def _setup(n_users, degree, n_joins, n_leaves, rng):
    check_positive("n_users", n_users, integral=True)
    check_non_negative("n_joins", n_joins, integral=True)
    check_non_negative("n_leaves", n_leaves, integral=True)
    if n_leaves > n_users:
        raise ConfigurationError("more leaves than users")
    if rng is None:
        from repro.util.rng import spawn_rng

        rng = spawn_rng()
    users = ["u%d" % i for i in range(n_users)]
    tree = KeyTree.full_balanced(users, degree)
    leave_idx = rng.choice(n_users, size=n_leaves, replace=False)
    leaves = [users[i] for i in leave_idx]
    joins = ["j%d" % i for i in range(n_joins)]
    return tree, users, leaves, joins
