"""Multi-round recovery model for proactive-FEC multicast.

Extends the single-round model of :mod:`repro.analysis.fec_model` to the
full retransmission process, under independent per-packet loss:

- A user that failed round one is short ``s = k - received`` codewords
  of its block.  Each later round the server multicasts at least ``s``
  fresh parity packets (it sends the per-block maximum request, so
  ``s`` is a lower bound — making this model slightly pessimistic).
- The shortfall therefore evolves as ``s' ~ Binomial(s, p)`` per round:
  each of the ``s`` needed packets independently arrives (shrinking the
  shortfall) or is lost.

``expected_rounds_per_user`` computes the absorption time of that chain
exactly by dynamic programming over shortfall states; bench/test
comparisons against the fleet simulator show it tracks the simulated
per-user round counts.

``expected_block_amax`` gives the expected *maximum* first-round
shortfall over the users of one block (the quantity the server
retransmits), from binomial order statistics.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import binom

from repro.errors import ConfigurationError
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
)

_MAX_ROUNDS = 200


def _shortfall_distribution(p, k, n_parity):
    """P(first-round shortfall = s | user failed round one), s = 1..k.

    Conditioned on the user's specific packet being lost, it received
    ``r ~ Binomial(k + n_parity - 1, 1 - p)`` other codewords; the
    shortfall is ``max(0, k - r)`` and failure means shortfall >= 1.
    """
    others = k + n_parity - 1
    shortfalls = np.zeros(k + 1)
    for received in range(0, others + 1):
        shortfall = max(0, k - received)
        shortfalls[shortfall] += binom.pmf(received, others, 1.0 - p)
    return shortfalls


def expected_rounds_per_user(p, k, n_parity=0):
    """Expected multicast rounds for one user to recover its block.

    Round one succeeds with probability ``1 - f1``; otherwise the user
    enters the shortfall chain and needs one extra round per step until
    absorption at shortfall 0.
    """
    check_probability("p", p)
    check_positive("k", k, integral=True)
    check_non_negative("n_parity", n_parity, integral=True)
    if p == 0.0:
        return 1.0
    if p >= 1.0:
        raise ConfigurationError("p = 1 never recovers")

    shortfalls = _shortfall_distribution(p, k, n_parity)
    failure = p * (1.0 - shortfalls[0])
    if failure == 0.0:
        return 1.0

    # E[extra rounds | start shortfall s]: T(0) = 0,
    # T(s) = 1 + sum_j P(Binom(s, p) = j) T(j); solve bottom-up with the
    # self-transition (j = s) moved to the left-hand side.
    extra = np.zeros(k + 1)
    for s in range(1, k + 1):
        stay = binom.pmf(s, s, p)
        if stay >= 1.0:
            raise ConfigurationError("absorbing chain requires p < 1")
        total = 1.0
        for j in range(0, s):
            total += binom.pmf(j, s, p) * extra[j]
        extra[s] = total / (1.0 - stay)

    conditional = shortfalls[1:] / shortfalls[1:].sum()
    mean_extra = float((conditional * extra[1:]).sum())
    # Unconditional: 1 round always; failed users pay the chain, where
    # the conditioning on "own packet lost" contributes factor p.
    f1 = p * shortfalls[1:].sum()
    return 1.0 + f1 * mean_extra


def expected_block_amax(p, k, n_parity, n_users_in_block):
    """E[max first-round shortfall] over one block's users.

    Users' shortfalls are treated as independent (they share the source
    link, so this is approximate); the maximum is computed from the CDF
    product.  A user that received its specific packet requests 0.
    """
    check_probability("p", p)
    check_positive("k", k, integral=True)
    check_non_negative("n_parity", n_parity, integral=True)
    check_positive("n_users_in_block", n_users_in_block, integral=True)
    if p == 0.0:
        return 0.0
    shortfalls = _shortfall_distribution(p, k, n_parity)
    # Per-user shortfall distribution including round-one success:
    per_user = np.zeros(k + 1)
    per_user[0] = (1.0 - p) + p * shortfalls[0]
    per_user[1:] = p * shortfalls[1:]
    cdf = np.cumsum(per_user)
    cdf_max = cdf**n_users_in_block
    pmf_max = np.diff(np.concatenate([[0.0], cdf_max]))
    return float((np.arange(k + 1) * pmf_max).sum())


def expected_bandwidth_overhead(p, k, n_parity, n_users_in_block,
                                max_rounds=20):
    """Approximate server bandwidth overhead ``h'/h`` for one block.

    Round one costs ``k + n_parity`` packets per ``k`` ENC packets;
    each later round costs the expected per-block ``amax`` while any of
    the block's users remains short.  The shrinking-shortfall chain is
    truncated at ``max_rounds``.
    """
    check_positive("max_rounds", max_rounds, integral=True)
    if p == 0.0:
        return (k + n_parity) / k
    total = float(k + n_parity)
    # Survival of "some user still short" round over round, with the
    # per-round amax decaying geometrically (each needed packet arrives
    # w.p. 1-p).
    amax = expected_block_amax(p, k, n_parity, n_users_in_block)
    for _ in range(max_rounds):
        if amax < 1e-3:
            break
        total += amax
        amax *= p
    return total / k
