"""Analytic models from the performance analysis.

- :mod:`repro.analysis.encryptions` — closed-form expected rekey-subtree
  sizes (encryptions, updated keys) for batches on a full balanced key
  tree, plus Monte-Carlo validators that run the real marking algorithm.
- :mod:`repro.analysis.batching` — batch vs individual rekeying cost:
  encryptions, key generations and (crucially) signatures saved.
- :mod:`repro.analysis.scalability` — key-server processing time per
  interval and the largest group a single server can sustain.
- :mod:`repro.analysis.fec_model` — recovery/NACK probabilities for
  proactive-FEC multicast under independent loss.
"""

from repro.analysis.encryptions import (
    expected_encryptions_joins_equal_leaves,
    expected_encryptions_leaves_only,
    expected_updated_knodes_leaves_only,
    simulate_batch,
)
from repro.analysis.batching import (
    BatchCost,
    batch_cost,
    individual_cost,
    individual_leave_encryptions,
    signature_savings,
)
from repro.analysis.scalability import (
    max_supported_group_size,
    processing_seconds_per_interval,
)
from repro.analysis.fec_model import (
    expected_first_round_nacks,
    first_round_failure_probability,
    round_one_recovery_fraction,
)
from repro.analysis.rounds_model import (
    expected_bandwidth_overhead,
    expected_block_amax,
    expected_rounds_per_user,
)
from repro.analysis.duplication import (
    expected_duplication_overhead,
    expected_duplications_per_boundary,
    paper_duplication_bound,
)
from repro.analysis.tuning import (
    block_size_for_encoding_budget,
    rho_for_deadline,
    rho_for_target_nacks,
)

__all__ = [
    "BatchCost",
    "batch_cost",
    "block_size_for_encoding_budget",
    "expected_encryptions_joins_equal_leaves",
    "expected_encryptions_leaves_only",
    "expected_bandwidth_overhead",
    "expected_block_amax",
    "expected_duplication_overhead",
    "expected_duplications_per_boundary",
    "expected_first_round_nacks",
    "expected_rounds_per_user",
    "expected_updated_knodes_leaves_only",
    "first_round_failure_probability",
    "individual_cost",
    "individual_leave_encryptions",
    "max_supported_group_size",
    "paper_duplication_bound",
    "processing_seconds_per_interval",
    "rho_for_deadline",
    "rho_for_target_nacks",
    "round_one_recovery_fraction",
    "signature_savings",
    "simulate_batch",
]
