"""Analytic model of proactive-FEC first-round recovery.

Under *independent* per-packet loss at rate ``p`` (receiver and source
combined), a user whose block carries ``k`` ENC + ``a`` proactive PARITY
packets fails round one iff

1. its specific ENC packet is lost (probability ``p``), **and**
2. fewer than ``k`` of the block's other ``k + a - 1`` packets arrive.

So ``P(fail) = p * P[Binomial(k + a - 1, 1 - p) < k]`` — the quantity
behind Figure 9's exponential NACK decay in ``rho`` (each extra parity
packet multiplies the binomial tail by roughly ``p``).

The burst-loss simulation deviates from independence at 100 ms packet
spacing only mildly; bench E04 plots model vs simulation.
"""

from __future__ import annotations

from scipy.stats import binom

from repro.transport.adaptive import proactive_parity_count
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
)


def combined_loss_rate(p_receiver, p_source):
    """Effective per-packet loss across source + receiver links."""
    check_probability("p_receiver", p_receiver)
    check_probability("p_source", p_source)
    return 1.0 - (1.0 - p_receiver) * (1.0 - p_source)


def first_round_failure_probability(p, k, n_parity):
    """P(a user cannot recover in round one), independent loss ``p``."""
    check_probability("p", p)
    check_positive("k", k, integral=True)
    check_non_negative("n_parity", n_parity, integral=True)
    if p == 0.0:
        return 0.0
    others = k + n_parity - 1
    # Fewer than k of the others arrive: Binomial(others, 1-p) <= k-1.
    tail = binom.cdf(k - 1, others, 1.0 - p)
    return float(p * tail)


def round_one_recovery_fraction(
    alpha, p_high, p_low, p_source, k, rho
):
    """Expected fraction of users recovering in round one."""
    check_probability("alpha", alpha)
    n_parity = proactive_parity_count(rho, k)
    fail_high = first_round_failure_probability(
        combined_loss_rate(p_high, p_source), k, n_parity
    )
    fail_low = first_round_failure_probability(
        combined_loss_rate(p_low, p_source), k, n_parity
    )
    return 1.0 - (alpha * fail_high + (1.0 - alpha) * fail_low)


def expected_first_round_nacks(
    n_users, alpha, p_high, p_low, p_source, k, rho
):
    """Expected NACK count after round one (one NACK per failing user)."""
    check_positive("n_users", n_users, integral=True)
    fraction_failing = 1.0 - round_one_recovery_fraction(
        alpha, p_high, p_low, p_source, k, rho
    )
    return n_users * fraction_failing
