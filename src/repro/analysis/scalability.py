"""Key-server processing time and maximum supportable group size.

The scalability question: with a rekey interval of ``T`` seconds and a
churn model (a fraction of the group leaving, and as many joining, per
interval), how large a group can one key server rekey in time?

Processing per interval is modelled as cost accounting (the paper's
method): key generations and encryptions scale with the rekey-subtree
size (closed forms from :mod:`repro.analysis.encryptions`) plus one
signature.  ``max_supported_group_size`` then inverts the model by
scanning tree heights (group sizes are powers of ``d``, matching the
closed forms' domain).
"""

from __future__ import annotations

from repro.analysis.encryptions import (
    expected_encryptions_joins_equal_leaves,
    expected_encryptions_leaves_only,
    expected_updated_knodes_leaves_only,
)
from repro.crypto.cost import CostModel
from repro.errors import ConfigurationError
from repro.util.validation import (
    check_in_range,
    check_positive,
)


def processing_seconds_per_interval(
    n_users,
    degree,
    leave_fraction,
    join_equals_leave=True,
    cost_model=None,
):
    """Expected server processing time for one rekey interval.

    ``leave_fraction`` of the group departs per interval (uniformly);
    with ``join_equals_leave`` the same number joins (the steady-state
    assumption), doubling the key-generation work for individual keys.
    """
    check_positive("n_users", n_users, integral=True)
    check_in_range("leave_fraction", leave_fraction, 0.0, 1.0)
    model = cost_model or CostModel()
    n_leaves = int(round(leave_fraction * n_users))
    if n_leaves == 0:
        return 0.0
    if join_equals_leave:
        encryptions = expected_encryptions_joins_equal_leaves(
            n_users, degree, n_leaves
        )
        # Every changed k-node (no pruning with replacement) + L fresh
        # individual keys.
        updated = encryptions / degree
        keygens = updated + n_leaves
    else:
        encryptions = expected_encryptions_leaves_only(
            n_users, degree, n_leaves
        )
        keygens = expected_updated_knodes_leaves_only(
            n_users, degree, n_leaves
        )
    return model.batch_seconds(
        int(round(keygens)), int(round(encryptions)), signatures=1
    )


def max_supported_group_size(
    rekey_interval_seconds,
    degree=4,
    leave_fraction=0.25,
    join_equals_leave=True,
    cost_model=None,
    budget_fraction=1.0,
    max_height=12,
):
    """Largest ``N = d^h`` the server can rekey within each interval.

    ``budget_fraction`` is the share of the interval available for
    rekey processing (the server also registers users, etc.).
    Returns 0 when even a minimal group exceeds the budget.
    """
    check_positive("rekey_interval_seconds", rekey_interval_seconds)
    check_in_range("budget_fraction", budget_fraction, 0.0, 1.0)
    check_positive("max_height", max_height, integral=True)
    if degree < 2:
        raise ConfigurationError("degree must be >= 2")
    budget = rekey_interval_seconds * budget_fraction
    model = cost_model or CostModel()
    best = 0
    for height in range(1, max_height + 1):
        n_users = degree**height
        seconds = processing_seconds_per_interval(
            n_users,
            degree,
            leave_fraction,
            join_equals_leave=join_equals_leave,
            cost_model=model,
        )
        if seconds <= budget:
            best = n_users
        else:
            break
    return best
