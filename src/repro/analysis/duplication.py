"""Expected UKA duplication overhead (refining the paper's §4.4 bound).

The paper bounds the duplication overhead by ``(log_d N - 1) / 46``:
each packet boundary can duplicate at most the ``h - 1`` shared
ancestors of the boundary-straddling users, over a 46-encryption
packet.  This module sharpens that to an *expected value*:

- UKA packs users in ID order, so the two users straddling a boundary
  are (near-)adjacent leaves.  For adjacent leaves of a complete d-ary
  tree, the lowest common ancestor sits ``j`` levels up with
  probability ``(d - 1) / d^j`` (the trailing-digit argument on base-d
  leaf indices);
- the encryptions duplicated at that boundary are the *updated* shared
  ancestors strictly above the LCA — at most ``h - j`` of them, and in
  the paper's L = N/4 regime almost all high ancestors are updated, so
  ``h - j`` is a tight proxy;
- a message of ``E`` encryptions packed at capacity ``c`` has about
  ``E / c`` boundaries.

Hence::

    E[dup/boundary] ~ sum_{j=1}^{h-1} (d-1)/d^j * (h - j)
    E[overhead]     ~ (E/c) * E[dup/boundary] / E

The model is an *upper-leaning approximation* (it assumes every shared
ancestor was updated, and departures make some sorted-adjacent users
non-adjacent in the tree); tests accept it within a factor band against
the real packer, and it always respects the paper's hard bound.
"""

from __future__ import annotations

from repro.analysis.encryptions import expected_encryptions_leaves_only
from repro.errors import ConfigurationError
from repro.util.validation import check_positive


def paper_duplication_bound(n_users, degree, capacity=46):
    """The paper's bound: ``(log_d N - 1) / capacity``."""
    check_positive("n_users", n_users, integral=True)
    check_positive("capacity", capacity, integral=True)
    if degree < 2:
        raise ConfigurationError("degree must be >= 2")
    import math

    return (math.log(n_users, degree) - 1.0) / capacity


def expected_duplications_per_boundary(degree, height):
    """E[shared-ancestor chain length] across one packet boundary."""
    check_positive("degree", degree, integral=True)
    check_positive("height", height, integral=True)
    if degree < 2:
        raise ConfigurationError("degree must be >= 2")
    total = 0.0
    for j in range(1, height):
        total += (degree - 1) / degree**j * (height - j)
    return total


def expected_duplication_overhead(n_users, degree, n_leaves, capacity=46):
    """E[duplicated / unique encryptions] for the J=0 batch workload."""
    check_positive("capacity", capacity, integral=True)
    unique = expected_encryptions_leaves_only(n_users, degree, n_leaves)
    if unique <= 0:
        return 0.0
    import math

    height = round(math.log(n_users, degree))
    boundaries = max(0.0, unique / capacity - 1.0)
    per_boundary = expected_duplications_per_boundary(degree, height)
    return boundaries * per_boundary / unique
