"""Performance measurement library for the key-server hot paths."""

from repro.perf.bench import (
    BENCHMARKS,
    SCALES,
    SCALE_PARAMS,
    format_table,
    run_suite,
)

__all__ = [
    "BENCHMARKS",
    "SCALES",
    "SCALE_PARAMS",
    "format_table",
    "run_suite",
]
