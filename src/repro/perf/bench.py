"""Hot-path micro-benchmarks with machine-readable output.

The key server's per-interval cost is dominated by four stages: marking
the key tree, packing encryptions into ENC packets (UKA), RSE-encoding
parity, and pushing the message through a delivery round (§4–5 of the
paper).  Each benchmark here times one stage — and, where a reference
implementation exists, times it side by side so the *speedup* (a
machine-independent ratio) is recorded next to the wall times.

:func:`run_suite` produces the ``BENCH_perf.json`` document consumed by
``benchmarks/perf/compare_bench.py`` (the regression gate) and described
in ``docs/performance.md``.  Two scales exist:

- ``quick`` — small groups, few repetitions; CI-sized (seconds);
- ``full`` — the paper's N=4096 defaults; the committed baselines are
  refreshed at this scale.

Timing discipline: every benchmark reports the median and p90 of many
repetitions (never the mean, which interleaved OS noise skews), and the
paired fast/reference benchmarks interleave their repetitions so load
spikes hit both sides equally.
"""

from __future__ import annotations

import platform
import sys
import time

import numpy as np

SCALES = ("quick", "full")

#: Defaults per scale: group size, churn fraction, repetition counts.
SCALE_PARAMS = {
    "quick": {
        "n_users": 512,
        "alpha": 0.20,
        "rse_pairs": 40,
        "marking_reps": 3,
        "assignment_reps": 10,
        "fleet_reps": 3,
        "daemon_pairs": 3,
        "wire_clients": 64,
        "wire_pairs": 2,
        "tenants": 16,
        "tenant_pairs": 5,
    },
    "full": {
        "n_users": 4096,
        "alpha": 0.20,
        "rse_pairs": 120,
        "marking_reps": 5,
        "assignment_reps": 20,
        "fleet_reps": 5,
        "daemon_pairs": 5,
        "wire_clients": 256,
        "wire_pairs": 3,
        "tenants": 64,
        "tenant_pairs": 3,
    },
}

#: RSE benchmark geometry: the paper's block size over 1 KB payloads.
RSE_K = 10
RSE_H = 10
RSE_PACKET_BYTES = 1024


def _times(fn, reps, warmup=1):
    """Wall times of ``reps`` calls (after ``warmup`` unrecorded ones)."""
    for _ in range(warmup):
        fn()
    out = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        out.append(time.perf_counter() - start)
    return out


def _interleaved(fast_fn, slow_fn, pairs, warmup=1, inner=1):
    """Time ``pairs`` fast/slow call pairs back to back.

    Interleaving (with the order alternating each pair) cancels the slow
    drift of machine load that separate timing blocks pick up.  For
    micro-operations, ``inner`` calls are timed together and the total
    divided, amortising timer granularity and scheduler jitter.
    """
    for _ in range(warmup):
        fast_fn()
        slow_fn()
    fast, slow = [], []
    for pair in range(pairs):
        ordering = (
            ((fast_fn, fast), (slow_fn, slow))
            if pair % 2 == 0
            else ((slow_fn, slow), (fast_fn, fast))
        )
        for fn, bucket in ordering:
            start = time.perf_counter()
            for _ in range(inner):
                fn()
            bucket.append((time.perf_counter() - start) / inner)
    return fast, slow


def _summary(times):
    ordered = sorted(times)
    median = ordered[len(ordered) // 2]
    p90 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.9))]
    return {
        "reps": len(ordered),
        "median_s": median,
        "p90_s": p90,
        "ops_per_s": (1.0 / median) if median > 0 else None,
    }


def _paired(fast_times, reference_times, params):
    fast = _summary(fast_times)
    reference = _summary(reference_times)
    if len(fast_times) == len(reference_times):
        # Each pair ran back to back, so per-pair ratios see the same
        # instantaneous machine load; their median is far more stable
        # than the ratio of two medians taken seconds apart (this repo
        # benches on single-vCPU hosts where steal time comes in waves).
        ratios = sorted(
            s / f for f, s in zip(fast_times, reference_times)
        )
        speedup = ratios[len(ratios) // 2]
    else:
        speedup = reference["median_s"] / fast["median_s"]
    return {
        "params": params,
        "fast": fast,
        "reference": reference,
        "speedup": speedup,
    }


def _single(times, params):
    return {"params": params, "fast": _summary(times)}


# -- RSE codec ----------------------------------------------------------


def _rse_block(seed=20010827):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 256, RSE_PACKET_BYTES, dtype=np.uint8).tobytes()
        for _ in range(RSE_K)
    ]


def bench_rse_encode(p):
    """Matrix vs reference parity generation at k=10, h=10, 1 KB."""
    from repro.fec.rse import ReferenceRSECoder, RSECoder

    data = _rse_block()
    matrix = RSECoder(RSE_K)
    reference = ReferenceRSECoder(RSE_K)
    fast, slow = _interleaved(
        lambda: matrix.parity(data, RSE_H),
        lambda: reference.parity(data, RSE_H),
        p["rse_pairs"],
        inner=10,
    )
    return _paired(
        fast,
        slow,
        {"k": RSE_K, "h": RSE_H, "packet_bytes": RSE_PACKET_BYTES},
    )


def bench_rse_decode(p):
    """Matrix vs reference decode with half the data packets erased."""
    from repro.fec.rse import ReferenceRSECoder, RSECoder

    data = _rse_block()
    matrix = RSECoder(RSE_K)
    reference = ReferenceRSECoder(RSE_K)
    code = data + matrix.parity(data, RSE_H)
    kept = [0, 1, 2, 3, 4, 12, 13, 14, 15, 16]
    received = {index: code[index] for index in kept}
    fast, slow = _interleaved(
        lambda: matrix.decode(dict(received)),
        lambda: reference.decode(dict(received)),
        p["rse_pairs"],
        inner=10,
    )
    assert matrix.decode(dict(received)) == data
    return _paired(
        fast,
        slow,
        {
            "k": RSE_K,
            "h": RSE_H,
            "packet_bytes": RSE_PACKET_BYTES,
            "erased_data_packets": RSE_K - 5,
        },
    )


# -- marking ------------------------------------------------------------


def _marking_batch(n_users, alpha, seed):
    """One deterministic churn batch over a fresh keyless tree."""
    from repro.keytree.tree import KeyTree

    rng = np.random.default_rng(seed)
    tree = KeyTree.full_balanced(
        ["u%05d" % i for i in range(n_users)], 4
    )
    members = sorted(tree.users)
    half = max(1, int(n_users * alpha / 2))
    leaves = list(rng.choice(members, size=half, replace=False))
    joins = ["j%05d" % i for i in range(half)]
    return tree, joins, leaves


def bench_marking(p):
    """Incremental vs from-scratch marking, one α-churn batch."""
    from repro.keytree.marking import (
        IncrementalMarkingAlgorithm,
        MarkingAlgorithm,
    )

    fast, slow = [], []
    for rep in range(p["marking_reps"]):
        for algo, bucket in (
            (IncrementalMarkingAlgorithm(), fast),
            (MarkingAlgorithm(), slow),
        ):
            tree, joins, leaves = _marking_batch(
                p["n_users"], p["alpha"], seed=rep
            )
            start = time.perf_counter()
            algo.apply(tree, joins=joins, leaves=leaves)
            bucket.append(time.perf_counter() - start)
    return _paired(
        fast, slow, {"n_users": p["n_users"], "alpha": p["alpha"]}
    )


def bench_assignment(p):
    """UKA packing of one batch's per-user needs into ENC packets."""
    from repro.keytree.marking import IncrementalMarkingAlgorithm

    from repro.rekey.assignment import UserOrientedKeyAssignment

    tree, joins, leaves = _marking_batch(p["n_users"], p["alpha"], seed=0)
    batch = IncrementalMarkingAlgorithm().apply(
        tree, joins=joins, leaves=leaves
    )
    needs = batch.needs_by_user()
    assigner = UserOrientedKeyAssignment()
    times = _times(
        lambda: assigner.assign(needs), p["assignment_reps"]
    )
    return _single(
        times,
        {
            "n_users": p["n_users"],
            "alpha": p["alpha"],
            "users_with_needs": len(needs),
        },
    )


# -- transport ----------------------------------------------------------


def bench_fleet_interval(p):
    """One vectorised fleet message at the paper's transport defaults."""
    from repro.sim import build_paper_topology
    from repro.transport import FleetConfig, FleetSimulator
    from repro.transport.fleet import make_paper_workload

    workload = make_paper_workload(n_users=p["n_users"], seed=5)
    topology = build_paper_topology(n_users=workload.n_users, seed=6)
    simulator = FleetSimulator(
        topology, FleetConfig(multicast_only=True), seed=7
    )
    times = _times(
        lambda: simulator.run_message(workload), p["fleet_reps"]
    )
    return _single(
        times,
        {
            "n_users": p["n_users"],
            "n_enc_packets": workload.n_enc_packets,
            "k": workload.k,
        },
    )


def _make_daemon(
    n_users, alpha, incremental, coder, seed=11, obs=None, engine="python"
):
    from repro.core.config import GroupConfig
    from repro.service import (
        DaemonConfig,
        RekeyDaemon,
        make_backend,
        make_driver,
    )

    config = GroupConfig(
        seed=seed,
        incremental_marking=incremental,
        fec_coder=coder,
        engine=engine,
    )
    backend = make_backend("sim", config, seed=seed + 1)
    churn = make_driver("poisson", alpha=alpha)
    return RekeyDaemon.start_new(
        ["m%05d" % i for i in range(n_users)],
        config=config,
        backend=backend,
        churn=churn,
        service=DaemonConfig(verify_invariants=False),
        seed=seed,
        obs=obs,
    )


def bench_daemon_interval(p):
    """Full daemon intervals: fastest configuration vs the pre-PR one.

    "Fast" is everything this repo has: the numpy engine (array
    marking, vectorised delivery sessions, batched stacked-GF(256)
    parity) over incremental marking and the matrix coder.  "Reference"
    configures the server exactly as the original pipeline did —
    per-object engine, from-scratch marking, the scalar RSE coder — so
    the speedup shows what the fast paths buy end to end (churn, fleet
    bookkeeping and the loss draws are identical on both sides).  Both
    daemons consume the same seeded churn and run interleaved.
    """
    fast_daemon = _make_daemon(
        p["n_users"], p["alpha"], True, "matrix", engine="numpy"
    )
    slow_daemon = _make_daemon(
        p["n_users"], p["alpha"], False, "reference"
    )
    fast, slow = _interleaved(
        fast_daemon.run_interval,
        slow_daemon.run_interval,
        p["daemon_pairs"],
        warmup=0,  # intervals advance group state; don't burn churn
    )
    return _paired(
        fast, slow, {"n_users": p["n_users"], "alpha": p["alpha"]}
    )


def bench_interval_fastpath(p):
    """The engine knob in isolation: numpy vs python daemon intervals.

    Unlike ``daemon_interval`` (which also folds in marking-mode and
    coder-kind differences), both sides here run incremental marking
    and the matrix coder — the *only* difference is
    ``engine="numpy"`` vs ``engine="python"``, so the speedup is
    exactly what the array plane (vectorised sessions, fleet-wide
    absorption, batched parity) contributes.  The differential suite in
    ``tests/fastpath`` certifies the two sides byte-identical.
    """
    fast_daemon = _make_daemon(
        p["n_users"], p["alpha"], True, "matrix", engine="numpy"
    )
    slow_daemon = _make_daemon(
        p["n_users"], p["alpha"], True, "matrix", engine="python"
    )
    fast, slow = _interleaved(
        fast_daemon.run_interval,
        slow_daemon.run_interval,
        p["daemon_pairs"],
        warmup=0,  # intervals advance group state; don't burn churn
    )
    return _paired(
        fast, slow, {"n_users": p["n_users"], "alpha": p["alpha"]}
    )


def bench_daemon_obs(p):
    """Observability overhead: disabled (NULL) vs enabled recorder.

    The roles are inverted relative to the other paired benchmarks:
    "fast" is the daemon with observability *off* (the NULL recorder
    the instrumented hot paths default to, on the same numpy-engine
    configuration ``daemon_interval`` gates) and "reference" runs a
    live :class:`~repro.obs.Recorder` with an in-memory
    :class:`~repro.obs.EventBus`.  The resulting "speedup" is the
    enabled-path cost ratio and should sit near 1.0x; the gate is an
    *overhead ceiling* (``compare_bench.py --overhead daemon_obs``),
    not a speedup floor.  Both daemons consume identically seeded churn
    and run interleaved.
    """
    from repro.obs import EventBus, Recorder

    plain = _make_daemon(
        p["n_users"], p["alpha"], True, "matrix", engine="numpy"
    )
    observed = _make_daemon(
        p["n_users"], p["alpha"], True, "matrix",
        obs=Recorder(bus=EventBus()), engine="numpy",
    )
    fast, slow = _interleaved(
        plain.run_interval,
        observed.run_interval,
        p["daemon_pairs"],
        warmup=0,  # intervals advance group state; don't burn churn
    )
    return _paired(
        fast, slow, {"n_users": p["n_users"], "alpha": p["alpha"]}
    )


def _make_wire_daemon(n_clients, seed):
    from repro.core.config import GroupConfig
    from repro.service import (
        DaemonConfig,
        RekeyDaemon,
        make_backend,
        make_driver,
    )

    config = GroupConfig(block_size=5, seed=seed)
    backend = make_backend("wire", config, seed=seed + 1)
    churn = make_driver("poisson", alpha=0.15)
    daemon = RekeyDaemon.start_new(
        ["w%05d" % i for i in range(n_clients)],
        config=config,
        backend=backend,
        churn=churn,
        service=DaemonConfig(verify_invariants=False),
        seed=seed,
    )
    return daemon, backend


def bench_wire_fleet(p):
    """Real-UDP interval cost: N asyncio clients vs 4N (scaling pair).

    Both sides run a daemon whose delivery backend is the asyncio wire
    plane over loopback UDP; one interval multicasts a rekey message to
    every client and aggregates its NACK feedback.  The roles are a
    *scaling* pair rather than fast/reference implementations: "fast"
    drives ``wire_clients`` members and "reference" four times as many,
    so the recorded "speedup" is the cost multiplier of quadrupling the
    fan-out (linear scaling would read 4x; large regressions in the
    per-client hot path move it).  The warmup pair is essential here: it
    pays the one-off client registration barrier outside the timings.
    """
    fast_daemon, fast_backend = _make_wire_daemon(p["wire_clients"], 31)
    slow_daemon, slow_backend = _make_wire_daemon(
        p["wire_clients"] * 4, 37
    )
    try:
        fast, slow = _interleaved(
            fast_daemon.run_interval,
            slow_daemon.run_interval,
            p["wire_pairs"],
            warmup=1,
        )
    finally:
        for daemon, backend in (
            (fast_daemon, fast_backend),
            (slow_daemon, slow_backend),
        ):
            daemon.close()
            backend.close()
    return _paired(
        fast,
        slow,
        {
            "clients_fast": p["wire_clients"],
            "clients_reference": p["wire_clients"] * 4,
        },
    )


def _make_tenant_fleet(count, seed):
    import tempfile

    from repro.service.churn import PoissonChurn
    from repro.tenancy import MultiGroupDaemon, make_fleet

    fleet = make_fleet(count, seed=seed, n_members=4, interval_ticks=1)
    root = tempfile.mkdtemp(prefix="bench-tenancy-")
    churn = {spec.name: PoissonChurn(alpha=0.2) for spec in fleet}
    return MultiGroupDaemon.start_new(fleet, root, churn=churn), root


def bench_multi_tenant(p):
    """Multi-tenant tick cost: N tenants vs 8N (scaling pair).

    Both sides run a :class:`~repro.tenancy.MultiGroupDaemon` — every
    tenant with its own WAL, snapshot and seeded churn — and one
    measured unit is one scheduler tick over the whole fleet.  Like
    ``wire_fleet`` this is a *scaling* pair, not fast/reference: "fast"
    ticks ``tenants`` groups and "reference" eight times as many, so
    the recorded "speedup" is the cost multiplier of growing the fleet
    8x (linear scheduling would read 8x; superlinear growth in the
    scheduler, admission, or per-tenant bookkeeping moves it).
    """
    import shutil

    fast_daemon, fast_root = _make_tenant_fleet(p["tenants"], 41)
    slow_daemon, slow_root = _make_tenant_fleet(p["tenants"] * 8, 43)
    try:
        fast, slow = _interleaved(
            fast_daemon.tick,
            slow_daemon.tick,
            p["tenant_pairs"],
            warmup=0,  # ticks advance fleet state; don't burn churn
        )
    finally:
        for daemon, root in (
            (fast_daemon, fast_root),
            (slow_daemon, slow_root),
        ):
            daemon.close()
            shutil.rmtree(root, ignore_errors=True)
    return _paired(
        fast,
        slow,
        {
            "tenants_fast": p["tenants"],
            "tenants_reference": p["tenants"] * 8,
        },
    )


# -- suite --------------------------------------------------------------

BENCHMARKS = (
    ("rse_encode", bench_rse_encode),
    ("rse_decode", bench_rse_decode),
    ("marking", bench_marking),
    ("assignment", bench_assignment),
    ("fleet_interval", bench_fleet_interval),
    ("daemon_interval", bench_daemon_interval),
    ("interval_fastpath", bench_interval_fastpath),
    ("daemon_obs", bench_daemon_obs),
    ("wire_fleet", bench_wire_fleet),
    ("multi_tenant", bench_multi_tenant),
)


def run_suite(scale="quick", progress=None):
    """Run every benchmark; returns the ``BENCH_perf.json`` document."""
    if scale not in SCALE_PARAMS:
        raise ValueError(
            "scale must be one of %s, got %r" % (SCALES, scale)
        )
    params = SCALE_PARAMS[scale]
    results = {}
    for name, fn in BENCHMARKS:
        if progress is not None:
            progress(name)
        results[name] = fn(params)
    return {
        "schema": 1,
        "meta": {
            "scale": scale,
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": sys.platform,
            "machine": platform.machine(),
            "numpy": np.__version__,
        },
        "benchmarks": results,
    }


def format_table(document):
    """Human-readable summary lines for one :func:`run_suite` document."""
    lines = [
        "%-16s %12s %12s %9s" % ("benchmark", "median", "p90", "speedup")
    ]
    for name, entry in document["benchmarks"].items():
        fast = entry["fast"]
        speedup = entry.get("speedup")
        lines.append(
            "%-16s %10.3fms %10.3fms %9s"
            % (
                name,
                fast["median_s"] * 1e3,
                fast["p90_s"] * 1e3,
                ("%.2fx" % speedup) if speedup else "-",
            )
        )
    return lines
