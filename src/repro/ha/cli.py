"""The ``serve --role leader|standby`` entry points (see docs/ha.md).

Both roles share one state directory (WAL, snapshots, lease file) on
one machine and speak the replication protocol over loopback TCP —
the paper's deployment of a key server with a warm spare.  The CLI
surface stays in :mod:`repro.cli`; this module holds the role logic so
the argument parser does not grow a second daemon implementation.
"""

from __future__ import annotations

import os
import time

from repro.errors import HaError, ReplicationError, StaleEpochError


def _make_obs(args):
    if args.obs_file is None and args.metrics_port is None:
        return None, None
    from repro.obs import EventBus, Recorder

    bus = EventBus(path=args.obs_file)
    return Recorder(bus=bus), bus


def run_leader(args, out):
    """Durable daemon + lease renewal + replication fan-out."""
    from repro.core.config import GroupConfig
    from repro.ha.lease import Lease
    from repro.ha.replication import LeaderPublisher, ReplicationServer
    from repro.service import (
        DaemonConfig,
        RekeyDaemon,
        ServiceMetrics,
        make_backend,
        make_driver,
    )

    if not args.state_dir:
        print(
            "--role leader needs --state-dir "
            "(the shared WAL/snapshot/lease directory)",
            file=out,
        )
        return 2
    # The lease file is written before the daemon gets a chance to
    # create the directory.
    os.makedirs(args.state_dir, exist_ok=True)
    obs, bus = _make_obs(args)
    config = GroupConfig(block_size=5, seed=args.seed)
    lease = Lease(
        os.path.join(args.state_dir, "lease.json"),
        args.node_id,
        ttl=args.lease_ttl,
        obs=obs,
    )
    try:
        epoch = lease.acquire()
    except HaError as error:
        print("error: %s" % error, file=out)
        return 2
    service = DaemonConfig(
        state_dir=args.state_dir,
        interval_seconds=args.interval_seconds,
        deadline_rounds=args.deadline_rounds,
        deadline_policy=args.deadline_policy,
    )
    backend = make_backend(args.transport, config, seed=args.seed + 1)
    churn = make_driver(
        args.churn, alpha=args.alpha, trace_path=args.trace_file
    )
    if args.resume:
        daemon = RekeyDaemon.recover(
            args.state_dir,
            config=config,
            backend=backend,
            churn=churn,
            service=service,
            seed=args.seed,
            obs=obs,
            epoch=epoch,
            fence=lease,
        )
    else:
        daemon = RekeyDaemon.start_new(
            ["member-%03d" % i for i in range(args.members)],
            config=config,
            backend=backend,
            churn=churn,
            service=service,
            seed=args.seed,
            obs=obs,
            epoch=epoch,
            fence=lease,
        )
    if obs is not None:
        obs.emit(
            "ha_role", node=args.node_id, role="leader", epoch=epoch
        )
    publisher = daemon.attach_replication(
        LeaderPublisher(epoch, wal=daemon.wal, obs=daemon.obs)
    )

    def on_subscribe(sink, payload):
        # Bootstrap under the daemon lock: the snapshot and the stream
        # position must name the same instant.
        with daemon._lock:
            publisher.subscribe(
                sink,
                since_seq=int(payload.get("since_seq", 0)),
                server=daemon.server,
            )

    replication = ReplicationServer(
        on_subscribe, port=args.replication_port
    )
    print(
        "leader %r: epoch %d, %d members, replicating on port %d"
        % (args.node_id, epoch, daemon.server.n_users, replication.port),
        file=out,
    )
    scrape = None
    if args.metrics_port is not None:
        from repro.obs.httpd import MetricsServer

        scrape = MetricsServer.for_daemon(
            daemon, port=args.metrics_port
        ).start()
        print("metrics: %s/metrics" % scrape.url, file=out)
    print(ServiceMetrics.TABLE_HEADER, file=out)

    def on_interval(record):
        lease.renew()
        publisher.heartbeat()
        print(ServiceMetrics.format_row(record), file=out)

    exit_code = 0
    try:
        daemon.run(args.intervals, on_interval=on_interval)
    except StaleEpochError as error:
        # A standby promoted over us: stop writing, immediately.
        print("fenced out: %s" % error, file=out)
        exit_code = 1
    finally:
        replication.close()
        if scrape is not None:
            scrape.stop()
        daemon.close()
        if bus is not None:
            bus.close()
    health = daemon.health()
    print(
        "health: %s (role %s, epoch %d, %d followers, %d intervals)"
        % (
            health["status"],
            health["ha"]["role"],
            health["ha"]["epoch"],
            health["ha"]["replication"]["followers"],
            health["intervals_processed"],
        ),
        file=out,
    )
    return exit_code


def run_standby(args, out):
    """Tail the leader; promote if its lease lapses before the target."""
    from repro.core.config import GroupConfig
    from repro.ha.lease import Lease
    from repro.ha.replication import ReplicationClient
    from repro.ha.standby import StandbyReplica, promote
    from repro.service import (
        DaemonConfig,
        ServiceMetrics,
        make_backend,
        make_driver,
    )

    if not args.state_dir or not args.peer:
        print(
            "--role standby needs --state-dir and --peer HOST:PORT",
            file=out,
        )
        return 2
    os.makedirs(args.state_dir, exist_ok=True)
    host, _, port = args.peer.partition(":")
    obs, bus = _make_obs(args)
    config = GroupConfig(block_size=5, seed=args.seed)
    replica = StandbyReplica(config=config, node_id=args.node_id, obs=obs)
    lease = Lease(
        os.path.join(args.state_dir, "lease.json"),
        args.node_id,
        ttl=args.lease_ttl,
        obs=obs,
    )
    client = ReplicationClient(host, int(port or 0), args.node_id, obs=obs)
    try:
        client.connect()
    except OSError as error:
        print("error: cannot reach leader at %s: %s" % (args.peer, error),
              file=out)
        return 2
    if obs is not None:
        obs.emit("ha_role", node=args.node_id, role="standby", epoch=0)
    print(
        "standby %r: following %s, target %d interval(s)"
        % (args.node_id, args.peer, args.intervals),
        file=out,
    )
    target = int(args.intervals)
    exit_code = 0
    daemon = None
    try:
        while (
            replica.server is None
            or replica.server.intervals_processed < target
        ):
            if not client.connected:
                # A finished or dead leader stops renewing, so the
                # lease lapses; until then, keep trying to rejoin.
                if lease.expired():
                    break
                try:
                    client.connect(since_seq=replica.applied_seq + 1)
                except OSError:
                    time.sleep(0.2)
                continue
            payloads = client.poll(0.5)
            if payloads:
                replica.apply_frames(payloads)
            elif payloads is None:
                client.close()  # disconnected; reconnect or promote
        if (
            replica.server is not None
            and replica.server.intervals_processed >= target
        ):
            # The final commit's digest frame trails its WAL record;
            # give it a moment to arrive before reporting convergence.
            for _ in range(10):
                if replica.digest_ok is not None:
                    break
                payloads = client.poll(0.2)
                if not payloads:
                    break
                replica.apply_frames(payloads)
            digest_state = {
                True: "ok",
                False: "MISMATCH",
                None: "unverified",
            }[replica.digest_ok]
            print(
                "standby caught up: interval %d, lag %d, digest %s"
                % (
                    replica.server.intervals_processed,
                    replica.lag(),
                    digest_state,
                ),
                file=out,
            )
            return 0 if replica.digest_ok is not False else 1
        # The leader is gone and its lease has lapsed: take over.
        try:
            daemon = promote(
                replica,
                args.state_dir,
                lease,
                backend=make_backend(
                    args.transport, config, seed=args.seed + 1
                ),
                churn=make_driver(
                    args.churn, alpha=args.alpha,
                    trace_path=args.trace_file,
                ),
                service=DaemonConfig(
                    state_dir=args.state_dir,
                    interval_seconds=args.interval_seconds,
                    deadline_rounds=args.deadline_rounds,
                    deadline_policy=args.deadline_policy,
                ),
                seed=args.seed,
                obs=obs,
            )
        except (HaError, ReplicationError) as error:
            print("cannot promote: %s" % error, file=out)
            return 1
        print(
            "promoted to leader: epoch %d at interval %d"
            % (daemon.epoch, daemon.server.intervals_processed),
            file=out,
        )
        print(ServiceMetrics.TABLE_HEADER, file=out)
        daemon.run(
            max(0, target - daemon.server.intervals_processed),
            on_interval=lambda record: print(
                ServiceMetrics.format_row(record), file=out
            ),
        )
        health = daemon.health()
        print(
            "health: %s (role %s, epoch %d, %d intervals)"
            % (
                health["status"],
                health["ha"]["role"],
                health["ha"]["epoch"],
                health["intervals_processed"],
            ),
            file=out,
        )
    finally:
        client.close()
        if daemon is not None:
            daemon.close()
        if bus is not None:
            bus.close()
    return exit_code
