"""High availability: a hot-standby key server with fenced failover.

The paper's key server is a single point of failure; this package is
the warm-spare deployment that removes it without changing a single
key byte:

- :mod:`repro.ha.lease` — the leader lease file and the monotonically
  increasing **epoch** fencing tokens its acquisitions mint.
- :mod:`repro.ha.digest` — canonical SHA-256 state digests, the
  convergence proof a follower checks before it may promote.
- :mod:`repro.ha.replication` — the WAL streaming wire format (CRC-
  carrying frames), the in-memory :class:`DirectLink`, and the
  loopback-TCP server/client the CLI roles use.
- :mod:`repro.ha.standby` — :class:`StandbyReplica` (replays the
  stream into a shadow server) and :func:`promote` (lease + epoch +
  fleet resync = the new leader).
- :mod:`repro.ha.soak` — the cluster chaos harness behind
  ``python -m repro ha-soak`` and its three plans (``leader-kill``,
  ``replication-partition``, ``split-brain``).

The safety argument, end to end: the WAL refuses appends from any
epoch older than the lease's (``StaleEpochError`` before a byte
lands), promotions only mint *larger* epochs, and a replica that
cannot prove digest convergence refuses to promote.  See
``docs/ha.md``.
"""

from repro.ha.digest import server_digest, state_digest
from repro.ha.lease import Lease
from repro.ha.replication import (
    DirectLink,
    FrameReader,
    LeaderPublisher,
    ReplicationClient,
    ReplicationServer,
    decode_body,
    encode_frame,
)
from repro.ha.standby import StandbyReplica, promote


def __getattr__(name):
    # The soak harness reaches into repro.service (which adopts the
    # chaos seams); resolve it lazily to keep `import repro.ha` light
    # and cycle-free, mirroring repro.chaos (PEP 562).
    if name in ("HaSoakResult", "run_ha_soak", "LEASE_TTL"):
        from repro.ha import soak

        return getattr(soak, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))

__all__ = [
    "DirectLink",
    "FrameReader",
    "HaSoakResult",
    "LeaderPublisher",
    "Lease",
    "ReplicationClient",
    "ReplicationServer",
    "StandbyReplica",
    "decode_body",
    "encode_frame",
    "promote",
    "run_ha_soak",
    "server_digest",
    "state_digest",
]
