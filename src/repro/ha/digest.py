"""Canonical state digests: how two key servers prove convergence.

Replication streams *inputs* (WAL records), so a follower's state is
only ever inferred equal to the leader's.  Before a follower may
promote, inference is not enough — handing the group to a diverged
replica silently splits the key space.  The digest closes that gap:
SHA-256 over the canonical JSON of :meth:`GroupKeyServer.snapshot`
(sorted keys, so dict ordering cannot leak in).  The snapshot covers
the full keyed tree, the message-id counter, and the interval count —
everything that determines future key material — and excludes the
pending request queues, which are transient by design.

The leader sends its digest after every committed interval; the
follower compares after applying the same commit.  Equal digests mean
byte-identical trees, not just matching fingerprints.
"""

from __future__ import annotations

import hashlib
import json


def state_digest(payload):
    """SHA-256 hex over the canonical JSON encoding of ``payload``."""
    data = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def server_digest(server):
    """The convergence digest of one :class:`GroupKeyServer`."""
    return state_digest(server.snapshot())
