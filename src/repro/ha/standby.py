"""The hot standby: replay the leader's stream, promote on its death.

:class:`StandbyReplica` holds a shadow :class:`GroupKeyServer` built
from the leader's bootstrap snapshot and advanced by replaying streamed
WAL records: each ``join``/``leave`` is queued exactly as the leader
queued it, and each ``commit`` triggers the same end-of-interval
:meth:`rekey` the leader ran.  Because key derivation is deterministic
in ``(seed, node id, version)`` and the marking algorithm is a pure
function of the request set, replaying the *inputs* reproduces the
leader's tree byte for byte — which the leader's per-commit ``digest``
frames verify continuously, not just at promotion time.

:func:`promote` is the failover step: acquire the lease (minting the
next epoch — every write the old leader might still attempt is fenced
from this instant), wrap the replayed server in a
:class:`~repro.service.daemon.RekeyDaemon` bound to the shared state
directory, and resync the member fleet exactly the way crash recovery
does.  A replica whose last digest check failed refuses to promote:
promoting a diverged replica would split the key space silently, the
one failure mode worse than staying down.
"""

from __future__ import annotations

from repro.chaos.seams import SYSTEM_CLOCK
from repro.core.server import GroupKeyServer
from repro.errors import HaError, ReplicationError, ReproError
from repro.ha.digest import server_digest
from repro.obs.recorder import NULL


class StandbyReplica:
    """A follower's replayed view of the leader's key server."""

    def __init__(self, config=None, node_id="standby", obs=None,
                 clock=None):
        self.config = config
        self.node_id = str(node_id)
        self.obs = obs if obs is not None else NULL
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        #: the shadow server (``None`` until the bootstrap snapshot)
        self.server = None
        #: highest WAL sequence folded into the shadow server
        self.applied_seq = -1
        #: highest sequence the leader has reported durable
        self.leader_seq = -1
        self.leader_epoch = 0
        #: outcome of the most recent digest frame (``None`` = never
        #: checked, ``True``/``False`` = matched / diverged)
        self.digest_ok = None
        self.last_digest = None
        self.last_heartbeat = None
        self.records_applied = 0

    # -- stream intake -------------------------------------------------

    def apply_frames(self, payloads):
        """Apply a batch of decoded frames in arrival order."""
        for payload in payloads:
            self.apply(payload)

    def apply(self, payload):
        """Fold one replication frame into the shadow state."""
        kind = payload.get("kind")
        if kind == "hello":
            self.leader_epoch = int(payload.get("epoch", 0))
            self.leader_seq = max(
                self.leader_seq, int(payload.get("last_seq", -1))
            )
        elif kind == "snapshot":
            self.server = GroupKeyServer.restore(
                payload["state"], config=self.config
            )
            self.applied_seq = int(payload.get("wal_seq", -1))
            self.leader_seq = max(self.leader_seq, self.applied_seq)
            self.leader_epoch = int(payload.get("epoch", 0))
        elif kind == "record":
            self._apply_record(payload["record"])
        elif kind == "digest":
            self._check_digest(payload)
        elif kind == "heartbeat":
            self.last_heartbeat = self.clock.time()
            self.leader_epoch = int(payload.get("epoch", 0))
            self.leader_seq = max(
                self.leader_seq, int(payload.get("last_seq", -1))
            )
        else:
            raise ReplicationError(
                "standby cannot apply frame kind %r" % (kind,)
            )

    def _apply_record(self, record):
        if self.server is None:
            raise ReplicationError(
                "record frame before the bootstrap snapshot"
            )
        seq = int(record["seq"])
        if seq <= self.applied_seq:
            return  # catch-up overlap: already folded in
        if seq != self.applied_seq + 1:
            raise ReplicationError(
                "replication gap: expected seq %d, got %d — resubscribe "
                "from the durable log" % (self.applied_seq + 1, seq)
            )
        op = record["op"]
        interval = int(record["interval"])
        if op == "commit":
            # The leader's end-of-interval rekey: run the identical one
            # over the identically queued requests.
            if self.server.intervals_processed == interval:
                self.server.rekey()
        elif op in ("join", "leave"):
            try:
                if op == "join":
                    self.server.request_join(record["user"])
                else:
                    self.server.request_leave(record["user"])
            except ReproError:
                # Mirrors recovery's tolerance: a join/leave pair nets
                # out to a cancellation on the leader too, so the queues
                # still converge.
                pass
        else:
            raise ReplicationError("unknown WAL op %r in stream" % (op,))
        self.applied_seq = seq
        self.leader_seq = max(self.leader_seq, seq)
        self.records_applied += 1

    def _check_digest(self, payload):
        if self.server is None:
            raise ReplicationError(
                "digest frame before the bootstrap snapshot"
            )
        self.leader_seq = max(
            self.leader_seq, int(payload.get("wal_seq", -1))
        )
        ours = server_digest(self.server)
        self.last_digest = ours
        self.digest_ok = ours == payload["digest"]
        detail = {
            "interval": int(payload.get("interval", -1)),
            "matched": self.digest_ok,
        }
        # Join the leader interval's distributed trace when the frame
        # carried its id.
        if payload.get("trace") is not None:
            detail["trace"] = payload["trace"]
        self.obs.emit("ha_digest_check", **detail)
        if self.digest_ok:
            self.obs.gauge("ha_replication_lag_records", self.lag())

    # -- introspection -------------------------------------------------

    def lag(self):
        """Durable-but-unapplied records (0 = fully caught up)."""
        return max(0, self.leader_seq - self.applied_seq)

    def health(self):
        return {
            "role": "standby",
            "node": self.node_id,
            "leader_epoch": self.leader_epoch,
            "applied_seq": self.applied_seq,
            "leader_seq": self.leader_seq,
            "lag_records": self.lag(),
            "records_applied": self.records_applied,
            "digest_ok": self.digest_ok,
            "intervals": (
                -1 if self.server is None
                else self.server.intervals_processed
            ),
        }


def promote(replica, state_dir, lease, backend=None, fleet=None,
            churn=None, service=None, seed=None, obs=None, fs=None,
            clock=None, retry=None):
    """Fail over: the replica becomes the leader, fenced by a new epoch.

    Returns the promoted :class:`~repro.service.daemon.RekeyDaemon`.
    The lease acquisition is the linearization point — from the moment
    the new epoch is on disk, the old leader's next append (which
    consults the lease as its fence) refuses with ``StaleEpochError``.

    Refuses (:class:`~repro.errors.HaError`) when the replica has no
    bootstrapped state or its last digest check showed divergence.
    """
    from repro.service.daemon import DaemonConfig, RekeyDaemon

    obs = obs if obs is not None else replica.obs
    if replica.server is None:
        raise HaError("cannot promote before the bootstrap snapshot")
    if replica.digest_ok is False:
        raise HaError(
            "refusing to promote a diverged replica (digest mismatch at "
            "seq %d): a split key space is worse than unavailability"
            % replica.applied_seq
        )
    epoch = lease.acquire()
    if service is None:
        service = DaemonConfig()
    service.state_dir = state_dir
    daemon = RekeyDaemon(
        replica.server,
        backend=backend,
        fleet=fleet,
        churn=churn,
        service=service,
        seed=seed,
        obs=obs,
        fs=fs,
        clock=clock,
        retry=retry,
        epoch=epoch,
        fence=lease,
    )
    # Requests replayed from the stream but not yet committed must be
    # consumed by a churn-free replay interval, exactly as recovery
    # does after a crash (see RekeyDaemon.recover).
    daemon._replay_interval = any(replica.server.pending_requests)
    # Fleet resync, mirroring recovery: members are remote and did not
    # die with the leader, but a pre-crash joiner may be pending again
    # and carried-over members may hold stale keys.
    for name in sorted(set(daemon.fleet.members) - replica.server.users):
        daemon.fleet.forget(name)
    for name in sorted(replica.server.users - set(daemon.fleet.members)):
        daemon.fleet.register(replica.server, name)
        daemon.metrics.bump("members_resynced")
    for name in daemon.fleet.out_of_sync(replica.server):
        daemon.fleet.register(replica.server, name)
        daemon.metrics.bump("members_resynced")
    obs.emit(
        "ha_promote",
        node=replica.node_id,
        epoch=epoch,
        interval=replica.server.intervals_processed,
        applied_seq=replica.applied_seq,
        digest_verified=bool(replica.digest_ok),
    )
    obs.emit("ha_role", node=replica.node_id, role="leader", epoch=epoch)
    obs.gauge("ha_epoch", epoch)
    return daemon
