"""The HA soak harness: a leader/standby pair under a cluster fault plan.

``run_ha_soak`` boots a real durable leader daemon and a hot standby in
one process, wires them through the deterministic
:class:`~repro.ha.replication.DirectLink`, and enacts one of the
cluster fault plans (:data:`repro.chaos.plans.HA_PLAN_NAMES`):

- ``leader-kill`` — an injected :class:`DaemonCrash` fells the leader
  mid-interval (post-delivery: the worst alignment — members hold keys
  the snapshot never saw).  The standby waits out the lease, promotes,
  replays the pending requests, and finishes the run.  The decisive
  invariant is **key-oracle**: the failover cluster's final group key
  must be bit-identical to a single-node daemon that crashed and
  recovered at the same point — failover must be *invisible* in key
  material.
- ``replication-partition`` — the link drops every frame for a window
  shorter than the lease TTL.  The follower falls behind, the heal
  replays the WAL suffix (``catch_up``), and the run must end with lag
  zero, matching digests, and **no promotion**.
- ``split-brain`` — the leader keeps rekeying but stops renewing its
  lease; the standby promotes on the lapse, and the deposed leader's
  next append must be refused by the epoch fence with no byte landing
  (**no-stale-record**: the surviving WAL's epochs never decrease and
  the intruding request is nowhere in it).

Determinism: the same ``(plan, seed)`` drives the same churn, the same
delivery losses, and the same orchestration schedule, so the run's
chaos/HA event subsequence canonicalises to a stable digest — pinned in
``docs/robustness.md`` and checked by the CI ``ha-smoke`` job, exactly
like the single-node soak digests.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field

from repro.chaos.faults import FaultPlan
from repro.chaos.plans import PLAN_INTERVALS, make_plan
from repro.chaos.seams import FaultyClock, FaultyFilesystem
from repro.chaos.soak import canonical_timeline, timeline_digest
from repro.errors import ChaosError, ReproError, StaleEpochError
from repro.ha.digest import server_digest
from repro.ha.lease import Lease
from repro.ha.replication import DirectLink, LeaderPublisher
from repro.ha.standby import StandbyReplica, promote
from repro.obs.events import EventBus
from repro.obs.recorder import NULL, Recorder

#: soak lease TTL (virtual seconds) — far beyond any real run time, so
#: only an *orchestrated* ``clock.sleep`` can lapse it; the FaultyClock
#: folds real elapsed time into ``time()``, and a tight TTL would let
#: a slow CI host lapse the lease mid-run and wreck determinism
LEASE_TTL = 3600.0


@dataclass
class HaSoakResult:
    """Everything one HA soak run observed and concluded."""

    plan: str
    seed: int
    intervals_target: int
    intervals_completed: int = 0
    promotions: int = 0
    faults_injected: int = 0
    final_epoch: int = 0
    invariants: dict = field(default_factory=dict)
    timeline: list = field(default_factory=list)
    digest: str = ""
    failure: object = None

    @property
    def ok(self):
        return self.failure is None and bool(self.invariants) and all(
            self.invariants.values()
        )

    def to_dict(self):
        return {
            "plan": self.plan,
            "seed": self.seed,
            "intervals_target": self.intervals_target,
            "intervals_completed": self.intervals_completed,
            "promotions": self.promotions,
            "faults_injected": self.faults_injected,
            "final_epoch": self.final_epoch,
            "invariants": dict(self.invariants),
            "digest": self.digest,
            "failure": None if self.failure is None else str(self.failure),
            "ok": self.ok,
        }


class _Cluster:
    """One in-process leader/standby pair and everything they share."""

    def __init__(self, fault_plan, seed, members, state_dir, obs, fs,
                 clock, crash_plan=None):
        from repro.core.config import GroupConfig
        from repro.service.churn import PoissonChurn
        from repro.service.daemon import DaemonConfig, RekeyDaemon
        from repro.service.transports import SessionDelivery

        self.plan = fault_plan
        self.seed = int(seed)
        self.state_dir = state_dir
        self.obs = obs
        self.fs = fs
        self.clock = clock
        self.ttl = LEASE_TTL
        lease_path = os.path.join(state_dir, "lease.json")
        self.leader_lease = Lease(
            lease_path, "node-a", ttl=self.ttl, fs=fs, clock=clock, obs=obs
        )
        self.standby_lease = Lease(
            lease_path, "node-b", ttl=self.ttl, fs=fs, clock=clock, obs=obs
        )
        epoch = self.leader_lease.acquire()
        self.config = GroupConfig(
            block_size=5, seed=seed, **fault_plan.group_overrides
        )
        service_kwargs = {
            "state_dir": state_dir,
            # compaction off: the end-of-run WAL scan is the audit trail
            # (every commit, every epoch) and must see the full history
            "wal_compact_every": 0,
            "verify_invariants": True,
            "crash_plan": crash_plan,
        }
        service_kwargs.update(fault_plan.daemon_overrides)
        self.service = DaemonConfig(**service_kwargs)
        self.backend = SessionDelivery(self.config, seed=seed + 1)
        self.leader = RekeyDaemon.start_new(
            ["member-%03d" % index for index in range(members)],
            config=self.config,
            backend=self.backend,
            churn=PoissonChurn(alpha=0.15),
            service=self.service,
            seed=seed,
            obs=obs,
            fs=fs,
            clock=clock,
            epoch=epoch,
            fence=self.leader_lease,
        )
        #: whichever daemon currently owns the write path
        self.active = self.leader
        obs.emit("ha_role", node="node-a", role="leader", epoch=epoch)
        obs.emit("ha_role", node="node-b", role="standby", epoch=epoch)
        self.publisher = self.leader.attach_replication(
            LeaderPublisher(epoch, wal=self.leader.wal, obs=obs)
        )
        self.link = DirectLink()
        self.replica = StandbyReplica(
            config=self.config, node_id="node-b", obs=obs, clock=clock
        )
        self.publisher.subscribe(self.link, server=self.leader.server)
        self.drain()

    def drain(self):
        """Deliver every queued frame into the standby."""
        self.replica.apply_frames(self.link.poll())

    def tick(self):
        """The leader's between-interval housekeeping: renew + stream."""
        self.leader_lease.renew()
        self.publisher.heartbeat()
        self.drain()

    def fail_over(self, fleet, churn):
        """Standby-side failover: wait out the lease, then promote."""
        self.drain()
        self.clock.sleep(self.ttl + 1.0)
        self.obs.emit(
            "ha_heartbeat_lost",
            node=self.replica.node_id,
            leader_epoch=self.replica.leader_epoch,
            applied_seq=self.replica.applied_seq,
        )
        self.active = promote(
            self.replica,
            self.state_dir,
            self.standby_lease,
            backend=self.backend,
            fleet=fleet,
            churn=churn,
            service=self.service,
            seed=self.seed,
            obs=self.obs,
            fs=self.fs,
            clock=self.clock,
        )
        return self.active

    def wal_records(self):
        """The surviving log, scanned strictly (any damage is fatal)."""
        from repro.service.wal import scan_records

        records, error = scan_records(
            os.path.join(self.state_dir, "wal.jsonl"), self.fs
        )
        if error is not None:
            raise error
        return records

    def agreement_ok(self):
        try:
            self.active.fleet.check_agreement(
                self.active.server,
                exclude=self.active.pending_carry_names(),
            )
            return True
        except ReproError:
            return False

    def close(self):
        self.leader.close()
        if self.active is not self.leader:
            self.active.close()


def _steps_guard(steps, done, intervals):
    if steps > intervals * 3 + 8:
        raise ChaosError(
            "ha soak wedged: %d steps but only %d/%d intervals done"
            % (steps, done, intervals)
        )


def _oracle_final_state(fault_plan, seed, intervals, members, kill):
    """The single-node truth the failover cluster must reproduce.

    One daemon, same seeds, same churn, crashed by the same plan at the
    same point — then recovered from its own snapshot + WAL and run to
    the same interval count.  Returns ``(fingerprint, digest)`` of its
    final state.  Because key derivation, marking, and churn are all
    deterministic in the seeds, failover is correct *iff* the cluster's
    final state equals this run's, byte for byte.
    """
    from repro.core.config import GroupConfig
    from repro.service.churn import PoissonChurn
    from repro.service.daemon import (
        CrashPlan,
        DaemonConfig,
        DaemonCrash,
        RekeyDaemon,
    )
    from repro.service.transports import SessionDelivery

    state_dir = tempfile.mkdtemp(prefix="ha-oracle-")
    config = GroupConfig(
        block_size=5, seed=seed, **fault_plan.group_overrides
    )
    service_kwargs = {
        "state_dir": state_dir,
        "wal_compact_every": 0,
        "verify_invariants": True,
        "crash_plan": CrashPlan(kill.at_interval, kill.point),
    }
    service_kwargs.update(fault_plan.daemon_overrides)
    service = DaemonConfig(**service_kwargs)
    backend = SessionDelivery(config, seed=seed + 1)
    daemon = RekeyDaemon.start_new(
        ["member-%03d" % index for index in range(members)],
        config=config,
        backend=backend,
        churn=PoissonChurn(alpha=0.15),
        service=service,
        seed=seed,
        obs=NULL,
    )
    steps = 0
    while daemon.server.intervals_processed < intervals:
        steps += 1
        _steps_guard(steps, daemon.server.intervals_processed, intervals)
        try:
            daemon.run_interval()
        except DaemonCrash:
            daemon.close()
            service.crash_plan = None
            daemon = RekeyDaemon.recover(
                state_dir,
                config=config,
                backend=backend,
                fleet=daemon.fleet,
                churn=daemon.churn,
                service=service,
                seed=seed,
                obs=NULL,
            )
    fingerprint = daemon.server.group_key.fingerprint()
    digest = server_digest(daemon.server)
    daemon.close()
    return fingerprint, digest


def _run_leader_kill(cluster, intervals, result, say, obs, members):
    from repro.service.daemon import DaemonCrash
    from repro.service.wal import epochs_monotonic

    kill = cluster.plan.ha_fault_of("leader-kill")
    digest_at_promotion = None
    steps = 0
    while cluster.active.server.intervals_processed < intervals:
        steps += 1
        _steps_guard(
            steps, cluster.active.server.intervals_processed, intervals
        )
        current = cluster.active.server.intervals_processed
        cluster.plan.set_interval(current)
        try:
            cluster.active.run_interval()
        except DaemonCrash:
            cluster.plan.apply_ha_fault("leader-kill", point=kill.point)
            say(
                "  interval %d: leader killed at %s -> failing over"
                % (current, kill.point)
            )
            cluster.leader.close()
            # the crash already fired; the promoted daemon must not
            # trip over the same plan at its replay interval
            cluster.service.crash_plan = None
            cluster.drain()
            digest_at_promotion = cluster.replica.digest_ok
            cluster.fail_over(cluster.leader.fleet, cluster.leader.churn)
            result.promotions += 1
            continue
        if cluster.active is cluster.leader:
            cluster.tick()
    result.intervals_completed = cluster.active.server.intervals_processed
    result.final_epoch = cluster.active.epoch

    invariants = result.invariants
    invariants["completed"] = (
        cluster.active.server.intervals_processed >= intervals
    )
    invariants["promoted"] = result.promotions == 1
    invariants["digest-at-promotion"] = digest_at_promotion is True
    oracle_fp, oracle_digest = _oracle_final_state(
        cluster.plan, cluster.seed, intervals, members, kill
    )
    invariants["key-oracle"] = (
        cluster.active.server.group_key.fingerprint() == oracle_fp
        and server_digest(cluster.active.server) == oracle_digest
    )
    records = cluster.wal_records()
    committed = {
        r["interval"] for r in records if r["op"] == "commit"
    }
    invariants["no-interval-lost"] = committed == set(range(intervals))
    invariants["wal-epochs-monotonic"] = epochs_monotonic(records)
    invariants["key-agreement"] = cluster.agreement_ok()


def _run_partition(cluster, intervals, result, say, obs):
    window = cluster.plan.ha_fault_of("partition")
    steps = 0
    while cluster.leader.server.intervals_processed < intervals:
        steps += 1
        _steps_guard(
            steps, cluster.leader.server.intervals_processed, intervals
        )
        current = cluster.leader.server.intervals_processed
        cluster.plan.set_interval(current)
        if current == window.at_interval and not cluster.link.partitioned:
            cluster.link.partitioned = True
            cluster.plan.apply_ha_fault(
                "partition", until_interval=window.until_interval
            )
            say("  interval %d: replication partitioned" % current)
        elif current == window.until_interval and cluster.link.partitioned:
            cluster.link.partitioned = False
            obs.emit(
                "ha_replication_connect",
                node=cluster.replica.node_id,
                since_seq=cluster.replica.applied_seq + 1,
            )
            cluster.publisher.catch_up(
                cluster.link, since_seq=cluster.replica.applied_seq + 1
            )
            say(
                "  interval %d: partition healed, WAL suffix replayed"
                % current
            )
        cluster.leader.run_interval()
        cluster.tick()
    result.intervals_completed = cluster.leader.server.intervals_processed
    result.final_epoch = cluster.leader.epoch

    invariants = result.invariants
    invariants["completed"] = (
        cluster.leader.server.intervals_processed >= intervals
    )
    invariants["no-promotion"] = result.promotions == 0
    invariants["frames-dropped"] = cluster.link.dropped > 0
    invariants["caught-up"] = (
        cluster.replica.lag() == 0
        and cluster.replica.server.intervals_processed
        == cluster.leader.server.intervals_processed
    )
    invariants["digest-match"] = cluster.replica.digest_ok is True
    invariants["key-agreement"] = cluster.agreement_ok()


def _run_split_brain(cluster, intervals, result, say, obs):
    from repro.service.wal import epochs_monotonic

    pause = cluster.plan.ha_fault_of("lease-pause")
    digest_at_promotion = None
    fenced = False
    steps = 0
    while cluster.active.server.intervals_processed < intervals:
        steps += 1
        _steps_guard(
            steps, cluster.active.server.intervals_processed, intervals
        )
        current = cluster.active.server.intervals_processed
        cluster.plan.set_interval(current)
        if cluster.active is cluster.leader:
            if current == pause.at_interval:
                cluster.plan.apply_ha_fault(
                    "lease-pause", until_interval=pause.until_interval
                )
                say(
                    "  interval %d: leader stops renewing its lease"
                    % current
                )
            if current == pause.until_interval:
                # The standby notices the lapse and takes over while
                # the old leader is still alive — the split-brain
                # moment the epoch fence exists for.
                digest_at_promotion = cluster.replica.digest_ok
                cluster.fail_over(
                    cluster.leader.fleet, cluster.leader.churn
                )
                result.promotions += 1
                say(
                    "  interval %d: standby promoted to epoch %d"
                    % (current, cluster.active.epoch)
                )
                # ... and the deposed leader, none the wiser, tries to
                # accept one more request.  The fence must refuse it
                # before a single byte reaches the shared log.
                try:
                    cluster.leader.submit_join("intruder")
                except StaleEpochError as error:
                    fenced = True
                    say("  deposed leader fenced: %s" % error)
                cluster.leader.close()
                continue
        cluster.active.run_interval()
        if cluster.active is cluster.leader:
            if cluster.plan.current_interval < pause.at_interval:
                cluster.leader_lease.renew()
            cluster.publisher.heartbeat()
            cluster.drain()
    result.intervals_completed = cluster.active.server.intervals_processed
    result.final_epoch = cluster.active.epoch

    invariants = result.invariants
    invariants["completed"] = (
        cluster.active.server.intervals_processed >= intervals
    )
    invariants["promoted"] = result.promotions == 1
    invariants["fenced"] = fenced
    records = cluster.wal_records()
    invariants["no-stale-record"] = epochs_monotonic(records) and not any(
        record.get("user") == "intruder" for record in records
    )
    invariants["digest-at-promotion"] = digest_at_promotion is True
    invariants["key-agreement"] = cluster.agreement_ok()


def run_ha_soak(
    plan="leader-kill",
    seed=7,
    intervals=None,
    members=24,
    state_dir=None,
    obs_path=None,
    log=None,
):
    """Run one cluster soak; returns an :class:`HaSoakResult`.

    ``plan`` is a name from :data:`~repro.chaos.plans.HA_PLAN_NAMES`
    (or a ready :class:`FaultPlan` with ``ha_faults``); everything —
    churn, losses, orchestration — is a pure function of
    ``(plan, seed)``, so the result's timeline digest is pinnable.
    Plan-induced failures land in ``result.failure``, not exceptions.
    """
    if isinstance(plan, FaultPlan):
        fault_plan = plan
    else:
        fault_plan = make_plan(plan, seed=seed)
    if not fault_plan.ha_faults:
        raise ChaosError(
            "plan %r is single-node: run it with chaos-soak, not ha-soak"
            % (fault_plan.name,)
        )
    if intervals is None:
        intervals = PLAN_INTERVALS.get(fault_plan.name, 8)
    say = log if log is not None else (lambda line: None)

    bus = EventBus(path=obs_path)
    obs = Recorder(bus=bus)
    fault_plan.bind(obs)
    fs = FaultyFilesystem(fault_plan)
    clock = FaultyClock()
    if state_dir is None:
        state_dir = tempfile.mkdtemp(prefix="ha-soak-")
    else:
        os.makedirs(state_dir, exist_ok=True)

    result = HaSoakResult(
        plan=fault_plan.name,
        seed=int(seed),
        intervals_target=int(intervals),
    )
    cluster = None
    try:
        kill = fault_plan.ha_fault_of("leader-kill")
        crash_plan = None
        if kill is not None:
            from repro.service.daemon import CrashPlan

            crash_plan = CrashPlan(kill.at_interval, kill.point)
        cluster = _Cluster(
            fault_plan, seed, members, state_dir, obs, fs, clock,
            crash_plan=crash_plan,
        )
        say(
            "ha-soak: plan %r, seed %d, %d members, %d intervals"
            % (fault_plan.name, seed, members, intervals)
        )
        if kill is not None:
            _run_leader_kill(cluster, intervals, result, say, obs, members)
        elif fault_plan.ha_fault_of("partition") is not None:
            _run_partition(cluster, intervals, result, say, obs)
        elif fault_plan.ha_fault_of("lease-pause") is not None:
            _run_split_brain(cluster, intervals, result, say, obs)
        else:  # pragma: no cover - HA_FAULT_KINDS is validated upstream
            raise ChaosError(
                "plan %r has no runnable HA fault" % (fault_plan.name,)
            )
        for name, passed in sorted(result.invariants.items()):
            obs.emit("soak_invariant", invariant=name, passed=bool(passed))
            say(
                "  invariant %-22s %s" % (name, "ok" if passed else "FAIL")
            )
    except ReproError as error:
        result.failure = error
        say("  ha soak aborted: %s" % error)
    finally:
        if cluster is not None:
            cluster.close()
            result.intervals_completed = (
                cluster.active.server.intervals_processed
            )
        result.faults_injected = fault_plan.injected
        result.timeline = canonical_timeline(bus.events)
        result.digest = timeline_digest(result.timeline)
        bus.close()
    return result
