"""The leader lease: who may write, and the epoch tokens that fence.

One JSON file in the shared state directory is the cluster's single
source of write authority::

    {"epoch": 3, "holder": "node-a", "renewed_at": 1722852000.0, "ttl": 5.0}

- **Holding** the lease makes a node the leader.  The holder renews it
  (rewrites ``renewed_at``) every interval; a lease not renewed within
  ``ttl`` seconds is *lapsed* and any standby may take it.
- **Epoch** is the fencing token: every acquisition increments it, and
  the number only ever grows.  The WAL is constructed with the writer's
  epoch and this lease as its ``fence``, so a deposed leader — one
  still running after its lease lapsed and someone else acquired — has
  its next append refused *before any byte lands*
  (:class:`~repro.errors.StaleEpochError`).  That refusal, not the
  lease file itself, is what makes split-brain safe: two processes may
  briefly both believe they lead, but only the higher epoch can write.

The file is written atomically (temp + fsync + rename + dir fsync)
through the :class:`~repro.chaos.seams.Filesystem` seam, and time comes
from the :class:`~repro.chaos.seams.Clock` seam, so the chaos harness
can lapse a lease by sleeping a virtual clock.  This is single-machine
coordination (the paper's deployment is one key server plus a warm
spare); a multi-host cluster would put the same epoch/lease protocol
on a consensus service instead of a file.
"""

from __future__ import annotations

import json
import os

from repro.chaos.seams import REAL_FILESYSTEM, SYSTEM_CLOCK
from repro.errors import HaError, StaleEpochError
from repro.obs.recorder import NULL

#: default seconds without renewal before a lease lapses
DEFAULT_TTL = 5.0


def _atomic_write(path, payload, fs):
    """Durably replace ``path`` with ``payload`` (JSON) via temp+rename."""
    temp_path = path + ".tmp"
    handle = fs.open(temp_path, "w")
    try:
        fs.write(handle, json.dumps(payload, sort_keys=True))
        fs.fsync(handle)
    finally:
        handle.close()
    fs.replace(temp_path, path)
    fs.fsync_dir(os.path.dirname(path) or ".")


class Lease:
    """One node's view of the cluster lease file.

    Both the leader (acquire, then renew each interval) and the standby
    (watch :meth:`expired`, acquire on lapse) hold a :class:`Lease`
    instance pointed at the same path; the file is the shared truth.
    """

    def __init__(self, path, node_id, ttl=DEFAULT_TTL, fs=None, clock=None,
                 obs=None):
        self.path = os.fspath(path)
        self.node_id = str(node_id)
        self.ttl = float(ttl)
        self.fs = fs if fs is not None else REAL_FILESYSTEM
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.obs = obs if obs is not None else NULL
        #: the epoch this node holds, or ``None`` when not the holder
        self.epoch = None

    # -- reading -------------------------------------------------------

    def read(self):
        """The lease file's contents, or ``None`` when absent/unreadable."""
        try:
            data = json.loads(self.fs.read_bytes(self.path).decode("utf-8"))
        except (FileNotFoundError, ValueError):
            return None
        if not isinstance(data, dict) or "epoch" not in data:
            return None
        return data

    def current_epoch(self):
        """The minted epoch (0 before any acquisition).

        This is the ``fence`` interface the WAL consults before every
        append — a deposed leader discovers its deposition here.
        """
        data = self.read()
        return 0 if data is None else int(data["epoch"])

    def holder(self):
        data = self.read()
        return None if data is None else data.get("holder")

    def expired(self):
        """Has the current holder's renewal lapsed?

        A missing or unreadable file counts as expired (nothing is
        protecting the write path), as does a ``renewed_at`` older than
        the *file's recorded* ttl — the holder's promise, not ours.
        """
        data = self.read()
        if data is None:
            return True
        age = self.clock.time() - float(data.get("renewed_at", 0.0))
        return age > float(data.get("ttl", self.ttl))

    # -- holding -------------------------------------------------------

    def acquire(self):
        """Take the lease, minting the next epoch; returns that epoch.

        Refuses with :class:`~repro.errors.HaError` while another
        holder's lease is live — promotion must wait out the TTL, which
        is what bounds how long two nodes can both believe they lead.
        """
        data = self.read()
        if (
            data is not None
            and data.get("holder") != self.node_id
            and not self.expired()
        ):
            raise HaError(
                "lease %s is held by %r (epoch %d) and not expired"
                % (self.path, data.get("holder"), int(data["epoch"]))
            )
        epoch = (0 if data is None else int(data["epoch"])) + 1
        self._write(epoch)
        self.epoch = epoch
        self.obs.emit(
            "ha_lease_acquired",
            holder=self.node_id,
            epoch=epoch,
            previous_holder=None if data is None else data.get("holder"),
        )
        return epoch

    def renew(self):
        """Refresh ``renewed_at`` for the epoch this node holds.

        Raises :class:`~repro.errors.StaleEpochError` when the file
        shows someone else minted a newer epoch — the holder has been
        deposed and must stop writing.
        """
        if self.epoch is None:
            raise HaError("cannot renew a lease this node never acquired")
        data = self.read()
        if data is not None and (
            int(data["epoch"]) != self.epoch
            or data.get("holder") != self.node_id
        ):
            raise StaleEpochError(
                "lease %s now belongs to %r at epoch %d (we held epoch %d)"
                % (self.path, data.get("holder"), int(data["epoch"]),
                   self.epoch)
            )
        self._write(self.epoch)
        return self.epoch

    def _write(self, epoch):
        _atomic_write(
            self.path,
            {
                "epoch": int(epoch),
                "holder": self.node_id,
                "renewed_at": self.clock.time(),
                "ttl": self.ttl,
            },
            self.fs,
        )

    def __repr__(self):
        return "Lease(%r, node_id=%r, epoch=%s)" % (
            self.path, self.node_id, self.epoch
        )
