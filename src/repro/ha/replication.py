"""WAL streaming: how the standby stays a few frames behind the leader.

The replication stream carries the *same bytes the durability layer
already trusts*: each frame body is one
:func:`repro.service.wal.encode_record` line — canonical JSON with an
embedded CRC32 — behind a 4-byte big-endian length prefix.  A damaged
frame is therefore detected by the identical check that catches at-rest
WAL corruption, and a follower can persist received records verbatim.

Frame kinds (the ``kind`` key of the payload):

- ``hello`` — leader's greeting: its epoch, so a follower connected to
  a deposed leader notices immediately;
- ``snapshot`` — bootstrap: the full :meth:`GroupKeyServer.snapshot`
  payload plus the WAL sequence it is current through;
- ``record`` — one WAL record, streamed tail-on after its durable
  append (the leader's :attr:`WriteAheadLog.on_append` tap);
- ``digest`` — the leader's state digest after a committed interval
  (:func:`repro.ha.digest.server_digest`), the follower's convergence
  check;
- ``heartbeat`` — liveness + the leader's last sequence, so a follower
  can measure replication lag even when the group is idle.

Two transports speak this format: :class:`DirectLink` (an in-memory
queue — deterministic, used by the HA soak and the tests) and a
loopback TCP pair (:class:`ReplicationServer` / the blocking
:class:`ReplicationClient`, used by ``python -m repro serve --role``).
The client reconnects with full-jitter backoff
(:class:`~repro.util.retry.RetryPolicy`), the standard cure for
reconnect stampedes after a leader restart.
"""

from __future__ import annotations

import json
import socket
import struct
import threading

from repro.errors import ReplicationError
from repro.obs.recorder import NULL
from repro.obs.trace import current_trace
from repro.service.wal import encode_record, record_crc
from repro.util.retry import RetryPolicy

#: payload kinds a frame may carry
FRAME_KINDS = (
    "hello",
    "snapshot",
    "record",
    "digest",
    "heartbeat",
    "subscribe",
)

#: refuse absurd length prefixes before allocating (a damaged prefix
#: otherwise reads as a multi-gigabyte frame)
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def encode_frame(payload):
    """One wire frame (length prefix + CRC-carrying JSON body)."""
    if payload.get("kind") not in FRAME_KINDS:
        raise ReplicationError(
            "unknown frame kind %r" % (payload.get("kind"),)
        )
    body = encode_record(payload).encode("utf-8")
    return _LENGTH.pack(len(body)) + body


def decode_body(body):
    """Parse and CRC-verify one frame body into its payload dict."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ReplicationError("undecodable replication frame: %s" % exc)
    if not isinstance(payload, dict):
        raise ReplicationError("replication frame is not an object")
    crc = payload.pop("crc", None)
    if crc is None or crc != record_crc(payload):
        raise ReplicationError(
            "replication frame CRC mismatch (stored %r)" % (crc,)
        )
    if payload.get("kind") not in FRAME_KINDS:
        raise ReplicationError(
            "unknown frame kind %r" % (payload.get("kind"),)
        )
    return payload


class FrameReader:
    """Incremental frame parser over an arbitrary byte stream."""

    def __init__(self):
        self._buffer = b""

    def feed(self, data):
        """Absorb ``data``; returns every complete payload it finished."""
        self._buffer += data
        payloads = []
        while len(self._buffer) >= _LENGTH.size:
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise ReplicationError(
                    "frame length %d exceeds the %d-byte cap"
                    % (length, MAX_FRAME_BYTES)
                )
            if len(self._buffer) < _LENGTH.size + length:
                break
            body = self._buffer[_LENGTH.size:_LENGTH.size + length]
            self._buffer = self._buffer[_LENGTH.size + length:]
            payloads.append(decode_body(body))
        return payloads


class DirectLink:
    """An in-memory leader→follower pipe with a partition switch.

    The soak harness's transport: :meth:`send` encodes through the real
    wire format (so CRC coverage is exercised), :meth:`poll` decodes
    and drains.  While :attr:`partitioned` is set, sends are counted in
    :attr:`dropped` and never arrive — frames lost to a partition are
    *gone*, exactly like the network; healing requires the leader to
    re-send (``catch_up``), not the link to deliver late.
    """

    def __init__(self):
        self._queue = []
        self._reader = FrameReader()
        self.partitioned = False
        self.sent = 0
        self.dropped = 0

    def send(self, payload):
        if self.partitioned:
            self.dropped += 1
            return
        self._queue.append(encode_frame(payload))
        self.sent += 1

    def poll(self):
        """Decode and return every pending payload, oldest first."""
        payloads = []
        while self._queue:
            payloads.extend(self._reader.feed(self._queue.pop(0)))
        return payloads


class LeaderPublisher:
    """The leader-side fan-out: every durable append, streamed.

    Wired into the daemon by
    :meth:`~repro.service.daemon.RekeyDaemon.attach_replication`, which
    points the WAL's ``on_append`` tap at :meth:`on_wal_record` and
    calls :meth:`on_commit` after each committed interval.  Ordering
    follows from the call sites: an interval's commit *record* frame
    always precedes its *digest* frame.
    """

    def __init__(self, epoch, wal=None, obs=None):
        self.epoch = int(epoch)
        self.wal = wal
        self.obs = obs if obs is not None else NULL
        self.links = []
        #: highest WAL seq streamed (−1 before the first append)
        self.last_seq = wal.next_seq - 1 if wal is not None else -1
        self.commits = 0

    def subscribe(self, link, since_seq=0, server=None):
        """Attach a follower link and bootstrap it.

        With ``server`` given, bootstrap is a full state snapshot (the
        fresh-standby path); otherwise the WAL suffix from
        ``since_seq`` is replayed (the reconnect path).
        """
        self.links.append(link)
        link.send({"kind": "hello", "epoch": self.epoch,
                   "last_seq": self.last_seq})
        if server is not None:
            link.send({
                "kind": "snapshot",
                "epoch": self.epoch,
                "state": server.snapshot(),
                "wal_seq": self.last_seq,
            })
        elif self.wal is not None:
            self.catch_up(link, since_seq)
        return link

    def catch_up(self, link, since_seq=0):
        """Re-send the WAL suffix from ``since_seq``; returns the count.

        The partition-heal path: frames lost while a link was down are
        recovered from the durable log, not from any in-memory buffer.
        """
        sent = 0
        if self.wal is not None:
            for record in self.wal.records():
                if record["seq"] >= since_seq:
                    link.send({"kind": "record", "record": record})
                    sent += 1
        self.obs.emit("ha_catchup", since_seq=int(since_seq), records=sent)
        return sent

    def on_wal_record(self, record):
        """The WAL's post-append tap: stream one durable record.

        The ambient interval trace id (if the daemon is mid-interval)
        rides on the frame, so a standby's apply events join the same
        distributed trace as the leader's interval that produced them.
        """
        self.last_seq = int(record["seq"])
        payload = {"kind": "record", "record": record}
        trace = current_trace()
        if trace is not None:
            payload["trace"] = trace
        for link in self.links:
            link.send(payload)

    def on_commit(self, server, interval):
        """Publish the convergence digest after a committed interval."""
        from repro.ha.digest import server_digest

        self.commits += 1
        payload = {
            "kind": "digest",
            "digest": server_digest(server),
            "interval": int(interval),
            "epoch": self.epoch,
            "wal_seq": self.last_seq,
        }
        trace = current_trace()
        if trace is not None:
            payload["trace"] = trace
        for link in self.links:
            link.send(payload)

    def heartbeat(self):
        for link in self.links:
            link.send({
                "kind": "heartbeat",
                "epoch": self.epoch,
                "last_seq": self.last_seq,
            })

    def snapshot(self):
        """Health-surface view of the replication fan-out."""
        return {
            "followers": len(self.links),
            "last_seq": self.last_seq,
            "commits": self.commits,
            "dropped": sum(
                getattr(link, "dropped", 0) for link in self.links
            ),
        }


# -- loopback TCP (the ``serve --role`` transport) ----------------------

class SocketSink:
    """Adapts one accepted connection to the link ``send`` interface."""

    def __init__(self, sock):
        self._sock = sock
        self._lock = threading.Lock()
        self.closed = False
        self.dropped = 0

    def send(self, payload):
        if self.closed:
            self.dropped += 1
            return
        try:
            with self._lock:
                self._sock.sendall(encode_frame(payload))
        except OSError:
            # The follower went away; the leader keeps rekeying — a
            # reconnecting client bootstraps again via subscribe.
            self.closed = True
            self.dropped += 1

    def close(self):
        self.closed = True
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best effort
            pass


class ReplicationServer:
    """The leader's accept loop: one thread, one sink per follower.

    ``on_subscribe(sink, payload)`` is called (with the daemon lock
    held by the callback itself, not here) for each follower's opening
    ``subscribe`` frame; it is expected to call
    :meth:`LeaderPublisher.subscribe` with a consistent state snapshot.
    """

    def __init__(self, on_subscribe, host="127.0.0.1", port=0):
        self.on_subscribe = on_subscribe
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self._listener.bind((host, int(port)))
        self._listener.listen(8)
        self.address = self._listener.getsockname()
        self._stop = threading.Event()
        self._sinks = []
        self._thread = threading.Thread(target=self._accept_loop,
                                        daemon=True)
        self._thread.start()

    @property
    def port(self):
        return self.address[1]

    def _accept_loop(self):
        self._listener.settimeout(0.2)
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._handshake, args=(conn,), daemon=True
            ).start()

    def _handshake(self, conn):
        reader = FrameReader()
        conn.settimeout(5.0)
        try:
            while True:
                data = conn.recv(65536)
                if not data:
                    conn.close()
                    return
                payloads = reader.feed(data)
                if payloads:
                    break
        except (OSError, ReplicationError):
            conn.close()
            return
        payload = payloads[0]
        if payload.get("kind") != "subscribe":
            conn.close()
            return
        sink = SocketSink(conn)
        self._sinks.append(sink)
        self.on_subscribe(sink, payload)

    def close(self):
        self._stop.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        for sink in self._sinks:
            sink.close()
        self._thread.join(timeout=2.0)


class ReplicationClient:
    """The standby's blocking subscriber with jittered reconnects."""

    def __init__(self, host, port, node_id, retry=None, obs=None,
                 clock=None):
        self.host = host
        self.port = int(port)
        self.node_id = str(node_id)
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=8, base_delay=0.05, max_delay=2.0, jitter=True
        )
        self.obs = obs if obs is not None else NULL
        self.clock = clock
        self._sock = None
        self._reader = FrameReader()

    @property
    def connected(self):
        return self._sock is not None

    def connect(self, since_seq=0):
        """Dial the leader (retrying with full jitter) and subscribe."""
        def attempt():
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=5.0
            )

        # A fresh connection is a fresh frame stream: drop any partial
        # frame left over from the previous connection's last read.
        self._reader = FrameReader()
        self.retry.run(attempt, clock=self.clock)
        self._sock.sendall(encode_frame({
            "kind": "subscribe",
            "node": self.node_id,
            "since_seq": int(since_seq),
        }))
        self.obs.emit(
            "ha_replication_connect",
            node=self.node_id,
            since_seq=int(since_seq),
        )

    def poll(self, timeout=0.5):
        """Block up to ``timeout`` for bytes; returns decoded payloads.

        An empty list means the wait timed out; ``None`` means the
        leader closed the connection (reconnect or promote).
        """
        if self._sock is None:
            raise ReplicationError("poll before connect")
        self._sock.settimeout(timeout)
        try:
            data = self._sock.recv(65536)
        except socket.timeout:
            return []
        except OSError:
            return None
        if not data:
            return None
        return self._reader.feed(data)

    def close(self):
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None
