"""Worker processes hosting wire clients (multi-process fleet mode).

One worker process = one asyncio loop running a slice of the client
fleet.  The parent (:class:`~repro.wire.delivery.WireDelivery`) talks to
each worker over a :mod:`multiprocessing` pipe with four commands:

- ``("add", [spec, ...])`` — build clients from serialised member state
  (name, index, user id, degree, path keys) and start them; each client
  registers itself with the server over UDP, so the parent's
  ``wait_registered`` barrier is the only synchronisation needed;
- ``("remove", [name, ...])`` — close clients of evicted members;
- ``("check", None)`` — reply ``("errors", [...])`` with everything the
  clients' socket paths recorded, so the parent can fail loudly;
- ``("stats", None)`` — reply ``("stats", [(name, dict), ...])`` with
  each client's resync-FSM counters (see ``WireClient.stats``), so the
  failover harness can audit epochs across process boundaries;
- ``("stop", None)`` — close everything and exit.

Workers are started with the ``spawn`` context: the parent runs an
event-loop thread, and forking a multi-threaded process inherits lock
state no child should trust.

Member state crosses the process boundary *once*, at add time, when it
is registration-fresh; afterwards the worker's shadow
:class:`~repro.core.member.GroupMember` evolves exactly like the real
member would — by decrypting rekey messages off the wire.  The parent's
own copy goes stale, which is why worker mode pairs with
:class:`~repro.wire.delivery.WireFleet` (fingerprint-based agreement).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os

from repro.errors import WireError, WorkerCrashError


def worker_main(conn, server_address, loss, seed, spacing_seconds,
                obs_path=None, resync_timeout=None):
    """Entry point of one worker process.

    With ``obs_path`` the worker opens its own line-buffered JSONL
    event stream (one file per process — streams are merged later by
    the trace assembler), so client-side trace milestones survive even
    a SIGKILLed worker.
    """
    from repro.obs.events import EventBus
    from repro.obs.recorder import NULL, Recorder

    bus = None
    obs = NULL
    if obs_path is not None:
        bus = EventBus(path=obs_path, line_buffered=True)
        obs = Recorder(bus=bus)
    try:
        asyncio.run(
            _worker_loop(
                conn, tuple(server_address), loss, seed, spacing_seconds,
                obs=obs, resync_timeout=resync_timeout,
            )
        )
    finally:
        if bus is not None:
            bus.close()


async def _worker_loop(conn, server_address, loss, seed, spacing_seconds,
                       obs=None, resync_timeout=None):
    from repro.obs.recorder import NULL
    from repro.wire.client import WireClient

    if obs is None:
        obs = NULL

    loop = asyncio.get_running_loop()
    clients = {}
    errors = []
    stop = asyncio.Event()

    async def add_client(spec):
        try:
            name, member_index, user_id, degree, path_keys = spec[:5]
            crash_at = None
            if len(spec) > 5 and spec[5] is not None:
                crash_at = tuple(spec[5])
            client = WireClient(
                name,
                member_index,
                _rebuild_member(name, user_id, degree, path_keys),
                server_address,
                loss_params=loss,
                seed=seed,
                spacing_seconds=spacing_seconds,
                obs=obs,
                resync_timeout=resync_timeout,
                crash_at=crash_at,
            )
            clients[name] = client
            await client.start()
        except Exception as exc:  # noqa: BLE001 - reported via "check"
            errors.append(
                "add %r: %s: %s" % (spec[0], type(exc).__name__, exc)
            )

    async def remove_client(name):
        client = clients.pop(name, None)
        if client is not None:
            errors.extend(
                "%s: %s" % (client.name, error) for error in client.errors
            )
            await client.close()

    def collect_errors():
        found = list(errors)
        for client in clients.values():
            found.extend(
                "%s: %s" % (client.name, error) for error in client.errors
            )
            del client.errors[:]
        del errors[:]
        return found

    def on_readable():
        try:
            while conn.poll():
                op, payload = conn.recv()
                if op == "add":
                    for spec in payload:
                        loop.create_task(add_client(spec))
                elif op == "remove":
                    for name in payload:
                        loop.create_task(remove_client(name))
                elif op == "check":
                    conn.send(("errors", collect_errors()))
                elif op == "stats":
                    conn.send(
                        (
                            "stats",
                            [
                                (name, client.stats())
                                for name, client in sorted(clients.items())
                            ],
                        )
                    )
                elif op == "stop":
                    stop.set()
                    return
        except (EOFError, OSError):
            stop.set()

    loop.add_reader(conn.fileno(), on_readable)
    try:
        await stop.wait()
    finally:
        loop.remove_reader(conn.fileno())
        for client in list(clients.values()):
            await client.close()
        conn.close()


def _rebuild_member(name, user_id, degree, path_keys):
    from repro.core.member import GroupMember
    from repro.crypto.keys import SymmetricKey

    keys = {
        node_id: SymmetricKey(
            bytes.fromhex(material), node_id=node_id, version=version
        )
        for node_id, material, version in path_keys
    }
    return GroupMember(name, user_id, keys, degree)


class WorkerPool:
    """The parent-side handle on a set of client worker processes."""

    def __init__(self, n_workers, server_address, loss, seed,
                 spacing_seconds, obs_dir=None, resync_timeout=None):
        if n_workers < 1:
            raise WireError("worker pool needs at least one worker")
        context = multiprocessing.get_context("spawn")
        self._conns = []
        self._procs = []
        self.names = set()
        self._where = {}  # name -> worker slot
        self.obs_paths = []
        for slot in range(int(n_workers)):
            obs_path = None
            if obs_dir is not None:
                obs_path = os.path.join(
                    obs_dir, "worker-%02d.jsonl" % slot
                )
                self.obs_paths.append(obs_path)
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=worker_main,
                args=(
                    child_conn,
                    tuple(server_address),
                    loss,
                    int(seed),
                    float(spacing_seconds),
                    obs_path,
                    resync_timeout,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(process)

    @property
    def n_workers(self):
        return len(self._procs)

    def _slot_of(self, member_index):
        # Deterministic placement; a member stays on one worker for life.
        return int(member_index) % len(self._conns)

    def add(self, specs):
        by_slot = {}
        for spec in specs:
            slot = self._slot_of(spec[1])
            by_slot.setdefault(slot, []).append(spec)
            self._where[spec[0]] = slot
            self.names.add(spec[0])
        for slot, group in sorted(by_slot.items()):
            self._conns[slot].send(("add", group))

    def remove(self, names):
        by_slot = {}
        for name in names:
            slot = self._where.pop(name, None)
            self.names.discard(name)
            if slot is not None:
                by_slot.setdefault(slot, []).append(name)
        for slot, group in sorted(by_slot.items()):
            self._conns[slot].send(("remove", group))

    def dead_workers(self):
        """``[(slot, exitcode), ...]`` for every worker that died."""
        return [
            (slot, process.exitcode)
            for slot, process in enumerate(self._procs)
            if not process.is_alive()
        ]

    def _request(self, op, expect, timeout):
        """Round-robin ``(op, None)`` to every worker; returns replies.

        A dead worker raises :class:`WorkerCrashError` (with its exit
        code) instead of hanging on a pipe nobody will ever answer.
        """
        replies = []
        for slot, conn in enumerate(self._conns):
            process = self._procs[slot]

            def crashed():
                raise WorkerCrashError(
                    "worker %d crashed (exit code %r) during %s"
                    % (slot, process.exitcode, op)
                )

            if not process.is_alive():
                crashed()
            try:
                conn.send((op, None))
            except (OSError, BrokenPipeError):
                crashed()
            if not conn.poll(timeout):
                if not process.is_alive():
                    crashed()
                raise WireError(
                    "worker %d did not answer a %s within %.1fs"
                    % (slot, op, timeout)
                )
            kind, payload = conn.recv()
            if kind != expect:
                raise WireError(
                    "worker %d answered %r to a %s" % (slot, kind, op)
                )
            replies.append(payload)
        return replies

    def check(self, timeout=10.0):
        """Collect every error the workers' clients recorded so far."""
        errors = []
        for payload in self._request("check", "errors", timeout):
            errors.extend(payload)
        return errors

    def stats(self, timeout=10.0):
        """``{name: stats_dict}`` for every client across all workers."""
        stats = {}
        for payload in self._request("stats", "stats", timeout):
            stats.update(dict(payload))
        return stats

    def close(self, timeout=10.0):
        for conn in self._conns:
            try:
                conn.send(("stop", None))
            except (OSError, BrokenPipeError):
                pass
        for process in self._procs:
            process.join(timeout=timeout)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        self._conns = []
        self._procs = []
        self.names = set()
        self._where = {}
