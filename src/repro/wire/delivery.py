"""The ``wire`` delivery backend: the daemon's bridge onto real UDP.

:class:`WireDelivery` plugs the asyncio wire plane into the synchronous
:class:`~repro.service.daemon.RekeyDaemon` pipeline behind the same
``deliver()`` interface as the simulated and loopback-thread backends.
It owns a dedicated event-loop thread running one :class:`WireServer`
and — in the default in-process mode — every member's
:class:`WireClient`; each ``deliver()`` call is bridged with
``run_coroutine_threadsafe`` and blocks until the interval has been
served over the sockets.

Two properties the simulated backends cannot offer:

- **real AdjustRho input**: the wire feedback carries each NACK's
  per-block parity shortfalls, so the cross-interval
  :class:`~repro.transport.adaptive.ProactivityController` is driven
  with the paper's actual ``A`` vector instead of the ``[1] * nacks``
  approximation documented in :mod:`repro.service.transports`;
- **real recovery rounds**: every member reports the round its keys
  actually arrived in over the socket, so the daemon's
  ``recovery_latency_rounds`` histogram measures the wire, not
  simulator bookkeeping.

With ``workers > 0`` the clients run in spawned worker processes
instead (:mod:`repro.wire.worker`); the daemon-side fleet must then be a
:class:`WireFleet`, whose agreement oracle is the key fingerprints the
members reported over the wire — their real key state lives in the
workers.
"""

from __future__ import annotations

import asyncio
import threading

from repro.errors import ServiceError, WireError, WorkerCrashError
from repro.obs.trace import current_trace_id
from repro.service.members import MemberFleet
from repro.service.transports import (
    CARRY_OVER,
    IN_DEADLINE,
    UNICAST_CUTOVER,
    DeliveryBackend,
    DeliveryReport,
)
from repro.transport.adaptive import ProactivityController
from repro.util.rng import RandomSource
from repro.wire.client import WireClient
from repro.wire.loss import cohort_of
from repro.wire.server import Participant, WireServer

#: Per-fan-out pacing used automatically in worker mode, where the
#: receiving sockets drain in other processes: bounds the burst a client
#: socket must buffer so kernel drops never pollute the seeded loss.
WORKER_PACE_SECONDS = 0.0005

#: Ceiling on one bridged delivery (covers MAX_WINDOW_TRIES worst case).
DELIVER_TIMEOUT_SECONDS = 300.0


class WireFleet(MemberFleet):
    """A fleet whose agreement oracle is wire-reported fingerprints.

    In worker mode the members' real key state lives in other processes;
    the daemon-side :class:`GroupMember` objects stop absorbing keys
    after registration.  This fleet therefore checks the two security
    invariants against the group-key fingerprints the members *reported
    over the wire* (12 hex chars of BLAKE2b, same as
    ``SymmetricKey.fingerprint``) — which is also how a real operator
    would audit agreement across remote members.
    """

    def __init__(self):
        super().__init__()
        #: name -> last group-key fingerprint the member reported (or
        #: held at registration, which the registration channel knows)
        self.wire_fingerprints = {}
        self.former_fingerprints = {}

    def register(self, server, name):
        member = super().register(server, name)
        self.wire_fingerprints[name] = server.group_key.fingerprint()
        self.former_fingerprints.pop(name, None)
        return member

    def evict(self, name):
        super().evict(name)
        fingerprint = self.wire_fingerprints.pop(name, None)
        if fingerprint is not None:
            self.former_fingerprints[name] = fingerprint

    def forget(self, name):
        super().forget(name)
        self.wire_fingerprints.pop(name, None)
        self.former_fingerprints.pop(name, None)

    def note_fingerprint(self, name, fingerprint):
        """Record a member's wire-reported group-key fingerprint."""
        if name in self.wire_fingerprints:
            self.wire_fingerprints[name] = fingerprint

    def out_of_sync(self, server):
        expected = server.group_key.fingerprint()
        return sorted(
            name
            for name, fingerprint in self.wire_fingerprints.items()
            if fingerprint != expected
        )

    def check_agreement(self, server, exclude=()):
        excluded = set(exclude)
        stale = [n for n in self.out_of_sync(server) if n not in excluded]
        if stale:
            raise ServiceError(
                "members reported stale group keys over the wire: %r"
                % (stale,)
            )
        expected = server.group_key.fingerprint()
        leaked = sorted(
            name
            for name, fingerprint in self.former_fingerprints.items()
            if fingerprint == expected
        )
        if leaked:
            raise ServiceError(
                "evicted members reported the current group key: %r"
                % (leaked,)
            )


class WireDelivery(DeliveryBackend):
    """Deliver rekey messages over the asyncio UDP wire plane."""

    def __init__(
        self,
        config,
        seed=None,
        host="127.0.0.1",
        port=0,
        workers=0,
        pace_seconds=None,
        adapt_rho=True,
        obs_dir=None,
        resync_timeout=None,
        epoch=0,
        liveness_tries=None,
        faults=None,
        on_casualty=None,
        crash_plan=None,
        register_timeout=30.0,
        handoff=None,
    ):
        self.config = config
        self.host = host
        self.port = int(port)
        self.workers = int(workers)
        #: directory for per-worker trace streams (worker mode only)
        self.obs_dir = obs_dir
        pace_defaulted = pace_seconds is None
        if pace_defaulted:
            pace_seconds = WORKER_PACE_SECONDS if self.workers else 0.0
        self.pace_seconds = float(pace_seconds)
        self.adapt_rho = bool(adapt_rho)
        #: client silence watchdog (seconds); None disables resync
        self.resync_timeout = resync_timeout
        #: HA fencing token stamped on ANNOUNCE and REGISTER acks.
        #: 0 = unfenced (every pre-failover run).
        self.epoch = int(epoch)
        #: feedback-window misses before the server declares a member
        #: dead mid-interval; None = wait forever (the legacy behaviour)
        self.liveness_tries = liveness_tries
        #: optional DatagramFaultInjector wired into the server's seam
        self.faults = faults
        #: callback(name) fired once per liveness casualty, from the
        #: daemon's own thread — safe to call ``daemon.submit_leave``
        self.on_casualty = on_casualty
        #: name -> (interval, round) scripted client deaths (chaos plans)
        self.crash_plan = dict(crash_plan or {})
        #: registration-barrier deadline per delivery
        self.register_timeout = float(register_timeout)
        self._seed = config.seed if seed is None else int(seed)
        self.controller = ProactivityController(
            k=config.block_size,
            rho=config.rho,
            num_nack=config.num_nack,
            rng=RandomSource(self._seed).generator(),
            rho_max=getattr(config, "rho_max", None),
        )
        self._loop = None
        self._thread = None
        self.server = None
        self._pool = None  # WorkerPool, worker mode only
        self._clients = {}  # name -> WireClient (in-process mode)
        self._indices = {}  # name -> member_index (never reused)
        self._next_index = 0
        self._calls = 0
        #: names declared dead (liveness casualties) — excluded from
        #: the registration barrier and the participant roster until
        #: the intake's leave removes them from the fleet entirely
        self._dead = set()
        #: canonical per-interval records — the fleet digest's input
        self.records = []
        if handoff is not None:
            # Adopt a failed leader's live wire plane (see
            # :meth:`handoff`): same port so the clients' sockets keep
            # a valid destination, same index space so loss chains and
            # slot dedup continue, same interval counter so ANNOUNCEs
            # stay monotonic across the failover.
            self._pool = handoff["pool"]
            self.workers = self._pool.n_workers
            if pace_defaulted:
                self.pace_seconds = WORKER_PACE_SECONDS
            self._indices = dict(handoff["indices"])
            self._next_index = (
                max(self._indices.values(), default=-1) + 1
            )
            self._calls = int(handoff["first_interval"])
            self.port = int(handoff["port"])
            self._dead = set(handoff.get("dead", ()))

    @property
    def rho(self):
        return self.controller.rho

    @property
    def dead_members(self):
        """Names declared dead by the liveness path (frozen view)."""
        return frozenset(self._dead)

    # -- loop plumbing -----------------------------------------------------

    def _ensure_started(self):
        if self._loop is not None:
            return
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="wire-loop",
            daemon=True,
        )
        self._thread.start()
        self.server = self._run(self._start_server())
        if self.workers and self._pool is None:
            from repro.wire.worker import WorkerPool

            self._pool = WorkerPool(
                self.workers,
                self.server.address,
                loss=self.config.loss,
                seed=self._seed,
                spacing_seconds=self.config.sending_interval_ms * 1e-3,
                obs_dir=self.obs_dir,
                resync_timeout=self.resync_timeout,
            )

    async def _start_server(self):
        server = WireServer(
            self.config,
            host=self.host,
            port=self.port,
            obs=self.obs,
            epoch=self.epoch,
            faults=self.faults,
            liveness_tries=self.liveness_tries,
        )
        return await server.start()

    def _run(self, coro, timeout=DELIVER_TIMEOUT_SECONDS):
        """Run a coroutine on the wire loop from the daemon's thread."""
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    # -- roster ------------------------------------------------------------

    def _member_index(self, name):
        index = self._indices.get(name)
        if index is None:
            # Indices are never reused: a member's index seeds its loss
            # chains and a rejoin must not resurrect an old chain state.
            index = self._next_index
            self._indices[name] = index
            self._next_index += 1
        return index

    def _sync_roster(self, fleet):
        """Make the wire population match ``fleet.members`` exactly."""
        current = set(
            self._clients if self._pool is None else self._pool.names
        )
        wanted = set(fleet.members)
        added = sorted(wanted - current)
        removed = sorted(current - wanted)
        if self._pool is not None:
            for name in removed:
                self.server.forget(self._indices[name])
            self._pool.remove(removed)
            self._pool.add(
                [
                    _member_spec(
                        name,
                        self._member_index(name),
                        fleet.members[name],
                        crash_at=self.crash_plan.get(name),
                    )
                    for name in added
                ]
            )
        else:
            for name in removed:
                client = self._clients.pop(name)
                self.server.forget(client.member_index)
                self._run(client.close())
            for name in added:
                client = WireClient(
                    name,
                    self._member_index(name),
                    fleet.members[name],
                    self.server.address,
                    loss_params=self.config.loss,
                    seed=self._seed,
                    spacing_seconds=self.config.sending_interval_ms * 1e-3,
                    obs=self.obs,
                    resync_timeout=self.resync_timeout,
                    crash_at=self.crash_plan.get(name),
                )
                self._clients[name] = client
                self._run(client.start())
        if added or removed:
            self.obs.gauge("wire_clients", len(wanted))
        return [self._indices[name] for name in sorted(wanted)]

    # -- delivery ----------------------------------------------------------

    def deliver(self, message, fleet, deadline_rounds=2, policy="unicast"):
        policy_ignored = policy == "carry"
        if policy_ignored:
            # Same honesty as the UDP backend: the wire plane always
            # serves stragglers inside the interval, so a configured
            # carry policy is not in force here.
            self.obs.emit(
                "degradation_policy_ignored",
                transport="wire",
                policy=policy,
                effective="unicast",
            )
        self._ensure_started()
        fleet.relocate_all(message.max_kid)
        self._calls += 1
        interval = self._calls
        self._sync_roster(fleet)
        barrier = [
            self._indices[name]
            for name in sorted(fleet.members)
            if name not in self._dead
        ]
        self._run(
            self.server.wait_registered(
                barrier,
                timeout=self.register_timeout,
                abort=self._raise_if_workers_dead,
            )
        )

        self.controller.k = message.k
        rho = self.controller.rho
        names_by_index = {
            index: name for name, index in self._indices.items()
        }
        participants = [
            Participant(
                member_index=self._indices[name],
                user_id=member.user_id,
                served=member.user_id in message.needs_by_user,
            )
            for name, member in sorted(fleet.members.items())
            if name not in self._dead
        ]
        outcome = self._run(
            self.server.deliver(
                message,
                interval,
                participants,
                rho=rho,
                deadline_rounds=deadline_rounds,
                pace_seconds=self.pace_seconds,
                trace_id=current_trace_id(),
            )
        )
        self._check_errors()

        # Liveness casualties: members the server declared dead
        # mid-interval.  They leave this delivery as ``carried`` (the
        # daemon's carry ledger keeps the agreement check honest until
        # the intake evicts them) and ``on_casualty`` feeds each one to
        # the leave intake so the next interval rekeys them out.
        casualty_names = sorted(
            names_by_index[index]
            for index in outcome.casualties
            if index in names_by_index
        )
        for name in casualty_names:
            self._dead.add(name)
        if self.on_casualty is not None:
            for name in casualty_names:
                self.on_casualty(name)

        results = outcome.results
        not_done = sorted(
            names_by_index[index]
            for index, feedback in results.items()
            if not feedback.done and index not in outcome.casualties
        )
        if not_done:
            raise WireError(
                "wire delivery left members unserved: %r" % (not_done,)
            )
        if self.adapt_rho:
            self.controller.update(outcome.first_round_requests)
            if self.controller.last_rho_clamped and self.obs.enabled:
                self.obs.emit(
                    "rho_clamped",
                    rho=self.controller.rho,
                    rho_max=self.controller.rho_max,
                )

        ordered = sorted(i for i in results if i not in outcome.casualties)
        recovery_rounds = [results[i].recovery_round for i in ordered]
        dropped_total = sum(results[i].dropped for i in ordered)
        alpha = self.config.loss.alpha
        if isinstance(fleet, WireFleet):
            for index in ordered:
                fleet.note_fingerprint(
                    names_by_index[index], results[index].fingerprint
                )
        if self.obs.enabled:
            for index in ordered:
                feedback = results[index]
                cohort = cohort_of(index, alpha)
                self.obs.emit(
                    "wire_member_recovered",
                    member_index=index,
                    cohort=cohort,
                    recovery_round=feedback.recovery_round,
                    latency_ms=round(feedback.latency_ms, 3),
                    dropped=feedback.dropped,
                )
                # Per-cohort wire latency histogram: the /metrics view
                # of the paper's high- vs low-loss recovery split.
                self.obs.observe(
                    "wire_recovery_latency_ms",
                    feedback.latency_ms,
                    cohort=cohort,
                )
            self.obs.gauge("wire_rho", rho)
            self.obs.count(
                "wire_datagrams_sent", by=outcome.datagrams_sent
            )
            self.obs.count("wire_data_dropped", by=dropped_total)
            self.obs.count(
                "wire_feedback_retries", by=outcome.feedback_retries
            )

        unicast_served = len(outcome.unicast_user_ids)
        if casualty_names:
            decision = CARRY_OVER
        elif unicast_served:
            decision = UNICAST_CUTOVER
        else:
            decision = IN_DEADLINE
        self.records.append(
            {
                "interval": interval,
                "members": len(participants),
                "served": len(ordered),
                "rounds": outcome.rounds,
                "rho": round(rho, 6),
                "first_round_requests": list(
                    outcome.first_round_requests
                ),
                "nacks_per_round": [
                    stat["nacks"] for stat in outcome.round_stats
                ],
                "packets_per_round": [
                    stat["packets"] for stat in outcome.round_stats
                ],
                "recovery_rounds": recovery_rounds,
                "dropped": dropped_total,
                "unicast_users": unicast_served,
            }
        )
        if casualty_names:
            # Key present only on casualty intervals: fault-free runs
            # keep producing byte-identical records (pinned digests).
            self.records[-1]["casualties"] = casualty_names
        detail = {
            "datagrams_sent": outcome.datagrams_sent,
            "data_dropped": dropped_total,
            "announce_retries": outcome.announce_retries,
            "feedback_retries": outcome.feedback_retries,
            "unicast_retries": outcome.unicast_retries,
        }
        if policy_ignored:
            detail["policy_ignored"] = True
        if casualty_names:
            detail["casualties"] = casualty_names
        self.obs.emit(
            "wire_delivery_complete",
            interval=interval,
            rounds=outcome.rounds,
            served=len(ordered),
            unicast_served=unicast_served,
            dropped=dropped_total,
        )
        return DeliveryReport(
            mode="wire",
            decision=decision,
            rho=rho,
            multicast_rounds=outcome.rounds,
            first_round_nacks=len(outcome.first_round_requests),
            unicast_served=unicast_served,
            recovery_rounds=recovery_rounds,
            carried=casualty_names,
            detail=detail,
        )

    def _raise_if_workers_dead(self):
        """Raise :class:`WorkerCrashError` if any worker process died.

        Used as the registration barrier's abort hook: a crashed worker
        means its clients will never register, so waiting out the full
        deadline only delays the inevitable diagnosis.
        """
        if self._pool is None:
            return
        dead = self._pool.dead_workers()
        if dead:
            raise WorkerCrashError(
                "worker process(es) crashed: %s"
                % ", ".join(
                    "slot %d (exit code %r)" % (slot, code)
                    for slot, code in dead
                )
            )

    def client_stats(self):
        """``{name: stats}`` resync-FSM counters for every live client.

        Reaches across process boundaries in worker mode — this is how
        the failover harness audits that every surviving client adopted
        the promoted leader's epoch.
        """
        stats = {
            name: client.stats()
            for name, client in self._clients.items()
        }
        if self._pool is not None:
            stats.update(self._pool.stats())
        return stats

    def handoff(self):
        """Detach the live client fleet so a successor can adopt it.

        Returns the adoption record a promoted standby passes to a new
        :class:`WireDelivery` as ``handoff=``: the worker pool (whose
        processes — and their client sockets — outlive this backend),
        the name→index map, the interval counter and the bound port.
        The caller still ``close()``-s this backend afterwards, which
        frees the port for the successor to rebind; the pool is no
        longer ours, so ``close()`` leaves it running.

        Worker mode only: in-process clients live on this backend's
        event loop and die with it.
        """
        if self._loop is None or self.server is None:
            raise WireError("nothing to hand off: wire plane not started")
        if self._pool is None:
            raise WireError(
                "handoff requires worker mode (client processes that "
                "outlive this backend)"
            )
        pool, self._pool = self._pool, None
        return {
            "pool": pool,
            "indices": dict(self._indices),
            "first_interval": self._calls,
            "port": int(self.server.address[1]),
            "dead": set(self._dead),
        }

    def _check_errors(self):
        """Surface anything the socket paths swallowed mid-delivery."""
        self._raise_if_workers_dead()
        errors = list(self.server.errors)
        for client in self._clients.values():
            errors.extend(
                "%s: %s" % (client.name, error) for error in client.errors
            )
        if self._pool is not None:
            errors.extend(self._pool.check())
        if errors:
            raise WireError(
                "wire plane reported %d error(s): %s"
                % (len(errors), "; ".join(errors[:5]))
            )

    # -- teardown ----------------------------------------------------------

    def close(self):
        if self._loop is None:
            return
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        for client in self._clients.values():
            self._run(client.close(), timeout=10.0)
        self._clients.clear()
        if self.server is not None:
            self._run(self.server.close(), timeout=10.0)
            self.server = None
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def _member_spec(name, member_index, member, crash_at=None):
    """Serialise one member's key state for a worker process."""
    return (
        name,
        member_index,
        member.user_id,
        member.degree,
        [
            (node_id, key.material.hex(), key.version)
            for node_id, key in sorted(member.path_keys.items())
        ],
        tuple(crash_at) if crash_at is not None else None,
    )
