"""The asyncio UDP wire plane: real sockets, deterministic runs.

Where :mod:`repro.net` proves the wire formats are deployable with a
thread per member, this package scales the same protocol to a
thousand-client fleet on one asyncio event loop (or sharded over worker
processes) and keeps every run a pure function of its seed:

- :mod:`repro.wire.codec` — datagram framing around the protocol's own
  packet bytes (:mod:`repro.rekey.packets`);
- :mod:`repro.wire.loss` — receiver-side Gilbert loss sampled at the
  frame's *slot* (virtual time), so injected loss ignores scheduling;
- :mod:`repro.wire.client` / :mod:`repro.wire.server` — the asyncio
  endpoints running the transport state machines;
- :mod:`repro.wire.delivery` — the daemon's ``wire`` delivery backend;
- :mod:`repro.wire.worker` — multiprocessing client shards;
- :mod:`repro.wire.fleet` — the digest-pinned fleet runner behind
  ``python -m repro fleet``;
- :mod:`repro.wire.chaos` — the survivability soaks behind
  ``python -m repro wire-chaos-soak`` (datagram faults, client
  crashes, live-fleet leader failover).
"""

from repro.wire.chaos import (
    WIRE_TIMELINE_KINDS,
    WireChaosResult,
    canonical_wire_timeline,
    run_wire_chaos_soak,
    wire_timeline_digest,
)
from repro.wire.client import WireClient
from repro.wire.codec import (
    WIRE_HEADER_SIZE,
    FrameKind,
    decode_frame,
    encode_frame,
    max_datagram_size,
    recv_buffer_size,
)
from repro.wire.delivery import WireDelivery, WireFleet
from repro.wire.fleet import (
    FLEET_PLANS,
    FleetPlan,
    FleetResult,
    fleet_digest,
    run_fleet,
)
from repro.wire.loss import MemberLoss, cohort_of
from repro.wire.server import (
    AggregationWindow,
    Participant,
    WireOutcome,
    WireServer,
)

__all__ = [
    "AggregationWindow",
    "FLEET_PLANS",
    "FleetPlan",
    "FleetResult",
    "FrameKind",
    "MemberLoss",
    "Participant",
    "WIRE_HEADER_SIZE",
    "WIRE_TIMELINE_KINDS",
    "WireChaosResult",
    "WireClient",
    "WireDelivery",
    "WireFleet",
    "WireOutcome",
    "WireServer",
    "canonical_wire_timeline",
    "cohort_of",
    "decode_frame",
    "encode_frame",
    "fleet_digest",
    "max_datagram_size",
    "recv_buffer_size",
    "run_fleet",
    "run_wire_chaos_soak",
    "wire_timeline_digest",
]
