"""Wire-plane survivability soaks: ``python -m repro wire-chaos-soak``.

``run_wire_chaos_soak`` drives the real asyncio UDP wire plane through
one of the pinned-digest survivability plans
(:data:`~repro.chaos.wire_faults.WIRE_CHAOS_PLAN_NAMES`):

- ``datagram-storm`` — every fault family of the
  :class:`~repro.chaos.wire_faults.DatagramFaultInjector` at once,
  control frames included.  The run must finish with key agreement and
  without losing a member: corruption degrades to counted decode
  errors, duplicates deduplicate, reorders stay inside their round,
  delays cost retries, blackouts ride the announce barrier back in.
- ``client-churn-crash`` — scripted clients die mid-interval (one at
  the ANNOUNCE, two mid-round) while joins keep arriving.  The server's
  liveness budget must evict each casualty into the daemon's leave
  intake: carried out of the interval, rekeyed out at the next, with
  the survivors in agreement throughout.
- ``leader-kill-live`` — the leader daemon is killed *post-delivery*
  (the worst alignment: members hold keys the snapshot never saw)
  while worker processes keep their clients alive.  A hot standby
  waits out the lease, promotes under a higher epoch, adopts the live
  worker pool on the same UDP port
  (:meth:`~repro.wire.delivery.WireDelivery.handoff`), and the fleet
  must re-home: every surviving client re-REGISTERs on its silence
  watchdog, adopts the promoted epoch, refuses anything stamped with
  the old one, and reaches key agreement within the remaining
  intervals.

**The digest.**  A run's survivability timeline is the *sorted*
canonical projection of its deterministic events
(:data:`WIRE_TIMELINE_KINDS`): injected datagram faults, scheduled
client deaths, liveness evictions, HA transitions and the invariant
verdicts.  Sorted, not sequenced, because receive-side fault
applications land in socket-arrival order, which the scheduler owns —
the *set* is a pure function of ``(plan, seed)``.  Client-side FSM
events (resyncs, rehomes, stale-epoch refusals) are deliberately
excluded: their counts depend on real-time pacing and worker placement.
The digests are pinned in ``docs/robustness.md`` and checked by the CI
``wire-chaos-smoke`` job.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field, replace

# NOTE: repro.chaos.wire_faults imports repro.wire.codec, so importing
# it at module level from inside the repro.wire package would be
# circular — the plan registry is pulled in lazily where needed.
from repro.errors import ChaosError, ReproError, WorkerCrashError
from repro.obs.events import HA_EVENT_KINDS, EventBus
from repro.obs.recorder import Recorder

__all__ = [
    "WIRE_TIMELINE_KINDS",
    "WireChaosResult",
    "canonical_wire_timeline",
    "run_wire_chaos_soak",
    "wire_timeline_digest",
]

#: soak lease TTL (virtual seconds) — same reasoning as the HA soak:
#: only an orchestrated ``clock.sleep`` may lapse it, never a slow host
LEASE_TTL = 3600.0

#: Event kinds that define a wire-chaos run's reproducible timeline.
#: The single-node soak's ``TIMELINE_KINDS`` is deliberately left
#: untouched (its digests are pinned); this set covers what the wire
#: plans can deterministically produce.
WIRE_TIMELINE_KINDS = frozenset(
    HA_EVENT_KINDS
    | {
        "wire_chaos_fault",
        "wire_client_crashed",
        "wire_client_evicted",
        "wire_chaos_invariant",
        "crash",
    }
)

#: detail keys dropped from the digest (same policy as the chaos soak)
_VOLATILE_KEYS = ("error", "trace")


def canonical_wire_timeline(events):
    """The digest-stable projection of a run's survivability events.

    Envelope times are dropped, volatile detail keys are dropped,
    path-valued details reduce to their basename, and the entries are
    **sorted** — receive-side fault applications arrive in scheduler
    order, so only the set is deterministic (see the module docs).
    """
    timeline = []
    for event in events:
        if event["kind"] not in WIRE_TIMELINE_KINDS:
            continue
        detail = {}
        for key, value in event["detail"].items():
            if key in _VOLATILE_KEYS:
                continue
            if isinstance(value, str) and os.sep in value:
                value = os.path.basename(value)
            detail[key] = value
        timeline.append({"kind": event["kind"], "detail": detail})
    timeline.sort(key=lambda entry: json.dumps(entry, sort_keys=True))
    return timeline


def wire_timeline_digest(timeline):
    """SHA-256 over the canonical wire timeline (the determinism pin)."""
    data = json.dumps(timeline, sort_keys=True).encode("utf-8")
    return hashlib.sha256(data).hexdigest()


@dataclass
class WireChaosResult:
    """Everything one wire-chaos soak observed and concluded."""

    plan: str
    seed: int
    clients: int
    intervals_target: int
    workers: int = 0
    intervals_completed: int = 0
    #: per-family counts of applied (first-occurrence) datagram faults
    faults_applied: dict = field(default_factory=dict)
    crashes_scheduled: int = 0
    evictions: int = 0
    #: client-FSM totals — informational, timing-dependent, not digested
    resyncs: int = 0
    rehomes: int = 0
    promotions: int = 0
    final_epoch: int = 0
    invariants: dict = field(default_factory=dict)
    timeline: list = field(default_factory=list)
    digest: str = ""
    failure: object = None
    worker_crash: bool = False

    @property
    def ok(self):
        return (
            self.failure is None
            and bool(self.invariants)
            and all(self.invariants.values())
        )

    def to_dict(self):
        return {
            "plan": self.plan,
            "seed": self.seed,
            "clients": self.clients,
            "workers": self.workers,
            "intervals_target": self.intervals_target,
            "intervals_completed": self.intervals_completed,
            "faults_applied": dict(self.faults_applied),
            "crashes_scheduled": self.crashes_scheduled,
            "evictions": self.evictions,
            "resyncs": self.resyncs,
            "rehomes": self.rehomes,
            "promotions": self.promotions,
            "final_epoch": self.final_epoch,
            "invariants": dict(self.invariants),
            "digest": self.digest,
            "failure": None if self.failure is None else str(self.failure),
            "worker_crash": self.worker_crash,
            "ok": self.ok,
        }


# -- shared plumbing -----------------------------------------------------


def _resolve(plan, clients, intervals, workers):
    from repro.chaos.wire_faults import WireChaosPlan, make_wire_plan

    if isinstance(plan, WireChaosPlan):
        overrides = {}
        if clients is not None:
            overrides["clients"] = int(clients)
        if intervals is not None:
            overrides["intervals"] = int(intervals)
        if workers is not None:
            overrides["workers"] = int(workers)
        return replace(plan, **overrides) if overrides else plan
    return make_wire_plan(
        plan, clients=clients, intervals=intervals, workers=workers
    )


def _make_churn(plan):
    from repro.service.churn import NoChurn, PoissonChurn

    if plan.churn_alpha_join or plan.churn_alpha_leave:
        return PoissonChurn(
            alpha=plan.churn_alpha_leave,
            alpha_join=plan.churn_alpha_join,
        )
    return NoChurn()


def _crash_schedule(plan):
    """``{name: (wire_interval, round_no)}`` from the plan's crashes."""
    return {
        "member-%04d" % crash.member: (crash.interval, crash.round_no)
        for crash in plan.crashes
    }


def _agreement_ok(daemon):
    try:
        daemon.fleet.check_agreement(
            daemon.server, exclude=daemon.pending_carry_names()
        )
        return True
    except ReproError:
        return False


def _steps_guard(steps, done, intervals):
    if steps > intervals * 3 + 8:
        raise ChaosError(
            "wire chaos soak wedged: %d steps but only %d/%d intervals"
            % (steps, done, intervals)
        )


def _close_all(backend, daemons):
    if backend is not None:
        try:
            backend.close()
        except ReproError:  # teardown must not mask the run's verdict
            pass
    for daemon in daemons:
        try:
            daemon.close()
        except ReproError:  # pragma: no cover - double-close noise
            pass


# -- the single-daemon plans ---------------------------------------------


def _run_single(plan, seed, obs, result, say):
    """``datagram-storm`` and ``client-churn-crash``: one daemon, the
    injector and/or scripted client deaths, liveness evictions feeding
    the leave intake."""
    from repro.chaos.wire_faults import DatagramFaultInjector
    from repro.core.config import GroupConfig
    from repro.core.server import GroupKeyServer
    from repro.service.daemon import DaemonConfig, RekeyDaemon
    from repro.service.members import MemberFleet
    from repro.wire.delivery import WireDelivery, WireFleet

    config = GroupConfig(
        block_size=plan.block_size,
        seed=seed,
        nack_window_seconds=plan.nack_window_seconds,
    )
    injector = None
    if plan.faults.any_enabled:
        injector = DatagramFaultInjector(plan.faults, seed, obs=obs)
    schedule = _crash_schedule(plan)
    result.crashes_scheduled = len(schedule)
    backend = WireDelivery(
        config,
        seed=seed + 1,
        workers=plan.workers,
        faults=injector,
        liveness_tries=plan.liveness_tries or None,
        resync_timeout=plan.resync_timeout or None,
        crash_plan=schedule,
    )
    # The schedule is part of the deterministic timeline: one event per
    # scripted death, emitted in program order before the run begins.
    for name in sorted(schedule):
        interval, round_no = schedule[name]
        obs.emit(
            "wire_client_crashed",
            member=name,
            interval=interval,
            phase=round_no,
        )
    server = GroupKeyServer(
        ["member-%04d" % index for index in range(plan.clients)],
        config=config,
    )
    fleet_cls = WireFleet if plan.workers else MemberFleet
    daemon = RekeyDaemon(
        server,
        backend=backend,
        fleet=fleet_cls.register_all(server),
        churn=_make_churn(plan),
        service=DaemonConfig(deadline_rounds=config.max_multicast_rounds),
        seed=seed,
        obs=obs,
    )
    # Casualties become leaves from the daemon's own thread (the intake
    # lock is reentrant): evicted mid-interval, rekeyed out at the next.
    backend.on_casualty = daemon.submit_leave
    try:
        daemon.run(
            plan.intervals,
            on_interval=lambda record: say(
                "  interval %d: %d members, %d rounds, %d carried"
                % (
                    record.interval,
                    record.n_members,
                    record.multicast_rounds,
                    record.carried_users,
                )
            ),
        )
        result.intervals_completed = daemon.server.intervals_processed
        result.evictions = len(backend.dead_members)
        stats = backend.client_stats()
        result.resyncs = sum(s["resyncs"] for s in stats.values())

        invariants = result.invariants
        invariants["completed"] = (
            daemon.server.intervals_processed >= plan.intervals
        )
        invariants["key-agreement"] = _agreement_ok(daemon)
        if injector is not None:
            result.faults_applied = dict(injector.applied)
            for fault, rate in (
                ("corrupt", plan.faults.corrupt_rate),
                ("duplicate", plan.faults.duplicate_rate),
                ("reorder", plan.faults.reorder_rate),
                ("delay", plan.faults.delay_rate),
                ("blackout", plan.faults.blackout_rate),
            ):
                if rate > 0.0:
                    invariants["fault-%s" % fault] = (
                        injector.applied.get(fault, 0) > 0
                    )
            if plan.faults.corrupt_rate > 0.0:
                # Corruption is detectable by construction — it must
                # surface as counted decode errors, never as silence.
                client_decode = sum(
                    s["decode_errors"] for s in stats.values()
                )
                invariants["decode-error-path"] = (
                    backend.server.decode_errors + client_decode > 0
                )
        if schedule:
            crashed = set(schedule)
            invariants["crashed-evicted"] = (
                crashed <= backend.dead_members
            )
            invariants["eviction-count"] = (
                backend.dead_members == frozenset(crashed)
            )
            invariants["evicted-left"] = not (
                crashed & set(daemon.fleet.members)
            )
        else:
            invariants["no-member-lost"] = not backend.dead_members
    finally:
        result.intervals_completed = daemon.server.intervals_processed
        _close_all(backend, [daemon])


# -- the live-fleet failover plan ----------------------------------------


def _run_leader_kill_live(plan, seed, obs, result, say):
    """``leader-kill-live``: kill the leader post-delivery, promote a
    hot standby, and make the *live* worker fleet re-home to it."""
    from repro.chaos.seams import FaultyClock
    from repro.core.config import GroupConfig
    from repro.core.server import GroupKeyServer
    from repro.ha.lease import Lease
    from repro.ha.replication import DirectLink, LeaderPublisher
    from repro.ha.standby import StandbyReplica, promote
    from repro.service.daemon import (
        CrashPlan,
        DaemonConfig,
        DaemonCrash,
        RekeyDaemon,
    )
    from repro.service.wal import epochs_monotonic, scan_records
    from repro.wire.delivery import WireDelivery, WireFleet

    state_dir = tempfile.mkdtemp(prefix="wire-chaos-")
    clock = FaultyClock()
    lease_path = os.path.join(state_dir, "lease.json")
    leader_lease = Lease(
        lease_path, "node-a", ttl=LEASE_TTL, clock=clock, obs=obs
    )
    standby_lease = Lease(
        lease_path, "node-b", ttl=LEASE_TTL, clock=clock, obs=obs
    )
    epoch = leader_lease.acquire()
    config = GroupConfig(
        block_size=plan.block_size,
        seed=seed,
        nack_window_seconds=plan.nack_window_seconds,
    )
    service = DaemonConfig(
        state_dir=state_dir,
        wal_compact_every=0,
        verify_invariants=True,
        deadline_rounds=config.max_multicast_rounds,
        crash_plan=CrashPlan(plan.leader_kill_interval, "post-delivery"),
    )
    backend = WireDelivery(
        config,
        seed=seed + 1,
        workers=plan.workers,
        resync_timeout=plan.resync_timeout,
        epoch=epoch,
    )
    server = GroupKeyServer(
        ["member-%04d" % index for index in range(plan.clients)],
        config=config,
    )
    leader = RekeyDaemon(
        server,
        backend=backend,
        fleet=WireFleet.register_all(server),
        churn=_make_churn(plan),
        service=service,
        seed=seed,
        obs=obs,
        clock=clock,
        epoch=epoch,
        fence=leader_lease,
    )
    if leader.snapshot_path is not None and not leader._save_snapshot():
        raise ChaosError(
            "could not write the initial snapshot to %s"
            % leader.snapshot_path
        )
    obs.emit("ha_role", node="node-a", role="leader", epoch=epoch)
    obs.emit("ha_role", node="node-b", role="standby", epoch=epoch)
    publisher = leader.attach_replication(
        LeaderPublisher(epoch, wal=leader.wal, obs=obs)
    )
    link = DirectLink()
    replica = StandbyReplica(
        config=config, node_id="node-b", obs=obs, clock=clock
    )
    publisher.subscribe(link, server=leader.server)
    replica.apply_frames(link.poll())

    active = leader
    daemons = [leader]
    intervals = plan.intervals
    steps = 0
    try:
        while active.server.intervals_processed < intervals:
            steps += 1
            _steps_guard(
                steps, active.server.intervals_processed, intervals
            )
            current = active.server.intervals_processed
            try:
                active.run_interval()
            except DaemonCrash:
                say(
                    "  interval %d: leader killed post-delivery -> "
                    "failing over with the fleet live" % current
                )
                # The workers' client processes — and their sockets —
                # survive the leader: detach them before tearing the
                # leader's wire plane down, so the successor can adopt
                # the pool and rebind the same UDP port.
                adoption = backend.handoff()
                leader.close()
                backend.close()
                service.crash_plan = None
                replica.apply_frames(link.poll())
                clock.sleep(LEASE_TTL + 1.0)
                obs.emit(
                    "ha_heartbeat_lost",
                    node=replica.node_id,
                    leader_epoch=replica.leader_epoch,
                    applied_seq=replica.applied_seq,
                )
                successor = WireDelivery(
                    config,
                    seed=seed + 1,
                    workers=plan.workers,
                    resync_timeout=plan.resync_timeout,
                    handoff=adoption,
                )
                active = promote(
                    replica,
                    state_dir,
                    standby_lease,
                    backend=successor,
                    fleet=leader.fleet,
                    churn=leader.churn,
                    service=service,
                    seed=seed,
                    obs=obs,
                    clock=clock,
                )
                # The promoted epoch is minted inside promote(); the
                # successor's server starts lazily at the next deliver,
                # so stamping it here fences every ANNOUNCE it sends.
                successor.epoch = active.epoch
                backend = successor
                daemons.append(active)
                result.promotions += 1
                say(
                    "  promoted node-b to epoch %d; fleet re-homing"
                    % active.epoch
                )
                continue
            if active is leader:
                leader_lease.renew()
                publisher.heartbeat()
                replica.apply_frames(link.poll())
        result.intervals_completed = active.server.intervals_processed
        result.final_epoch = active.epoch
        stats = backend.client_stats()
        result.resyncs = sum(s["resyncs"] for s in stats.values())
        result.rehomes = sum(
            1 for s in stats.values() if s["epoch"] == active.epoch
        )
        result.evictions = len(backend.dead_members)

        invariants = result.invariants
        invariants["completed"] = (
            active.server.intervals_processed >= intervals
        )
        invariants["promoted"] = result.promotions == 1
        invariants["rehomed"] = bool(stats) and all(
            s["epoch"] == active.epoch and not s["dead"]
            for s in stats.values()
        )
        invariants["key-agreement"] = _agreement_ok(active)
        records, wal_error = scan_records(
            os.path.join(state_dir, "wal.jsonl")
        )
        if wal_error is not None:
            raise wal_error
        committed = {
            r["interval"] for r in records if r["op"] == "commit"
        }
        invariants["no-interval-lost"] = committed == set(
            range(intervals)
        )
        invariants["wal-epochs-monotonic"] = epochs_monotonic(records)
    finally:
        result.intervals_completed = active.server.intervals_processed
        _close_all(backend, daemons)


# -- the entry point -----------------------------------------------------


def run_wire_chaos_soak(
    plan="datagram-storm",
    seed=7,
    clients=None,
    intervals=None,
    workers=None,
    obs_path=None,
    log=None,
):
    """Run one wire-chaos soak; returns a :class:`WireChaosResult`.

    ``plan`` is a name from
    :data:`~repro.chaos.wire_faults.WIRE_CHAOS_PLAN_NAMES` (or a ready
    :class:`~repro.chaos.wire_faults.WireChaosPlan`).  Run-induced
    failures land in ``result.failure``, not exceptions — except plan
    misconfiguration, which raises :class:`~repro.errors.ChaosError`
    like every other soak entry point.
    """
    plan = _resolve(plan, clients, intervals, workers)
    if plan.leader_kill_interval and plan.workers < 1:
        raise ChaosError(
            "a leader-kill plan needs worker processes: the clients "
            "must outlive the killed leader"
        )
    say = log if log is not None else (lambda line: None)
    bus = EventBus(path=obs_path)
    obs = Recorder(bus=bus)
    result = WireChaosResult(
        plan=plan.name,
        seed=int(seed),
        clients=plan.clients,
        intervals_target=plan.intervals,
        workers=plan.workers,
    )
    say(
        "wire-chaos: plan %r, seed %d, %d clients%s, %d intervals"
        % (
            plan.name,
            int(seed),
            plan.clients,
            " on %d workers" % plan.workers if plan.workers else "",
            plan.intervals,
        )
    )
    try:
        if plan.leader_kill_interval:
            _run_leader_kill_live(plan, int(seed), obs, result, say)
        else:
            _run_single(plan, int(seed), obs, result, say)
        for name, passed in sorted(result.invariants.items()):
            obs.emit(
                "wire_chaos_invariant",
                invariant=name,
                passed=bool(passed),
            )
            say(
                "  invariant %-22s %s"
                % (name, "ok" if passed else "FAIL")
            )
    except WorkerCrashError as error:
        result.failure = error
        result.worker_crash = True
        say("  wire chaos soak aborted: %s" % error)
    except ReproError as error:
        result.failure = error
        say("  wire chaos soak aborted: %s" % error)
    finally:
        result.timeline = canonical_wire_timeline(bus.events)
        result.digest = wire_timeline_digest(result.timeline)
        obs.emit(
            "wire_chaos_complete",
            plan=plan.name,
            seed=int(seed),
            intervals=result.intervals_completed,
            digest=result.digest,
            ok=result.ok,
        )
        bus.close()
    return result
