"""Datagram framing for the asyncio UDP wire plane.

Every wire datagram is one *frame*: a fixed 10-byte versioned header
followed by a kind-specific payload.  The header carries the delivery
coordinates a receiver needs before it can interpret anything else::

    >BBBIBH   magic, version, kind, interval, round, slot

- ``interval`` — the daemon's rekey-interval number, so a late datagram
  from a previous interval can never poison the current session;
- ``round`` — the multicast round (1-based; 0 = the announce phase,
  :data:`UNICAST_ROUND` = the unicast phase), stamped on ``ROUND_END``
  and ``FEEDBACK`` so retransmitted round boundaries deduplicate;
- ``slot`` — the datagram's send index within the interval's multicast
  phase.  Receivers sample their Gilbert loss chain at *virtual* time
  ``slot * sending_interval`` (see :mod:`repro.wire.loss`), which makes
  injected loss a pure function of ``(seed, member, interval, slot)``
  rather than of wall-clock arrival — the whole fleet run stays
  deterministic even though real sockets deliver with real timing.

``DATA`` frames wrap the protocol's own wire bytes unchanged
(:mod:`repro.rekey.packets` — ENC/PARITY/USR from the server, NACKs ride
inside ``FEEDBACK`` frames so the aggregation window can close early).
The control frames (``ANNOUNCE``/``ROUND_END``/``FEEDBACK``/
``REGISTER``) are this module's own small structs.

The receive-buffer arithmetic lives here too so the thread-based
loopback endpoints (:mod:`repro.net.endpoints`) and the asyncio plane
size their buffers from one shared rule instead of a hardcoded 4 KiB.
"""

from __future__ import annotations

import enum
import socket
import struct
from dataclasses import dataclass

from repro.errors import PacketDecodeError, WireDecodeError, WireError
from repro.rekey.packets import NackPacket

#: First header byte of every wire datagram.
WIRE_MAGIC = 0xC3

#: Framing version; bumped only for incompatible layout changes.
WIRE_VERSION = 1

_HEADER = struct.Struct(">BBBIBH")

#: Size of the fixed frame header, in bytes.
WIRE_HEADER_SIZE = _HEADER.size

#: ``round`` value stamped on unicast-phase frames (rounds are 1-based
#: and bounded by the deadline, so 255 can never be a multicast round).
UNICAST_ROUND = 0xFF

#: Every control payload leads with the 64-bit trace id of the interval
#: that produced it (:mod:`repro.obs.trace`), 0 = no active trace.  The
#: id rides ANNOUNCE server→client and is echoed back in FEEDBACK, so
#: clients in other processes tag their recovery milestones with the
#: same trace the daemon minted at ``interval_start``.  It is carried
#: *outside* the protocol facts: the fleet digest never hashes it and
#: injected loss applies only to DATA frames, so tracing cannot perturb
#: the pinned deterministic runs.
#: Right behind the trace id rides the leader's 32-bit **epoch** (the HA
#: fencing token, :mod:`repro.ha.lease`).  ANNOUNCE and the REGISTER ack
#: carry it server→client so a client can tell a promoted leader from a
#: deposed one; FEEDBACK echoes it client→server so a server can fence
#: reports minted against a stale epoch.  Like the trace id it sits
#: outside the protocol facts: the fleet digest never hashes it, and in
#: single-leader runs it is simply 0 end to end.
_ANNOUNCE = struct.Struct(">QIBBHHB")
_FEEDBACK = struct.Struct(">QIIHBBH6sf")
_REGISTER = struct.Struct(">QIIH")

_TRACE_MASK = 0xFFFFFFFFFFFFFFFF
_EPOCH_MASK = 0xFFFFFFFF

#: Fingerprint placeholder sent while a member has not recovered yet.
NO_FINGERPRINT = "000000000000"


class FrameKind(enum.IntEnum):
    """The 1-byte frame kind in every wire header."""

    DATA = 0       # payload = one repro.rekey.packets wire packet
    ANNOUNCE = 1   # server -> client: rekey-message metadata
    ROUND_END = 2  # server -> client: the round's send phase is over
    FEEDBACK = 3   # client -> server: status (+ optional NACK bytes)
    REGISTER = 4   # client -> server: here is my address


@dataclass(frozen=True)
class WireFrame:
    """One decoded datagram: header fields + raw payload bytes."""

    kind: FrameKind
    interval: int
    round_no: int
    slot: int
    payload: bytes


@dataclass(frozen=True)
class Announce:
    """The ``ANNOUNCE`` payload: what a client needs to build its
    :class:`~repro.transport.user.UserTransport` for one message."""

    message_id: int
    k: int
    n_blocks: int
    max_kid: int
    degree: int
    trace_id: int = 0
    epoch: int = 0


@dataclass(frozen=True)
class Feedback:
    """The ``FEEDBACK`` payload: one member's round (or phase) report.

    ``dropped`` counts the datagrams the member's injected loss chain
    discarded so far this interval — the server aggregates it into the
    per-cohort drop counts without a second exchange.  ``nack`` is the
    member's :class:`~repro.rekey.packets.NackPacket` for the round, or
    ``None`` when it has nothing (or nothing left) to request.
    """

    member_index: int
    user_id: int
    done: bool
    recovery_round: int
    dropped: int
    fingerprint: str
    latency_ms: float
    nack: object = None
    trace_id: int = 0
    epoch: int = 0


@dataclass(frozen=True)
class Register:
    """The ``REGISTER`` payload: a client binding its stable index."""

    member_index: int
    user_id: int
    trace_id: int = 0
    epoch: int = 0


def encode_frame(kind, interval, round_no=0, slot=0, payload=b""):
    """Serialise one frame; validates the header ranges."""
    if not 0 <= interval <= 0xFFFFFFFF:
        raise WireError("interval %r does not fit in 32 bits" % (interval,))
    if not 0 <= round_no <= 0xFF:
        raise WireError("round %r does not fit in 8 bits" % (round_no,))
    if not 0 <= slot <= 0xFFFF:
        raise WireError("slot %r does not fit in 16 bits" % (slot,))
    return (
        _HEADER.pack(
            WIRE_MAGIC,
            WIRE_VERSION,
            int(FrameKind(kind)),
            interval,
            round_no,
            slot,
        )
        + payload
    )


def decode_frame(data):
    """Parse one datagram into a :class:`WireFrame`.

    Rejects short datagrams, wrong magic, unsupported versions and
    unknown kinds with :class:`~repro.errors.WireDecodeError` — garbage
    on the socket must never reach the protocol state machines.
    """
    if len(data) < WIRE_HEADER_SIZE:
        raise WireDecodeError(
            "datagram of %d bytes is shorter than the %d-byte header"
            % (len(data), WIRE_HEADER_SIZE)
        )
    magic, version, kind, interval, round_no, slot = _HEADER.unpack(
        data[:WIRE_HEADER_SIZE]
    )
    if magic != WIRE_MAGIC:
        raise WireDecodeError("bad magic 0x%02X" % magic)
    if version != WIRE_VERSION:
        raise WireDecodeError(
            "unsupported wire version %d (speak %d)" % (version, WIRE_VERSION)
        )
    try:
        kind = FrameKind(kind)
    except ValueError:
        raise WireDecodeError("unknown frame kind %d" % kind)
    return WireFrame(
        kind=kind,
        interval=interval,
        round_no=round_no,
        slot=slot,
        payload=bytes(data[WIRE_HEADER_SIZE:]),
    )


# -- control payloads ---------------------------------------------------


def encode_announce(message, degree, trace_id=0, epoch=0):
    """The ``ANNOUNCE`` payload for one rekey message."""
    if message.k > 0xFF:
        raise WireError("block size %d does not fit in 8 bits" % message.k)
    return _ANNOUNCE.pack(
        int(trace_id) & _TRACE_MASK,
        int(epoch) & _EPOCH_MASK,
        message.message_id,
        message.k,
        message.n_blocks,
        message.max_kid,
        int(degree),
    )


def decode_announce(payload):
    if len(payload) != _ANNOUNCE.size:
        raise WireDecodeError(
            "ANNOUNCE payload must be %d bytes, got %d"
            % (_ANNOUNCE.size, len(payload))
        )
    (
        trace_id,
        epoch,
        message_id,
        k,
        n_blocks,
        max_kid,
        degree,
    ) = _ANNOUNCE.unpack(payload)
    if k < 1 or n_blocks < 1 or degree < 2:
        raise WireDecodeError("ANNOUNCE with degenerate geometry")
    return Announce(
        message_id=message_id,
        k=k,
        n_blocks=n_blocks,
        max_kid=max_kid,
        degree=degree,
        trace_id=trace_id,
        epoch=epoch,
    )


def encode_feedback(feedback):
    """The ``FEEDBACK`` payload (fixed struct + optional NACK bytes)."""
    try:
        fingerprint = bytes.fromhex(feedback.fingerprint)
    except ValueError:
        raise WireError(
            "fingerprint %r is not hex" % (feedback.fingerprint,)
        )
    if len(fingerprint) != 6:
        raise WireError("fingerprint must be 6 bytes of hex")
    fixed = _FEEDBACK.pack(
        int(feedback.trace_id) & _TRACE_MASK,
        int(feedback.epoch) & _EPOCH_MASK,
        feedback.member_index,
        feedback.user_id,
        1 if feedback.done else 0,
        feedback.recovery_round,
        min(feedback.dropped, 0xFFFF),
        fingerprint,
        float(feedback.latency_ms),
    )
    if feedback.nack is None:
        return fixed
    return fixed + feedback.nack.encode()


def decode_feedback(payload):
    if len(payload) < _FEEDBACK.size:
        raise WireDecodeError(
            "FEEDBACK payload must be at least %d bytes, got %d"
            % (_FEEDBACK.size, len(payload))
        )
    (
        trace_id,
        epoch,
        member_index,
        user_id,
        done,
        recovery_round,
        dropped,
        fingerprint,
        latency_ms,
    ) = _FEEDBACK.unpack(payload[: _FEEDBACK.size])
    nack = None
    tail = payload[_FEEDBACK.size :]
    if tail:
        try:
            nack = NackPacket.decode(tail)
        except PacketDecodeError as exc:
            # Surface as a *wire* decode failure: a corrupt NACK tail is
            # this layer's garbage to refuse, same as a bad header.
            raise WireDecodeError("FEEDBACK with bad NACK tail: %s" % exc)
    return Feedback(
        member_index=member_index,
        user_id=user_id,
        done=bool(done),
        recovery_round=recovery_round,
        dropped=dropped,
        fingerprint=fingerprint.hex(),
        latency_ms=latency_ms,
        nack=nack,
        trace_id=trace_id,
        epoch=epoch,
    )


def encode_register(member_index, user_id, trace_id=0, epoch=0):
    return _REGISTER.pack(
        int(trace_id) & _TRACE_MASK,
        int(epoch) & _EPOCH_MASK,
        member_index,
        user_id,
    )


def decode_register(payload):
    if len(payload) != _REGISTER.size:
        raise WireDecodeError(
            "REGISTER payload must be %d bytes, got %d"
            % (_REGISTER.size, len(payload))
        )
    trace_id, epoch, member_index, user_id = _REGISTER.unpack(payload)
    return Register(
        member_index=member_index,
        user_id=user_id,
        trace_id=trace_id,
        epoch=epoch,
    )


_MEMBER_INDEX_OFFSET = struct.calcsize(">QI")  # trace_id + epoch
_MEMBER_INDEX = struct.Struct(">I")


def peek_member_index(frame):
    """The ``member_index`` of a decoded FEEDBACK/REGISTER frame,
    read without a full payload decode (the fault injector needs the
    sender's coordinate *before* deciding whether to mangle the bytes).
    Returns ``None`` for other kinds or truncated payloads.
    """
    if frame.kind not in (FrameKind.FEEDBACK, FrameKind.REGISTER):
        return None
    end = _MEMBER_INDEX_OFFSET + _MEMBER_INDEX.size
    if len(frame.payload) < end:
        return None
    return _MEMBER_INDEX.unpack(
        frame.payload[_MEMBER_INDEX_OFFSET:end]
    )[0]


# -- buffer sizing ------------------------------------------------------


def max_datagram_size(packet_size):
    """The largest wire datagram a configuration can produce.

    ENC packets encode to exactly ``packet_size`` bytes and PARITY
    packets to the same total (3 header bytes + a payload of
    ``packet_size - 3``); USR, NACK and the control payloads are all
    smaller.  A framed datagram therefore never exceeds the header plus
    ``packet_size``.
    """
    return WIRE_HEADER_SIZE + int(packet_size)


def recv_buffer_size(packet_size):
    """Receive-buffer size for sockets carrying protocol datagrams.

    Sized from the *configured* packet size — ``recvfrom`` silently
    truncates anything larger than its buffer, so a hardcoded constant
    corrupts PARITY packets as soon as ``packet_size`` outgrows it.  The
    result is rounded up to a 1 KiB multiple (with slack for the frame
    header) and never below 2 KiB.
    """
    needed = max_datagram_size(packet_size) + 64
    return max(2048, -(-needed // 1024) * 1024)


def kernel_buffer_size(packet_size, fan_in):
    """``SO_RCVBUF``/``SO_SNDBUF`` request for a wire-plane socket.

    ``fan_in`` is the worst-case number of peers whose datagrams can
    land in one burst before the event loop drains the socket: the
    fleet size for the server (every client answers ROUND_END at once),
    the per-round packet budget for a client.  The kernel charges each
    queued datagram its skb overhead — far more than the payload for
    small frames — so the estimate budgets a full KiB per datagram and
    doubles it for headroom.  The kernel silently clamps the request to
    ``net.core.{r,w}mem_max``; an undersized buffer only costs retries,
    never correctness, because every control exchange is retried
    against cached state.
    """
    per_datagram = max(1024, max_datagram_size(packet_size))
    return max(1 << 18, 2 * per_datagram * max(1, int(fan_in)))


def request_kernel_buffers(transport, size):
    """Best-effort ``SO_RCVBUF``/``SO_SNDBUF`` request on a datagram
    transport (asyncio's, or anything with ``get_extra_info``).

    The kernel clamps to ``net.core.{r,w}mem_max`` and some platforms
    refuse the option entirely; both are fine — the protocol survives
    kernel drops by retrying, buffers only trim the latency tail.
    """
    sock = transport.get_extra_info("socket")
    if sock is None:  # pragma: no cover - non-socket transports
        return
    for option in (socket.SO_RCVBUF, socket.SO_SNDBUF):
        try:
            sock.setsockopt(socket.SOL_SOCKET, option, int(size))
        except OSError:  # pragma: no cover - platform refusal
            pass
