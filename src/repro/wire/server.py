"""Asyncio server side of the wire plane.

:class:`WireServer` owns one bound UDP socket and drives whole rekey
intervals over it: an announce barrier, block-interleaved multicast
rounds feeding the same :class:`~repro.transport.server.ServerTransport`
scheduler as the simulator, a NACK aggregation window per round, and the
unicast switch-over of §7.1.  Multicast is emulated the way the loopback
endpoints do it — identical bytes unicast to every registered member
from one socket.

Reliability model: injected loss only ever applies to multicast ``DATA``
frames (decided client-side from the frame's ``slot``), so every control
exchange converges by retransmission —

- the **announce barrier** resends ``ANNOUNCE`` to members that have
  not acked, and round 1 starts only when every participant has a
  session (a client that missed the announce would otherwise drop the
  whole round on the floor and break determinism);
- each **round** resends ``ROUND_END`` to members whose feedback has
  not arrived; clients answer retries from a cache, so a kernel-dropped
  feedback datagram costs latency, never different protocol input;
- the **unicast phase** resends USR frames until every straggler acks.

The per-try wait is ``GroupConfig.nack_window_seconds`` — the window
closes early the instant the last expected feedback lands.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.errors import WireDecodeError, WireError
from repro.obs.recorder import NULL
from repro.obs.trace import format_trace
from repro.rekey.packets import PacketType
from repro.transport.server import ServerTransport, UnicastPolicy
from repro.wire.codec import (
    UNICAST_ROUND,
    FrameKind,
    decode_feedback,
    decode_frame,
    decode_register,
    encode_announce,
    encode_frame,
    encode_register,
    kernel_buffer_size,
    request_kernel_buffers,
)

#: Give up on a window after this many send-and-wait tries.  At the
#: default 0.3 s window this is a minute of dead air — a hung client,
#: not transient loss.
MAX_WINDOW_TRIES = 200

#: Yield to the event loop after this many multicast datagram fan-outs
#: so in-process clients drain their sockets before kernel receive
#: buffers overflow (which would add *nondeterministic* loss on top of
#: the seeded chains).
DEFAULT_PACE_EVERY = 4

#: Worst-case simultaneous senders the server socket is sized for: a
#: ROUND_END makes every client answer at once, so this is the largest
#: fleet the buffers absorb without kernel drops (which only cost
#: retry latency, never protocol input).
DEFAULT_FAN_IN = 2048


@dataclass(frozen=True)
class Participant:
    """One member's coordinates for an interval's delivery.

    ``served`` mirrors membership in ``message.needs_by_user``: served
    members receive DATA/ROUND_END and owe round feedback; the rest only
    join the announce barrier (they still must learn ``maxKID``).
    """

    member_index: int
    user_id: int
    served: bool = True


@dataclass
class WireOutcome:
    """What one interval's wire delivery did, for the delivery layer."""

    interval: int
    rounds: int = 0
    #: round-1 parity shortfalls (sorted) — real AdjustRho input
    first_round_requests: list = field(default_factory=list)
    #: member_index -> final codec.Feedback for every served member
    results: dict = field(default_factory=dict)
    unicast_user_ids: list = field(default_factory=list)
    round_stats: list = field(default_factory=list)
    announce_retries: int = 0
    feedback_retries: int = 0
    unicast_retries: int = 0
    datagrams_sent: int = 0
    #: member indices the liveness timeout declared dead this interval
    casualties: set = field(default_factory=set)


class AggregationWindow:
    """Collects one round's FEEDBACK frames from an expected member set.

    The window is *complete* once every expected member has reported;
    duplicates (clients answering a retried ``ROUND_END`` from their
    cache) are dropped so one member can never report twice into the
    same round.
    """

    def __init__(self, expected):
        self.expected = frozenset(int(i) for i in expected)
        self.reported = {}
        self.nacks = []
        self._complete = asyncio.Event()
        if not self.expected:
            self._complete.set()

    def offer(self, member_index, feedback):
        """Feed one feedback; returns True if it was new and expected."""
        if member_index not in self.expected:
            return False
        if member_index in self.reported:
            return False
        self.reported[member_index] = feedback
        if feedback.nack is not None:
            self.nacks.append(feedback.nack)
        if self.complete:
            self._complete.set()
        return True

    def forget(self, member_index):
        """Stop expecting ``member_index`` (a liveness eviction)."""
        member_index = int(member_index)
        if member_index not in self.expected:
            return
        self.expected = self.expected - {member_index}
        if self.complete:
            self._complete.set()

    @property
    def complete(self):
        return len(self.reported) == len(self.expected)

    @property
    def missing(self):
        return sorted(self.expected - set(self.reported))

    async def wait(self, timeout):
        """True if the window completed within ``timeout`` seconds."""
        try:
            await asyncio.wait_for(self._complete.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False


class _ServerProtocol(asyncio.DatagramProtocol):
    def __init__(self, server):
        self.server = server
        self.transport = None

    def connection_made(self, transport):
        self.transport = transport

    def datagram_received(self, data, addr):
        self.server._on_datagram(data, addr)

    def error_received(self, exc):  # pragma: no cover - platform noise
        self.server.errors.append("socket error: %r" % (exc,))


class WireServer:
    """The key server's wire-plane endpoint."""

    def __init__(
        self,
        config,
        host="127.0.0.1",
        port=0,
        obs=NULL,
        epoch=0,
        faults=None,
        liveness_tries=None,
    ):
        """``epoch`` is the leader's fencing token (0 = unfenced);
        ``faults`` an optional
        :class:`~repro.chaos.wire_faults.DatagramFaultInjector` wrapping
        both socket directions; ``liveness_tries`` the window-try budget
        after which a silent member is declared dead and evicted
        (``None`` = members never die, the pre-chaos behaviour)."""
        self.config = config
        self.host = host
        self.port = int(port)
        self.obs = obs
        self.epoch = int(epoch)
        self.faults = faults
        self.liveness_tries = (
            None if liveness_tries is None else int(liveness_tries)
        )
        self.errors = []
        self.decode_errors = 0
        self.stale_feedback = 0
        self.stale_epoch_feedback = 0
        self.registrations = 0
        self.reregistrations = 0
        #: member indices declared dead by the liveness timeout, for the
        #: delivery layer to feed into the leave intake
        self.casualties = set()
        self._addresses = {}  # member_index -> (host, port)
        self._windows = {}  # (interval, round_no) -> AggregationWindow
        self._registered = None  # asyncio.Event, created on start
        self._transport = None
        if self.faults is not None:
            self.faults.bind(self.obs)

    # -- lifecycle ---------------------------------------------------------

    async def start(self):
        loop = asyncio.get_running_loop()
        self._registered = asyncio.Event()
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _ServerProtocol(self),
            local_addr=(self.host, self.port),
        )
        request_kernel_buffers(
            self._transport,
            kernel_buffer_size(self.config.packet_size, DEFAULT_FAN_IN),
        )
        return self

    @property
    def address(self):
        """The bound ``(host, port)`` — hand this to the clients."""
        if self._transport is None:
            raise WireError("server not started")
        return self._transport.get_extra_info("sockname")[:2]

    async def close(self):
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    def forget(self, member_index):
        """Drop an evicted member's address."""
        self._addresses.pop(int(member_index), None)

    async def wait_registered(self, member_indices, timeout=30.0, abort=None):
        """Block until every index has announced an address.

        ``abort`` is an optional callable polled between waits; it
        raises to abandon the barrier early (the delivery layer uses it
        to surface dead worker processes instead of timing out here).
        """
        needed = set(int(i) for i in member_indices)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while not needed <= set(self._addresses):
            if abort is not None:
                abort()
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise WireError(
                    "members never registered: %r"
                    % sorted(needed - set(self._addresses))
                )
            self._registered.clear()
            try:
                await asyncio.wait_for(
                    self._registered.wait(), min(0.25, remaining)
                )
            except asyncio.TimeoutError:
                continue

    # -- receive path ------------------------------------------------------

    def _on_datagram(self, data, addr):
        if self.faults is not None:
            for mangled in self.faults.plan_recv(data):
                self._process_datagram(mangled, addr)
            return
        self._process_datagram(data, addr)

    def _process_datagram(self, data, addr):
        try:
            frame = decode_frame(data)
        except WireDecodeError as exc:
            self._count_decode_error(exc)
            return
        try:
            if frame.kind is FrameKind.REGISTER:
                self._on_register(frame, addr)
            elif frame.kind is FrameKind.FEEDBACK:
                self._on_feedback(frame)
            # Anything else is a client-bound kind echoed back; ignore.
        except Exception as exc:  # noqa: BLE001 - surfaced to the runner
            self.errors.append("%s: %s" % (type(exc).__name__, exc))

    def _count_decode_error(self, exc):
        self.decode_errors += 1
        self.obs.count("wire_decode_error_total", side="server")
        self.obs.emit("wire_decode_error", error=str(exc), side="server")

    def _on_register(self, frame, addr):
        register = decode_register(frame.payload)
        known = self._addresses.get(register.member_index)
        self._addresses[register.member_index] = addr
        if known is None:
            self.registrations += 1
        else:
            # Idempotent re-REGISTER: a resent datagram, a resync after
            # silence, or a client re-homing onto a promoted leader.
            self.reregistrations += 1
            self.obs.count("wire_reregistrations")
        self._registered.set()
        # Ack with the server's epoch: this is how a client first learns
        # (or relearns, after a failover) who the leader is.  Any frame
        # stops the client's retry loop.
        self._transport.sendto(
            encode_frame(
                FrameKind.REGISTER,
                0,
                payload=encode_register(
                    register.member_index,
                    register.user_id,
                    trace_id=register.trace_id,
                    epoch=self.epoch,
                ),
            ),
            addr,
        )

    def _on_feedback(self, frame):
        try:
            feedback = decode_feedback(frame.payload)
        except WireDecodeError as exc:
            self._count_decode_error(exc)
            return
        if self.epoch and feedback.epoch != self.epoch:
            # End-to-end fencing: a report minted against another
            # leader's epoch never enters an aggregation window.
            self.stale_epoch_feedback += 1
            self.obs.count("wire_stale_epoch_total", side="server")
            self.obs.emit(
                "wire_stale_epoch",
                side="server",
                member=feedback.member_index,
                epoch=feedback.epoch,
                current=self.epoch,
                interval=frame.interval,
            )
            return
        window = self._windows.get((frame.interval, frame.round_no))
        if window is None:
            self.stale_feedback += 1
            return
        window.offer(feedback.member_index, feedback)

    # -- delivery ----------------------------------------------------------

    def _send_to(self, frames_by_index, member_indices, outcome):
        for member_index in member_indices:
            if member_index in self.casualties:
                continue
            address = self._addresses.get(member_index)
            if address is None:
                raise WireError(
                    "no address for member index %d" % member_index
                )
            self._transmit(
                member_index, frames_by_index[member_index], address, outcome
            )

    def _transmit(self, member_index, wire, address, outcome):
        """One datagram through the fault seam (the no-faults path is a
        plain ``sendto``)."""
        if self.faults is None:
            self._transport.sendto(wire, address)
            outcome.datagrams_sent += 1
            return
        for data, delay in self.faults.plan_send(member_index, wire).sends:
            if delay > 0:
                asyncio.get_running_loop().call_later(
                    delay, self._sendto_late, data, address
                )
            else:
                self._transport.sendto(data, address)
            outcome.datagrams_sent += 1

    def _sendto_late(self, data, address):
        if self._transport is not None:
            self._transport.sendto(data, address)

    def _flush_faults(self, outcome):
        """Release reorder-held frames at a window boundary, so a held
        DATA frame is always delivered before its round's ROUND_END."""
        if self.faults is None:
            return
        for member_index, wire in self.faults.flush():
            address = self._addresses.get(member_index)
            if address is not None and member_index not in self.casualties:
                self._transport.sendto(wire, address)
                outcome.datagrams_sent += 1

    def _evict(self, key, window, outcome):
        """Declare the window's missing members dead (liveness timeout):
        stop expecting them, record the casualties for the delivery
        layer's leave intake."""
        interval, round_no = key
        for member_index in list(window.missing):
            window.forget(member_index)
            outcome.casualties.add(member_index)
            self.casualties.add(member_index)
            self.obs.count("wire_client_evictions")
            self.obs.emit(
                "wire_client_evicted",
                interval=interval,
                phase=round_no,
                member=member_index,
            )

    async def _drive_window(
        self, key, window, frames_by_index, outcome, what
    ):
        """Send-and-wait until ``window`` completes; returns the retries.

        Each try (re)sends only to the members still missing, then waits
        one aggregation window.  The wait returns the moment the last
        feedback lands, so a healthy fleet never pays the full cap.
        With a liveness budget set, members still missing after
        ``liveness_tries`` tries are evicted instead of stalling the
        interval to the full cap.
        """
        self._windows[key] = window
        try:
            tries = 0
            while not window.complete:
                if (
                    self.liveness_tries is not None
                    and tries >= self.liveness_tries
                ):
                    self._evict(key, window, outcome)
                    continue
                if tries >= MAX_WINDOW_TRIES:
                    raise WireError(
                        "%s: no feedback from member indices %r after "
                        "%d tries" % (what, window.missing, tries)
                    )
                self._flush_faults(outcome)
                self._send_to(frames_by_index, window.missing, outcome)
                tries += 1
                await window.wait(self.config.nack_window_seconds)
            return max(0, tries - 1)
        finally:
            self._windows.pop(key, None)

    async def deliver(
        self,
        message,
        interval,
        participants,
        rho=1.0,
        deadline_rounds=None,
        pace_seconds=0.0,
        pace_every=DEFAULT_PACE_EVERY,
        trace_id=0,
    ):
        """Run one rekey message over the wire; returns a WireOutcome.

        ``participants`` is the interval's roster of
        :class:`Participant` — every entry must already be registered.
        ``pace_seconds`` optionally sleeps between datagram fan-outs
        (worker mode, where clients drain in other processes);
        ``pace_every`` bounds how many fan-outs run between event-loop
        yields in the default in-process mode.  ``trace_id`` is the
        interval's distributed-trace id: carried in the ANNOUNCE payload
        so every client (in-process or in a worker) tags its recovery
        milestones with it.
        """
        if deadline_rounds is None:
            deadline_rounds = self.config.max_multicast_rounds
        participants = [
            p for p in participants if p.member_index not in self.casualties
        ]
        served = [p for p in participants if p.served]
        if not served:
            raise WireError("delivery with no served participants")
        transport = ServerTransport(
            message,
            rho=rho,
            sending_interval_ms=self.config.sending_interval_ms,
            unicast_policy=UnicastPolicy(
                max_multicast_rounds=deadline_rounds,
                compare_usr_bytes=False,
            ),
        )
        outcome = WireOutcome(interval=interval)
        served_indices = [p.member_index for p in served]
        served_targets = [p.member_index for p in served]

        # Announce barrier: nobody multicast-races a missing session.
        announce_payload = encode_announce(
            message, self.config.degree, trace_id=trace_id, epoch=self.epoch
        )
        announce_frames = {
            p.member_index: encode_frame(
                FrameKind.ANNOUNCE,
                interval,
                slot=1 if p.served else 0,
                payload=announce_payload,
            )
            for p in participants
        }
        outcome.announce_retries = await self._drive_window(
            (interval, 0),
            AggregationWindow(announce_frames),
            announce_frames,
            outcome,
            what="interval %d announce" % interval,
        )
        if outcome.casualties:
            served = [
                p for p in served if p.member_index not in outcome.casualties
            ]
            served_indices = [p.member_index for p in served]
            served_targets = list(served_indices)
            if not served:
                return outcome
        # ``mono`` anchors skew correction: the assembler aligns each
        # worker stream's monotonic clock against this barrier instant.
        self.obs.emit(
            "wire_announce",
            interval=interval,
            members=len(participants),
            served=len(served),
            retries=outcome.announce_retries,
            trace=format_trace(trace_id),
            mono=time.monotonic(),
        )

        slot = 0
        pending = list(served)
        while True:
            planned = transport.plan_round()
            round_no = transport.rounds_completed
            outcome.rounds = round_no
            for scheduled in planned:
                packet = scheduled.packet
                if packet.packet_type is PacketType.ENC:
                    payload = packet.encode(message.packet_size)
                else:
                    payload = packet.encode()
                frame = encode_frame(
                    FrameKind.DATA,
                    interval,
                    round_no=round_no,
                    slot=slot,
                    payload=payload,
                )
                self._send_to(
                    dict.fromkeys(served_targets, frame),
                    served_targets,
                    outcome,
                )
                slot += 1
                if pace_seconds:
                    await asyncio.sleep(pace_seconds)
                elif slot % pace_every == 0:
                    await asyncio.sleep(0)

            end_frame = encode_frame(
                FrameKind.ROUND_END, interval, round_no=round_no
            )
            window = AggregationWindow(served_indices)
            retries = await self._drive_window(
                (interval, round_no),
                window,
                dict.fromkeys(served_indices, end_frame),
                outcome,
                what="interval %d round %d" % (interval, round_no),
            )
            outcome.feedback_retries += retries
            transport.finish_round(window.nacks)
            if round_no == 1:
                outcome.first_round_requests = sorted(
                    nack.max_requested for nack in window.nacks
                )
            outcome.results.update(window.reported)
            if outcome.casualties:
                served = [
                    p
                    for p in served
                    if p.member_index not in outcome.casualties
                ]
                served_indices = [p.member_index for p in served]
                served_targets = list(served_indices)
                if not served:
                    return outcome
            pending = [
                p
                for p in served
                if not window.reported[p.member_index].done
            ]
            outcome.round_stats.append(
                {
                    "round": round_no,
                    "packets": len(planned),
                    "nacks": len(window.nacks),
                    "pending": len(pending),
                    "feedback_retries": retries,
                }
            )
            self.obs.emit(
                "wire_nack_window",
                interval=interval,
                round=round_no,
                nacks=len(window.nacks),
                retries=retries,
            )
            self.obs.emit(
                "wire_round",
                interval=interval,
                round=round_no,
                packets=len(planned),
                nacks=len(window.nacks),
                pending=len(pending),
            )
            if not pending:
                break
            if (
                transport.should_switch_to_unicast(
                    [p.user_id for p in pending]
                )
                or transport.pending_parity_next_round == 0
            ):
                await self._unicast_phase(
                    transport, interval, pending, outcome
                )
                break
        return outcome

    async def _unicast_phase(self, transport, interval, pending, outcome):
        """Serve the stragglers by USR, retried until each one acks."""
        usr_frames = {
            p.member_index: encode_frame(
                FrameKind.DATA,
                interval,
                round_no=UNICAST_ROUND,
                payload=transport.usr_packet_for(p.user_id).encode(),
            )
            for p in pending
        }
        window = AggregationWindow(usr_frames)
        outcome.unicast_retries = await self._drive_window(
            (interval, UNICAST_ROUND),
            window,
            usr_frames,
            outcome,
            what="interval %d unicast" % interval,
        )
        outcome.results.update(window.reported)
        if outcome.casualties:
            pending = [
                p for p in pending if p.member_index not in outcome.casualties
            ]
        outcome.unicast_user_ids = sorted(p.user_id for p in pending)
        self.obs.emit(
            "wire_unicast",
            interval=interval,
            users=len(pending),
            retries=outcome.unicast_retries,
        )

    def __repr__(self):
        return "WireServer(members=%d)" % len(self._addresses)
