"""Deterministic receiver-side loss for the wire plane.

Real sockets deliver datagrams at real times, which would make a Gilbert
chain sampled at arrival time depend on scheduler jitter.  The wire
plane instead samples loss at *virtual* time: every ``DATA`` frame
carries its send ``slot`` (the datagram's index within the interval's
multicast phase), and a member's chain is queried at
``slot * sending_interval`` — the spacing the paper's model assumes.
Loss is then a pure function of ``(seed, interval, member_index, slot)``
and a fleet run digests identically however the event loop schedules it.

Per the paper's topology (§8), a member's effective loss is its receiver
link *or* the shared source link dropping the packet; the source chain
is seeded per ``(seed, interval)`` only, so every member in the fleet
computes the identical source history, exactly like a shared uplink.

Cohorts: a fraction ``alpha`` of member indices is high-loss
(``p_high``), the rest low-loss (``p_low``).  Membership is by
deterministic index striping — stable under churn, exact in proportion —
rather than position in a sorted roster (which would flip members
between cohorts as neighbours join and leave).
"""

from __future__ import annotations

import numpy as np

_SOURCE_STREAM = 0
_RECEIVER_STREAM = 1

#: seeds are folded into SeedSequence entropy, which wants non-negative
_SEED_SPAN = 2**63


def cohort_of(member_index, alpha):
    """``"high"`` for a deterministic fraction ``alpha`` of indices.

    Uses exact integer striping at 1/1000 resolution: of every 1000
    consecutive indices, ``round(alpha * 1000)`` are high-loss, spread
    evenly rather than clumped.
    """
    per_mille = int(round(float(alpha) * 1000))
    if per_mille <= 0:
        return "low"
    if per_mille >= 1000:
        return "high"
    return (
        "high"
        if (int(member_index) * per_mille) % 1000 < per_mille
        else "low"
    )


class SlotLossSequence:
    """Loss indicators of one chain, indexed by slot.

    The underlying stepper only walks forward; datagrams may arrive (or
    be asked about) out of order, so indicators are cached and the chain
    extended lazily to the highest slot queried.
    """

    def __init__(self, process, rng, spacing_seconds):
        self._stepper = process.stepper(rng)
        self._spacing = float(spacing_seconds)
        self._lost = []

    def lost(self, slot):
        while len(self._lost) <= slot:
            time = len(self._lost) * self._spacing
            self._lost.append(bool(self._stepper.is_lost(time)))
        return self._lost[slot]


class MemberLoss:
    """One member's injected loss for one interval: receiver + source."""

    def __init__(
        self, params, member_index, interval, seed, spacing_seconds
    ):
        self.cohort = cohort_of(member_index, params.alpha)
        p_receiver = (
            params.p_high if self.cohort == "high" else params.p_low
        )
        base = int(seed) % _SEED_SPAN
        receiver_rng = np.random.default_rng(
            np.random.SeedSequence(
                [base, int(interval), int(member_index), _RECEIVER_STREAM]
            )
        )
        # Same (seed, interval) for every member: the shared uplink.
        source_rng = np.random.default_rng(
            np.random.SeedSequence([base, int(interval), _SOURCE_STREAM])
        )
        self._receiver = SlotLossSequence(
            params.make_process(p_receiver), receiver_rng, spacing_seconds
        )
        self._source = SlotLossSequence(
            params.make_process(params.p_source), source_rng, spacing_seconds
        )
        self.dropped = 0

    def lost(self, slot):
        """Loss indicator for the DATA frame sent in ``slot``."""
        if self._source.lost(slot) or self._receiver.lost(slot):
            self.dropped += 1
            return True
        return False
