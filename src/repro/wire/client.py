"""Asyncio client side of the wire plane.

One :class:`WireClient` per group member: an ephemeral UDP socket
connected to the server, a registration loop that retries until the
server has the address, and per-interval receiver state driven by the
frames defined in :mod:`repro.wire.codec`.

The receive path mirrors the simulated user exactly — every ``DATA``
frame feeds the same :class:`~repro.transport.user.UserTransport` state
machine, and recovered encryptions are absorbed into a real
:class:`~repro.core.member.GroupMember` so key agreement is checked on
actual decrypted keys, not on simulator bookkeeping.

Determinism over real sockets rests on three rules:

- injected loss applies only to multicast ``DATA`` frames and is decided
  by the frame's ``slot`` (virtual time), never by arrival time;
- ``end_of_round`` runs exactly once per round; the resulting feedback
  is cached and *resent verbatim* when the server retries a
  ``ROUND_END`` (a feedback datagram the kernel dropped costs latency,
  never a different NACK);
- control frames (``ANNOUNCE``/``ROUND_END``/``FEEDBACK``/``REGISTER``)
  and unicast USR frames bypass injected loss entirely, so the protocol
  converges on every seed.

**Survivability** (docs/robustness.md): the client is also a small
resync state machine.  Every ANNOUNCE and REGISTER ack carries the
leader's epoch; the client adopts a higher epoch (a promoted leader),
refuses a lower one (a deposed leader's straggler — no stale-epoch key
is ever absorbed), and counts a skipped interval number as a missed
interval.  A silence watchdog (``resync_timeout``) re-enters the
bounded full-jitter REGISTER cycle whenever the leader goes quiet, so a
fleet orphaned by a leader kill re-homes onto the promoted standby by
itself.  Undecodable datagrams and ICMP refusals are counted, not
fatal — under the datagram fault injector both are routine weather.
"""

from __future__ import annotations

import asyncio
import random
import time

from repro.errors import PacketDecodeError, WireError
from repro.obs.recorder import NULL
from repro.obs.trace import format_trace
from repro.rekey.packets import (
    FEC_PAYLOAD_OFFSET,
    PacketType,
    decode_packet,
)
from repro.transport.user import UserTransport
from repro.util.retry import RetryPolicy
from repro.wire.codec import (
    NO_FINGERPRINT,
    UNICAST_ROUND,
    Feedback,
    FrameKind,
    decode_announce,
    decode_frame,
    decode_register,
    encode_feedback,
    encode_frame,
    encode_register,
    kernel_buffer_size,
    request_kernel_buffers,
)
from repro.wire.loss import MemberLoss, cohort_of

#: The REGISTER resend schedule: bounded attempts with full-jitter
#: backoff (replacing the old fixed 50 ms forever-loop).  Exhaustion
#: emits ``wire_register_giveup``; with a silence watchdog armed the
#: cycle re-runs on the next timeout, so a client keeps probing for a
#: (re)appearing leader without ever stampeding it.
REGISTER_POLICY = RetryPolicy(
    max_attempts=12,
    base_delay=0.05,
    multiplier=1.6,
    max_delay=1.0,
    jitter=True,
)

#: Floor on the per-attempt wait so a jitter draw near zero cannot turn
#: the cycle into a busy loop.
MIN_REGISTER_WAIT = 0.005

#: Datagram burst a client socket is sized for: one whole multicast
#: round arriving before the event loop gets back to this client.  The
#: packet-size ceiling is deliberately generous — the client learns the
#: real size only from traffic, after its socket already exists.
DATA_FAN_IN = 256
PACKET_SIZE_CEILING = 2048


class _Session:
    """One interval's receiver state on the client."""

    __slots__ = (
        "interval",
        "announce",
        "served",
        "transport",
        "loss",
        "started_at",
        "absorbed",
        "latency_ms",
        "feedback_cache",
        "announce_ack",
        "unicast_ack",
        "trace_id",
        "saw_data",
        "epoch",
        "seen_slots",
    )

    def __init__(self, interval, announce, served):
        self.interval = interval
        self.announce = announce
        self.served = served
        self.epoch = announce.epoch
        #: multicast DATA slots already processed (duplicate defence)
        self.seen_slots = set()
        self.transport = None
        self.loss = None
        self.started_at = time.monotonic()
        self.absorbed = False
        self.latency_ms = 0.0
        #: encoded FEEDBACK datagram per completed round, 1-based
        self.feedback_cache = {}
        self.announce_ack = None
        self.unicast_ack = None
        self.trace_id = announce.trace_id
        self.saw_data = False

    @property
    def done(self):
        if not self.served:
            return True
        return self.transport.done

    @property
    def rounds_reported(self):
        return len(self.feedback_cache)


class _ClientProtocol(asyncio.DatagramProtocol):
    def __init__(self, client):
        self.client = client
        self.transport = None

    def connection_made(self, transport):
        self.transport = transport

    def datagram_received(self, data, addr):
        self.client._on_datagram(data)

    def error_received(self, exc):
        self.client._on_socket_error(exc)


class WireClient:
    """One member's endpoint on the wire plane.

    ``member`` is the member's real :class:`GroupMember` key state — the
    fleet's own object when the client runs in-process, a reconstructed
    shadow in a worker process.  ``member_index`` is the member's stable
    fleet index: it addresses the client at the server and seeds the
    member's loss chains, so it must never be reused for a different
    member within one fleet run.
    """

    def __init__(
        self,
        name,
        member_index,
        member,
        server_address,
        loss_params,
        seed,
        spacing_seconds,
        obs=NULL,
        resync_timeout=None,
        crash_at=None,
        register_policy=None,
    ):
        """``resync_timeout`` (seconds) arms the silence watchdog: after
        that long without any server datagram the client re-enters the
        REGISTER cycle (``None`` = off, the pre-chaos behaviour).
        ``crash_at`` is an optional ``(interval, round)`` at which this
        client goes silent forever — the chaos plans' deterministic
        mid-interval death (round 0 = at the ANNOUNCE)."""
        self.name = name
        self.member_index = int(member_index)
        self.member = member
        self.server_address = server_address
        self.loss_params = loss_params
        self.seed = int(seed)
        self.spacing_seconds = float(spacing_seconds)
        self.obs = obs
        self.resync_timeout = (
            None if resync_timeout is None else float(resync_timeout)
        )
        self.crash_at = (
            None if crash_at is None else (int(crash_at[0]), int(crash_at[1]))
        )
        self.register_policy = (
            REGISTER_POLICY if register_policy is None else register_policy
        )
        self.cohort = cohort_of(self.member_index, loss_params.alpha)
        self.errors = []
        self.frames_received = 0
        self.data_dropped = 0
        # -- resync FSM state (see module docs) --
        self.epoch = 0
        self.dead = False
        self.resyncs = 0
        self.reregisters = 0
        self.missed_intervals = 0
        self.stale_epoch_refused = 0
        self.decode_errors = 0
        self.socket_errors = 0
        self.register_giveups = 0
        self._rng = random.Random((self.seed << 20) ^ self.member_index)
        self._last_rx = time.monotonic()
        self._session = None
        self._transport = None
        self._registered = None  # asyncio.Event, created on start
        self._register_task = None
        self._watchdog_task = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self):
        loop = asyncio.get_running_loop()
        self._registered = asyncio.Event()
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _ClientProtocol(self),
            remote_addr=self.server_address,
        )
        request_kernel_buffers(
            self._transport,
            kernel_buffer_size(PACKET_SIZE_CEILING, DATA_FAN_IN),
        )
        self._last_rx = time.monotonic()
        self._register_task = loop.create_task(self._register_loop())
        if self.resync_timeout is not None:
            self._watchdog_task = loop.create_task(self._watchdog_loop())
        return self

    async def close(self):
        for attr in ("_register_task", "_watchdog_task"):
            task = getattr(self, attr)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                setattr(self, attr, None)
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    async def _register_loop(self, resync=False):
        """One bounded REGISTER cycle: resend with full-jitter backoff
        until *any* server datagram arrives or the attempt budget is
        spent.  Returns whether registration was acknowledged."""
        payload = encode_register(self.member_index, self.member.user_id)
        frame = encode_frame(FrameKind.REGISTER, 0, payload=payload)
        policy = self.register_policy
        for attempt in range(policy.max_attempts):
            if self._registered.is_set():
                return True
            self._send(frame)
            wait = max(
                policy.delay(attempt, rng=self._rng), MIN_REGISTER_WAIT
            )
            try:
                await asyncio.wait_for(self._registered.wait(), wait)
                return True
            except asyncio.TimeoutError:
                continue
        if self._registered.is_set():
            return True
        self.register_giveups += 1
        self.obs.count("wire_register_giveups")
        self.obs.emit(
            "wire_register_giveup",
            member=self.name,
            member_index=self.member_index,
            attempts=policy.max_attempts,
            resync=resync,
        )
        return False

    async def _watchdog_loop(self):
        """The silence watchdog: when the server has been quiet past
        ``resync_timeout``, assume the leader is gone (or we are) and
        re-enter the REGISTER cycle.  Re-registration is idempotent at
        the server, so a false alarm costs one datagram exchange; a
        real leader failover ends with the promoted server learning our
        address and its ack teaching us the new epoch."""
        await self._registered.wait()
        while not self.dead:
            await asyncio.sleep(
                max(self.resync_timeout / 2.0, MIN_REGISTER_WAIT)
            )
            if self.dead:
                return
            idle = time.monotonic() - self._last_rx
            if idle < self.resync_timeout:
                continue
            self.resyncs += 1
            self.obs.count("wire_resyncs", reason="silence")
            self.obs.emit(
                "wire_resync",
                member=self.name,
                member_index=self.member_index,
                reason="silence",
                idle_ms=round(idle * 1000.0, 1),
            )
            self._registered.clear()
            await self._register_loop(resync=True)
            self.reregisters += 1

    def _send(self, wire):
        if self._transport is not None:
            self._transport.sendto(wire)

    def _on_socket_error(self, exc):
        # ICMP refusals while the leader is down (or a peer died) are
        # survivable noise — counted, never fatal; the register cycle
        # and watchdog keep probing.
        self.socket_errors += 1
        self.obs.count("wire_socket_errors")

    def stats(self):
        """The resync FSM's counters (the soak invariants read these)."""
        return {
            "epoch": self.epoch,
            "dead": self.dead,
            "resyncs": self.resyncs,
            "reregisters": self.reregisters,
            "missed_intervals": self.missed_intervals,
            "stale_epoch_refused": self.stale_epoch_refused,
            "decode_errors": self.decode_errors,
            "socket_errors": self.socket_errors,
            "register_giveups": self.register_giveups,
        }

    # -- receive path ------------------------------------------------------

    def _on_datagram(self, data):
        if self.dead:
            return
        self._last_rx = time.monotonic()
        if self._registered is not None:
            self._registered.set()
        try:
            frame = decode_frame(data)
            self.frames_received += 1
            if frame.kind is FrameKind.ANNOUNCE:
                self._on_announce(frame)
            elif frame.kind is FrameKind.DATA:
                self._on_data(frame)
            elif frame.kind is FrameKind.ROUND_END:
                self._on_round_end(frame)
            elif frame.kind is FrameKind.REGISTER:
                self._on_register_ack(frame)
            else:
                raise WireError(
                    "client received server-bound frame %s" % frame.kind
                )
        except PacketDecodeError as exc:
            # Garbage (bad envelope, corrupt payload) must not kill the
            # endpoint — counted and visible, never fatal.
            self.decode_errors += 1
            self.obs.count("wire_decode_error_total", side="client")
            self.obs.emit(
                "wire_decode_error", error=str(exc), side="client"
            )
        except Exception as exc:  # noqa: BLE001 - surfaced to the runner
            self.errors.append("%s: %s" % (type(exc).__name__, exc))

    def _on_register_ack(self, frame):
        """The server's REGISTER ack carries its epoch — the client's
        first (or, after a failover, fresh) sighting of the leader."""
        self._adopt_epoch(decode_register(frame.payload).epoch, "register")

    def _adopt_epoch(self, epoch, source):
        """Adopt a higher leader epoch; returns True on a change of
        leadership (not on the initial sighting)."""
        if epoch <= self.epoch:
            return False
        previous, self.epoch = self.epoch, int(epoch)
        if previous:
            self.obs.count("wire_rehomes")
            self.obs.emit(
                "wire_rehomed",
                member=self.name,
                member_index=self.member_index,
                epoch=self.epoch,
                previous=previous,
                source=source,
            )
            return True
        return False

    def _refuse_stale_epoch(self, frame, epoch):
        self.stale_epoch_refused += 1
        self.obs.count("wire_stale_epoch_total", side="client")
        self.obs.emit(
            "wire_stale_epoch",
            side="client",
            member=self.name,
            member_index=self.member_index,
            epoch=epoch,
            current=self.epoch,
            interval=frame.interval,
        )

    def _on_announce(self, frame):
        announce = decode_announce(frame.payload)
        if announce.epoch < self.epoch:
            # Fencing, end to end: a deposed leader's ANNOUNCE never
            # builds a session, so its keys can never be absorbed.
            self._refuse_stale_epoch(frame, announce.epoch)
            return
        promoted = self._adopt_epoch(announce.epoch, "announce")
        session = self._session
        if session is not None and not promoted:
            if frame.interval < session.interval:
                return  # stale interval straggler
            if frame.interval == session.interval:
                self._send(session.announce_ack)  # ack was lost: resend
                return
        if self.crash_at is not None and self.crash_at == (
            frame.interval,
            0,
        ):
            self.dead = True  # scheduled death at the announce
            return
        if session is not None and frame.interval > session.interval + 1:
            gap = frame.interval - session.interval - 1
            self.missed_intervals += gap
            self.resyncs += 1
            self.obs.count("wire_resyncs", reason="missed-interval")
            self.obs.emit(
                "wire_resync",
                member=self.name,
                member_index=self.member_index,
                reason="missed-interval",
                interval=frame.interval,
                last=session.interval,
                missed=gap,
            )
        served = frame.slot == 1
        session = _Session(frame.interval, announce, served)
        # Theorem 4.2: re-derive our ID before interpreting coverage.
        self.member.absorb_encryptions([], max_kid=announce.max_kid)
        if served:
            session.transport = UserTransport(
                self.member.user_id,
                k=announce.k,
                degree=announce.degree,
                n_blocks=announce.n_blocks,
                message_id=announce.message_id,
            )
            session.loss = MemberLoss(
                self.loss_params,
                self.member_index,
                frame.interval,
                self.seed,
                self.spacing_seconds,
            )
        self._session = session
        session.announce_ack = self._feedback_frame(round_no=0)
        self._send(session.announce_ack)
        self._trace_event("trace_announce", session)

    def _on_data(self, frame):
        session = self._session
        if session is None or frame.interval != session.interval:
            return
        if not session.served:
            return
        if frame.round_no == UNICAST_ROUND:
            self._on_unicast(frame)
            return
        if frame.slot in session.seen_slots:
            return  # injected duplicate: each slot feeds the FSM once
        session.seen_slots.add(frame.slot)
        if session.done:
            return
        if session.loss.lost(frame.slot):
            self.data_dropped += 1
            return
        if not session.saw_data:
            session.saw_data = True
            self._trace_event("trace_first_data", session, slot=frame.slot)
        packet = decode_packet(frame.payload)
        if packet.packet_type is PacketType.ENC:
            session.transport.on_enc(
                packet, frame.payload[FEC_PAYLOAD_OFFSET:]
            )
        elif packet.packet_type is PacketType.PARITY:
            session.transport.on_parity(packet)
        else:
            raise WireError(
                "multicast DATA frame carried %s" % packet.packet_type
            )
        self._after_progress(session)

    def _on_unicast(self, frame):
        """A USR frame: immediate success, acked until the server stops."""
        session = self._session
        if not session.done:
            packet = decode_packet(frame.payload)
            if packet.packet_type is not PacketType.USR:
                raise WireError(
                    "unicast frame carried %s" % packet.packet_type
                )
            session.transport.on_usr(packet)
            self._after_progress(session)
        if session.unicast_ack is None:
            session.unicast_ack = self._feedback_frame(
                round_no=UNICAST_ROUND
            )
        self._send(session.unicast_ack)

    def _on_round_end(self, frame):
        session = self._session
        if session is None or frame.interval != session.interval:
            return
        round_no = frame.round_no
        if round_no < 1 or round_no == UNICAST_ROUND:
            return
        cached = session.feedback_cache.get(round_no)
        if cached is not None:
            self._send(cached)  # server retry: identical bytes
            return
        # Rounds close strictly in order; the server never starts round
        # r+1 before every member reported round r, so at most the
        # current round is missing from the cache.
        while session.rounds_reported < round_no:
            next_round = session.rounds_reported + 1
            if self.crash_at is not None and self.crash_at == (
                session.interval,
                next_round,
            ):
                self.dead = True  # scheduled mid-interval death
                return
            nack = None
            if session.served and not session.done:
                nack = session.transport.end_of_round()
                self._after_progress(session)
            elif session.served:
                # Keep the round counter honest while already done.
                session.transport.end_of_round()
            wire = self._feedback_frame(round_no=next_round, nack=nack)
            session.feedback_cache[next_round] = wire
        self._send(session.feedback_cache[round_no])

    # -- helpers -----------------------------------------------------------

    def _trace_event(self, kind, session, **extra):
        """Emit one client-side trace milestone for this session.

        ``mono`` is this *process's* monotonic clock — the assembler
        offsets it against the server's announce barrier per stream.
        """
        if not self.obs.enabled:
            return
        self.obs.emit(
            kind,
            member=self.name,
            member_index=self.member_index,
            interval=session.interval,
            trace=format_trace(session.trace_id),
            served=session.served,
            cohort=self.cohort,
            mono=time.monotonic(),
            **extra,
        )

    def _after_progress(self, session):
        """Absorb keys and stamp the latency the moment recovery lands."""
        if not session.served or session.absorbed:
            return
        if not session.transport.done:
            return
        session.latency_ms = (
            time.monotonic() - session.started_at
        ) * 1000.0
        self._trace_event(
            "trace_decoded",
            session,
            recovery_round=session.transport.recovery_round or 0,
            dropped=session.loss.dropped,
            latency_ms=round(session.latency_ms, 3),
        )
        self.member.absorb_encryptions(
            session.transport.recovered_encryptions,
            max_kid=session.announce.max_kid,
        )
        session.absorbed = True
        key = self.member.group_key
        self._trace_event(
            "trace_key_decrypted",
            session,
            fingerprint=key.fingerprint() if key else None,
        )

    def _feedback_frame(self, round_no, nack=None):
        session = self._session
        transport = session.transport
        recovery = 0
        if session.served and transport.recovery_round is not None:
            recovery = transport.recovery_round
        key = self.member.group_key
        fingerprint = NO_FINGERPRINT
        if key is not None and (not session.served or session.absorbed):
            fingerprint = key.fingerprint()
        feedback = Feedback(
            member_index=self.member_index,
            user_id=self.member.user_id,
            done=session.done,
            recovery_round=recovery,
            dropped=session.loss.dropped if session.loss else 0,
            fingerprint=fingerprint,
            latency_ms=session.latency_ms,
            nack=nack,
            trace_id=session.trace_id,
            epoch=self.epoch,
        )
        return encode_frame(
            FrameKind.FEEDBACK,
            session.interval,
            round_no=round_no,
            payload=encode_feedback(feedback),
        )

    def __repr__(self):
        return "WireClient(%r, index=%d)" % (self.name, self.member_index)
