"""The fleet runner: a daemon driving hundreds of wire clients.

``run_fleet`` is the wire plane's end-to-end harness, shaped like the
chaos-soak runner: a named plan plus a seed fully determines the run,
and the per-interval protocol facts canonicalise to a **digest** that CI
pins.  One run boots a :class:`~repro.service.daemon.RekeyDaemon` with
the :class:`~repro.wire.delivery.WireDelivery` backend, spawns one
asyncio :class:`~repro.wire.client.WireClient` per member (in-process,
or sharded over worker processes), and drives several rekey intervals
over real loopback UDP under Poisson churn and per-cohort Gilbert loss.

What the digest covers — and deliberately does not: it hashes the
protocol's deterministic facts (rounds, per-round NACK and packet
counts, sorted first-round parity shortfalls, per-member recovery
rounds, injected-drop totals, ρ trajectory) and excludes everything
timing-dependent (latencies, feedback retries), so the same ``(plan,
seed)`` digests identically on any machine however the scheduler
interleaves the sockets.  Wall-clock behaviour is reported separately:
per-cohort recovery-latency percentiles computed from the
``wire_member_recovered`` events on the bus.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ReproError, WireError, WorkerCrashError
from repro.obs.events import EventBus
from repro.obs.recorder import Recorder

#: Fleet plans, smallest first.  ``smoke`` is sized for CI (and the
#: pinned-digest test); ``standard`` is the acceptance configuration;
#: ``surge`` doubles it; ``sharded`` exercises the worker-process mode.
FLEET_PLAN_NAMES = ("smoke", "standard", "surge", "sharded")


@dataclass(frozen=True)
class FleetPlan:
    """One named fleet configuration (overridable per run)."""

    name: str
    clients: int = 48
    intervals: int = 3
    workers: int = 0  # 0 = every client in-process on one loop
    churn_alpha: float = 0.15  # Poisson churn rate per member (0 = static)
    block_size: int = 5
    description: str = ""


FLEET_PLANS = {
    "smoke": FleetPlan(
        "smoke",
        clients=48,
        description="48 clients, 3 intervals — CI-sized, digest-pinned",
    ),
    "standard": FleetPlan(
        "standard",
        clients=512,
        description="512 in-process asyncio clients, 3 intervals",
    ),
    "surge": FleetPlan(
        "surge",
        clients=1024,
        description="1024 in-process asyncio clients, 3 intervals",
    ),
    "sharded": FleetPlan(
        "sharded",
        clients=96,
        workers=2,
        description="96 clients sharded over 2 worker processes",
    ),
}


@dataclass
class FleetResult:
    """Everything one fleet run observed and concluded."""

    plan: str
    seed: int
    clients: int
    intervals_target: int
    workers: int = 0
    intervals_completed: int = 0
    #: the canonical per-interval protocol records (the digest input)
    records: list = field(default_factory=list)
    digest: str = ""
    #: per-cohort wall-clock summary from wire_member_recovered events
    cohorts: dict = field(default_factory=dict)
    invariants: dict = field(default_factory=dict)
    failure: object = None
    #: the failure was a dead worker process (distinct CLI exit code:
    #: the fleet did not merely miss an invariant, it lost a machine)
    worker_crash: bool = False

    @property
    def ok(self):
        return (
            self.failure is None
            and bool(self.invariants)
            and all(self.invariants.values())
        )

    def to_dict(self):
        return {
            "plan": self.plan,
            "seed": self.seed,
            "clients": self.clients,
            "workers": self.workers,
            "intervals_target": self.intervals_target,
            "intervals_completed": self.intervals_completed,
            "digest": self.digest,
            "cohorts": dict(self.cohorts),
            "invariants": dict(self.invariants),
            "failure": None if self.failure is None else str(self.failure),
            "worker_crash": self.worker_crash,
            "ok": self.ok,
        }


def fleet_digest(records):
    """SHA-256 over the canonical interval records (the determinism pin)."""
    data = json.dumps(records, sort_keys=True).encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def _percentiles(values):
    return {
        "p50": round(float(np.percentile(values, 50)), 3),
        "p90": round(float(np.percentile(values, 90)), 3),
        "p99": round(float(np.percentile(values, 99)), 3),
    }


def cohort_summary(events):
    """Per-cohort recovery statistics from ``wire_member_recovered``
    events — measured off the wire, not read out of any simulator."""
    by_cohort = {}
    for event in events:
        if event["kind"] != "wire_member_recovered":
            continue
        detail = event["detail"]
        by_cohort.setdefault(detail["cohort"], []).append(detail)
    summary = {}
    for cohort, details in sorted(by_cohort.items()):
        multicast_rounds = [
            d["recovery_round"]
            for d in details
            if d["recovery_round"] > 0
        ]
        summary[cohort] = {
            "reports": len(details),
            "recovery_ms": _percentiles(
                [d["latency_ms"] for d in details]
            ),
            "rounds_mean": (
                round(float(np.mean(multicast_rounds)), 3)
                if multicast_rounds
                else 0.0
            ),
            "unicast": sum(
                1 for d in details if d["recovery_round"] == 0
            ),
            "dropped": int(sum(d["dropped"] for d in details)),
        }
    return summary


def resolve_plan(plan, clients=None, intervals=None, workers=None):
    """A :class:`FleetPlan` from a name (or a ready plan) + overrides."""
    if isinstance(plan, FleetPlan):
        resolved = plan
    else:
        try:
            resolved = FLEET_PLANS[plan]
        except KeyError:
            raise WireError(
                "unknown fleet plan %r (valid: %s)"
                % (plan, ", ".join(FLEET_PLAN_NAMES))
            )
    overrides = {}
    if clients is not None:
        overrides["clients"] = int(clients)
    if intervals is not None:
        overrides["intervals"] = int(intervals)
    if workers is not None:
        overrides["workers"] = int(workers)
    return replace(resolved, **overrides) if overrides else resolved


def run_fleet(
    plan="smoke",
    seed=7,
    clients=None,
    intervals=None,
    workers=None,
    obs_path=None,
    obs_dir=None,
    log=None,
):
    """Run one wire fleet; returns a :class:`FleetResult`.

    Never raises for run-induced failures — those land in
    ``result.failure`` so the CLI can report and exit non-zero, exactly
    like the chaos-soak harness.

    ``obs_dir`` turns on trace collection: the server's stream goes to
    ``<obs_dir>/server.jsonl`` (unless ``obs_path`` overrides it) and
    every worker process writes ``<obs_dir>/worker-NN.jsonl``; all
    streams are line-buffered so a dead process never loses its tail.
    The directory is what ``repro obs-report --trace-dir`` consumes.
    """
    from repro.core.config import GroupConfig
    from repro.core.server import GroupKeyServer
    from repro.service.churn import NoChurn, PoissonChurn
    from repro.service.daemon import DaemonConfig, RekeyDaemon
    from repro.service.members import MemberFleet
    from repro.wire.delivery import WireDelivery, WireFleet

    plan = resolve_plan(
        plan, clients=clients, intervals=intervals, workers=workers
    )
    say = log if log is not None else (lambda line: None)
    if obs_dir is not None:
        os.makedirs(obs_dir, exist_ok=True)
        if obs_path is None:
            obs_path = os.path.join(obs_dir, "server.jsonl")
    bus = EventBus(path=obs_path, line_buffered=obs_dir is not None)
    obs = Recorder(bus=bus)
    config = GroupConfig(block_size=plan.block_size, seed=int(seed))
    backend = WireDelivery(
        config, seed=int(seed) + 1, workers=plan.workers,
        obs_dir=obs_dir,
    )
    result = FleetResult(
        plan=plan.name,
        seed=int(seed),
        clients=plan.clients,
        intervals_target=plan.intervals,
        workers=plan.workers,
    )
    churn = (
        PoissonChurn(alpha=plan.churn_alpha)
        if plan.churn_alpha > 0
        else NoChurn()
    )
    say(
        "fleet: plan %r, seed %d, %d clients%s, %d intervals"
        % (
            plan.name,
            seed,
            plan.clients,
            " on %d workers" % plan.workers if plan.workers else "",
            plan.intervals,
        )
    )
    daemon = None
    try:
        server = GroupKeyServer(
            ["member-%04d" % index for index in range(plan.clients)],
            config=config,
        )
        fleet_cls = WireFleet if plan.workers else MemberFleet
        daemon = RekeyDaemon(
            server,
            backend=backend,
            fleet=fleet_cls.register_all(server),
            churn=churn,
            service=DaemonConfig(
                deadline_rounds=config.max_multicast_rounds
            ),
            seed=int(seed),
            obs=obs,
        )

        def on_interval(record):
            obs.emit(
                "wire_fleet_interval",
                interval=record.interval,
                members=record.n_members,
                rounds=record.multicast_rounds,
                unicast_served=record.unicast_served,
                decision=record.decision,
            )
            say(
                "  interval %d: %d members, %d rounds, %d by unicast"
                % (
                    record.interval,
                    record.n_members,
                    record.multicast_rounds,
                    record.unicast_served,
                )
            )

        daemon.run(plan.intervals, on_interval=on_interval)
        result.intervals_completed = daemon.server.intervals_processed

        invariants = result.invariants
        invariants["completed"] = (
            daemon.server.intervals_processed >= plan.intervals
        )
        try:
            daemon.fleet.check_agreement(daemon.server)
            invariants["key-agreement"] = True
        except ReproError:
            invariants["key-agreement"] = False
        # The wire plane must have carried every interval: one record
        # per interval, every served member reported done on the socket.
        invariants["all-delivered"] = len(backend.records) == int(
            plan.intervals
        ) and all(
            record["served"] == len(record["recovery_rounds"])
            for record in backend.records
        )
        for name, passed in sorted(invariants.items()):
            say(
                "  invariant %-16s %s" % (name, "ok" if passed else "FAIL")
            )
    except WorkerCrashError as error:
        result.failure = error
        result.worker_crash = True
        say("  fleet aborted: %s" % error)
    except ReproError as error:
        result.failure = error
        say("  fleet aborted: %s" % error)
    finally:
        backend.close()
        if daemon is not None:
            daemon.close()
        result.records = list(backend.records)
        result.digest = fleet_digest(result.records)
        result.cohorts = cohort_summary(bus.events)
        obs.emit(
            "wire_fleet_complete",
            plan=plan.name,
            seed=int(seed),
            intervals=result.intervals_completed,
            digest=result.digest,
            ok=result.ok,
        )
        bus.close()
    return result
