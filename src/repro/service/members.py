"""In-process stand-ins for the daemon's remote member population.

A real deployment has members on remote hosts; their key state lives
with *them* and survives any key-server crash.  :class:`MemberFleet`
models exactly that: it owns the :class:`~repro.core.member.GroupMember`
objects, persists across daemon restarts in tests and soaks, and is the
oracle for the system's two security invariants —

- **agreement**: after a delivered rekey, every current member's group
  key equals the server's;
- **lockout**: every evicted member's group key differs from the
  server's (forward secrecy), forever after its eviction interval.
"""

from __future__ import annotations

from repro.core.member import GroupMember
from repro.errors import ServiceError


class MemberFleet:
    """The population of live (and former) member key states."""

    def __init__(self):
        self.members = {}  # name -> GroupMember
        self.former_members = {}  # name -> GroupMember at eviction time

    @classmethod
    def register_all(cls, server):
        """A fleet freshly registered for every current user of ``server``
        (the CLI-resume path: a new process has no surviving members, so
        they re-register over the SSL channel)."""
        fleet = cls()
        for name in sorted(server.users):
            fleet.register(server, name)
        return fleet

    @property
    def n_members(self):
        return len(self.members)

    def register(self, server, name):
        """(Re-)register ``name``: fetch fresh path keys from the server.

        Idempotent — re-registration after a crash replay simply
        replaces the member's key state with the server's current view,
        which is what the SSL registration channel would do.
        """
        self.members[name] = GroupMember.register(server, name)
        self.former_members.pop(name, None)
        return self.members[name]

    def evict(self, name):
        """Move ``name`` to the former-member ledger (idempotent)."""
        member = self.members.pop(name, None)
        if member is not None:
            self.former_members[name] = member

    def forget(self, name):
        """Drop ``name`` entirely — no former-member entry (idempotent).

        For members a recovered or promoted server never committed (a
        pre-crash joiner whose request is pending again): the member
        registers fresh when the replay interval re-processes the join,
        so neither ledger should count it meanwhile.
        """
        self.members.pop(name, None)
        self.former_members.pop(name, None)

    def by_user_id(self):
        """Map current u-node IDs to members (after relocation)."""
        return {member.user_id: member for member in self.members.values()}

    def relocate_all(self, max_kid):
        """Have every member re-derive its ID for a new ``maxKID``
        (Theorem 4.2) — what each would do on seeing any packet of the
        message."""
        for member in self.members.values():
            member.absorb_encryptions([], max_kid=max_kid)

    # -- invariant checks --------------------------------------------------

    def out_of_sync(self, server):
        """Names of current members whose group key != the server's."""
        expected = server.group_key
        return sorted(
            name
            for name, member in self.members.items()
            if member.group_key != expected
        )

    def check_agreement(self, server, exclude=()):
        """Raise :class:`ServiceError` unless all (non-excluded) members
        hold the server's group key and all former members do not."""
        excluded = set(exclude)
        stale = [n for n in self.out_of_sync(server) if n not in excluded]
        if stale:
            raise ServiceError(
                "members lack the current group key: %r" % (stale,)
            )
        expected = server.group_key
        leaked = sorted(
            name
            for name, member in self.former_members.items()
            if member.group_key == expected
        )
        if leaked:
            raise ServiceError(
                "evicted members hold the current group key: %r" % (leaked,)
            )

    def __repr__(self):
        return "MemberFleet(members=%d, former=%d)" % (
            len(self.members),
            len(self.former_members),
        )
